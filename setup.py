"""Setuptools shim.

Kept alongside pyproject.toml so the project installs in offline
environments that lack the `wheel` package (legacy `setup.py develop` /
`pip install -e . --no-build-isolation` both work without building a wheel).
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
