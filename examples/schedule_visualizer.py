#!/usr/bin/env python3
"""Regenerates the paper's Fig. 4 as an ASCII timeline: how one training
epoch's stages lay out under each system's schedule.

One epoch of real execution is re-timed under all four schedules
(Vanilla, AdaQP, PipeGCN, SANCUS) and drawn as proportional bars, making
the overlap structure visible: AdaQP's communication bar shrinks
(quantization) and runs concurrently with central-graph compute.

Run:  python examples/schedule_visualizer.py
"""

import numpy as np

from repro.cluster import Cluster, ExactHaloExchange, FixedBitProvider, QuantizedHaloExchange
from repro.cluster.perfmodel import PerfModel
from repro.comm.costmodel import LinkCostModel
from repro.comm.topology import parse_topology
from repro.core.scheduler import SCHEDULES
from repro.graph import load_dataset, partition_graph

BAR_WIDTH = 64


def bar(label: str, seconds: float, total: float, char: str) -> str:
    cells = max(1, int(round(BAR_WIDTH * seconds / total))) if seconds > 0 else 0
    return f"  {label:<7s} |{char * cells:<{BAR_WIDTH}}| {1e3 * seconds:7.2f} ms"


def main() -> None:
    dataset = load_dataset("ogbn-products", scale="tiny", seed=0)
    topology = parse_topology("2M-2D")
    book = partition_graph(dataset.graph, topology.num_devices, method="metis", seed=0)
    cost = LinkCostModel.for_topology(topology)
    perf = PerfModel()

    def one_epoch(exchange):
        cluster = Cluster(
            dataset, book, model_kind="gcn", hidden_dim=32, num_layers=3,
            dropout=0.0, seed=0,
        )
        return cluster.train_epoch(exchange, 0)

    exact_record = one_epoch(ExactHaloExchange())
    quant_record = one_epoch(
        QuantizedHaloExchange(FixedBitProvider(2), np.random.default_rng(0))
    )

    results = {
        "vanilla": SCHEDULES["vanilla"](exact_record, cost, perf),
        "adaqp": SCHEDULES["adaqp"](quant_record, cost, perf),
        "pipegcn": SCHEDULES["pipegcn"](exact_record, cost, perf),
        "sancus": SCHEDULES["sancus"](exact_record, cost, perf),
    }
    total = max(r.epoch_time for r in results.values())

    print("One GCN epoch (3 layers, fwd+bwd) under each schedule")
    print(f"(ogbn-products stand-in, {topology.name}; bars share one time scale)\n")
    for name, res in results.items():
        print(f"{name}  —  epoch {1e3 * res.epoch_time:.2f} ms, "
              f"throughput {res.throughput:.1f} ep/s")
        print(bar("comm", res.comm_time, total, "#"))
        print(bar("comp", res.comp_time, total, "="))
        if res.quant_time > 0:
            print(bar("quant", res.quant_time, total, "~"))
        if "overlapped" in res.detail:
            print(f"  (comm and comp overlap; {1e3 * res.detail['overlapped']:.2f} ms hidden)")
        print()

    vanilla, adaqp = results["vanilla"], results["adaqp"]
    print(f"AdaQP vs Vanilla: {vanilla.epoch_time / adaqp.epoch_time:.2f}x faster; "
          f"comm bar includes the central-graph compute it hides (paper Fig. 7).")


if __name__ == "__main__":
    main()
