#!/usr/bin/env python3
"""Single-label node classification: all four systems on the Reddit stand-in.

Reproduces the paper's headline comparison (Table 4, Reddit rows) on the
dense single-label dataset: Vanilla, AdaQP, PipeGCN-style staleness and
SANCUS-style broadcast skipping, for both GCN and GraphSAGE, printing
accuracy, throughput, speedups and convergence summaries.

The paper's observation to look for: PipeGCN is competitive on Reddit
*because* Reddit is dense (compute can hide communication), while AdaQP
wins without relying on density.

Run:  python examples/reddit_system_comparison.py
"""

from repro import load_dataset, partition_graph, train
from repro.harness import standard_config
from repro.utils.format import render_table

SUPPORT = {"vanilla": ("gcn", "sage"), "adaqp": ("gcn", "sage"),
           "pipegcn": ("sage",), "sancus": ("gcn",)}


def main() -> None:
    dataset = load_dataset("reddit", scale="tiny", seed=0)
    book = partition_graph(dataset.graph, 4, method="metis", seed=0)
    print(f"Reddit stand-in: {dataset.num_nodes} nodes, "
          f"avg degree {2 * dataset.graph.num_edges / dataset.num_nodes:.1f}")

    rows = []
    for model in ("gcn", "sage"):
        config = standard_config("reddit", model)
        base_throughput = None
        for system in ("vanilla", "pipegcn", "sancus", "adaqp"):
            if model not in SUPPORT[system]:
                rows.append([model, system, "-", "-", "-"])
                continue
            result = train(system, dataset, book, "2M-2D", config)
            if system == "vanilla":
                base_throughput = result.throughput
            speedup = result.throughput / base_throughput
            # Epochs to reach 99% of the final value (convergence speed).
            target = 0.99 * result.final_val
            reached = next(
                (e for e, v in zip(result.curve_epochs, result.curve_val) if v >= target),
                result.curve_epochs[-1],
            )
            rows.append(
                [
                    model,
                    system,
                    f"{100 * result.final_val:.2f}%",
                    f"{result.throughput:.2f} ({speedup:.2f}x)",
                    f"{reached}",
                ]
            )

    print()
    print(
        render_table(
            ["Model", "System", "Val acc", "Throughput (ep/s)", "Epochs to 99% of final"],
            rows,
            title="Reddit stand-in, 2M-2D (4 simulated devices)",
        )
    )


if __name__ == "__main__":
    main()
