#!/usr/bin/env python3
"""Quickstart: train AdaQP on a simulated 4-GPU cluster in ~30 seconds.

Walks the full pipeline once:

1. load a synthetic stand-in dataset (ogbn-products shape);
2. partition it METIS-style into 4 parts (2 machines x 2 devices);
3. train with Vanilla (synchronous full-precision) and with AdaQP
   (adaptive message quantization + central/marginal overlap);
4. compare accuracy, simulated throughput and the time breakdown.

Run:  python examples/quickstart.py
"""

from repro import RunConfig, load_dataset, partition_graph, train
from repro.utils.format import render_table


def main() -> None:
    print("Loading dataset (synthetic ogbn-products stand-in)...")
    dataset = load_dataset("ogbn-products", scale="tiny", seed=0)
    print(f"  {dataset.num_nodes} nodes, {dataset.graph.num_edges} edges, "
          f"{dataset.num_features} features, {dataset.num_classes} classes")

    print("Partitioning into 4 parts (METIS-like multilevel)...")
    book = partition_graph(dataset.graph, 4, method="metis", seed=0)
    print(f"  partition sizes: {book.sizes().tolist()}")

    config = RunConfig(
        model_kind="gcn",
        hidden_dim=32,
        epochs=48,
        eval_every=8,
        dropout=0.5,
        reassign_period=16,
    )

    rows = []
    results = {}
    for system in ("vanilla", "adaqp"):
        print(f"Training {system} for {config.epochs} epochs...")
        result = train(system, dataset, book, "2M-2D", config)
        results[system] = result
        breakdown = result.breakdown()
        rows.append(
            [
                system,
                f"{100 * result.final_val:.2f}%",
                f"{result.throughput:.2f}",
                f"{1e3 * breakdown['comm']:.1f}",
                f"{1e3 * breakdown['comp']:.1f}",
                f"{1e3 * breakdown['quant']:.1f}",
                f"{result.assign_seconds:.2f}",
            ]
        )

    print()
    print(
        render_table(
            ["System", "Val acc", "Throughput (ep/s)", "Comm (ms)",
             "Comp (ms)", "Quant (ms)", "Assign (s)"],
            rows,
            title="Vanilla vs AdaQP (simulated 2M-2D cluster)",
        )
    )
    speedup = results["adaqp"].throughput / results["vanilla"].throughput
    delta = 100 * (results["adaqp"].final_val - results["vanilla"].final_val)
    print(f"\nAdaQP speedup: {speedup:.2f}x, accuracy delta: {delta:+.2f} points")
    print("Bit-width usage:", results["adaqp"].bit_histogram)


if __name__ == "__main__":
    main()
