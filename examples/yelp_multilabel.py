#!/usr/bin/env python3
"""Multi-label classification (micro-F1) on the Yelp stand-in.

The paper's Yelp/AmazonProducts experiments use multi-label classification
with micro-F1; this example trains GraphSAGE with AdaQP on the sparse
multi-label dataset and inspects what the adaptive assigner actually does:
how bit-widths are distributed, how much wire traffic is saved, and how
the convergence curve compares to Vanilla's.

Run:  python examples/yelp_multilabel.py
"""

from repro import load_dataset, partition_graph, train
from repro.harness import standard_config
from repro.utils.format import format_bytes, render_table


def main() -> None:
    dataset = load_dataset("yelp", scale="tiny", seed=0)
    book = partition_graph(dataset.graph, 4, method="metis", seed=0)
    print(f"Yelp stand-in: {dataset.num_nodes} nodes, multi-label "
          f"({dataset.num_classes} classes), metric = micro-F1")

    config = standard_config("yelp", "sage")
    vanilla = train("vanilla", dataset, book, "2M-2D", config)
    adaqp = train("adaqp", dataset, book, "2M-2D", config)

    print()
    print(
        render_table(
            ["System", "micro-F1", "Throughput (ep/s)", "Wire bytes / epoch"],
            [
                [
                    "vanilla",
                    f"{100 * vanilla.final_val:.2f}",
                    f"{vanilla.throughput:.2f}",
                    format_bytes(vanilla.wire_bytes_total / vanilla.epochs),
                ],
                [
                    "adaqp",
                    f"{100 * adaqp.final_val:.2f}",
                    f"{adaqp.throughput:.2f}",
                    format_bytes(adaqp.wire_bytes_total / adaqp.epochs),
                ],
            ],
            title="Yelp stand-in, GraphSAGE, 2M-2D",
        )
    )

    total = sum(adaqp.bit_histogram.values())
    print("\nAdaptive bit-width distribution after the final re-assignment:")
    for bits, count in sorted(adaqp.bit_histogram.items()):
        print(f"  {bits}-bit: {count:6d} messages ({100 * count / max(total,1):5.1f}%)")

    print("\nConvergence (validation micro-F1):")
    header = "  epoch: " + " ".join(f"{e:5d}" for e in vanilla.curve_epochs)
    print(header)
    print("  vanil: " + " ".join(f"{v:5.3f}" for v in vanilla.curve_val))
    print("  adaqp: " + " ".join(f"{v:5.3f}" for v in adaqp.curve_val))
    reduction = 1 - adaqp.wire_bytes_total / vanilla.wire_bytes_total
    print(f"\nTraffic reduction: {100 * reduction:.1f}%  "
          f"speedup: {adaqp.throughput / vanilla.throughput:.2f}x  "
          f"F1 delta: {100 * (adaqp.final_val - vanilla.final_val):+.2f}")


if __name__ == "__main__":
    main()
