#!/usr/bin/env python3
"""Scalability sweep: throughput vs device count (paper Table 7 extended).

Trains Vanilla and AdaQP on the ogbn-products stand-in across increasing
cluster sizes (2 -> 24 simulated devices) and prints throughput plus the
AdaQP speedup at each size.  The paper's finding: the speedup persists at
scale because the remote-neighbor ratio (and hence the communication
share) *grows* with the partition count.

Run:  python examples/scalability_sweep.py
"""

from repro import load_dataset, partition_graph, train
from repro.core import RunConfig
from repro.graph.partition import remote_neighbor_ratio
from repro.utils.format import render_table

SETTINGS = ["2M-1D", "2M-2D", "2M-4D", "6M-4D"]


def main() -> None:
    dataset = load_dataset("ogbn-products", scale="tiny", seed=0)
    config = RunConfig(
        model_kind="sage", hidden_dim=32, epochs=16, eval_every=16,
        dropout=0.5, reassign_period=8,
    )

    rows = []
    for setting in SETTINGS:
        from repro.comm.topology import parse_topology

        topology = parse_topology(setting)
        book = partition_graph(
            dataset.graph, topology.num_devices, method="metis", seed=0
        )
        rnr = remote_neighbor_ratio(dataset.graph, book)
        vanilla = train("vanilla", dataset, book, topology, config)
        adaqp = train("adaqp", dataset, book, topology, config)
        rows.append(
            [
                setting,
                topology.num_devices,
                f"{100 * rnr:.1f}%",
                f"{vanilla.throughput:.2f}",
                f"{adaqp.throughput:.2f}",
                f"{adaqp.throughput / vanilla.throughput:.2f}x",
            ]
        )
        print(f"finished {setting}")

    print()
    print(
        render_table(
            ["Setting", "Devices", "Remote-neighbor ratio",
             "Vanilla (ep/s)", "AdaQP (ep/s)", "Speedup"],
            rows,
            title="Throughput vs cluster size (ogbn-products stand-in, GraphSAGE)",
        )
    )


if __name__ == "__main__":
    main()
