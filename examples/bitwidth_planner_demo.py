#!/usr/bin/env python3
"""Standalone demo of the bi-objective bit-width planner (paper Sec. 4.2).

No training here — this isolates the optimization: given a synthetic
communication round with imbalanced device pairs and a skewed β (variance
weight) distribution, sweep λ from pure-throughput (0) to pure-variance (1)
and show how the assignment trades straggler time against gradient
variance, compared with the all-2-bit / all-8-bit / uniform baselines.

Run:  python examples/bitwidth_planner_demo.py
"""

import numpy as np

from repro.core.bilp import (
    BitWidthProblem,
    GroupSpec,
    evaluate_assignment,
    solve_milp,
)
from repro.utils.format import render_table


def build_problem(lam: float, rng: np.random.Generator) -> BitWidthProblem:
    """A 4-device round: pair (0,1) is 10x heavier than the others."""
    pairs = [(0, 1), (1, 2), (2, 3), (3, 0)]
    groups = []
    for pair_idx, (src, dst) in enumerate(pairs):
        heavy = pair_idx == 0
        for _ in range(6):
            groups.append(
                GroupSpec(
                    src=src,
                    dst=dst,
                    beta=float(rng.lognormal(0.0, 2.0)),  # skewed β, like real traces
                    n_rows=int(rng.integers(400, 800)) * (10 if heavy else 1),
                    dim=64,
                )
            )
    theta = {p: 4.0e-8 for p in pairs}
    gamma = {p: 1.5e-4 for p in pairs}
    return BitWidthProblem(groups=groups, pair_theta=theta, pair_gamma=gamma, lam=lam)


def main() -> None:
    rng = np.random.default_rng(7)
    rows = []
    for lam in (0.0, 0.25, 0.5, 0.75, 1.0):
        problem = build_problem(lam, np.random.default_rng(7))
        bits = solve_milp(problem)
        stats = evaluate_assignment(problem, bits)
        unique, counts = np.unique(bits, return_counts=True)
        mix = ", ".join(f"{int(b)}b x{c}" for b, c in zip(unique, counts))
        rows.append(
            [
                f"adaptive λ={lam}",
                mix,
                f"{1e3 * stats['worst_time']:.2f}",
                f"{stats['variance']:.3f}",
            ]
        )

    # Baselines on the λ=0.5 instance.
    problem = build_problem(0.5, np.random.default_rng(7))
    for label, bits in [
        ("all 2-bit", np.full(len(problem.groups), 2)),
        ("all 8-bit", np.full(len(problem.groups), 8)),
        ("uniform random", rng.choice([2, 4, 8], len(problem.groups))),
    ]:
        stats = evaluate_assignment(problem, bits)
        rows.append(
            [label, "-", f"{1e3 * stats['worst_time']:.2f}", f"{stats['variance']:.3f}"]
        )

    print(
        render_table(
            ["Scheme", "Bit mix", "Straggler time (ms)", "Gradient variance"],
            rows,
            title="Bi-objective bit-width assignment (Eqn. 12) on a synthetic round",
        )
    )
    print(
        "\nReading: λ=0 matches all-2-bit time; λ=1 matches all-8-bit variance;\n"
        "intermediate λ keeps the straggler pair narrow while protecting\n"
        "high-β messages — the trade-off Table 6 of the paper measures."
    )


if __name__ == "__main__":
    main()
