"""Repository-wide pytest configuration.

Registers the ``perf`` marker and keeps perf benchmarks out of tier-1 runs:
wall-clock benchmarks are meaningless under the noisy scheduling of a
normal test session and would double its runtime.  They run only when
selected explicitly (the CI perf-smoke job uses ``-m perf``)::

    PYTHONPATH=src python -m pytest -m perf benchmarks/perf -q
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "perf: wall-clock performance benchmark (excluded from tier-1)"
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("-m"):
        return  # explicit marker expression (e.g. -m perf) takes over
    skip_perf = pytest.mark.skip(reason="perf benchmark; select with -m perf")
    for item in items:
        if "perf" in item.keywords:
            item.add_marker(skip_perf)
