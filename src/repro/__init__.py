"""AdaQP reproduction: adaptive message quantization and parallelization
for distributed full-graph GNN training (Wan, Zhao & Wu — MLSys 2023).

Pure-Python reproduction of the AdaQP system and every substrate it needs:
a NumPy GNN training stack, a METIS-like graph partitioner, synthetic
stand-ins for the paper's datasets, a simulated multi-GPU cluster with a
calibrated communication cost model, stochastic integer message
quantization with adaptive bi-objective bit-width assignment, and the
PipeGCN/SANCUS-style comparator systems.

Quickstart
----------
>>> from repro import load_dataset, partition_graph, train, RunConfig
>>> ds = load_dataset("ogbn-products", scale="tiny")
>>> book = partition_graph(ds.graph, 4, method="metis")
>>> result = train("adaqp", ds, book, "2M-2D", RunConfig(epochs=5, hidden_dim=16))
>>> result.final_val > 0
True

See README.md for the architecture overview, DESIGN.md for the
paper-to-repo substitution map, and EXPERIMENTS.md for the reproduced
tables and figures.
"""

from repro.graph import (
    GraphDataset,
    available_datasets,
    build_local_partitions,
    load_dataset,
    partition_graph,
)
from repro.graph.graph import Graph
from repro.comm import ClusterTopology, LinkCostModel, parse_topology
from repro.cluster import Cluster, PerfModel
from repro.core import (
    SYSTEMS,
    AdaptiveBitWidthAssigner,
    RunConfig,
    TrainResult,
    train,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphDataset",
    "available_datasets",
    "load_dataset",
    "partition_graph",
    "build_local_partitions",
    "ClusterTopology",
    "parse_topology",
    "LinkCostModel",
    "PerfModel",
    "Cluster",
    "RunConfig",
    "TrainResult",
    "train",
    "SYSTEMS",
    "AdaptiveBitWidthAssigner",
    "__version__",
]
