"""Human-readable formatting: byte sizes, durations and ASCII tables.

The benchmark harness regenerates the paper's tables as plain-text tables;
:func:`render_table` is the single formatter used everywhere so all outputs
look consistent.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_bytes", "format_seconds", "render_table"]


def format_bytes(num_bytes: float) -> str:
    """Format a byte count with a binary unit suffix.

    >>> format_bytes(2048)
    '2.00 KiB'
    """
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Format a duration, choosing the most readable unit.

    >>> format_seconds(0.00042)
    '420.0 us'
    """
    s = float(seconds)
    if s < 0:
        return f"-{format_seconds(-s)}"
    if s < 1e-3:
        return f"{s * 1e6:.1f} us"
    if s < 1.0:
        return f"{s * 1e3:.1f} ms"
    if s < 120.0:
        return f"{s:.2f} s"
    return f"{s / 60.0:.1f} min"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an ASCII table (GitHub-flavoured markdown style).

    All cells are stringified with ``str``; numeric alignment is left to the
    caller (pre-format floats before passing them in).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
