"""Wall-clock measurement helpers.

Only *host-side* work (e.g. the bit-width assignment MILP solve) is measured
with real wall clocks; simulated device time comes from
:class:`repro.cluster.perfmodel.PerfModel` instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw.lap("solve"):
    ...     _ = sum(range(100))
    >>> sw.total("solve") >= 0.0
    True
    """

    laps: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def lap(self, name: str) -> "_LapContext":
        return _LapContext(self, name)

    def add(self, name: str, seconds: float) -> None:
        self.laps[name] = self.laps.get(name, 0.0) + float(seconds)
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self.laps.get(name, 0.0)

    def mean(self, name: str) -> float:
        n = self.counts.get(name, 0)
        return self.laps.get(name, 0.0) / n if n else 0.0

    def reset(self) -> None:
        self.laps.clear()
        self.counts.clear()


class _LapContext:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_LapContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self._watch.add(self._name, time.perf_counter() - self._start)
