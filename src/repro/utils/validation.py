"""Input validation helpers used across public entry points.

Raising early with precise messages keeps the simulation code itself free of
defensive clutter: modules validate at their public boundary and then trust
their internal invariants.
"""

from __future__ import annotations

from collections.abc import Collection

import numpy as np

__all__ = ["check_array", "check_positive", "check_probability", "check_in_set"]


def check_array(
    x: np.ndarray,
    *,
    name: str,
    ndim: int | None = None,
    dtype_kind: str | None = None,
    allow_empty: bool = True,
) -> np.ndarray:
    """Validate that ``x`` is an ndarray with the expected shape/dtype family.

    ``dtype_kind`` matches :attr:`numpy.dtype.kind` (``"f"`` float,
    ``"i"`` signed int, ``"u"`` unsigned int, ``"b"`` bool).
    """
    if not isinstance(x, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(x).__name__}")
    if ndim is not None and x.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {x.shape}")
    if dtype_kind is not None and x.dtype.kind not in dtype_kind:
        raise TypeError(
            f"{name} must have dtype kind in {dtype_kind!r}, got {x.dtype}"
        )
    if not allow_empty and x.size == 0:
        raise ValueError(f"{name} must not be empty")
    return x


def check_positive(value: float, *, name: str, strict: bool = True) -> float:
    """Validate a (strictly) positive scalar."""
    v = float(value)
    if strict and not v > 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return v


def check_probability(value: float, *, name: str) -> float:
    """Validate a scalar in the closed interval [0, 1]."""
    v = float(value)
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return v


def check_in_set(value: object, allowed: Collection[object], *, name: str) -> object:
    """Validate membership in a finite set of options."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {sorted(map(str, allowed))}, got {value!r}")
    return value
