"""Logging setup shared by the library, examples and benchmarks."""

from __future__ import annotations

import logging
import os

__all__ = ["get_logger"]

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_CONFIGURED = False


def _configure_root() -> None:
    global _CONFIGURED
    if _CONFIGURED:
        return
    level_name = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    level = getattr(logging, level_name, logging.WARNING)
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
    root = logging.getLogger("repro")
    if not root.handlers:
        root.addHandler(handler)
    root.setLevel(level)
    _CONFIGURED = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    Verbosity is controlled by the ``REPRO_LOG_LEVEL`` environment variable
    (default ``WARNING``), so library code can log progress without polluting
    test output.
    """
    _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
