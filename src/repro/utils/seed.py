"""Deterministic random-number management.

Distributed training needs *independent but reproducible* random streams:
one per simulated device (for dropout masks and stochastic rounding) plus
streams for data generation and partitioning.  We derive all of them from a
single root seed through :class:`numpy.random.SeedSequence` spawning, which
guarantees streams are statistically independent and stable across runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_from_seed", "RngPool"]


def rng_from_seed(seed: int | None) -> np.random.Generator:
    """Create a NumPy :class:`~numpy.random.Generator` from an integer seed.

    ``None`` produces a non-deterministic generator (fresh OS entropy).
    """
    return np.random.default_rng(seed)


class RngPool:
    """A pool of named, reproducible random streams derived from one seed.

    Streams are identified by a string key (e.g. ``"device/3/dropout"``).
    The same ``(seed, key)`` pair always yields the same stream, regardless
    of the order in which streams are requested.

    Examples
    --------
    >>> pool = RngPool(0)
    >>> a = pool.get("device/0").integers(0, 10, 4)
    >>> b = RngPool(0).get("device/0").integers(0, 10, 4)
    >>> bool((a == b).all())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, key: str) -> np.random.Generator:
        """Return the generator for ``key``, creating it on first use.

        The stream is keyed on the *content* of ``key`` (hashed into the
        seed material), not on request order, so adding new streams never
        perturbs existing ones.
        """
        if key not in self._cache:
            # Stable, platform-independent digest of the key string.
            material = np.frombuffer(key.encode("utf-8"), dtype=np.uint8)
            entropy = [self.seed, *material.tolist()]
            self._cache[key] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._cache[key]

    def device(self, rank: int, purpose: str = "main") -> np.random.Generator:
        """Convenience accessor for per-device streams."""
        return self.get(f"device/{int(rank)}/{purpose}")

    def fork(self, key: str) -> "RngPool":
        """Derive a child pool whose streams are independent of this pool's."""
        material = np.frombuffer(key.encode("utf-8"), dtype=np.uint8)
        child_seed = int(
            np.random.SeedSequence([self.seed, 0xF0F0, *material.tolist()]).generate_state(1)[0]
        )
        return RngPool(child_seed)
