"""Shared utilities: seeding, logging, timing, formatting and validation.

These are the lowest-level helpers in the repository; every other subpackage
may depend on :mod:`repro.utils` but this package depends only on NumPy and
the standard library.
"""

from repro.utils.seed import RngPool, rng_from_seed
from repro.utils.logging import get_logger
from repro.utils.timing import Stopwatch
from repro.utils.format import format_bytes, format_seconds, render_table
from repro.utils.validation import (
    check_array,
    check_in_set,
    check_positive,
    check_probability,
)

__all__ = [
    "RngPool",
    "rng_from_seed",
    "get_logger",
    "Stopwatch",
    "format_bytes",
    "format_seconds",
    "render_table",
    "check_array",
    "check_in_set",
    "check_positive",
    "check_probability",
]
