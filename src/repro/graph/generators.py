"""Synthetic graph/feature/label generators.

The paper evaluates on Reddit, Yelp, ogbn-products and AmazonProducts, which
cannot be downloaded offline.  What the experiments actually depend on is the
*shape* of those datasets:

* density (average degree) — drives the remote-neighbor ratio and thus the
  communication share of each epoch (paper Table 1);
* community structure + degree skew — drives the pairwise imbalance of
  METIS partitions (paper Fig. 2);
* class-correlated features — make the node-classification task learnable so
  accuracy comparisons are meaningful (paper Table 4);
* single- vs multi-label task type — selects the loss/metric (accuracy vs
  micro-F1).

We therefore generate degree-corrected stochastic-block-model graphs
("Chung–Lu with communities"): nodes carry a power-law degree propensity and
belong to one of ``num_communities`` blocks; edges prefer same-block
endpoints with probability ``homophily``.  Features are noisy class
centroids; labels are the block id (single-label) or block id plus correlated
secondary labels (multi-label).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.utils.seed import RngPool
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "CommunityGraphConfig",
    "generate_community_graph",
    "generate_features_and_labels",
    "HugeGraphConfig",
    "huge_community_bounds",
    "huge_edge_chunks",
    "huge_feature_chunk",
    "huge_centroids",
]


@dataclass(frozen=True)
class CommunityGraphConfig:
    """Parameters of the degree-corrected community graph generator.

    Parameters
    ----------
    num_nodes:
        Number of nodes.
    avg_degree:
        Target average (undirected) degree.  The realized degree is slightly
        lower because duplicate edges and self-loops are dropped.
    num_communities:
        Number of blocks; doubles as the number of classes downstream.
    homophily:
        Probability that an edge's second endpoint is drawn from the same
        community as the first.  Higher values give cleaner community
        structure (easier classification, lower METIS edge cut).
    degree_exponent:
        Pareto shape for the per-node degree propensity; smaller values give
        heavier tails (hubs).  Values around 2–3 resemble social graphs.
    neighbor_locality:
        Of the non-homophilous edges, the fraction whose endpoint is drawn
        from a *nearby* community on the community ring (id ± at most
        ``locality_width``) rather than uniformly.  This models the
        geometric locality of real graphs that lets METIS carve partitions
        with large interiors — without it, every node of a scaled-down
        graph would touch a remote partition and the paper's
        central/marginal distinction would vanish.
    locality_width:
        Ring radius for the locality mechanism above.
    """

    num_nodes: int
    avg_degree: float
    num_communities: int
    homophily: float = 0.8
    degree_exponent: float = 2.5
    community_size_skew: float = 0.0
    neighbor_locality: float = 0.9
    locality_width: int = 2

    def __post_init__(self) -> None:
        check_positive(self.num_nodes, name="num_nodes")
        check_positive(self.avg_degree, name="avg_degree")
        check_positive(self.num_communities, name="num_communities")
        check_probability(self.homophily, name="homophily")
        check_probability(self.neighbor_locality, name="neighbor_locality")
        check_positive(self.degree_exponent, name="degree_exponent")
        check_positive(self.locality_width, name="locality_width")
        if self.num_communities > self.num_nodes:
            raise ValueError("num_communities cannot exceed num_nodes")


def _community_assignment(cfg: CommunityGraphConfig, rng: np.random.Generator) -> np.ndarray:
    """Assign each node a community, optionally with skewed sizes."""
    k = cfg.num_communities
    if cfg.community_size_skew <= 0:
        comm = np.arange(cfg.num_nodes, dtype=np.int64) % k
        rng.shuffle(comm)
        return comm
    weights = np.power(np.arange(1, k + 1, dtype=np.float64), -cfg.community_size_skew)
    weights /= weights.sum()
    comm = rng.choice(k, size=cfg.num_nodes, p=weights).astype(np.int64)
    # Guarantee every community is non-empty so every class has support.
    present = np.isin(np.arange(k), comm)
    missing = np.flatnonzero(~present)
    if missing.size:
        victims = rng.choice(cfg.num_nodes, size=missing.size, replace=False)
        comm[victims] = missing
    return comm


def generate_community_graph(
    cfg: CommunityGraphConfig, rng: np.random.Generator
) -> tuple[Graph, np.ndarray]:
    """Generate a graph and its community assignment.

    Returns
    -------
    (graph, communities):
        ``communities[v]`` is the block id of node ``v``.

    Notes
    -----
    Edge sampling is fully vectorized: we draw ``num_nodes * avg_degree / 2``
    candidate edges; the first endpoint is drawn proportional to degree
    propensity, the second from the same community (probability
    ``homophily``) or from the whole graph, again degree-weighted.
    """
    n = cfg.num_nodes
    comm = _community_assignment(cfg, rng)
    # Power-law degree propensity (Pareto + 1 keeps a positive floor).
    propensity = 1.0 + rng.pareto(cfg.degree_exponent, size=n)
    target_edges = max(n, int(round(n * cfg.avg_degree / 2.0)))
    # Oversample to compensate for duplicate/self-loop removal.
    m = int(target_edges * 1.15) + 8

    p_global = propensity / propensity.sum()
    src = rng.choice(n, size=m, p=p_global)
    k = cfg.num_communities

    # Choose the target community of every edge's second endpoint:
    #  - homophilous edges stay in the source community;
    #  - "local" cross edges go to a nearby community on the community ring
    #    (this is what gives partitions large interiors, see class docstring);
    #  - the remainder go to a uniformly random community.
    target_comm = comm[src].copy()
    cross = rng.random(m) >= cfg.homophily
    local_cross = cross & (rng.random(m) < cfg.neighbor_locality)
    global_cross = cross & ~local_cross
    if local_cross.any():
        width = min(cfg.locality_width, max(k - 1, 1))
        offsets = rng.integers(1, width + 1, size=int(local_cross.sum()))
        signs = rng.choice(np.array([-1, 1]), size=offsets.size)
        target_comm[local_cross] = (
            target_comm[local_cross] + signs * offsets
        ) % k
    if global_cross.any():
        target_comm[global_cross] = rng.integers(0, k, size=int(global_cross.sum()))

    # Draw endpoints block by block (one vectorized choice call per block).
    order = np.argsort(comm, kind="stable")
    sorted_comm = comm[order]
    block_starts = np.searchsorted(sorted_comm, np.arange(k))
    block_ends = np.searchsorted(sorted_comm, np.arange(k), side="right")
    dst = np.empty(m, dtype=np.int64)
    unfilled = np.ones(m, dtype=bool)
    for c in range(k):
        members = order[block_starts[c] : block_ends[c]]
        mask = target_comm == c
        count = int(mask.sum())
        if count == 0:
            continue
        if members.size == 0:
            continue  # handled by the global fallback below
        p_block = propensity[members]
        p_block = p_block / p_block.sum()
        dst[mask] = rng.choice(members, size=count, p=p_block)
        unfilled[mask] = False
    if unfilled.any():  # targets pointing at (impossible) empty communities
        dst[unfilled] = rng.choice(n, size=int(unfilled.sum()), p=p_global)

    graph = Graph.from_edges(src, dst, n)
    return graph, comm


def generate_features_and_labels(
    communities: np.ndarray,
    *,
    num_features: int,
    num_classes: int,
    multilabel: bool,
    rng: np.random.Generator,
    feature_noise: float = 1.0,
    label_noise: float = 0.02,
    extra_label_rate: float = 0.12,
    fine_group: int = 2,
    fine_scale: float = 0.35,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate class-correlated node features and labels.

    Single-label: ``labels`` has shape ``(n,)`` with ``int64`` class ids.
    Multi-label:  ``labels`` has shape ``(n, num_classes)`` with ``float32``
    indicators.  Each community ``c`` owns a *fixed* label set (itself plus
    ``~extra_label_rate * num_classes`` ring-adjacent classes), so the
    multi-label task is learnable from structure; ``label_noise`` controls
    the ceiling by relabelling a fraction of nodes with a random
    community's label set — mimicking Yelp/Amazon's noisy multi-label
    regime where micro-F1 plateaus well below 1.

    Features are ``centroid[class] + N(0, feature_noise)``, where the
    feature centroid follows the node's (possibly noise-flipped) primary
    label.  Graph aggregation denoises the features via neighbors — the
    regime GNN papers operate in.

    **Fine-grained class structure.**  Classes come in groups of
    ``fine_group`` sharing one *coarse* centroid; members of a group differ
    only by a ``fine_scale``-sized offset.  With ``fine_scale`` chosen near
    the post-aggregation noise floor, distinguishing within-group classes
    requires precise aggregated messages — the property that makes
    accuracy genuinely sensitive to message quantization error and
    staleness (without it, neighborhood averaging makes any synthetic
    community task trivially separable and every training system converges
    to the same accuracy).
    """
    communities = np.asarray(communities, dtype=np.int64)
    n = communities.size
    if num_classes < int(communities.max()) + 1:
        raise ValueError("num_classes must cover all community ids")
    check_probability(label_noise, name="label_noise")
    if fine_group < 1:
        raise ValueError("fine_group must be >= 1")

    num_coarse = -(-num_classes // fine_group)  # ceil
    coarse = rng.normal(0.0, 1.0, size=(num_coarse, num_features))
    fine = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    fine /= np.linalg.norm(fine, axis=1, keepdims=True)
    centroids = (
        coarse[np.arange(num_classes) // fine_group] + fine_scale * fine
    ).astype(np.float32)
    primary = communities.copy()
    flip = rng.random(n) < label_noise
    primary[flip] = rng.integers(0, num_classes, size=int(flip.sum()))

    features = centroids[primary] + rng.normal(0.0, feature_noise, size=(n, num_features)).astype(
        np.float32
    )
    features = features.astype(np.float32)

    if not multilabel:
        return features, primary

    # Fixed per-community label sets: community c activates classes
    # {c, c+1, ..., c+k_extra} (mod num_classes).
    k_extra = max(1, int(round(extra_label_rate * num_classes)))
    class_sets = np.zeros((num_classes, num_classes), dtype=np.float32)
    for offset in range(0, k_extra + 1):
        class_sets[np.arange(num_classes), (np.arange(num_classes) + offset) % num_classes] = 1.0
    labels = class_sets[primary]
    return features, labels


# --------------------------------------------------------------------------
# Chunked huge-graph generator (out-of-core "prepare" pipeline)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class HugeGraphConfig:
    """Parameters of the chunked power-law community generator.

    Unlike :class:`CommunityGraphConfig`, this generator never materializes
    the full edge list or feature matrix: edges and node attributes are
    emitted in ``O(chunk)``-sized batches so a 1M–10M-node graph can be
    streamed straight into an on-disk :class:`~repro.graph.io.PartitionStore`.

    Structural choices that make streaming possible:

    * Communities are *contiguous node-id blocks* (community ``c`` owns the
      id range ``[c*n//k, (c+1)*n//k)``), so community membership is a pure
      function of the node id — no ``O(n)`` assignment array is needed.
    * Degree skew is rank-based (Barabási–Albert-style rich-get-richer
      profile): an endpoint is drawn inside its community at position
      ``floor(size * u**degree_exponent)`` for uniform ``u``, so low-rank
      nodes are hubs and the realized degree distribution has a power-law
      tail — without per-node propensity arrays.
    * Cross-community edges follow the same homophily / ring-locality /
      global mixture as :func:`generate_community_graph`.
    * A deterministic within-community ring backbone ``(v, v+1)`` keeps the
      minimum degree at 1 (chunked rejection sampling cannot cheaply
      guarantee coverage the way the dense generator's block draws do).

    Duplicate undirected pairs are removed inside each chunk here and
    globally by the partition-store builder (arcs are binned by source
    owner, so a per-partition sort sees every copy of an arc).

    ``chunk_nodes`` / ``chunk_edges`` bound the working set of one batch and
    are part of the graph's identity: the RNG stream is keyed per chunk, so
    changing the chunk grid changes the sampled graph (not its statistics).
    """

    num_nodes: int
    avg_degree: float = 8.0
    num_features: int = 128
    num_classes: int = 8
    num_communities: int = 32
    homophily: float = 0.8
    degree_exponent: float = 2.5
    neighbor_locality: float = 0.9
    locality_width: int = 2
    multilabel: bool = False
    feature_noise: float = 2.0
    label_noise: float = 0.02
    extra_label_rate: float = 0.12
    fine_group: int = 2
    fine_scale: float = 0.35
    train_frac: float = 0.6
    val_frac: float = 0.2
    chunk_nodes: int = 1 << 18
    chunk_edges: int = 1 << 21
    name: str = "huge-powerlaw"

    def __post_init__(self) -> None:
        check_positive(self.num_nodes, name="num_nodes")
        check_positive(self.avg_degree, name="avg_degree")
        check_positive(self.num_communities, name="num_communities")
        check_positive(self.num_features, name="num_features")
        check_positive(self.num_classes, name="num_classes")
        check_positive(self.chunk_nodes, name="chunk_nodes")
        check_positive(self.chunk_edges, name="chunk_edges")
        check_probability(self.homophily, name="homophily")
        check_probability(self.neighbor_locality, name="neighbor_locality")
        check_probability(self.train_frac, name="train_frac")
        check_probability(self.val_frac, name="val_frac")
        if self.train_frac + self.val_frac >= 1.0:
            raise ValueError("train_frac + val_frac must leave room for a test split")
        if self.num_communities > self.num_nodes:
            raise ValueError("num_communities cannot exceed num_nodes")
        if self.degree_exponent < 1.0:
            raise ValueError("degree_exponent must be >= 1 for rank-based sampling")


def huge_community_bounds(cfg: HugeGraphConfig) -> np.ndarray:
    """Community block boundaries: community ``c`` owns ``[bounds[c], bounds[c+1])``."""
    k = cfg.num_communities
    return (np.arange(k + 1, dtype=np.int64) * cfg.num_nodes) // k


def _rank_positions(
    sizes: np.ndarray, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Power-law rank position inside each community (position 0 = hub)."""
    u = rng.random(sizes.size)
    return np.minimum((sizes * u**exponent).astype(np.int64), sizes - 1)


def huge_edge_chunks(
    cfg: HugeGraphConfig, pool: RngPool
) -> Iterator[np.ndarray]:
    """Yield canonical undirected edge chunks ``(m, 2) int64`` with ``u < v``.

    Self-loops are dropped and each chunk is internally deduplicated;
    cross-chunk duplicates are left for the consumer (the store builder
    dedups globally during its per-partition pass).
    """
    n = cfg.num_nodes
    k = cfg.num_communities
    bounds = huge_community_bounds(cfg)
    sizes = np.diff(bounds)

    # Deterministic ring backbone first: (v, v+1) within each community.
    for start in range(0, n - 1, cfg.chunk_nodes):
        end = min(start + cfg.chunk_nodes, n - 1)
        v = np.arange(start, end, dtype=np.int64)
        same = (v * k) // n == ((v + 1) * k) // n
        v = v[same]
        if v.size:
            yield np.stack([v, v + 1], axis=1)

    backbone = int(n - k)
    target_pairs = max(0, max(n, int(round(n * cfg.avg_degree / 2.0))) - backbone)
    num_chunks = -(-target_pairs // cfg.chunk_edges) if target_pairs else 0
    width = min(cfg.locality_width, max(k - 1, 1))

    for ci in range(num_chunks):
        m = min(cfg.chunk_edges, target_pairs - ci * cfg.chunk_edges)
        rng = pool.get(f"edges/{ci}")
        # Source: community of a uniform node (size-weighted), then a
        # power-law rank position within it.
        src_comm = (
            (rng.random(m) * n).astype(np.int64).clip(max=n - 1) * k
        ) // n
        src = bounds[src_comm] + _rank_positions(
            sizes[src_comm], cfg.degree_exponent, rng
        )
        # Target community: homophilous / ring-local / global mixture
        # (mirrors generate_community_graph).
        target_comm = src_comm.copy()
        cross = rng.random(m) >= cfg.homophily
        local_cross = cross & (rng.random(m) < cfg.neighbor_locality)
        global_cross = cross & ~local_cross
        if local_cross.any():
            offsets = rng.integers(1, width + 1, size=int(local_cross.sum()))
            signs = rng.choice(np.array([-1, 1]), size=offsets.size)
            target_comm[local_cross] = (
                target_comm[local_cross] + signs * offsets
            ) % k
        if global_cross.any():
            target_comm[global_cross] = rng.integers(
                0, k, size=int(global_cross.sum())
            )
        dst = bounds[target_comm] + _rank_positions(
            sizes[target_comm], cfg.degree_exponent, rng
        )

        keep = src != dst
        lo = np.minimum(src[keep], dst[keep])
        hi = np.maximum(src[keep], dst[keep])
        pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
        if pairs.size:
            yield pairs


def huge_centroids(cfg: HugeGraphConfig, pool: RngPool) -> np.ndarray:
    """Class centroids with the coarse/fine structure of the dense generator."""
    rng = pool.get("centroids")
    num_coarse = -(-cfg.num_classes // cfg.fine_group)
    coarse = rng.normal(0.0, 1.0, size=(num_coarse, cfg.num_features))
    fine = rng.normal(0.0, 1.0, size=(cfg.num_classes, cfg.num_features))
    fine /= np.linalg.norm(fine, axis=1, keepdims=True)
    return (
        coarse[np.arange(cfg.num_classes) // cfg.fine_group]
        + cfg.fine_scale * fine
    ).astype(np.float32)


def huge_feature_chunk(
    cfg: HugeGraphConfig,
    start: int,
    end: int,
    centroids: np.ndarray,
    pool: RngPool,
) -> dict[str, np.ndarray]:
    """Features/labels/split masks for the node-id range ``[start, end)``.

    The RNG stream is keyed by the *chunk-grid index* (``start //
    chunk_nodes``), so values are independent of how node ranges map to
    partitions.  ``start`` must be chunk-grid aligned.
    """
    if start % cfg.chunk_nodes:
        raise ValueError("feature chunk start must be aligned to chunk_nodes")
    ci = start // cfg.chunk_nodes
    rng = pool.get(f"nodes/{ci}")
    m = end - start
    k = cfg.num_communities
    ids = np.arange(start, end, dtype=np.int64)
    comm = (ids * k) // cfg.num_nodes

    primary = comm % cfg.num_classes
    flip = rng.random(m) < cfg.label_noise
    if flip.any():
        primary = primary.copy()
        primary[flip] = rng.integers(0, cfg.num_classes, size=int(flip.sum()))

    features = centroids[primary] + rng.normal(
        0.0, cfg.feature_noise, size=(m, cfg.num_features)
    ).astype(np.float32)
    features = features.astype(np.float32)

    if cfg.multilabel:
        k_extra = max(1, int(round(cfg.extra_label_rate * cfg.num_classes)))
        class_sets = np.zeros((cfg.num_classes, cfg.num_classes), dtype=np.float32)
        for offset in range(0, k_extra + 1):
            class_sets[
                np.arange(cfg.num_classes),
                (np.arange(cfg.num_classes) + offset) % cfg.num_classes,
            ] = 1.0
        labels: np.ndarray = class_sets[primary]
    else:
        labels = primary.astype(np.int64)

    u = rng.random(m)
    train = u < cfg.train_frac
    val = ~train & (u < cfg.train_frac + cfg.val_frac)
    test = ~train & ~val
    return {
        "features": features,
        "labels": labels,
        "train_mask": train,
        "val_mask": val,
        "test_mask": test,
    }
