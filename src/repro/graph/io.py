"""Persistence: save/load graphs, datasets and partition books as ``.npz``.

Full-graph training jobs partition once and train many times (the paper's
"fixed-partition" splits); persisting the dataset and the partition book
makes runs exactly repeatable across processes without regenerating.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graph.datasets import DatasetSpec, GraphDataset
from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook

__all__ = [
    "save_graph",
    "load_graph",
    "save_dataset",
    "load_dataset_file",
    "save_partition_book",
    "load_partition_book",
]

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Serialize a graph's CSR arrays to ``.npz``."""
    path = Path(path)
    np.savez_compressed(
        path, format_version=_FORMAT_VERSION, indptr=graph.indptr, indices=graph.indices
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: str | Path) -> Graph:
    with np.load(path) as data:
        _check_version(data)
        return Graph(indptr=data["indptr"], indices=data["indices"])


def save_dataset(dataset: GraphDataset, path: str | Path) -> Path:
    """Serialize a full dataset (graph + features + labels + splits + spec)."""
    path = Path(path)
    spec = dataset.spec
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        indptr=dataset.graph.indptr,
        indices=dataset.graph.indices,
        features=dataset.features,
        labels=dataset.labels,
        train_mask=dataset.train_mask,
        val_mask=dataset.val_mask,
        test_mask=dataset.test_mask,
        spec_name=spec.name,
        spec_paper_name=spec.paper_name,
        spec_num_nodes=spec.num_nodes,
        spec_avg_degree=spec.avg_degree,
        spec_num_features=spec.num_features,
        spec_num_classes=spec.num_classes,
        spec_multilabel=spec.multilabel,
        spec_homophily=spec.homophily,
        spec_degree_exponent=spec.degree_exponent,
        spec_feature_noise=spec.feature_noise,
        spec_label_noise=spec.label_noise,
        spec_fine_scale=spec.fine_scale,
        spec_fine_group=spec.fine_group,
        spec_neighbor_locality=spec.neighbor_locality,
        spec_locality_width=spec.locality_width,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset_file(path: str | Path) -> GraphDataset:
    """Inverse of :func:`save_dataset`."""
    with np.load(path) as data:
        _check_version(data)
        spec = DatasetSpec(
            name=str(data["spec_name"]),
            paper_name=str(data["spec_paper_name"]),
            num_nodes=int(data["spec_num_nodes"]),
            avg_degree=float(data["spec_avg_degree"]),
            num_features=int(data["spec_num_features"]),
            num_classes=int(data["spec_num_classes"]),
            multilabel=bool(data["spec_multilabel"]),
            homophily=float(data["spec_homophily"]),
            degree_exponent=float(data["spec_degree_exponent"]),
            feature_noise=float(data["spec_feature_noise"]),
            label_noise=float(data["spec_label_noise"]),
            fine_scale=float(data["spec_fine_scale"]),
            fine_group=int(data["spec_fine_group"]),
            neighbor_locality=float(data["spec_neighbor_locality"]),
            locality_width=int(data["spec_locality_width"]),
        )
        return GraphDataset(
            spec=spec,
            graph=Graph(indptr=data["indptr"], indices=data["indices"]),
            features=data["features"],
            labels=data["labels"],
            train_mask=data["train_mask"],
            val_mask=data["val_mask"],
            test_mask=data["test_mask"],
        )


def save_partition_book(book: PartitionBook, path: str | Path) -> Path:
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        part_of=book.part_of,
        num_parts=book.num_parts,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_partition_book(path: str | Path) -> PartitionBook:
    with np.load(path) as data:
        _check_version(data)
        return PartitionBook(
            part_of=data["part_of"], num_parts=int(data["num_parts"])
        )


def _check_version(data) -> None:
    version = int(data["format_version"]) if "format_version" in data else -1
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported file format version {version} (expected {_FORMAT_VERSION})"
        )
