"""Persistence: save/load graphs, datasets and partition books as ``.npz``,
plus the out-of-core binary :class:`PartitionStore` for huge graphs.

Full-graph training jobs partition once and train many times (the paper's
"fixed-partition" splits); persisting the dataset and the partition book
makes runs exactly repeatable across processes without regenerating.

The ``.npz`` formats materialize everything in RAM and top out around the
"small" dataset scale.  The :class:`PartitionStore` is the huge-graph
(1M–10M-node) path: one binary file per partition holding CSR blocks,
features, labels and halo index tables as 64-byte-aligned regions described
by a versioned JSON header, so training opens every array as a read-only
``np.memmap`` and the OS pages data in on demand.  The store is written once
by a streaming pass (``repro prepare``) that never holds the full graph in
memory — see :func:`build_partition_store`.
"""

from __future__ import annotations

import json
import mmap
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from repro.graph.datasets import DatasetSpec, GraphDataset
from repro.graph.graph import Graph
from repro.graph.partition.book import LocalPartition, PartitionBook

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a package cycle
    from repro.gnn.coefficients import AggregationContext
    from repro.graph.generators import HugeGraphConfig

__all__ = [
    "save_graph",
    "load_graph",
    "save_dataset",
    "load_dataset_file",
    "save_partition_book",
    "load_partition_book",
    "PartitionStore",
    "PartitionStoreWriter",
    "StorePartition",
    "StoreDataset",
    "DeviceStreamOps",
    "build_partition_store",
    "release_memmap_pages",
]

_FORMAT_VERSION = 1


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Serialize a graph's CSR arrays to ``.npz``."""
    path = Path(path)
    np.savez_compressed(
        path, format_version=_FORMAT_VERSION, indptr=graph.indptr, indices=graph.indices
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_graph(path: str | Path) -> Graph:
    with np.load(path) as data:
        _check_version(data)
        return Graph(indptr=data["indptr"], indices=data["indices"])


def save_dataset(dataset: GraphDataset, path: str | Path) -> Path:
    """Serialize a full dataset (graph + features + labels + splits + spec)."""
    path = Path(path)
    spec = dataset.spec
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        indptr=dataset.graph.indptr,
        indices=dataset.graph.indices,
        features=dataset.features,
        labels=dataset.labels,
        train_mask=dataset.train_mask,
        val_mask=dataset.val_mask,
        test_mask=dataset.test_mask,
        spec_name=spec.name,
        spec_paper_name=spec.paper_name,
        spec_num_nodes=spec.num_nodes,
        spec_avg_degree=spec.avg_degree,
        spec_num_features=spec.num_features,
        spec_num_classes=spec.num_classes,
        spec_multilabel=spec.multilabel,
        spec_homophily=spec.homophily,
        spec_degree_exponent=spec.degree_exponent,
        spec_feature_noise=spec.feature_noise,
        spec_label_noise=spec.label_noise,
        spec_fine_scale=spec.fine_scale,
        spec_fine_group=spec.fine_group,
        spec_neighbor_locality=spec.neighbor_locality,
        spec_locality_width=spec.locality_width,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset_file(path: str | Path) -> GraphDataset:
    """Inverse of :func:`save_dataset`."""
    with np.load(path) as data:
        _check_version(data)
        spec = DatasetSpec(
            name=str(data["spec_name"]),
            paper_name=str(data["spec_paper_name"]),
            num_nodes=int(data["spec_num_nodes"]),
            avg_degree=float(data["spec_avg_degree"]),
            num_features=int(data["spec_num_features"]),
            num_classes=int(data["spec_num_classes"]),
            multilabel=bool(data["spec_multilabel"]),
            homophily=float(data["spec_homophily"]),
            degree_exponent=float(data["spec_degree_exponent"]),
            feature_noise=float(data["spec_feature_noise"]),
            label_noise=float(data["spec_label_noise"]),
            fine_scale=float(data["spec_fine_scale"]),
            fine_group=int(data["spec_fine_group"]),
            neighbor_locality=float(data["spec_neighbor_locality"]),
            locality_width=int(data["spec_locality_width"]),
        )
        return GraphDataset(
            spec=spec,
            graph=Graph(indptr=data["indptr"], indices=data["indices"]),
            features=data["features"],
            labels=data["labels"],
            train_mask=data["train_mask"],
            val_mask=data["val_mask"],
            test_mask=data["test_mask"],
        )


def save_partition_book(book: PartitionBook, path: str | Path) -> Path:
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        part_of=book.part_of,
        num_parts=book.num_parts,
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_partition_book(path: str | Path) -> PartitionBook:
    with np.load(path) as data:
        _check_version(data)
        return PartitionBook(
            part_of=data["part_of"], num_parts=int(data["num_parts"])
        )


def _check_version(data) -> None:
    version = int(data["format_version"]) if "format_version" in data else -1
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported file format version {version} (expected {_FORMAT_VERSION})"
        )


# --------------------------------------------------------------------------
# Out-of-core partition store (huge-graph mode)
# --------------------------------------------------------------------------

_STORE_MAGIC = "repro-partition-store"
_STORE_VERSION = 1
_STORE_HEADER = "header.json"
_STORE_ALIGN = 64


def release_memmap_pages(*arrays: np.ndarray) -> None:
    """Drop the resident pages behind memmap-backed arrays (``MADV_DONTNEED``).

    The data stays valid — the kernel just evicts it from this process's
    resident set (usually straight into the page cache, so re-faulting is a
    minor fault).  Plain in-RAM arrays are ignored, which keeps the
    streaming compute engine's release calls bitwise-neutral no-ops on the
    materialized equivalence arm.
    """
    for arr in arrays:
        mapping = getattr(arr, "_mmap", None)
        if mapping is None:
            continue
        try:
            mapping.madvise(mmap.MADV_DONTNEED)
        except (AttributeError, OSError, ValueError):  # pragma: no cover
            pass  # advisory only; never fail compute over it


def _touch_pages(*arrays: np.ndarray) -> None:
    """Fault in one element per OS page so reads later hit resident memory."""
    checksum = 0.0
    for arr in arrays:
        if getattr(arr, "_mmap", None) is None or arr.size == 0:
            continue
        stride = max(1, 4096 // arr.itemsize)
        checksum += float(np.add.reduce(arr.reshape(-1)[::stride], dtype=np.float64))
    del checksum


@dataclass
class DeviceStreamOps:
    """Per-device column/row-split aggregation operators for streaming mode.

    ``own``/``halo`` column-split the partition's weighted operator
    ``A = [A_own | A_halo]`` so the fused engine can aggregate directly from
    the device's own rows (a feature memmap at layer 0) and its halo buffer
    without gathering them into one contiguous input.  ``own_t``/``halo_t``
    row-split the transpose for the backward scatter.  Because the full
    operator stores columns in ascending [owned..., halo...] order and
    scipy's ``csr_matvecs`` accumulates each output row in stored order, the
    two-pass split spmv is bitwise-identical to the single full-operator
    spmv (same contract the row-split overlap engine relies on).

    ``pages`` holds the raw memmap objects backing the four matrices (the
    scipy wrappers only keep views, which cannot be madvised); empty for
    materialized (in-RAM) stores.
    """

    own: sp.csr_matrix
    halo: sp.csr_matrix
    own_t: sp.csr_matrix
    halo_t: sp.csr_matrix
    pages: tuple[np.ndarray, ...] = ()
    feature_pages: tuple[np.ndarray, ...] = ()

    def release_op_pages(self) -> None:
        release_memmap_pages(*self.pages)

    def release_feature_pages(self) -> None:
        release_memmap_pages(*self.feature_pages)

    def touch(self) -> None:
        """Prefetch: fault in the operator + feature pages for this device."""
        _touch_pages(*self.pages, *self.feature_pages)

    def touch_ops(self) -> None:
        """Prefetch the operator pages only.

        Hidden-layer steps never read the feature regions; touching them
        there would accumulate the whole feature file in the resident set
        (layers ≥ 1 release only operator pages), defeating the layer-0
        window release.
        """
        _touch_pages(*self.pages)


@dataclass
class StorePartition:
    """One partition opened from a :class:`PartitionStore`.

    All arrays are read-only memmaps (or RAM copies when opened with
    ``materialize=True`` — the in-RAM arm of the bitwise-equivalence
    contract).
    """

    part: LocalPartition
    agg: "AggregationContext"
    ops: DeviceStreamOps
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray


@dataclass
class StoreDataset:
    """Dataset facade over a :class:`PartitionStore`.

    Exposes the metadata the trainer needs (``spec``, ``multilabel``,
    counts) without a global feature/label matrix — per-partition arrays
    come from :meth:`PartitionStore.partition`.
    """

    store: "PartitionStore"
    materialize: bool = False

    @property
    def spec(self) -> DatasetSpec:
        return self.store.spec

    @property
    def num_nodes(self) -> int:
        return self.store.num_nodes

    @property
    def num_features(self) -> int:
        return self.store.spec.num_features

    @property
    def num_classes(self) -> int:
        return self.store.spec.num_classes

    @property
    def multilabel(self) -> bool:
        return self.store.spec.multilabel

    @property
    def global_train_count(self) -> int:
        return self.store.global_train_count


class PartitionStoreWriter:
    """Append-only writer for the binary partition-store layout.

    Regions are appended to one file per partition at 64-byte-aligned
    offsets; :meth:`create_region` returns a writable memmap so producers
    can fill large regions chunk-by-chunk without staging them in RAM.
    ``finalize`` writes the versioned JSON header atomically — a crashed
    build leaves no ``header.json`` and therefore no openable store.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        num_nodes: int,
        num_parts: int,
        part_bounds: np.ndarray,
        agg_kind: str,
        seed: int,
        spec: dict,
        config: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if len(part_bounds) != num_parts + 1:
            raise ValueError("part_bounds must have num_parts + 1 entries")
        self._header = {
            "format": _STORE_MAGIC,
            "version": _STORE_VERSION,
            "num_nodes": int(num_nodes),
            "num_parts": int(num_parts),
            "part_bounds": [int(b) for b in part_bounds],
            "agg_kind": str(agg_kind),
            "seed": int(seed),
            "spec": dict(spec),
            "config": dict(config or {}),
            "partitions": [
                {"file": f"part{p:04d}.bin", "regions": {}}
                for p in range(num_parts)
            ],
        }
        self._sizes = [0] * num_parts
        self._finalized = False

    def _part_file(self, part: int) -> Path:
        return self.path / self._header["partitions"][part]["file"]

    def create_region(
        self, part: int, name: str, shape: tuple[int, ...], dtype
    ) -> np.ndarray | None:
        """Reserve ``name`` in partition ``part`` and return a writable memmap.

        Returns ``None`` for zero-sized regions (recorded in the header but
        occupying no bytes — readers get ``np.zeros`` back).
        """
        if self._finalized:
            raise ValueError("store already finalized")
        regions = self._header["partitions"][part]["regions"]
        if name in regions:
            raise ValueError(f"duplicate region {name!r} in partition {part}")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        offset = -(-self._sizes[part] // _STORE_ALIGN) * _STORE_ALIGN
        regions[name] = {
            "offset": offset,
            "dtype": dtype.str,
            "shape": [int(d) for d in shape],
        }
        if nbytes == 0:
            return None
        fp = self._part_file(part)
        fp.touch(exist_ok=True)
        with open(fp, "r+b") as f:
            f.truncate(offset + nbytes)
        self._sizes[part] = offset + nbytes
        return np.memmap(fp, dtype=dtype, mode="r+", offset=offset, shape=tuple(shape))

    def write_region(self, part: int, name: str, array: np.ndarray) -> None:
        """Append ``array`` as a region (convenience over ``create_region``)."""
        array = np.ascontiguousarray(array)
        region = self.create_region(part, name, array.shape, array.dtype)
        if region is not None:
            region[...] = array
            region.flush()
            del region

    def finalize(self, **globals_: int) -> Path:
        """Write the header (with any global counters) and seal the store."""
        if self._finalized:
            raise ValueError("store already finalized")
        for key, value in globals_.items():
            self._header[key] = int(value)
        tmp = self.path / (_STORE_HEADER + ".tmp")
        tmp.write_text(
            json.dumps(self._header, indent=1, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, self.path / _STORE_HEADER)
        self._finalized = True
        return self.path


class PartitionStore:
    """Read side of the out-of-core partition store.

    ``open`` validates the header version and that every partition file is
    long enough for its region table (a truncated copy fails fast instead
    of producing garbage memmaps).  All reads are lazy: ``region`` returns a
    read-only ``np.memmap`` and :meth:`partition` assembles the runtime
    objects (:class:`LocalPartition`, aggregation operators, split
    operators, feature/label arrays) without copying anything —
    ``materialize=True`` copies every array into RAM instead, which is the
    reference arm of the bitwise-equivalence contract.
    """

    def __init__(self, path: Path, header: dict) -> None:
        self.path = path
        self.header = header

    @classmethod
    def open(cls, path: str | Path) -> "PartitionStore":
        path = Path(path)
        header_path = path / _STORE_HEADER
        if not header_path.is_file():
            raise ValueError(f"not a partition store (missing {_STORE_HEADER}): {path}")
        try:
            header = json.loads(header_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"corrupt partition store header: {exc}") from exc
        if header.get("format") != _STORE_MAGIC:
            raise ValueError(f"not a partition store header: {header_path}")
        version = int(header.get("version", -1))
        if version != _STORE_VERSION:
            raise ValueError(
                f"unsupported partition store version {version} "
                f"(expected {_STORE_VERSION})"
            )
        store = cls(path, header)
        for p, entry in enumerate(header["partitions"]):
            fp = path / entry["file"]
            required = 0
            for region in entry["regions"].values():
                nbytes = int(
                    np.prod(region["shape"], dtype=np.int64)
                    * np.dtype(region["dtype"]).itemsize
                )
                required = max(required, region["offset"] + nbytes)
            actual = fp.stat().st_size if fp.is_file() else -1
            if actual < required:
                raise ValueError(
                    f"truncated partition store file {entry['file']} "
                    f"({actual} bytes, header requires {required})"
                )
        return store

    # -- header accessors --------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return int(self.header["num_nodes"])

    @property
    def num_parts(self) -> int:
        return int(self.header["num_parts"])

    @property
    def part_bounds(self) -> np.ndarray:
        return np.asarray(self.header["part_bounds"], dtype=np.int64)

    @property
    def agg_kind(self) -> str:
        return str(self.header["agg_kind"])

    @property
    def seed(self) -> int:
        return int(self.header["seed"])

    @property
    def num_directed_edges(self) -> int:
        return int(self.header.get("num_directed_edges", 0))

    @property
    def global_train_count(self) -> int:
        return int(self.header.get("global_train_count", 0))

    @property
    def spec(self) -> DatasetSpec:
        return DatasetSpec(**self.header["spec"])

    def dataset(self, *, materialize: bool = False) -> StoreDataset:
        return StoreDataset(store=self, materialize=materialize)

    def book(self) -> PartitionBook:
        """Partition book reconstructed from the contiguous part bounds."""
        sizes = np.diff(self.part_bounds)
        part_of = np.repeat(np.arange(self.num_parts, dtype=np.int64), sizes)
        return PartitionBook(part_of=part_of, num_parts=self.num_parts)

    def materialized_bytes(self) -> int:
        """Bytes an in-RAM materialization of every region would occupy."""
        total = 0
        for entry in self.header["partitions"]:
            for region in entry["regions"].values():
                total += int(
                    np.prod(region["shape"], dtype=np.int64)
                    * np.dtype(region["dtype"]).itemsize
                )
        return total

    # -- region access -----------------------------------------------------

    def region(
        self, part: int, name: str, *, materialize: bool = False
    ) -> np.ndarray:
        entry = self.header["partitions"][part]
        try:
            region = entry["regions"][name]
        except KeyError:
            raise KeyError(f"partition {part} has no region {name!r}") from None
        dtype = np.dtype(region["dtype"])
        shape = tuple(region["shape"])
        if int(np.prod(shape, dtype=np.int64)) == 0:
            return np.zeros(shape, dtype=dtype)
        out = np.memmap(
            self.path / entry["file"],
            dtype=dtype,
            mode="r",
            offset=region["offset"],
            shape=shape,
        )
        return np.array(out) if materialize else out

    def _csr(
        self, part: int, prefix: str, shape: tuple[int, int], *, materialize: bool
    ) -> tuple[sp.csr_matrix, tuple[np.ndarray, ...]]:
        """Wrap ``<prefix>_{data,indices,indptr}`` regions as a CSR matrix.

        int32 index/indptr pairs wrap zero-copy (scipy keeps views of the
        memmaps); the raw memmap objects are returned for page release.
        """
        data = self.region(part, f"{prefix}_data", materialize=materialize)
        indices = self.region(part, f"{prefix}_indices", materialize=materialize)
        indptr = self.region(part, f"{prefix}_indptr", materialize=materialize)
        matrix = sp.csr_matrix((data, indices, indptr), shape=shape, copy=False)
        pages = () if materialize else (data, indices, indptr)
        return matrix, pages

    def partition(self, part: int, *, materialize: bool = False) -> StorePartition:
        from repro.gnn.coefficients import AggregationContext

        get = lambda name: self.region(part, name, materialize=materialize)  # noqa: E731
        bounds = self.part_bounds
        start, end = int(bounds[part]), int(bounds[part + 1])
        n_own = end - start
        owned_global = np.arange(start, end, dtype=np.int64)
        halo_global = np.asarray(get("halo_global"))
        n_halo = halo_global.shape[0]
        n_cols = n_own + n_halo

        adj, _ = self._csr(part, "adj", (n_own, n_cols), materialize=materialize)
        recv_map = self._unpack_map(part, "recv")
        send_map = self._unpack_map(part, "send")
        local = LocalPartition(
            part_id=part,
            num_parts=self.num_parts,
            owned_global=owned_global,
            halo_global=halo_global,
            halo_owner=np.asarray(get("halo_owner")),
            adj=adj,
            send_map=send_map,
            recv_map=recv_map,
            marginal_mask=np.asarray(get("marginal_mask")),
        )

        agg_matrix, agg_pages = self._csr(
            part, "agg", (n_own, n_cols), materialize=materialize
        )
        agg = AggregationContext(
            kind=self.agg_kind,
            matrix=agg_matrix,
            halo_alpha_sq=np.array(get("halo_alpha_sq")),
            n_owned=n_own,
            n_halo=n_halo,
        )

        own, own_pages = self._csr(
            part, "agg_own", (n_own, n_own), materialize=materialize
        )
        halo, halo_pages = self._csr(
            part, "agg_halo", (n_own, n_halo), materialize=materialize
        )
        own_t, own_t_pages = self._csr(
            part, "agg_own_t", (n_own, n_own), materialize=materialize
        )
        halo_t, halo_t_pages = self._csr(
            part, "agg_halo_t", (n_halo, n_own), materialize=materialize
        )
        features = get("features")
        ops = DeviceStreamOps(
            own=own,
            halo=halo,
            own_t=own_t,
            halo_t=halo_t,
            pages=own_pages + halo_pages + own_t_pages + halo_t_pages + agg_pages,
            feature_pages=() if materialize else (features,),
        )
        return StorePartition(
            part=local,
            agg=agg,
            ops=ops,
            features=features,
            labels=get("labels"),
            train_mask=get("train_mask"),
            val_mask=get("val_mask"),
            test_mask=get("test_mask"),
        )

    def _unpack_map(self, part: int, prefix: str) -> dict[int, np.ndarray]:
        """Decode the packed peer → index-array mapping (RAM copies: small)."""
        peers = self.region(part, f"{prefix}_peers", materialize=True)
        offsets = self.region(part, f"{prefix}_offsets", materialize=True)
        values = self.region(part, f"{prefix}_values", materialize=True)
        return {
            int(peer): values[offsets[i] : offsets[i + 1]]
            for i, peer in enumerate(peers)
        }


def build_partition_store(
    cfg: "HugeGraphConfig",
    num_parts: int,
    path: str | Path,
    *,
    seed: int = 0,
    agg_kind: str = "gcn",
    progress=None,
) -> PartitionStore:
    """Generate a huge synthetic graph straight into a partition store.

    This is the streaming partitioner pass behind ``repro prepare``.  The
    full graph is never materialized; peak memory is ``O(num_nodes)`` for
    two flat per-node arrays (degrees, partition bounds are ``O(P)``) plus
    ``O(chunk + edges/num_parts)`` transients:

    1. *Spool*: edge chunks from the chunked generator are symmetrized into
       directed arcs and appended to one on-disk spool file per source
       partition (partitions are contiguous node-id ranges, so ownership is
       a ``searchsorted``).
    2. *Dedup/CSR*: per partition, sort the spooled arcs by ``(src, dst)``
       and drop duplicates — because every copy of an arc lands in the same
       spool, this is a *global* dedup — then derive local CSR structure
       and the true (post-dedup) global degree vector.  Each partition's
       nodes are renumbered **boundary-first**: rows with at least one
       remote neighbour take the lowest local ids (relative order
       preserved within each class).  Every cross-device gather — the
       layer-0 halo exchange above all — then reads one compact prefix
       block of the feature region instead of rows scattered across it,
       which matters out of core: a scattered gather faults (with the
       kernel's fault-around, drags in pages around) most of the file.
    3. *Attributes*: features/labels/split masks stream chunk-by-chunk into
       writable region memmaps (rows landing at their boundary-first
       positions), released to disk as they complete.
    4. *Operators*: per partition, build halo tables and the weighted
       aggregation operator via the same :func:`build_aggregation` the
       in-RAM path uses (global degrees are known by now), plus its
       column/row splits for the streaming engine.
    5. *Send maps*: resolved from every receiver's halo table.
    """
    import shutil

    from dataclasses import asdict

    from repro.gnn.coefficients import build_aggregation
    from repro.graph.generators import (
        huge_centroids,
        huge_edge_chunks,
        huge_feature_chunk,
    )
    from repro.utils.seed import RngPool

    n = cfg.num_nodes
    parts = int(num_parts)
    if parts < 1 or n < parts:
        raise ValueError("need at least one node per partition")
    say = progress or (lambda msg: None)
    pbounds = (np.arange(parts + 1, dtype=np.int64) * n) // parts
    spec = {
        "name": cfg.name,
        "paper_name": "synthetic huge power-law",
        "num_nodes": n,
        "avg_degree": float(cfg.avg_degree),
        "num_features": cfg.num_features,
        "num_classes": cfg.num_classes,
        "multilabel": cfg.multilabel,
        "homophily": cfg.homophily,
        "degree_exponent": cfg.degree_exponent,
        "feature_noise": cfg.feature_noise,
        "label_noise": cfg.label_noise,
        "fine_scale": cfg.fine_scale,
        "fine_group": cfg.fine_group,
        "neighbor_locality": cfg.neighbor_locality,
        "locality_width": cfg.locality_width,
    }
    writer = PartitionStoreWriter(
        path,
        num_nodes=n,
        num_parts=parts,
        part_bounds=pbounds,
        agg_kind=agg_kind,
        seed=seed,
        spec=spec,
        config=asdict(cfg),
    )
    pool = RngPool(seed).fork(f"huge/{cfg.name}")
    tmp = writer.path / "tmp-build"
    tmp.mkdir(exist_ok=True)
    try:
        # -- 1. spool arcs by source partition -----------------------------
        say("spooling edge chunks")
        spools = [open(tmp / f"arcs{p}.bin", "wb") for p in range(parts)]
        try:
            for pairs in huge_edge_chunks(cfg, pool):
                arcs = np.concatenate([pairs, pairs[:, ::-1]])
                owner = np.searchsorted(pbounds, arcs[:, 0], side="right") - 1
                order = np.argsort(owner, kind="stable")
                arcs = arcs[order]
                cuts = np.searchsorted(owner[order], np.arange(parts + 1))
                for p in range(parts):
                    seg = arcs[cuts[p] : cuts[p + 1]]
                    if seg.size:
                        spools[p].write(np.ascontiguousarray(seg).tobytes())
        finally:
            for f in spools:
                f.close()

        # -- 2. per-partition global dedup + CSR structure + degrees -------
        say("deduplicating and building CSR blocks")
        degrees = np.zeros(n, dtype=np.float64)
        # Boundary-first renumbering: relabel[old_global] = new_global,
        # permuting ids within each partition's range only.
        relabel = np.empty(n, dtype=np.int64)
        old2new_by_part: list[np.ndarray] = []
        nnz_total = 0
        for p in range(parts):
            start, end = int(pbounds[p]), int(pbounds[p + 1])
            n_own = end - start
            arc_file = tmp / f"arcs{p}.bin"
            raw = np.fromfile(arc_file, dtype=np.int64).reshape(-1, 2)
            src = raw[:, 0] - start
            dst = raw[:, 1]
            del raw
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
            del order
            if src.size:
                keep = np.empty(src.size, dtype=bool)
                keep[0] = True
                keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
                src, dst = src[keep], dst[keep]
                del keep
            counts = np.bincount(src, minlength=n_own)
            # Rows with a remote neighbour get the lowest new local ids
            # (the compact block every cross-device gather reads).
            boundary = np.zeros(n_own, dtype=bool)
            boundary[src[(dst < start) | (dst >= end)]] = True
            new2old = np.concatenate(
                [np.flatnonzero(boundary), np.flatnonzero(~boundary)]
            )
            old2new = np.empty(n_own, dtype=np.int64)
            old2new[new2old] = np.arange(n_own, dtype=np.int64)
            old2new_by_part.append(old2new)
            relabel[start:end] = start + old2new
            deg_p = np.zeros(n_own, dtype=np.float64)
            deg_p[old2new] = counts
            degrees[start:end] = deg_p
            nnz_total += int(dst.size)
            np.save(tmp / f"cols{p}.npy", dst)
            np.save(
                tmp / f"indptr{p}.npy",
                np.concatenate([[0], np.cumsum(counts)]).astype(np.int64),
            )
            del src, dst, counts, boundary, new2old, deg_p
            arc_file.unlink()

        # -- 3. stream features / labels / split masks ---------------------
        say("streaming node attributes")
        centroids = huge_centroids(cfg, pool)
        train_count = 0
        chunk = cfg.chunk_nodes
        for p in range(parts):
            start, end = int(pbounds[p]), int(pbounds[p + 1])
            n_own = end - start
            feat = writer.create_region(
                p, "features", (n_own, cfg.num_features), np.float32
            )
            if cfg.multilabel:
                lab = writer.create_region(
                    p, "labels", (n_own, cfg.num_classes), np.float32
                )
            else:
                lab = writer.create_region(p, "labels", (n_own,), np.int64)
            masks = {
                name: writer.create_region(p, name, (n_own,), np.bool_)
                for name in ("train_mask", "val_mask", "test_mask")
            }
            old2new = old2new_by_part[p]
            for cs in range((start // chunk) * chunk, end, chunk):
                ce = min(cs + chunk, n)
                out = huge_feature_chunk(cfg, cs, ce, centroids, pool)
                lo, hi = max(cs, start), min(ce, end)
                take = slice(lo - cs, hi - cs)
                # Attributes are generated in original id order; rows land
                # at their boundary-first positions.
                put = old2new[lo - start : hi - start]
                feat[put] = out["features"][take]
                lab[put] = out["labels"][take]
                for name in masks:
                    masks[name][put] = out[name][take]
                train_count += int(out["train_mask"][take].sum())
            for region in (feat, lab, *masks.values()):
                region.flush()
                release_memmap_pages(region)
            del feat, lab, masks

        # -- 4. halo tables + weighted operators + splits ------------------
        say("building halo tables and aggregation operators")
        # wanted[owner][requester] = owner-local rows the requester's halo needs
        wanted: list[dict[int, np.ndarray]] = [{} for _ in range(parts)]
        for p in range(parts):
            start, end = int(pbounds[p]), int(pbounds[p + 1])
            n_own = end - start
            # Spooled CSR blocks are in original-id order; relabel the
            # columns and permute the rows into boundary-first order (the
            # per-row within-order stays unsorted here — ``sort_indices``
            # below canonicalizes).
            cols = relabel[np.load(tmp / f"cols{p}.npy")]
            old_indptr = np.load(tmp / f"indptr{p}.npy")
            old2new = old2new_by_part[p]
            new2old = np.empty(n_own, dtype=np.int64)
            new2old[old2new] = np.arange(n_own, dtype=np.int64)
            lengths = np.diff(old_indptr)[new2old]
            indptr64 = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
            within = np.arange(int(indptr64[-1]), dtype=np.int64) - np.repeat(
                indptr64[:-1], lengths
            )
            cols = cols[np.repeat(old_indptr[new2old], lengths) + within]
            del old_indptr, new2old, lengths, within
            remote = (cols < start) | (cols >= end)
            halo_global = np.unique(cols[remote])
            n_halo = int(halo_global.size)
            n_cols = n_own + n_halo
            col_local = np.where(
                remote,
                n_own + np.searchsorted(halo_global, cols),
                cols - start,
            ).astype(np.int32)
            marginal = np.zeros(n_own, dtype=bool)
            marginal[
                np.searchsorted(indptr64, np.flatnonzero(remote), side="right") - 1
            ] = True
            halo_owner = (
                np.searchsorted(pbounds, halo_global, side="right") - 1
            ).astype(np.int32)
            adj = sp.csr_matrix(
                (
                    np.ones(cols.size, dtype=np.float32),
                    col_local,
                    indptr64.astype(np.int32),
                ),
                shape=(n_own, n_cols),
            )
            adj.sort_indices()
            recv_map = {
                int(q): np.flatnonzero(halo_owner == q).astype(np.int64)
                for q in np.unique(halo_owner)
            }
            for q, slots in recv_map.items():
                wanted[q][p] = halo_global[slots] - pbounds[q]
            local = LocalPartition(
                part_id=p,
                num_parts=parts,
                owned_global=np.arange(start, end, dtype=np.int64),
                halo_global=halo_global,
                halo_owner=halo_owner,
                adj=adj,
                send_map={},
                recv_map=recv_map,
                marginal_mask=marginal,
            )
            ctx = build_aggregation(local, degrees, agg_kind)
            mat = ctx.matrix
            mat.sort_indices()
            mat_t = ctx.matrix_t
            mat_t.sort_indices()
            for prefix, m in (
                ("adj", adj),
                ("agg", mat),
                ("agg_own", mat[:, :n_own].tocsr()),
                ("agg_halo", mat[:, n_own:].tocsr()),
                ("agg_own_t", mat_t[:n_own].tocsr()),
                ("agg_halo_t", mat_t[n_own:].tocsr()),
            ):
                writer.write_region(p, f"{prefix}_data", m.data.astype(np.float32))
                writer.write_region(p, f"{prefix}_indices", m.indices.astype(np.int32))
                writer.write_region(p, f"{prefix}_indptr", m.indptr.astype(np.int32))
            writer.write_region(p, "halo_alpha_sq", ctx.halo_alpha_sq)
            writer.write_region(p, "degrees", degrees[start:end])
            writer.write_region(p, "halo_global", halo_global)
            writer.write_region(p, "halo_owner", halo_owner)
            writer.write_region(p, "marginal_mask", marginal)
            _write_packed_map(writer, p, "recv", recv_map)
            del cols, indptr64, col_local, adj, mat, mat_t, ctx, local
            (tmp / f"cols{p}.npy").unlink()
            (tmp / f"indptr{p}.npy").unlink()

        # -- 5. send maps from the receivers' halo tables ------------------
        say("resolving send maps")
        for p in range(parts):
            _write_packed_map(writer, p, "send", wanted[p])

        writer.finalize(
            num_directed_edges=nnz_total, global_train_count=train_count
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return PartitionStore.open(writer.path)


def _write_packed_map(
    writer: PartitionStoreWriter, part: int, prefix: str, mapping: dict[int, np.ndarray]
) -> None:
    """Pack a peer → int64-array mapping into three flat regions."""
    peers = sorted(int(q) for q in mapping)
    lengths = [int(mapping[q].size) for q in peers]
    offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
    values = (
        np.concatenate([np.asarray(mapping[q], dtype=np.int64) for q in peers])
        if peers
        else np.zeros(0, dtype=np.int64)
    )
    writer.write_region(part, f"{prefix}_peers", np.asarray(peers, dtype=np.int32))
    writer.write_region(part, f"{prefix}_offsets", offsets)
    writer.write_region(part, f"{prefix}_values", values)
