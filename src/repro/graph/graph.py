"""Immutable undirected graph in CSR (compressed sparse row) form.

The whole stack — partitioning, distributed aggregation, communication-volume
accounting — operates on this one structure, mirroring the role DGL's graph
object plays for the original AdaQP implementation.

Conventions
-----------
* Graphs are **undirected**: every edge ``{u, v}`` is stored twice, once in
  each row.  ``num_edges`` counts undirected edges.
* Self-loops are **not** stored; GNN layers add the self term through
  aggregation coefficients instead (Eqn. 3 of the paper).
* Node ids are ``0 .. num_nodes-1``; ``indices`` within each row are sorted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_array

__all__ = ["Graph"]


@dataclass(frozen=True)
class Graph:
    """An undirected graph stored in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_nodes + 1``; row pointer.
    indices:
        ``int64`` array of length ``2 * num_edges``; column (neighbor) ids,
        sorted within each row.
    """

    indptr: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        check_array(self.indptr, name="indptr", ndim=1, dtype_kind="iu")
        check_array(self.indices, name="indices", ndim=1, dtype_kind="iu")
        if self.indptr.size < 1:
            raise ValueError("indptr must have at least one element")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_nodes
        ):
            raise ValueError("indices contain out-of-range node ids")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        src: np.ndarray,
        dst: np.ndarray,
        num_nodes: int,
        *,
        deduplicate: bool = True,
    ) -> "Graph":
        """Build an undirected graph from an edge list.

        Edges are symmetrized, self-loops dropped and (optionally) parallel
        edges collapsed.

        >>> g = Graph.from_edges(np.array([0, 1]), np.array([1, 2]), 3)
        >>> g.num_edges
        2
        >>> g.neighbors(1).tolist()
        [0, 2]
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same shape")
        num_nodes = int(num_nodes)
        if src.size and (min(src.min(), dst.min()) < 0 or max(src.max(), dst.max()) >= num_nodes):
            raise ValueError("edge endpoints out of range")

        keep = src != dst  # drop self-loops
        src, dst = src[keep], dst[keep]
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        if deduplicate and all_src.size:
            key = all_src * num_nodes + all_dst
            _, unique_idx = np.unique(key, return_index=True)
            all_src, all_dst = all_src[unique_idx], all_dst[unique_idx]

        order = np.lexsort((all_dst, all_src))
        all_src, all_dst = all_src[order], all_dst[order]
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.add.at(indptr, all_src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return Graph(indptr=indptr, indices=all_dst.astype(np.int64))

    @staticmethod
    def from_scipy(mat: sp.spmatrix) -> "Graph":
        """Build from a (square, symmetric) SciPy sparse adjacency matrix."""
        csr = sp.csr_matrix(mat)
        if csr.shape[0] != csr.shape[1]:
            raise ValueError("adjacency matrix must be square")
        coo = csr.tocoo()
        return Graph.from_edges(coo.row.astype(np.int64), coo.col.astype(np.int64), csr.shape[0])

    # ------------------------------------------------------------------
    # Properties & queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.size - 1)

    @property
    def num_edges(self) -> int:
        """Number of *undirected* edges."""
        return int(self.indices.size // 2)

    @property
    def degrees(self) -> np.ndarray:
        """Node degrees (self-loops excluded, as they are never stored)."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of node ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def to_scipy(self, dtype: np.dtype = np.float64) -> sp.csr_matrix:
        """Return the adjacency matrix as ``scipy.sparse.csr_matrix``."""
        data = np.ones(self.indices.size, dtype=dtype)
        return sp.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.num_nodes, self.num_nodes)
        )

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(src, dst)`` covering every directed arc (both directions)."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        return src, self.indices.copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
