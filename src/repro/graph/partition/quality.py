"""Partition quality metrics.

These quantify the graph-topology factors the paper identifies as driving
communication cost (Sec. 4.1 factor (i)): edge cut, balance, the
remote-neighbor ratio of Table 1, and the pairwise boundary-node counts
behind Fig. 2's imbalance.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook, build_local_partitions

__all__ = [
    "edge_cut",
    "balance",
    "remote_neighbor_ratio",
    "pairwise_boundary_counts",
]


def edge_cut(graph: Graph, book: PartitionBook) -> int:
    """Number of undirected edges crossing partition boundaries."""
    src, dst = graph.edge_array()
    crossing = book.part_of[src] != book.part_of[dst]
    return int(crossing.sum() // 2)  # each undirected edge appears twice


def balance(book: PartitionBook) -> float:
    """``max_part_size / ideal_part_size``; 1.0 is perfectly balanced."""
    sizes = book.sizes()
    ideal = book.num_nodes / book.num_parts
    return float(sizes.max() / ideal)


def remote_neighbor_ratio(graph: Graph, book: PartitionBook) -> float:
    """Paper Table 1's metric: mean over partitions of
    ``#remote 1-hop neighbors / #owned nodes``."""
    parts = build_local_partitions(graph, book)
    ratios = [p.n_halo / max(p.n_owned, 1) for p in parts]
    return float(np.mean(ratios))


def pairwise_boundary_counts(graph: Graph, book: PartitionBook) -> np.ndarray:
    """``counts[p, q]`` = number of distinct nodes partition ``p`` sends to
    ``q`` each layer (p's boundary nodes with respect to q).

    Multiplying by the feature width and element size gives the per-pair
    data volumes of the paper's Fig. 2.
    """
    parts = build_local_partitions(graph, book)
    k = book.num_parts
    counts = np.zeros((k, k), dtype=np.int64)
    for part in parts:
        for q, rows in part.send_map.items():
            counts[part.part_id, q] = rows.size
    return counts
