"""Graph partitioning: METIS-like multilevel k-way plus simple baselines.

The paper partitions input graphs with DGL's METIS before training; here the
same role is played by :func:`metis_like_partition` (multilevel heavy-edge
coarsening, greedy initial partition, boundary refinement).  The
:class:`PartitionBook` / :class:`LocalPartition` pair captures everything the
distributed runtime needs: node ownership, halo (remote 1-hop neighbor)
sets, and per-peer send/receive index maps.
"""

from repro.graph.partition.book import (
    LocalPartition,
    PartitionBook,
    build_local_partitions,
)
from repro.graph.partition.metis_like import metis_like_partition
from repro.graph.partition.simple import (
    bfs_partition,
    random_partition,
    spectral_partition,
)
from repro.graph.partition.quality import (
    balance,
    edge_cut,
    pairwise_boundary_counts,
    remote_neighbor_ratio,
)
from repro.graph.partition.api import partition_graph

__all__ = [
    "PartitionBook",
    "LocalPartition",
    "build_local_partitions",
    "metis_like_partition",
    "random_partition",
    "bfs_partition",
    "spectral_partition",
    "partition_graph",
    "edge_cut",
    "balance",
    "pairwise_boundary_counts",
    "remote_neighbor_ratio",
]
