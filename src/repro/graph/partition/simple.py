"""Baseline partitioners: random, BFS-chunked and spectral.

These exist for ablations (partition quality strongly influences the
communication results, see paper Sec. 4.1 factor (i)) and as fast fallbacks
for tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook
from repro.utils.seed import rng_from_seed

__all__ = ["random_partition", "bfs_partition", "spectral_partition"]


def _balanced_chunks(order: np.ndarray, num_parts: int) -> np.ndarray:
    """Assign nodes to parts by contiguous chunks of an ordering."""
    n = order.size
    parts = np.empty(n, dtype=np.int32)
    bounds = np.linspace(0, n, num_parts + 1).astype(np.int64)
    for p in range(num_parts):
        parts[order[bounds[p] : bounds[p + 1]]] = p
    return parts


def random_partition(graph: Graph, num_parts: int, *, seed: int = 0) -> PartitionBook:
    """Uniformly random balanced partition (worst-case communication)."""
    if num_parts > graph.num_nodes:
        raise ValueError("more parts than nodes")
    rng = rng_from_seed(seed)
    order = rng.permutation(graph.num_nodes)
    return PartitionBook(part_of=_balanced_chunks(order, num_parts), num_parts=num_parts)


def bfs_partition(graph: Graph, num_parts: int, *, seed: int = 0) -> PartitionBook:
    """Chunk a BFS traversal order into equal parts (cheap locality)."""
    if num_parts > graph.num_nodes:
        raise ValueError("more parts than nodes")
    rng = rng_from_seed(seed)
    n = graph.num_nodes
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # Multi-source BFS covering all components.
    while pos < n:
        seeds = np.flatnonzero(~visited)
        start = int(seeds[rng.integers(seeds.size)])
        frontier = [start]
        visited[start] = True
        while frontier:
            next_frontier: list[int] = []
            for u in frontier:
                order[pos] = u
                pos += 1
                for v in graph.neighbors(u):
                    if not visited[v]:
                        visited[v] = True
                        next_frontier.append(int(v))
            frontier = next_frontier
    return PartitionBook(part_of=_balanced_chunks(order, num_parts), num_parts=num_parts)


def spectral_partition(graph: Graph, num_parts: int, *, seed: int = 0) -> PartitionBook:
    """Spectral embedding + balanced 1-D sweep.

    Embeds nodes with the Fiedler-adjacent eigenvectors of the normalized
    Laplacian and chunks the sorted first non-trivial coordinate.  Balanced
    by construction; cut quality sits between random and METIS-like.
    """
    n = graph.num_nodes
    if num_parts > n:
        raise ValueError("more parts than nodes")
    if num_parts == 1:
        return PartitionBook(part_of=np.zeros(n, dtype=np.int32), num_parts=1)

    adj = graph.to_scipy(dtype=np.float64)
    deg = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.where(deg > 0, 1.0 / np.sqrt(np.maximum(deg, 1e-12)), 0.0)
    d_half = sp.diags(inv_sqrt)
    lap = sp.identity(n) - d_half @ adj @ d_half

    k = min(max(2, int(np.ceil(np.log2(num_parts))) + 1), n - 1)
    rng = rng_from_seed(seed)
    v0 = rng.standard_normal(n)
    try:
        _, vecs = spla.eigsh(lap, k=k, sigma=0, which="LM", v0=v0, maxiter=5000)
    except (spla.ArpackNoConvergence, RuntimeError):
        # Fall back to dense for tiny/awkward graphs.
        dense = lap.toarray()
        _, dense_vecs = np.linalg.eigh(dense)
        vecs = dense_vecs[:, :k]
    fiedler = vecs[:, 1] if vecs.shape[1] > 1 else vecs[:, 0]
    order = np.argsort(fiedler, kind="stable")
    return PartitionBook(part_of=_balanced_chunks(order, num_parts), num_parts=num_parts)
