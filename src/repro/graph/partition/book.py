"""Partition bookkeeping: ownership, halos and per-peer exchange maps.

Terminology (paper Sec. 3.1):

* **owned** nodes of partition ``p`` — nodes assigned to device ``p``;
* **halo** nodes — remote 1-hop neighbors of owned nodes (the paper's
  "remote nodes"); their features/embeddings must be fetched every layer;
* **marginal** nodes — owned nodes with at least one remote neighbor;
* **central** nodes — owned nodes whose entire neighborhood is local.

Local column convention: the local adjacency of partition ``p`` has shape
``(n_owned, n_owned + n_halo)``; columns ``0..n_owned-1`` are owned nodes
(in ascending global-id order) and columns ``n_owned..`` are halo nodes
(ascending global-id order).  Send/receive maps are *aligned*: peer ``q``'s
``recv_map[p]`` lists halo slots in the same node order as ``p``'s
``send_map[q]`` lists owned rows, so a gathered send buffer can be scattered
directly on the receiving side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.utils.validation import check_array

__all__ = ["PartitionBook", "LocalPartition", "build_local_partitions"]


@dataclass(frozen=True)
class PartitionBook:
    """Global node → partition assignment.

    Parameters
    ----------
    part_of:
        ``(num_nodes,)`` integer array; ``part_of[v]`` is the partition id
        owning node ``v``.
    num_parts:
        Total number of partitions; every id in ``0..num_parts-1`` must own
        at least one node.
    """

    part_of: np.ndarray
    num_parts: int

    def __post_init__(self) -> None:
        check_array(self.part_of, name="part_of", ndim=1, dtype_kind="iu")
        if self.num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        if self.part_of.size == 0:
            raise ValueError("part_of must not be empty")
        if self.part_of.min() < 0 or self.part_of.max() >= self.num_parts:
            raise ValueError("part ids out of range")
        sizes = np.bincount(self.part_of, minlength=self.num_parts)
        if (sizes == 0).any():
            empty = np.flatnonzero(sizes == 0).tolist()
            raise ValueError(f"partitions {empty} own no nodes")

    @property
    def num_nodes(self) -> int:
        return int(self.part_of.size)

    def owned(self, part: int) -> np.ndarray:
        """Global ids owned by ``part``, ascending."""
        return np.flatnonzero(self.part_of == part).astype(np.int64)

    def sizes(self) -> np.ndarray:
        """Number of owned nodes per partition."""
        return np.bincount(self.part_of, minlength=self.num_parts)


@dataclass
class LocalPartition:
    """Everything device ``part_id`` needs about its share of the graph."""

    part_id: int
    num_parts: int
    owned_global: np.ndarray  # (n_owned,) int64, ascending
    halo_global: np.ndarray  # (n_halo,) int64, ascending
    halo_owner: np.ndarray  # (n_halo,) int32
    adj: sp.csr_matrix  # (n_owned, n_owned + n_halo), data == 1.0
    send_map: dict[int, np.ndarray] = field(default_factory=dict)
    recv_map: dict[int, np.ndarray] = field(default_factory=dict)
    marginal_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    @property
    def n_owned(self) -> int:
        return int(self.owned_global.size)

    @property
    def n_halo(self) -> int:
        return int(self.halo_global.size)

    @property
    def n_marginal(self) -> int:
        return int(self.marginal_mask.sum())

    @property
    def n_central(self) -> int:
        return self.n_owned - self.n_marginal

    @property
    def central_mask(self) -> np.ndarray:
        return ~self.marginal_mask

    def peers_out(self) -> list[int]:
        """Peers this partition sends boundary-node data to."""
        return sorted(self.send_map.keys())

    def peers_in(self) -> list[int]:
        """Peers this partition receives halo data from."""
        return sorted(self.recv_map.keys())

    def halo_slots_from(self, peer: int) -> np.ndarray:
        """Halo array positions (0-based, pre column offset) fed by ``peer``."""
        return self.recv_map.get(peer, np.zeros(0, dtype=np.int64))

    def validate(self) -> None:
        """Check internal invariants; raises ``AssertionError`` on violation."""
        assert self.adj.shape == (self.n_owned, self.n_owned + self.n_halo)
        assert np.all(np.diff(self.owned_global) > 0), "owned ids must be strictly sorted"
        if self.n_halo:
            assert np.all(np.diff(self.halo_global) > 0), "halo ids must be strictly sorted"
            assert not np.isin(self.halo_global, self.owned_global).any()
            assert (self.halo_owner != self.part_id).all()
        covered = np.zeros(self.n_halo, dtype=int)
        for peer, slots in self.recv_map.items():
            assert peer != self.part_id
            covered[slots] += 1
        assert (covered == 1).all(), "each halo slot must be fed by exactly one peer"
        assert self.marginal_mask.shape == (self.n_owned,)


def build_local_partitions(graph: Graph, book: PartitionBook) -> list[LocalPartition]:
    """Decompose ``graph`` according to ``book`` into per-device structures.

    The construction is two-pass: first each partition derives its halo and
    receive maps independently; then send maps are resolved by matching each
    receiver's halo segment against the owner's node list (order-preserving,
    so send and receive buffers align element-for-element).
    """
    if book.num_nodes != graph.num_nodes:
        raise ValueError(
            f"partition book covers {book.num_nodes} nodes, graph has {graph.num_nodes}"
        )
    part_of = book.part_of
    adj_global = graph.to_scipy(dtype=np.float32)

    parts: list[LocalPartition] = []
    for p in range(book.num_parts):
        owned = book.owned(p)
        n_owned = owned.size
        rows = adj_global[owned]  # (n_owned, n) CSR slice
        cols_global = rows.indices.astype(np.int64)
        col_owner = part_of[cols_global]
        remote_mask = col_owner != p

        halo_global = np.unique(cols_global[remote_mask])
        halo_owner = part_of[halo_global].astype(np.int32)

        # Column remap: owned -> 0..n_owned-1, halo -> n_owned..
        g2l_owned = np.full(graph.num_nodes, -1, dtype=np.int64)
        g2l_owned[owned] = np.arange(n_owned)
        new_cols = np.empty_like(cols_global)
        new_cols[~remote_mask] = g2l_owned[cols_global[~remote_mask]]
        new_cols[remote_mask] = n_owned + np.searchsorted(
            halo_global, cols_global[remote_mask]
        )
        adj_local = sp.csr_matrix(
            (np.ones(new_cols.size, dtype=np.float32), new_cols, rows.indptr),
            shape=(n_owned, n_owned + halo_global.size),
        )

        # Marginal nodes: rows with >= 1 remote neighbor.  ``reduceat`` is
        # unusable with empty trailing rows (offsets == nnz are rejected),
        # so accumulate per-row remote counts with bincount on row ids.
        row_nnz = np.diff(rows.indptr)
        row_of_entry = np.repeat(np.arange(n_owned), row_nnz)
        remote_per_row = np.bincount(
            row_of_entry, weights=remote_mask.astype(np.float64), minlength=n_owned
        )
        marginal_mask = remote_per_row > 0

        recv_map: dict[int, np.ndarray] = {}
        for q in np.unique(halo_owner):
            recv_map[int(q)] = np.flatnonzero(halo_owner == q).astype(np.int64)

        parts.append(
            LocalPartition(
                part_id=p,
                num_parts=book.num_parts,
                owned_global=owned,
                halo_global=halo_global,
                halo_owner=halo_owner,
                adj=adj_local,
                recv_map=recv_map,
                marginal_mask=marginal_mask,
            )
        )

    # Second pass: derive send maps from every receiver's halo segments.
    for q_part in parts:
        for p, slots in q_part.recv_map.items():
            wanted_global = q_part.halo_global[slots]
            owner = parts[p]
            local_rows = np.searchsorted(owner.owned_global, wanted_global)
            if not np.array_equal(owner.owned_global[local_rows], wanted_global):
                raise AssertionError("send-map resolution hit a non-owned node")
            owner.send_map[q_part.part_id] = local_rows.astype(np.int64)

    for part in parts:
        part.validate()
    return parts
