"""Multilevel k-way graph partitioner (METIS substitute).

Three classic phases (Karypis & Kumar 1997), each implemented with
vectorized NumPy/SciPy primitives:

1. **Coarsening** — repeated handshake heavy-edge matching: every node
   proposes to its heaviest-weight neighbor; mutual proposals contract into
   a super-node.  Edge and node weights accumulate through contraction, so
   coarse cuts equal fine cuts.
2. **Initial partition** — greedy region growing on the coarsest graph:
   parts are grown one at a time from a high-degree seed, always absorbing
   the unassigned node with the strongest connection to the growing part,
   until the part reaches its node-weight target.
3. **Refinement** — at every uncoarsening step, several passes of greedy
   boundary moves (simplified Fiduccia–Mattheyses): a node moves to the
   neighboring part with the largest positive cut gain, subject to a balance
   tolerance.

Quality is not METIS-grade, but it delivers what the experiments need:
balanced parts, low cut, and *unequal pairwise boundary volumes* (the
paper's Fig. 2 phenomenon arises from exactly this kind of partitioner).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook
from repro.utils.seed import rng_from_seed

__all__ = ["metis_like_partition"]


@dataclass
class _Level:
    """One level of the multilevel hierarchy."""

    adj: sp.csr_matrix  # weighted adjacency at this level
    node_w: np.ndarray  # node weights at this level
    mapping: np.ndarray | None  # this-level node -> next-coarser-level node


def metis_like_partition(
    graph: Graph,
    num_parts: int,
    *,
    seed: int = 0,
    balance_tolerance: float = 1.05,
    refine_passes: int = 6,
    coarsen_target_factor: int = 16,
) -> PartitionBook:
    """Partition ``graph`` into ``num_parts`` balanced parts.

    Parameters
    ----------
    balance_tolerance:
        Maximum allowed ``max_part_weight / ideal_part_weight`` during
        refinement moves (METIS's *ufactor* analogue).
    refine_passes:
        Boundary-refinement passes per uncoarsening level.
    coarsen_target_factor:
        Coarsening stops when the graph has fewer than
        ``coarsen_target_factor * num_parts`` super-nodes.

    Examples
    --------
    >>> from repro.graph.datasets import load_dataset
    >>> ds = load_dataset("yelp", scale="tiny")
    >>> book = metis_like_partition(ds.graph, 4, seed=0)
    >>> int(book.sizes().min()) > 0
    True
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    n = graph.num_nodes
    if num_parts == 1:
        return PartitionBook(part_of=np.zeros(n, dtype=np.int32), num_parts=1)
    if num_parts > n:
        raise ValueError(f"cannot split {n} nodes into {num_parts} parts")

    rng = rng_from_seed(seed)

    # ---- Phase 1: coarsen --------------------------------------------------
    levels: list[_Level] = [
        _Level(adj=graph.to_scipy(dtype=np.float64), node_w=np.ones(n), mapping=None)
    ]
    target = max(64, coarsen_target_factor * num_parts)
    while levels[-1].adj.shape[0] > target:
        top = levels[-1]
        mapping, n_coarse = _handshake_matching(top.adj, rng)
        if n_coarse >= 0.95 * top.adj.shape[0]:  # matching stalled
            break
        top.mapping = mapping
        coarse_adj, coarse_w = _contract(top.adj, top.node_w, mapping, n_coarse)
        levels.append(_Level(adj=coarse_adj, node_w=coarse_w, mapping=None))

    # ---- Phase 2: initial partition on the coarsest graph -------------------
    coarsest = levels[-1]
    parts = _greedy_growing(coarsest.adj, coarsest.node_w, num_parts, rng)
    parts = _refine(
        coarsest.adj, coarsest.node_w, parts, num_parts, balance_tolerance, refine_passes
    )

    # ---- Phase 3: uncoarsen + refine ----------------------------------------
    for level in reversed(levels[:-1]):
        assert level.mapping is not None
        parts = parts[level.mapping]
        parts = _refine(
            level.adj, level.node_w, parts, num_parts, balance_tolerance, refine_passes
        )

    _ensure_nonempty(parts, num_parts)
    return PartitionBook(part_of=parts.astype(np.int32), num_parts=num_parts)


def _handshake_matching(
    adj: sp.csr_matrix, rng: np.random.Generator
) -> tuple[np.ndarray, int]:
    """One round of mutual heavy-edge matching.

    Every node points at its heaviest neighbor (random tie-break); nodes
    that point at each other contract.  Returns ``(mapping, n_coarse)``
    where ``mapping[v]`` is the coarse id of fine node ``v``.
    """
    n = adj.shape[0]
    degrees = np.diff(adj.indptr)
    # Random multiplicative jitter breaks weight ties without changing order
    # of magnitude, keeping the "heavy edge" preference intact.
    jitter = adj.copy()
    jitter.data = jitter.data * (1.0 + 0.01 * rng.random(jitter.data.size))
    candidate = np.full(n, -1, dtype=np.int64)
    nonempty = degrees > 0
    if nonempty.any():
        arg = np.asarray(jitter.argmax(axis=1)).ravel()
        candidate[nonempty] = arg[nonempty]

    safe = np.clip(candidate, 0, n - 1)
    mutual = (candidate >= 0) & (candidate[safe] == np.arange(n)) & (np.arange(n) < candidate)
    pair_lo = np.flatnonzero(mutual)
    pair_hi = candidate[pair_lo]

    mapping = np.full(n, -1, dtype=np.int64)
    mapping[pair_lo] = np.arange(pair_lo.size)
    mapping[pair_hi] = mapping[pair_lo]
    singles = np.flatnonzero(mapping < 0)
    mapping[singles] = pair_lo.size + np.arange(singles.size)
    n_coarse = pair_lo.size + singles.size
    return mapping, n_coarse


def _contract(
    adj: sp.csr_matrix, node_w: np.ndarray, mapping: np.ndarray, n_coarse: int
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Contract matched pairs: ``A' = P^T A P`` with summed weights."""
    n = adj.shape[0]
    proj = sp.csr_matrix((np.ones(n), (np.arange(n), mapping)), shape=(n, n_coarse))
    coarse = (proj.T @ adj @ proj).tocsr()
    coarse.setdiag(0)  # intra-supernode edges vanish from the cut
    coarse.eliminate_zeros()
    coarse_w = np.zeros(n_coarse)
    np.add.at(coarse_w, mapping, node_w)
    return coarse, coarse_w


def _greedy_growing(
    adj: sp.csr_matrix, node_w: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Grow ``k`` parts sequentially by strongest-connection absorption."""
    n = adj.shape[0]
    parts = np.full(n, -1, dtype=np.int64)
    target = node_w.sum() / k
    degrees = np.asarray(adj.sum(axis=1)).ravel()

    for p in range(k - 1):
        unassigned = parts < 0
        if not unassigned.any():
            break
        # Seed: highest-degree unassigned node (hubs anchor parts well).
        seed = int(np.flatnonzero(unassigned)[np.argmax(degrees[unassigned])])
        parts[seed] = p
        weight = node_w[seed]
        # Connection strength of every node to the growing part; assigned
        # nodes are masked out so argmax only sees candidates.
        conn = np.asarray(adj[[seed]].todense()).ravel().astype(np.float64)
        conn[parts >= 0] = -np.inf
        while weight < target:
            cand = int(np.argmax(conn))
            if not np.isfinite(conn[cand]) or conn[cand] <= 0:
                # Disconnected frontier: jump to the next unassigned hub.
                rest = parts < 0
                if not rest.any():
                    break
                cand = int(np.flatnonzero(rest)[np.argmax(degrees[rest])])
            parts[cand] = p
            weight += node_w[cand]
            conn += np.asarray(adj[[cand]].todense()).ravel()
            conn[parts >= 0] = -np.inf
    parts[parts < 0] = k - 1
    return parts


def _refine(
    adj: sp.csr_matrix,
    node_w: np.ndarray,
    parts: np.ndarray,
    k: int,
    balance_tolerance: float,
    passes: int,
) -> np.ndarray:
    """Greedy boundary refinement (simplified FM) with a balance constraint."""
    parts = parts.copy()
    n = adj.shape[0]
    max_w = balance_tolerance * node_w.sum() / k

    for _ in range(passes):
        onehot = sp.csr_matrix((np.ones(n), (np.arange(n), parts)), shape=(n, k))
        conn = np.asarray((adj @ onehot).todense())  # (n, k) connection weights
        own = conn[np.arange(n), parts]
        best_part = np.argmax(conn, axis=1)
        best_conn = conn[np.arange(n), best_part]
        gains = best_conn - own
        movers = np.flatnonzero((gains > 1e-12) & (best_part != parts))
        if movers.size == 0:
            break
        part_w = np.zeros(k)
        np.add.at(part_w, parts, node_w)
        part_count = np.bincount(parts, minlength=k)
        moved = 0
        for v in movers[np.argsort(-gains[movers])]:
            dst = int(best_part[v])
            src = int(parts[v])
            if dst == src:
                continue
            if part_w[dst] + node_w[v] > max_w:
                continue
            if part_count[src] <= 1:  # never empty a part
                continue
            parts[v] = dst
            part_w[src] -= node_w[v]
            part_w[dst] += node_w[v]
            part_count[src] -= 1
            part_count[dst] += 1
            moved += 1
        if moved == 0:
            break
    return parts


def _ensure_nonempty(parts: np.ndarray, k: int) -> None:
    """Repair any empty part by stealing from the largest part (in place)."""
    sizes = np.bincount(parts, minlength=k)
    for p in np.flatnonzero(sizes == 0):
        donor = int(np.argmax(sizes))
        victim = int(np.flatnonzero(parts == donor)[0])
        parts[victim] = p
        sizes[donor] -= 1
        sizes[p] += 1
