"""Unified partitioning entry point."""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook
from repro.graph.partition.metis_like import metis_like_partition
from repro.graph.partition.simple import bfs_partition, random_partition, spectral_partition
from repro.utils.validation import check_in_set

__all__ = ["partition_graph"]

_METHODS = ("metis", "random", "bfs", "spectral")


def partition_graph(
    graph: Graph, num_parts: int, *, method: str = "metis", seed: int = 0
) -> PartitionBook:
    """Partition ``graph`` into ``num_parts`` parts using ``method``.

    ``method`` is one of ``"metis"`` (multilevel, the default and the
    paper's choice), ``"random"``, ``"bfs"`` or ``"spectral"``.

    Examples
    --------
    >>> from repro.graph.datasets import load_dataset
    >>> ds = load_dataset("yelp", scale="tiny")
    >>> partition_graph(ds.graph, 2, method="random").num_parts
    2
    """
    check_in_set(method, _METHODS, name="method")
    if method == "metis":
        return metis_like_partition(graph, num_parts, seed=seed)
    if method == "random":
        return random_partition(graph, num_parts, seed=seed)
    if method == "bfs":
        return bfs_partition(graph, num_parts, seed=seed)
    return spectral_partition(graph, num_parts, seed=seed)
