"""Graph substrate: CSR graphs, synthetic datasets and graph partitioning.

This subpackage replaces DGL's graph storage and the real benchmark datasets
(Reddit, Yelp, ogbn-products, AmazonProducts), which are not available
offline.  See DESIGN.md §1 for the substitution rationale.
"""

from repro.graph.graph import Graph
from repro.graph.generators import (
    CommunityGraphConfig,
    HugeGraphConfig,
    generate_community_graph,
    generate_features_and_labels,
)
from repro.graph.io import (
    PartitionStore,
    StoreDataset,
    build_partition_store,
)
from repro.graph.datasets import (
    DATASET_CATALOG,
    DatasetSpec,
    GraphDataset,
    available_datasets,
    load_dataset,
)
from repro.graph.partition import (
    LocalPartition,
    PartitionBook,
    build_local_partitions,
    metis_like_partition,
    partition_graph,
)

__all__ = [
    "Graph",
    "CommunityGraphConfig",
    "HugeGraphConfig",
    "generate_community_graph",
    "generate_features_and_labels",
    "PartitionStore",
    "StoreDataset",
    "build_partition_store",
    "DATASET_CATALOG",
    "DatasetSpec",
    "GraphDataset",
    "available_datasets",
    "load_dataset",
    "LocalPartition",
    "PartitionBook",
    "build_local_partitions",
    "metis_like_partition",
    "partition_graph",
]
