"""Graph substrate: CSR graphs, synthetic datasets and graph partitioning.

This subpackage replaces DGL's graph storage and the real benchmark datasets
(Reddit, Yelp, ogbn-products, AmazonProducts), which are not available
offline.  See DESIGN.md §1 for the substitution rationale.
"""

from repro.graph.graph import Graph
from repro.graph.generators import (
    CommunityGraphConfig,
    generate_community_graph,
    generate_features_and_labels,
)
from repro.graph.datasets import (
    DATASET_CATALOG,
    DatasetSpec,
    GraphDataset,
    available_datasets,
    load_dataset,
)
from repro.graph.partition import (
    LocalPartition,
    PartitionBook,
    build_local_partitions,
    metis_like_partition,
    partition_graph,
)

__all__ = [
    "Graph",
    "CommunityGraphConfig",
    "generate_community_graph",
    "generate_features_and_labels",
    "DATASET_CATALOG",
    "DatasetSpec",
    "GraphDataset",
    "available_datasets",
    "load_dataset",
    "LocalPartition",
    "PartitionBook",
    "build_local_partitions",
    "metis_like_partition",
    "partition_graph",
]
