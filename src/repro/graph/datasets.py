"""Dataset catalog mirroring the paper's Table 3, at reduced scale.

Each entry reproduces the *shape* of one benchmark dataset — relative
density, feature width, class count and task type — at a node count that
trains in seconds on CPU.  Two scales are provided:

* ``tiny``  — used by tests and benchmarks (fast, seconds per run);
* ``small`` — used by the examples (minutes per run, clearer separation).

Paper reference points (Table 3):

============== ========= ============ ========= ======== ===========
Dataset          #Nodes   avg degree   #Feats    #Classes  Task
============== ========= ============ ========= ======== ===========
Reddit           232,965   ~492          602       41      single
Yelp             716,847   ~10           300      100      multi
ogbn-products  2,449,029   ~25           100       47      single
AmazonProducts 1,569,960   ~168          200      107      multi
============== ========= ============ ========= ======== ===========

The scaled versions keep the density *ordering* (Reddit ≫ Amazon ≫ products
≫ Yelp) because density drives every communication-related result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.generators import (
    CommunityGraphConfig,
    generate_community_graph,
    generate_features_and_labels,
)
from repro.graph.graph import Graph
from repro.utils.seed import RngPool

__all__ = [
    "DatasetSpec",
    "GraphDataset",
    "DATASET_CATALOG",
    "available_datasets",
    "load_dataset",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic stand-in dataset at one scale."""

    name: str
    paper_name: str
    num_nodes: int
    avg_degree: float
    num_features: int
    num_classes: int
    multilabel: bool
    homophily: float = 0.8
    degree_exponent: float = 2.5
    feature_noise: float = 2.0
    label_noise: float = 0.03
    fine_scale: float = 0.35
    fine_group: int = 2
    neighbor_locality: float = 0.95
    locality_width: int = 1

    @property
    def task(self) -> str:
        return "multi-label" if self.multilabel else "single-label"


@dataclass
class GraphDataset:
    """A fully materialized dataset: graph, features, labels and splits."""

    spec: DatasetSpec
    graph: Graph
    features: np.ndarray  # (n, F) float32
    labels: np.ndarray  # (n,) int64 or (n, C) float32
    train_mask: np.ndarray  # (n,) bool
    val_mask: np.ndarray
    test_mask: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def multilabel(self) -> bool:
        return self.spec.multilabel

    def summary_row(self) -> tuple[str, int, int, int, int, str]:
        """One catalog row: (name, nodes, edges, feats, classes, task)."""
        return (
            self.spec.name,
            self.graph.num_nodes,
            self.graph.num_edges,
            self.num_features,
            self.num_classes,
            self.spec.task,
        )


def _catalog() -> dict[str, dict[str, DatasetSpec]]:
    """Build the two-scale catalog; density ordering follows Table 3."""

    def spec(scale: str, name: str, paper: str, n: int, deg: float, f: int, c: int,
             multi: bool, homophily: float, locality: float,
             label_noise: float) -> DatasetSpec:
        # label_noise caps attainable accuracy (irreducible error), tuned so
        # each stand-in lands near its paper counterpart's accuracy range.
        return DatasetSpec(
            name=f"{name}-{scale}",
            paper_name=paper,
            num_nodes=n,
            avg_degree=deg,
            num_features=f,
            num_classes=c,
            multilabel=multi,
            homophily=homophily,
            neighbor_locality=locality,
            label_noise=label_noise,
        )

    tiny = {
        "reddit": spec("tiny", "reddit", "Reddit", 2048, 44.0, 64, 16, False, 0.88, 0.95, 0.04),
        "yelp": spec("tiny", "yelp", "Yelp", 3072, 8.0, 48, 24, True, 0.85, 0.95, 0.35),
        "ogbn-products": spec(
            "tiny", "ogbn-products", "ogbn-products", 4096, 15.0, 48, 16, False, 0.88, 0.97, 0.25
        ),
        "amazonproducts": spec(
            "tiny", "amazonproducts", "AmazonProducts", 2560, 30.0, 56, 24, True, 0.88, 0.97, 0.30
        ),
    }
    small = {
        "reddit": spec("small", "reddit", "Reddit", 8192, 60.0, 128, 24, False, 0.88, 0.95, 0.04),
        "yelp": spec("small", "yelp", "Yelp", 12288, 10.0, 96, 40, True, 0.85, 0.95, 0.35),
        "ogbn-products": spec(
            "small", "ogbn-products", "ogbn-products", 16384, 24.0, 96, 24, False, 0.88, 0.97, 0.25
        ),
        "amazonproducts": spec(
            "small", "amazonproducts", "AmazonProducts", 10240, 48.0, 112, 40, True, 0.88, 0.97, 0.30
        ),
    }
    return {"tiny": tiny, "small": small}


DATASET_CATALOG: dict[str, dict[str, DatasetSpec]] = _catalog()


def available_datasets(scale: str = "tiny") -> list[str]:
    """Names accepted by :func:`load_dataset` for the given scale."""
    return sorted(DATASET_CATALOG[scale].keys())


def _make_splits(
    n: int, rng: np.random.Generator, train_frac: float = 0.6, val_frac: float = 0.2
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Random train/val/test masks (fractions mirror common OGB-style splits)."""
    perm = rng.permutation(n)
    n_train = int(round(train_frac * n))
    n_val = int(round(val_frac * n))
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[perm[:n_train]] = True
    val_mask[perm[n_train : n_train + n_val]] = True
    test_mask[perm[n_train + n_val :]] = True
    return train_mask, val_mask, test_mask


def load_dataset(name: str, *, scale: str = "tiny", seed: int = 0) -> GraphDataset:
    """Materialize a synthetic stand-in for one of the paper's datasets.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (``"reddit"``, ``"yelp"``,
        ``"ogbn-products"``, ``"amazonproducts"``).
    scale:
        ``"tiny"`` or ``"small"``.
    seed:
        Root seed; the same ``(name, scale, seed)`` triple always produces
        the identical dataset.

    Examples
    --------
    >>> ds = load_dataset("reddit", scale="tiny", seed=0)
    >>> ds.num_nodes
    2048
    """
    if scale not in DATASET_CATALOG:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(DATASET_CATALOG)}")
    catalog = DATASET_CATALOG[scale]
    if name not in catalog:
        raise ValueError(f"unknown dataset {name!r}; choose from {sorted(catalog)}")
    spec = catalog[name]

    pool = RngPool(seed).fork(f"dataset/{spec.name}")
    graph_rng = pool.get("graph")
    feat_rng = pool.get("features")
    split_rng = pool.get("splits")

    cfg = CommunityGraphConfig(
        num_nodes=spec.num_nodes,
        avg_degree=spec.avg_degree,
        num_communities=spec.num_classes,
        homophily=spec.homophily,
        degree_exponent=spec.degree_exponent,
        neighbor_locality=spec.neighbor_locality,
        locality_width=spec.locality_width,
    )
    graph, communities = generate_community_graph(cfg, graph_rng)
    features, labels = generate_features_and_labels(
        communities,
        num_features=spec.num_features,
        num_classes=spec.num_classes,
        multilabel=spec.multilabel,
        rng=feat_rng,
        feature_noise=spec.feature_noise,
        label_noise=spec.label_noise,
        fine_scale=spec.fine_scale,
        fine_group=spec.fine_group,
    )
    train_mask, val_mask, test_mask = _make_splits(spec.num_nodes, split_rng)
    return GraphDataset(
        spec=spec,
        graph=graph,
        features=features,
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
    )
