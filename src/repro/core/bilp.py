"""The variance–time bi-objective bit-width assignment problem (Sec. 4.2).

For one GNN layer's forward (or backward) communication round, choose a
bit-width ``b_g ∈ B`` for every message *group* ``g`` to jointly minimize:

* **variance** (Eqn. 11): ``Σ_g β_g / (2^{b_g} - 1)²``;
* **straggler time** (Eqn. 10): ``max_i  θ_i · bytes_i(b) + γ_i`` over
  directed device pairs ``i``.

The weighted-sum scalarization (Eqn. 12) combines them with weight ``λ``;
both objectives are normalized to their worst-case values so ``λ`` has a
scale-free meaning (λ = 1 → pure variance minimization = everything at max
bits; λ = 0 → pure time minimization = everything at min bits).

Solvers:

* :func:`solve_milp` — exact, via the one-hot MILP and HiGHS
  (``scipy.optimize.milp``), standing in for the paper's GUROBI;
* :func:`solve_greedy` — start at max bits, repeatedly demote the group
  with the best scalarized improvement on the current straggler pair;
* :func:`solve_bruteforce` — exhaustive, for small-instance cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.quant.mixed import GROUP_HEADER_BYTES
from repro.quant.stochastic import METADATA_BYTES_PER_ROW
from repro.quant.theory import SUPPORTED_BITS
from repro.utils.validation import check_probability

__all__ = [
    "GroupSpec",
    "BitWidthProblem",
    "evaluate_assignment",
    "solve_milp",
    "solve_greedy",
    "solve_bruteforce",
]


@dataclass(frozen=True)
class GroupSpec:
    """One message group: messages of one (src → dst) pair sharing a bit-width.

    ``beta`` is the summed β of the member messages (Sec. 4.2);
    ``n_rows × dim`` elements cross the wire for this group.
    """

    src: int
    dst: int
    beta: float
    n_rows: int
    dim: int

    def payload_bytes(self, bits: int) -> float:
        """Wire bytes at ``bits``: packed payload + metadata + header."""
        packed = self.n_rows * self.dim * bits / 8.0
        return packed + self.n_rows * METADATA_BYTES_PER_ROW + GROUP_HEADER_BYTES


@dataclass
class BitWidthProblem:
    """One communication round's assignment instance."""

    groups: list[GroupSpec]
    pair_theta: dict[tuple[int, int], float]
    pair_gamma: dict[tuple[int, int], float]
    lam: float = 0.5
    bit_choices: tuple[int, ...] = SUPPORTED_BITS
    _pair_index: dict[tuple[int, int], list[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_probability(self.lam, name="lam")
        if not self.groups:
            raise ValueError("problem has no message groups")
        self.bit_choices = tuple(sorted(int(b) for b in self.bit_choices))
        if len(self.bit_choices) < 1:
            raise ValueError("need at least one bit choice")
        self._pair_index = {}
        for g_idx, g in enumerate(self.groups):
            pair = (g.src, g.dst)
            if pair not in self.pair_theta or pair not in self.pair_gamma:
                raise ValueError(f"missing cost parameters for pair {pair}")
            self._pair_index.setdefault(pair, []).append(g_idx)

    # -- objective pieces ---------------------------------------------------
    @property
    def pairs(self) -> list[tuple[int, int]]:
        return sorted(self._pair_index)

    def pair_time(self, pair: tuple[int, int], bits: np.ndarray) -> float:
        total_bytes = sum(
            self.groups[g].payload_bytes(int(bits[g])) for g in self._pair_index[pair]
        )
        return self.pair_theta[pair] * total_bytes + self.pair_gamma[pair]

    def worst_time(self, bits: np.ndarray) -> float:
        return max(self.pair_time(pair, bits) for pair in self.pairs)

    def variance(self, bits: np.ndarray) -> float:
        betas = np.array([g.beta for g in self.groups])
        return float((betas / (2.0 ** bits.astype(np.float64) - 1.0) ** 2).sum())

    # -- normalizers (worst cases) -------------------------------------------
    def variance_reference(self) -> float:
        """Variance with everything at the *lowest* bit-width (max variance)."""
        lo = np.full(len(self.groups), self.bit_choices[0])
        return max(self.variance(lo), 1e-30)

    def time_reference(self) -> float:
        """Straggler time with everything at the *highest* bit-width."""
        hi = np.full(len(self.groups), self.bit_choices[-1])
        return max(self.worst_time(hi), 1e-30)

    def scalarized(self, bits: np.ndarray) -> float:
        """Eqn. 12's objective with normalized terms."""
        var_term = self.variance(bits) / self.variance_reference()
        time_term = self.worst_time(bits) / self.time_reference()
        return self.lam * var_term + (1.0 - self.lam) * time_term


def evaluate_assignment(
    problem: BitWidthProblem, bits: np.ndarray
) -> dict[str, float]:
    """Summary of one assignment: variance, straggler time, scalarized value."""
    bits = np.asarray(bits)
    if bits.shape != (len(problem.groups),):
        raise ValueError("bits must have one entry per group")
    return {
        "variance": problem.variance(bits),
        "worst_time": problem.worst_time(bits),
        "scalarized": problem.scalarized(bits),
    }


def solve_milp(problem: BitWidthProblem, *, time_limit: float = 10.0) -> np.ndarray:
    """Exact solution of Eqn. 12 via a one-hot MILP (HiGHS).

    Variables: ``x[g, b] ∈ {0, 1}`` (group g uses bit-width b) and the
    auxiliary straggler time ``Z``; constraints pick one bit-width per
    group and force every pair's time under ``Z``.
    """
    groups = problem.groups
    choices = problem.bit_choices
    n_g, n_b = len(groups), len(choices)
    n_x = n_g * n_b
    v_ref = problem.variance_reference()
    t_ref = problem.time_reference()

    # Objective: λ/v_ref · Σ c_gb x_gb + (1-λ)/t_ref · Z, plus a vanishing
    # per-bit tie-break so equal-objective solutions prefer fewer bytes
    # (matters at λ = 0, where variance coefficients are all zero).
    tie_break = 1e-6 / max(n_g, 1)
    cost = np.zeros(n_x + 1)
    for g_idx, g in enumerate(groups):
        for b_idx, b in enumerate(choices):
            cost[g_idx * n_b + b_idx] = (
                problem.lam * (g.beta / (2.0**b - 1.0) ** 2) / v_ref
                + tie_break * b
            )
    cost[-1] = (1.0 - problem.lam) / t_ref

    constraints = []
    # Σ_b x_gb = 1
    a_onehot = np.zeros((n_g, n_x + 1))
    for g_idx in range(n_g):
        a_onehot[g_idx, g_idx * n_b : (g_idx + 1) * n_b] = 1.0
    constraints.append(LinearConstraint(a_onehot, lb=1.0, ub=1.0))

    # θ_i Σ bytes·x + γ_i ≤ Z  →  θ_i Σ bytes·x − Z ≤ −γ_i
    pairs = problem.pairs
    a_time = np.zeros((len(pairs), n_x + 1))
    ub_time = np.zeros(len(pairs))
    for p_idx, pair in enumerate(pairs):
        theta = problem.pair_theta[pair]
        for g_idx in problem._pair_index[pair]:
            for b_idx, b in enumerate(choices):
                a_time[p_idx, g_idx * n_b + b_idx] = theta * groups[
                    g_idx
                ].payload_bytes(b)
        a_time[p_idx, -1] = -1.0
        ub_time[p_idx] = -problem.pair_gamma[pair]
    constraints.append(LinearConstraint(a_time, lb=-np.inf, ub=ub_time))

    integrality = np.concatenate([np.ones(n_x), [0]])
    bounds = Bounds(
        lb=np.concatenate([np.zeros(n_x), [0.0]]),
        ub=np.concatenate([np.ones(n_x), [np.inf]]),
    )
    result = milp(
        c=cost,
        constraints=constraints,
        integrality=integrality,
        bounds=bounds,
        options={"time_limit": time_limit, "mip_rel_gap": 1e-6},
    )
    if not result.success or result.x is None:
        # HiGHS hit the time limit or an edge case; the greedy solution is
        # always feasible.
        return solve_greedy(problem)
    x = result.x[:n_x].reshape(n_g, n_b)
    picked = np.argmax(x, axis=1)
    return np.array([choices[b] for b in picked], dtype=np.int64)


def solve_greedy(problem: BitWidthProblem) -> np.ndarray:
    """Greedy demotion from max bits, guided by the scalarized objective.

    Equal-value demotions are accepted too (they shed bytes at no
    objective cost, e.g. on non-straggler pairs when λ = 0); termination
    is guaranteed because bits only ever decrease.
    """
    choices = problem.bit_choices
    bits = np.full(len(problem.groups), choices[-1], dtype=np.int64)
    best_value = problem.scalarized(bits)
    improved = True
    while improved:
        improved = False
        best_move: tuple[int, int] | None = None
        move_value = np.inf
        for g_idx in range(len(problem.groups)):
            level = choices.index(int(bits[g_idx]))
            if level == 0:
                continue
            candidate = bits.copy()
            candidate[g_idx] = choices[level - 1]
            value = problem.scalarized(candidate)
            if value < move_value:
                move_value = value
                best_move = (g_idx, choices[level - 1])
        if best_move is not None and move_value <= best_value + 1e-15:
            bits[best_move[0]] = best_move[1]
            best_value = min(best_value, move_value)
            improved = True
    return bits


def solve_bruteforce(problem: BitWidthProblem) -> np.ndarray:
    """Exhaustive search (test oracle); only for a handful of groups."""
    n_g = len(problem.groups)
    if n_g > 10:
        raise ValueError("bruteforce limited to 10 groups")
    choices = problem.bit_choices
    best_bits: np.ndarray | None = None
    best_value = np.inf
    stack = np.zeros(n_g, dtype=np.int64)

    def recurse(idx: int) -> None:
        nonlocal best_bits, best_value
        if idx == n_g:
            bits = np.array([choices[i] for i in stack], dtype=np.int64)
            value = problem.scalarized(bits)
            if value < best_value:
                best_value = value
                best_bits = bits
            return
        for level in range(len(choices)):
            stack[idx] = level
            recurse(idx + 1)

    recurse(0)
    assert best_bits is not None
    return best_bits
