"""End-to-end training orchestration for every system.

:func:`train` is the repository's main entry point: pick a system name
(``"adaqp"``, ``"vanilla"``, ``"pipegcn"``, ``"sancus"``,
``"adaqp-uniform"``, ``"adaqp-fixed"``), a dataset, a partition book and a
topology; get back real accuracy curves, simulated throughput and the
paper's time breakdowns.

Division of labour (DESIGN.md §4):

* the :class:`~repro.cluster.cluster.Cluster` executes real numerics and
  records bytes/FLOPs;
* the system's schedule converts each epoch's record into simulated time;
* the assigner's MILP solves are *measured* (they are real host work) and
  reported separately, like the paper's "Assign" bars in Fig. 10(b).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.pipegcn import StaleHaloExchange
from repro.baselines.sancus import BroadcastSkipExchange
from repro.cluster.checkpoint import (
    capture_state,
    load_checkpoint,
    restore_state,
    save_checkpoint,
)
from repro.cluster.cluster import Cluster
from repro.cluster.records import StepTimeline, TimelineSummary
from repro.cluster.exchange import (
    ExactHaloExchange,
    FixedBitProvider,
    FusedQuantizedHaloExchange,
    HaloExchange,
    QuantizedHaloExchange,
    UniformRandomBitProvider,
)
from repro.cluster.perfmodel import PerfModel
from repro.comm.costmodel import LinkCostModel
from repro.comm.topology import ClusterTopology, parse_topology
from repro.core.assigner import AdaptiveBitWidthAssigner
from repro.core.config import RunConfig
from repro.core.scheduler import (
    ScheduleResult,
    schedule_adaqp,
    schedule_pipegcn,
    schedule_quantized_no_overlap,
    schedule_sancus,
    schedule_vanilla,
)
from repro.graph.datasets import GraphDataset
from repro.graph.io import StoreDataset
from repro.graph.partition.book import PartitionBook
from repro.nn.optim import Adam
from repro.quant.stochastic import KeyedRounding
from repro.utils.logging import get_logger
from repro.utils.seed import RngPool

__all__ = ["SYSTEMS", "OVERLAP_SYSTEMS", "TrainResult", "train", "build_system"]

logger = get_logger("core.trainer")

SYSTEMS = (
    "vanilla",
    "adaqp",
    "adaqp-uniform",
    "adaqp-fixed",
    "pipegcn",
    "sancus",
    # Ablations isolating AdaQP's two contributions:
    "adaqp-no-overlap",  # adaptive quantization, serial schedule
    "vanilla-overlap",  # central/marginal overlap, full precision
)

#: Systems whose schedule overlaps central compute with marginal comm —
#: for these the cluster *executes* the split-phase pipeline (when
#: ``RunConfig.overlap`` allows), so the simulated overlap is backed by a
#: really-executed, measured interleave.
OVERLAP_SYSTEMS = frozenset(
    {"adaqp", "adaqp-uniform", "adaqp-fixed", "vanilla-overlap"}
)


@dataclass
class TrainResult:
    """Everything one training run produced."""

    system: str
    dataset: str
    topology: str
    model_kind: str
    # Learning quality (real numerics)
    curve_epochs: list[int] = field(default_factory=list)
    curve_val: list[float] = field(default_factory=list)
    curve_test: list[float] = field(default_factory=list)
    curve_loss: list[float] = field(default_factory=list)
    final_val: float = float("nan")
    final_test: float = float("nan")
    # Simulated performance
    epoch_times: list[float] = field(default_factory=list)
    comm_time_total: float = 0.0
    comp_time_total: float = 0.0
    quant_time_total: float = 0.0
    wire_bytes_total: int = 0
    # Host-side measured overhead (bit-width assignment)
    assign_seconds: float = 0.0
    bit_histogram: dict[int, int] = field(default_factory=dict)
    # Measured overlap accounting (overlapped runs only).  The summary
    # covers every executed step of the run; recent_timelines keeps only
    # the last ``RunConfig.timeline_history`` per-step entries, so
    # multi-hundred-epoch runs never accumulate unbounded stage lists.
    timeline_summary: TimelineSummary = field(default_factory=TimelineSummary)
    recent_timelines: list[StepTimeline] = field(default_factory=list)
    # Fault tolerance: the first epoch this run actually executed (> 0
    # when resumed from a checkpoint) and the transport's post-close
    # health report (worker exit codes, respawns, fault counters).
    start_epoch: int = 0
    transport_health: dict = field(default_factory=dict)

    @property
    def epochs(self) -> int:
        return len(self.epoch_times)

    @property
    def epoch_time_mean(self) -> float:
        return float(np.mean(self.epoch_times)) if self.epoch_times else float("nan")

    @property
    def throughput(self) -> float:
        """Simulated epochs per second (the paper's Table 4 metric)."""
        mean = self.epoch_time_mean
        return 1.0 / mean if mean > 0 else float("inf")

    @property
    def train_wallclock(self) -> float:
        """Simulated training seconds (sum of epoch times)."""
        return float(np.sum(self.epoch_times))

    @property
    def total_wallclock(self) -> float:
        """Paper's wall-clock: simulated training plus measured assignment."""
        return self.train_wallclock + self.assign_seconds

    def breakdown(self) -> dict[str, float]:
        """Mean per-epoch comm/comp/quant seconds (paper Fig. 10a)."""
        n = max(self.epochs, 1)
        return {
            "comm": self.comm_time_total / n,
            "comp": self.comp_time_total / n,
            "quant": self.quant_time_total / n,
        }


@dataclass
class _SystemSetup:
    exchange: HaloExchange
    schedule: object  # Callable[[EpochRecord, LinkCostModel, PerfModel], ScheduleResult]
    assigner: AdaptiveBitWidthAssigner | None = None


def _warn_if_ram_tight(cluster: Cluster) -> None:
    """Warn when the run's estimated working set exceeds available RAM.

    Advisory only — a streaming (huge-graph) run whose estimate is close
    to the limit may still complete, just with the page cache thrashing;
    an in-RAM run that exceeds it is headed for the OOM killer.  The
    estimate is :func:`estimate_peak_resident`, the same model the
    huge-graph benchmark cross-checks against measured peak RSS.
    """
    from repro.cluster.memory import estimate_peak_resident, host_memory

    host = host_memory()
    if host is None:
        return
    estimate = estimate_peak_resident(cluster)
    if estimate > host.available_bytes:
        hint = (
            "streaming mode pages device windows in and out on demand"
            if cluster._stream_ops is not None
            else "consider `repro prepare` + `repro train --store` "
            "(out-of-core huge-graph mode)"
        )
        logger.warning(
            "estimated peak working set %.1f GiB exceeds available RAM "
            "%.1f GiB — %s",
            estimate / 2**30,
            host.available_bytes / 2**30,
            hint,
        )


def build_system(
    name: str,
    cluster: Cluster,
    cost_model: LinkCostModel,
    config: RunConfig,
) -> _SystemSetup:
    """Compose the exchange policy + schedule for one system name."""
    pool = RngPool(config.seed).fork(f"system/{name}")
    # All adaqp variants run the fused engine by default; the legacy
    # per-peer path remains available (fused_exchange=False) for the
    # equivalence suite and the perf benchmarks' unfused baseline.
    quantized_cls = (
        FusedQuantizedHaloExchange if config.fused_exchange else QuantizedHaloExchange
    )

    def rounding():
        # Keyed mode: noise is a pure function of (run seed, block
        # coordinates), derived per system from the same pool fork the
        # stream generator would use — deterministic given config.seed.
        if config.rng_mode == "keyed":
            return KeyedRounding(pool.fork("rounding").seed)
        return pool.get("rounding")

    if name == "vanilla":
        return _SystemSetup(exchange=ExactHaloExchange(), schedule=schedule_vanilla)
    if name == "adaqp":
        assigner = AdaptiveBitWidthAssigner(
            cluster,
            cost_model,
            lam=config.lam,
            group_size=config.group_size,
            period=config.reassign_period,
            bit_choices=config.bit_choices,
            solver=config.solver,
            default_bits=config.default_bits,
        )
        exchange = quantized_cls(assigner, rounding(), tracer=assigner)
        return _SystemSetup(exchange=exchange, schedule=schedule_adaqp, assigner=assigner)
    if name == "adaqp-uniform":
        provider = UniformRandomBitProvider(
            pool.get("uniform-bits"),
            choices=config.bit_choices,
            period=config.uniform_period,
        )
        exchange = quantized_cls(provider, rounding())
        return _SystemSetup(exchange=exchange, schedule=schedule_adaqp)
    if name == "adaqp-fixed":
        exchange = quantized_cls(
            FixedBitProvider(config.fixed_bits), rounding()
        )
        return _SystemSetup(exchange=exchange, schedule=schedule_adaqp)
    if name == "adaqp-no-overlap":
        assigner = AdaptiveBitWidthAssigner(
            cluster,
            cost_model,
            lam=config.lam,
            group_size=config.group_size,
            period=config.reassign_period,
            bit_choices=config.bit_choices,
            solver=config.solver,
            default_bits=config.default_bits,
        )
        exchange = quantized_cls(assigner, rounding(), tracer=assigner)
        return _SystemSetup(
            exchange=exchange,
            schedule=schedule_quantized_no_overlap,
            assigner=assigner,
        )
    if name == "vanilla-overlap":
        # Full-precision messages under AdaQP's three-stage overlap (the
        # exact record has zero quant bytes, so stages 1/3 cost nothing
        # beyond the marginal compute).
        return _SystemSetup(exchange=ExactHaloExchange(), schedule=schedule_adaqp)
    if name == "pipegcn":
        return _SystemSetup(exchange=StaleHaloExchange(), schedule=schedule_pipegcn)
    if name == "sancus":
        return _SystemSetup(
            exchange=BroadcastSkipExchange(config.sancus_staleness),
            schedule=schedule_sancus,
        )
    raise ValueError(f"unknown system {name!r}; choose from {SYSTEMS}")


def train(
    system: str,
    dataset: GraphDataset | StoreDataset,
    book: PartitionBook,
    topology: ClusterTopology | str,
    config: RunConfig | None = None,
    *,
    cost_model: LinkCostModel | None = None,
    perf_model: PerfModel | None = None,
    fault_plan=None,
) -> TrainResult:
    """Train ``system`` on ``dataset`` partitioned by ``book``.

    ``dataset`` may be a fully materialized :class:`GraphDataset` or a
    :class:`~repro.graph.io.StoreDataset` opened from an on-disk partition
    store (huge-graph mode — the cluster then streams each partition's
    memmapped regions through the fused engine instead of holding the
    graph in RAM; ``book`` must be the store's own
    :meth:`~repro.graph.io.PartitionStore.book`).

    ``fault_plan`` (a :class:`~repro.comm.faults.FaultPlan`) injects
    transport faults for the fault-tolerance suite; ``None`` disables
    injection.  ``config.checkpoint_dir``/``config.resume`` control
    epoch-boundary checkpointing — under ``rng_mode="keyed"`` a resumed
    run is bitwise identical to the uninterrupted one.

    Examples
    --------
    >>> from repro.graph import load_dataset, partition_graph
    >>> from repro.core import RunConfig
    >>> ds = load_dataset("yelp", scale="tiny")
    >>> book = partition_graph(ds.graph, 4, method="metis")
    >>> cfg = RunConfig(epochs=2, hidden_dim=8, eval_every=1)
    >>> result = train("adaqp", ds, book, "2M-2D", cfg)
    >>> result.epochs
    2
    """
    config = config or RunConfig()
    if isinstance(topology, str):
        topology = parse_topology(topology)
    if topology.num_devices != book.num_parts:
        raise ValueError(
            f"topology {topology.name} has {topology.num_devices} devices but the "
            f"partition book has {book.num_parts} parts"
        )
    cost_model = cost_model or LinkCostModel.for_topology(topology)
    perf_model = perf_model or PerfModel()

    cluster = Cluster(
        dataset,
        book,
        model_kind=config.model_kind,
        hidden_dim=config.hidden_dim,
        num_layers=config.num_layers,
        dropout=config.dropout,
        seed=config.seed,
        fused_compute=config.fused_compute,
        overlap=config.overlap and system in OVERLAP_SYSTEMS,
        transport=config.transport,
        pipeline_depth=config.pipeline_depth,
        transport_timeout_s=config.transport_timeout_s,
        fault_plan=fault_plan,
    )
    _warn_if_ram_tight(cluster)
    setup = build_system(system, cluster, cost_model, config)
    optimizers = [Adam(dev.model.parameters(), lr=config.lr) for dev in cluster.devices]

    result = TrainResult(
        system=system,
        dataset=dataset.spec.name,
        topology=topology.name,
        model_kind=config.model_kind,
    )

    start_epoch = 0
    if config.resume and config.checkpoint_dir is not None:
        state = load_checkpoint(config.checkpoint_dir)
        if state is not None:
            start_epoch = restore_state(
                state, cluster, optimizers, setup.exchange, assigner=setup.assigner
            )
            logger.info(
                "%s resumed from %s at epoch %d",
                system, config.checkpoint_dir, start_epoch,
            )
    result.start_epoch = start_epoch

    try:
        for epoch in range(start_epoch, config.epochs):
            record = cluster.train_epoch(setup.exchange, epoch)
            for opt in optimizers:
                opt.step()

            if config.checkpoint_dir is not None and (
                (epoch + 1) % config.checkpoint_every == 0
                or epoch == config.epochs - 1
            ):
                # The post-step epoch boundary: nothing is in flight, and
                # a resume from here replays epoch+1 onward bitwise.
                save_checkpoint(
                    config.checkpoint_dir,
                    capture_state(
                        cluster,
                        optimizers,
                        setup.exchange,
                        epoch=epoch + 1,
                        assigner=setup.assigner,
                        meta={"system": system, "dataset": dataset.spec.name},
                    ),
                )

            sched: ScheduleResult = setup.schedule(record, cost_model, perf_model)
            result.epoch_times.append(sched.epoch_time)
            result.comm_time_total += sched.comm_time
            result.comp_time_total += sched.comp_time
            result.quant_time_total += sched.quant_time
            result.wire_bytes_total += record.total_wire_bytes()
            result.curve_loss.append(record.loss)
            if record.timeline_summary.steps:
                result.timeline_summary.merge(record.timeline_summary)
                result.recent_timelines.extend(record.timelines)
                overflow = len(result.recent_timelines) - config.timeline_history
                if overflow > 0:
                    del result.recent_timelines[:overflow]

            if epoch % config.eval_every == 0 or epoch == config.epochs - 1:
                metrics = cluster.evaluate()
                result.curve_epochs.append(epoch)
                result.curve_val.append(metrics["val"])
                result.curve_test.append(metrics["test"])
                logger.info(
                    "%s epoch %d: loss=%.4f val=%.4f",
                    system, epoch, record.loss, metrics["val"],
                )
    finally:
        # Even a failed run must release the async transport's worker
        # thread (and whatever plan scratch its pending closure captured).
        cluster.close()
        # Health is read after close so the report includes the final
        # worker exit-code audit (abnormal deaths surface here).
        result.transport_health = cluster.transport.transport_health()
    result.final_val = result.curve_val[-1] if result.curve_val else float("nan")
    result.final_test = result.curve_test[-1] if result.curve_test else float("nan")
    if setup.assigner is not None:
        result.assign_seconds = setup.assigner.assignment_seconds
        result.bit_histogram = setup.assigner.assignment_histogram()
    return result
