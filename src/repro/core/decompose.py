"""Central/marginal graph decomposition (paper Sec. 3.1).

Each device's partition splits into:

* the **marginal graph** — marginal nodes (those with ≥ 1 remote neighbor)
  and all their edges; its computation needs halo messages;
* the **central graph** — central nodes and their (entirely local) edges;
  its computation can start immediately and overlap with the marginal
  graph's communication.

The split is what the AdaQP schedule overlaps; this module quantifies it
(row counts, aggregation nonzeros, FLOP shares) for the scheduler and for
the Fig. 3 / Table 2 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.perfmodel import PerfModel
from repro.gnn.coefficients import AggregationContext
from repro.graph.partition.book import LocalPartition

__all__ = ["DecompositionStats", "decompose_partition"]


@dataclass(frozen=True)
class DecompositionStats:
    """Central/marginal split of one device's partition."""

    part_id: int
    n_owned: int
    n_central: int
    n_marginal: int
    agg_nnz_total: int
    agg_nnz_central: int
    agg_nnz_marginal: int

    @property
    def central_row_fraction(self) -> float:
        return self.n_central / max(self.n_owned, 1)

    @property
    def marginal_row_fraction(self) -> float:
        return self.n_marginal / max(self.n_owned, 1)

    def central_compute_time(
        self, d_in: int, d_out: int, perf: PerfModel, *, dense_factor: float = 1.0
    ) -> float:
        """Modelled time of one layer's central-graph computation."""
        spmm = PerfModel.spmm_flops(self.agg_nnz_central, d_in)
        gemm = dense_factor * PerfModel.gemm_flops(self.n_central, d_in, d_out)
        return perf.compute_time(spmm, gemm)

    def marginal_compute_time(
        self, d_in: int, d_out: int, perf: PerfModel, *, dense_factor: float = 1.0
    ) -> float:
        """Modelled time of one layer's marginal-graph computation."""
        spmm = PerfModel.spmm_flops(self.agg_nnz_marginal, d_in)
        gemm = dense_factor * PerfModel.gemm_flops(self.n_marginal, d_in, d_out)
        return perf.compute_time(spmm, gemm)


def decompose_partition(
    part: LocalPartition, agg: AggregationContext
) -> DecompositionStats:
    """Split one partition into central and marginal components.

    >>> from repro.graph import load_dataset, partition_graph, build_local_partitions
    >>> from repro.gnn import build_aggregation
    >>> ds = load_dataset("yelp", scale="tiny")
    >>> book = partition_graph(ds.graph, 2, method="metis")
    >>> parts = build_local_partitions(ds.graph, book)
    >>> agg = build_aggregation(parts[0], ds.graph.degrees.astype(float), "gcn")
    >>> stats = decompose_partition(parts[0], agg)
    >>> stats.n_central + stats.n_marginal == stats.n_owned
    True
    """
    central_mask = part.central_mask
    nnz_central = agg.nnz_for_rows(central_mask)
    nnz_total = agg.nnz
    return DecompositionStats(
        part_id=part.part_id,
        n_owned=part.n_owned,
        n_central=int(central_mask.sum()),
        n_marginal=int(part.marginal_mask.sum()),
        agg_nnz_total=nnz_total,
        agg_nnz_central=nnz_central,
        agg_nnz_marginal=nnz_total - nnz_central,
    )
