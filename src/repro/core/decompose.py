"""Central/marginal graph decomposition (paper Sec. 3.1).

Each device's partition splits into:

* the **marginal graph** — marginal nodes (those with ≥ 1 remote neighbor)
  and all their edges; its computation needs halo messages;
* the **central graph** — central nodes and their (entirely local) edges;
  its computation can start immediately and overlap with the marginal
  graph's communication.

The split is what the AdaQP schedule overlaps; this module quantifies it
(row counts, aggregation nonzeros, FLOP shares) for the scheduler and for
the Fig. 3 / Table 2 benchmarks — and hands the pipelined executor the
row permutation (:func:`split_rows`) it splits its operators with.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.perfmodel import PerfModel
from repro.gnn.coefficients import AggregationContext
from repro.graph.partition.book import LocalPartition

__all__ = ["DecompositionStats", "RowSplit", "decompose_partition", "split_rows"]


@dataclass(frozen=True)
class DecompositionStats:
    """Central/marginal split of one device's partition."""

    part_id: int
    n_owned: int
    n_central: int
    n_marginal: int
    agg_nnz_total: int
    agg_nnz_central: int
    agg_nnz_marginal: int

    @property
    def central_row_fraction(self) -> float:
        return self.n_central / max(self.n_owned, 1)

    @property
    def marginal_row_fraction(self) -> float:
        return self.n_marginal / max(self.n_owned, 1)

    def central_compute_time(
        self, d_in: int, d_out: int, perf: PerfModel, *, dense_factor: float = 1.0
    ) -> float:
        """Modelled time of one layer's central-graph computation."""
        spmm = PerfModel.spmm_flops(self.agg_nnz_central, d_in)
        gemm = dense_factor * PerfModel.gemm_flops(self.n_central, d_in, d_out)
        return perf.compute_time(spmm, gemm)

    def marginal_compute_time(
        self, d_in: int, d_out: int, perf: PerfModel, *, dense_factor: float = 1.0
    ) -> float:
        """Modelled time of one layer's marginal-graph computation."""
        spmm = PerfModel.spmm_flops(self.agg_nnz_marginal, d_in)
        gemm = dense_factor * PerfModel.gemm_flops(self.n_marginal, d_in, d_out)
        return perf.compute_time(spmm, gemm)


@dataclass(frozen=True)
class RowSplit:
    """Central/marginal row split of one device's owned block.

    Both index arrays are ascending local owned-row ids; together they
    partition ``0..n_owned-1``.  ``permutation`` is the row order the
    pipelined executor gathers by — central block first, marginal block
    after — so each sub-step's dense work runs on one contiguous block.
    The executor's *persistent* buffers stay in original row order (row
    permutations change the accumulation order of reductions — loss sums,
    ``xᵀ·d`` weight gradients — and would break the engines' bitwise
    contract); the permutation lives only in gathers and operators.
    """

    central_rows: np.ndarray  # (n_central,) int64, ascending
    marginal_rows: np.ndarray  # (n_marginal,) int64, ascending

    @property
    def n_central(self) -> int:
        return int(self.central_rows.size)

    @property
    def n_marginal(self) -> int:
        return int(self.marginal_rows.size)

    @property
    def permutation(self) -> np.ndarray:
        """All owned rows, central block first then marginal block."""
        return np.concatenate([self.central_rows, self.marginal_rows])


def split_rows(part: LocalPartition) -> RowSplit:
    """Split one partition's owned rows into central and marginal ids.

    A partition with no remote neighbors (e.g. the single device of a
    1-partition cluster) yields an empty marginal block — its comm stage
    is a no-op and every row computes in the central window.
    """
    return RowSplit(
        central_rows=np.flatnonzero(part.central_mask).astype(np.int64),
        marginal_rows=np.flatnonzero(part.marginal_mask).astype(np.int64),
    )


def decompose_partition(
    part: LocalPartition, agg: AggregationContext
) -> DecompositionStats:
    """Split one partition into central and marginal components.

    >>> from repro.graph import load_dataset, partition_graph, build_local_partitions
    >>> from repro.gnn import build_aggregation
    >>> ds = load_dataset("yelp", scale="tiny")
    >>> book = partition_graph(ds.graph, 2, method="metis")
    >>> parts = build_local_partitions(ds.graph, book)
    >>> agg = build_aggregation(parts[0], ds.graph.degrees.astype(float), "gcn")
    >>> stats = decompose_partition(parts[0], agg)
    >>> stats.n_central + stats.n_marginal == stats.n_owned
    True
    """
    central_mask = part.central_mask
    nnz_central = agg.nnz_for_rows(central_mask)
    nnz_total = agg.nnz
    return DecompositionStats(
        part_id=part.part_id,
        n_owned=part.n_owned,
        n_central=int(central_mask.sum()),
        n_marginal=int(part.marginal_mask.sum()),
        agg_nnz_total=nnz_total,
        agg_nnz_central=nnz_central,
        agg_nnz_marginal=nnz_total - nnz_central,
    )
