"""AdaQP core: the paper's contribution.

* :mod:`repro.core.decompose` — central/marginal graph decomposition
  (Sec. 3.1);
* :mod:`repro.core.bilp` — the variance–time bi-objective bit-width
  assignment problem (Eqns. 10–12) with exact MILP and greedy solvers;
* :mod:`repro.core.assigner` — the Adaptive Bit-width Assigner (Sec. 3.3,
  Fig. 6): traces layer inputs, periodically re-solves, scatters
  assignments;
* :mod:`repro.core.scheduler` — epoch-time schedule simulators for
  Vanilla, AdaQP (three-stage resource isolation, Fig. 7), PipeGCN and
  SANCUS;
* :mod:`repro.core.trainer` — the end-to-end training loop producing
  accuracy curves, simulated throughput and time breakdowns.
"""

from repro.core.config import RunConfig
from repro.core.decompose import DecompositionStats, decompose_partition
from repro.core.bilp import (
    BitWidthProblem,
    GroupSpec,
    evaluate_assignment,
    solve_bruteforce,
    solve_greedy,
    solve_milp,
)
from repro.core.assigner import AdaptiveBitWidthAssigner
from repro.core.scheduler import (
    SCHEDULES,
    ScheduleResult,
    schedule_adaqp,
    schedule_pipegcn,
    schedule_sancus,
    schedule_vanilla,
)
from repro.core.trainer import SYSTEMS, TrainResult, train

__all__ = [
    "RunConfig",
    "DecompositionStats",
    "decompose_partition",
    "BitWidthProblem",
    "GroupSpec",
    "solve_milp",
    "solve_greedy",
    "solve_bruteforce",
    "evaluate_assignment",
    "AdaptiveBitWidthAssigner",
    "ScheduleResult",
    "SCHEDULES",
    "schedule_vanilla",
    "schedule_adaqp",
    "schedule_pipegcn",
    "schedule_sancus",
    "TrainResult",
    "train",
    "SYSTEMS",
]
