"""The Adaptive Bit-width Assigner (paper Sec. 3.3, Fig. 6).

Lifecycle per re-assignment period:

1. **Trace** — every quantized transfer reports its input rows through
   :meth:`AdaptiveBitWidthAssigner.observe`; the assigner keeps the latest
   per-message value ranges (step 1 of Fig. 6).
2. **Gather + build** — at the period boundary the master assigner builds
   one :class:`~repro.core.bilp.BitWidthProblem` per (layer, direction):
   per-message β values (α²-weighted, Theorem 3) are computed, messages
   are sorted by β within each device pair and chunked into groups of
   ``group_size`` (the paper's variable-count reduction), and the cost
   model supplies each pair's (θ, γ) (steps 2).
3. **Solve** — problems are solved in a thread pool (step 3; mirrors the
   paper's master-side parallelism), wall time is *measured* and reported
   as assignment overhead.
4. **Scatter** — per-message bit-widths are written back; subsequent
   transfers pick them up via :meth:`bits_for` (step 4).

Until the first solve, all messages use ``default_bits``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.comm.costmodel import LinkCostModel
from repro.core.bilp import BitWidthProblem, GroupSpec, solve_greedy, solve_milp
from repro.quant.theory import SUPPORTED_BITS, beta_values
from repro.utils.logging import get_logger
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_in_set, check_probability

__all__ = ["AdaptiveBitWidthAssigner"]

logger = get_logger("core.assigner")

_SOLVERS = {"milp": solve_milp, "greedy": solve_greedy}


@dataclass
class _TraceEntry:
    """Latest observation for one (phase, layer, src, dst) message block."""

    value_range: np.ndarray  # (n_rows,) max - min per message
    dim: int


class AdaptiveBitWidthAssigner:
    """Implements both the ``BitProvider`` and tracer protocols.

    Parameters
    ----------
    cluster:
        The :class:`~repro.cluster.cluster.Cluster`; used to read the
        static α² aggregation weights of every message and the layer
        widths.
    cost_model:
        Link cost model supplying each pair's (θ, γ) for Eqn. 10.
    lam:
        Variance-vs-time weight λ of Eqn. 12.
    group_size:
        Messages per group (paper Appendix B; smaller = finer control,
        bigger solve).
    period:
        Re-assignment period in epochs.
    solver:
        ``"milp"`` (exact, default) or ``"greedy"``.
    default_bits:
        Bit-width used before the first solve (8 = most conservative).
    """

    def __init__(
        self,
        cluster,
        cost_model: LinkCostModel,
        *,
        lam: float = 0.5,
        group_size: int = 100,
        period: int = 50,
        bit_choices: tuple[int, ...] = SUPPORTED_BITS,
        solver: str = "milp",
        default_bits: int = 8,
        max_workers: int = 4,
    ) -> None:
        check_probability(lam, name="lam")
        check_in_set(solver, tuple(_SOLVERS), name="solver")
        check_in_set(default_bits, SUPPORTED_BITS, name="default_bits")
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if period < 1:
            raise ValueError("period must be >= 1")
        self.cluster = cluster
        self.cost_model = cost_model
        self.lam = float(lam)
        self.group_size = int(group_size)
        self.period = int(period)
        self.bit_choices = tuple(sorted(int(b) for b in bit_choices))
        self.solver = solver
        self.default_bits = int(default_bits)
        self.max_workers = int(max_workers)

        self.stopwatch = Stopwatch()
        self.num_reassignments = 0
        self._traces: dict[tuple[str, int, int, int], _TraceEntry] = {}
        self._assignments: dict[tuple[str, int, int, int], np.ndarray] = {}
        # Static α² weight of every message, keyed like traces.  Forward
        # messages p→q align with q.recv_map[p]; backward messages q→p are
        # the same node set observed from the halo side.
        self._alpha_sq: dict[tuple[int, int], np.ndarray] = {}
        for dev in cluster.devices:
            for p, slots in dev.part.recv_map.items():
                # dev aggregates these halo messages with these α² sums.
                self._alpha_sq[(p, dev.rank)] = dev.agg.halo_alpha_sq[slots]

    # ------------------------------------------------------------------
    # Tracer protocol (Fig. 6 step 1)
    # ------------------------------------------------------------------
    def observe(
        self, phase: str, layer: int, src: int, dst: int, rows: np.ndarray
    ) -> None:
        if rows.size == 0:
            return
        self._traces[(phase, layer, src, dst)] = _TraceEntry(
            value_range=(rows.max(axis=1) - rows.min(axis=1)).astype(np.float64),
            dim=int(rows.shape[1]),
        )

    # ------------------------------------------------------------------
    # BitProvider protocol
    # ------------------------------------------------------------------
    def bits_for(
        self, layer: int, phase: str, src: int, dst: int, n_rows: int
    ) -> np.ndarray:
        assigned = self._assignments.get((phase, layer, src, dst))
        if assigned is not None and assigned.size == n_rows:
            return assigned
        return np.full(n_rows, self.default_bits, dtype=np.int64)

    def set_epoch(self, epoch: int) -> None:
        """Trainer hook: re-assign at every period boundary (after warmup)."""
        if epoch > 0 and epoch % self.period == 0 and self._traces:
            self.reassign()

    # ------------------------------------------------------------------
    # Fig. 6 steps 2–4
    # ------------------------------------------------------------------
    @property
    def assignment_seconds(self) -> float:
        """Measured wall time spent solving (the paper's 'Assign' bar)."""
        return self.stopwatch.total("assign")

    def reassign(self) -> None:
        """Build and solve one problem per (phase, layer); scatter results."""
        with self.stopwatch.lap("assign"):
            problem_keys = sorted({(phase, layer) for phase, layer, _, _ in self._traces})
            built = [
                (key, self._build_problem(*key))
                for key in problem_keys
            ]
            built = [(key, prob) for key, prob in built if prob is not None]
            solver = _SOLVERS[self.solver]

            if len(built) > 1 and self.max_workers > 1:
                with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                    solutions = list(
                        pool.map(lambda item: solver(item[1][0]), built)
                    )
            else:
                solutions = [solver(prob[0]) for _, prob in built]

            for (key, (problem, row_maps)), bits in zip(built, solutions):
                phase, layer = key
                self._scatter(phase, layer, problem, row_maps, bits)
            self.num_reassignments += 1
        logger.info(
            "reassignment %d solved %d problems in %.3fs",
            self.num_reassignments,
            len(built),
            self.stopwatch.laps.get("assign", 0.0),
        )

    def _build_problem(
        self, phase: str, layer: int
    ) -> tuple[BitWidthProblem, dict] | None:
        """Group this round's messages by β (paper's grouping trick)."""
        groups: list[GroupSpec] = []
        row_maps: dict[tuple[int, int], list[np.ndarray]] = {}
        pair_theta: dict[tuple[int, int], float] = {}
        pair_gamma: dict[tuple[int, int], float] = {}

        for (t_phase, t_layer, src, dst), entry in self._traces.items():
            if t_phase != phase or t_layer != layer:
                continue
            alpha_key = (src, dst) if phase == "fwd" else (dst, src)
            alpha_sq = self._alpha_sq.get(alpha_key)
            if alpha_sq is None or alpha_sq.size != entry.value_range.size:
                # Topology mismatch (shouldn't happen); fall back to ones.
                alpha_sq = np.ones_like(entry.value_range)
            beta = beta_values(entry.value_range, entry.dim, alpha_sq)
            order = np.argsort(-beta, kind="stable")
            pair = (src, dst)
            theta, gamma = self.cost_model.pair_parameters(src, dst)
            pair_theta[pair] = theta
            pair_gamma[pair] = gamma
            row_maps[pair] = []
            for start in range(0, order.size, self.group_size):
                rows = order[start : start + self.group_size]
                groups.append(
                    GroupSpec(
                        src=src,
                        dst=dst,
                        beta=float(beta[rows].sum()),
                        n_rows=int(rows.size),
                        dim=entry.dim,
                    )
                )
                row_maps[pair].append(rows)
        if not groups:
            return None
        problem = BitWidthProblem(
            groups=groups,
            pair_theta=pair_theta,
            pair_gamma=pair_gamma,
            lam=self.lam,
            bit_choices=self.bit_choices,
        )
        return problem, row_maps

    def _scatter(
        self,
        phase: str,
        layer: int,
        problem: BitWidthProblem,
        row_maps: dict[tuple[int, int], list[np.ndarray]],
        bits: np.ndarray,
    ) -> None:
        """Turn per-group solutions back into per-message assignments."""
        cursor: dict[tuple[int, int], int] = {pair: 0 for pair in row_maps}
        per_key: dict[tuple[str, int, int, int], np.ndarray] = {}
        for g_idx, group in enumerate(problem.groups):
            pair = (group.src, group.dst)
            rows = row_maps[pair][cursor[pair]]
            cursor[pair] += 1
            key = (phase, layer, group.src, group.dst)
            if key not in per_key:
                n_total = sum(r.size for r in row_maps[pair])
                per_key[key] = np.full(n_total, self.default_bits, dtype=np.int64)
            per_key[key][rows] = int(bits[g_idx])
        self._assignments.update(per_key)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Copies of the adaptive state a resumed run needs for bitwise
        equivalence: assignments (what bits_for serves now), traces (what
        the next period-boundary reassign will solve from) and the
        reassignment counter."""
        return {
            "num_reassignments": int(self.num_reassignments),
            "assignments": {
                key: arr.copy() for key, arr in self._assignments.items()
            },
            "traces": {
                key: (entry.value_range.copy(), int(entry.dim))
                for key, entry in self._traces.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        self.num_reassignments = int(state["num_reassignments"])
        self._assignments = {
            tuple(key): np.asarray(arr, dtype=np.int64)
            for key, arr in state["assignments"].items()
        }
        self._traces = {
            tuple(key): _TraceEntry(
                value_range=np.asarray(vr, dtype=np.float64), dim=int(dim)
            )
            for key, (vr, dim) in state["traces"].items()
        }

    # ------------------------------------------------------------------
    def assignment_histogram(self) -> dict[int, int]:
        """How many messages currently sit at each bit-width (diagnostics)."""
        counts: dict[int, int] = {b: 0 for b in self.bit_choices}
        for arr in self._assignments.values():
            for b, c in zip(*np.unique(arr, return_counts=True)):
                counts[int(b)] = counts.get(int(b), 0) + int(c)
        return counts
