"""Run configuration (the paper's Table 8, plus simulator knobs)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.comm.transports import TransportSpec
from repro.gnn.model import MODEL_KINDS
from repro.quant.theory import SUPPORTED_BITS
from repro.utils.validation import check_in_set, check_probability

__all__ = ["RunConfig"]


@dataclass(frozen=True)
class RunConfig:
    """Hyper-parameters for one training run.

    Model/optimizer fields follow the paper's Table 8 (3 layers, LayerNorm,
    Adam at lr 0.01); AdaQP fields follow Sec. 3.3/5.5 (λ, message group
    size, re-assignment period, B = {2, 4, 8}).
    """

    # Model / optimizer
    model_kind: str = "gcn"
    hidden_dim: int = 64
    num_layers: int = 3
    dropout: float = 0.5
    lr: float = 0.01
    epochs: int = 60
    eval_every: int = 5
    seed: int = 0

    # AdaQP
    lam: float = 0.5
    group_size: int = 100
    reassign_period: int = 20
    bit_choices: tuple[int, ...] = SUPPORTED_BITS
    solver: str = "milp"
    default_bits: int = 8
    fixed_bits: int = 2  # for the fixed-bit-width systems
    uniform_period: int = 20  # resampling cadence of the uniform baseline

    # Simulator engines.  All three flags swap execution shape only —
    # every path is numerically identical under the same seed; they exist
    # for equivalence tests, benchmarks and as escape hatches.
    # fused_exchange: batched (fused) quantized exchange vs. the legacy
    # per-peer, per-group path.
    fused_exchange: bool = True
    # fused_compute: cluster-fused layer compute (block-diagonal
    # aggregation + stacked GEMMs across all devices) vs. the legacy
    # per-device layer loop.
    fused_compute: bool = True
    # overlap: split-phase central/marginal pipelined execution (post
    # marginal messages -> central sub-step while they fly -> finalize ->
    # marginal sub-step), with measured per-stage timelines.  Applied to
    # the systems whose schedule overlaps (the adaqp variants and
    # vanilla-overlap); requires fused_compute.
    overlap: bool = True
    # transport: which transport backend runs each step's quantize/pack/
    # post (and decode) jobs, as a spec string "backend[:workers]":
    #   "auto"      (default) worker backend when the run overlaps and
    #               the host has a spare core, sync otherwise;
    #   "sync"      inline mailbox transport;
    #   "worker:4"  thread pool — overlaps the central sub-step's
    #               GIL-releasing BLAS/spmv;
    #   "process:4" worker processes over shared memory — scales
    #               quantize-heavy steps past the thread pool's GIL
    #               ceiling (requires rng_mode="keyed" for the sharded
    #               path; stream-mode runs degrade to inline execution).
    # Every backend is bit-identical to sync under the same seed.  With
    # rng_mode="keyed" the fused engine shards each step's encode across
    # the pool and decodes per receiver on it, so results are identical
    # at ANY worker count; with rng_mode="stream" exchanges submit one
    # job per step regardless (the stream contract is order-dependent).
    transport: str = "auto"
    # pipeline_depth: how many (layer, phase) exchange steps the split-
    # phase executor keeps in flight.  1 is the classic Fig. 7 pipeline
    # (post -> central -> finalize -> marginal, one tag at a time); 2 (the
    # default) adds cross-step lookahead: the forward pass posts layer
    # L+1's marginal messages from inside layer L's marginal sub-step (the
    # moment its owned outputs land, before the backward-cache scatters),
    # and the backward pass defers each layer's parameter-partial GEMMs to
    # run after the next step's post is dispatched.  Both depths are
    # bitwise-identical by construction — posts stay strictly ordered and
    # every deferred block reads only per-layer buffers — so the knob
    # trades nothing but execution shape.  Ignored (treated as 1) when
    # overlap is off.
    pipeline_depth: int = 2
    # rng_mode: where stochastic-rounding noise comes from.  "keyed" (the
    # default) derives each message block's noise from a counter-based
    # Philox generator keyed on (run_seed, epoch, phase, layer, src, dst)
    # — a pure function of data coordinates, so training results are
    # bitwise-reproducible regardless of execution order, thread
    # placement or transport worker count.  "stream" restores the legacy
    # shared sequential generator (the pre-PR-5 bitwise contract), which
    # pins every encode to a fixed global order.
    rng_mode: str = "keyed"
    # timeline_history: how many measured per-step StepTimeline entries a
    # TrainResult retains (most recent first to go: oldest dropped); the
    # aggregate TimelineSummary always covers every step, so
    # multi-hundred-epoch runs keep bounded memory without losing the
    # overlap accounting.
    timeline_history: int = 48

    # Fault tolerance
    # checkpoint_dir: where epoch-boundary checkpoints land (and, with
    # resume=True, where the trainer looks for one).  None disables
    # checkpointing entirely.
    checkpoint_dir: str | None = None
    # checkpoint_every: save cadence in epochs (a checkpoint after every
    # N-th optimizer step; the run's final epoch always saves too so a
    # completed run can seed an elastic restart).
    checkpoint_every: int = 1
    # resume: restore from the newest checkpoint in checkpoint_dir before
    # training.  Under rng_mode="keyed" the resumed run is bitwise
    # identical to the uninterrupted one; an empty/missing directory
    # falls through to a fresh start.
    resume: bool = False
    # transport_timeout_s: per-tag completion deadline for async
    # transports — a stalled tag raises TransportError naming its
    # outstanding shards instead of hanging the run.  None waits forever.
    transport_timeout_s: float | None = 120.0

    # Baselines
    sancus_staleness: int = 4

    def __post_init__(self) -> None:
        check_in_set(self.model_kind, MODEL_KINDS, name="model_kind")
        check_probability(self.dropout, name="dropout")
        check_probability(self.lam, name="lam")
        if self.hidden_dim < 1 or self.num_layers < 1:
            raise ValueError("hidden_dim and num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        for b in self.bit_choices:
            check_in_set(b, SUPPORTED_BITS, name="bit_choices entry")
        check_in_set(self.fixed_bits, SUPPORTED_BITS, name="fixed_bits")
        check_in_set(self.rng_mode, ("keyed", "stream"), name="rng_mode")
        transport = self.transport
        if isinstance(transport, TransportSpec):
            transport = str(transport)
        # Validates backend name and worker count (rejects junk early,
        # without importing any backend module).
        TransportSpec.parse(transport)
        object.__setattr__(self, "transport", transport)
        if self.pipeline_depth not in (1, 2):
            raise ValueError("pipeline_depth must be 1 or 2")
        if self.timeline_history < 0:
            raise ValueError("timeline_history must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.transport_timeout_s is not None and self.transport_timeout_s <= 0:
            raise ValueError("transport_timeout_s must be positive (or None)")
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")

    def with_overrides(self, **kwargs) -> "RunConfig":
        """Functional update (configs are frozen)."""
        return replace(self, **kwargs)
