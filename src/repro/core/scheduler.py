"""Schedule simulators: how each system turns one epoch's work into time.

Each schedule consumes an :class:`~repro.cluster.records.EpochRecord`
(measured wire bytes + analytic FLOPs) plus the link cost model and the
device performance model, and returns the epoch's simulated duration with
a comm/comp/quant breakdown.  Keeping the schedule separate from execution
lets one training run be re-timed under several policies (used by the
overlap-ablation benchmark).

Policies (paper Fig. 4):

* **Vanilla** — per layer and direction: barrier-synchronized ring all2all,
  then compute; nothing overlaps.
* **AdaQP** — the three-stage GPU-resource-isolated pipeline of Fig. 7:
  (1) quantize outgoing marginal messages; (2) marginal-graph ring
  all2all *in parallel with* central-graph compute; (3) de-quantize, then
  marginal-graph compute.  Reported "computation" covers only the marginal
  graph — central compute is hidden inside stage 2, exactly the paper's
  accounting for Fig. 10.
* **PipeGCN** — cross-iteration pipelining: the epoch's total communication
  fully overlaps its total computation (staleness makes this legal), so
  epoch time is the max of the two.
* **SANCUS** — sequential (unicast) embedding broadcasts; skipped
  broadcasts (historical embeddings) simply contribute no bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.perfmodel import PerfModel
from repro.cluster.records import EpochRecord, PhaseRecord
from repro.comm.allreduce import ring_allreduce_time
from repro.comm.costmodel import LinkCostModel
from repro.comm.ring import ring_all2all_time

__all__ = [
    "ScheduleResult",
    "schedule_vanilla",
    "schedule_adaqp",
    "schedule_pipegcn",
    "schedule_sancus",
    "SCHEDULES",
    "device_comm_times",
    "device_compute_times",
]


@dataclass
class ScheduleResult:
    """Simulated epoch duration and its breakdown.

    ``comm + comp + quant`` equals ``epoch_time`` for the barrier-style
    schedules (Vanilla, AdaQP, SANCUS); for PipeGCN the epoch is the max of
    overlapped totals, so the buckets describe the overlapped quantities
    instead of stacking.
    """

    epoch_time: float
    comm_time: float
    comp_time: float
    quant_time: float
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Epochs per second."""
        return 1.0 / self.epoch_time if self.epoch_time > 0 else float("inf")


def _phase_comm_ring(phase: PhaseRecord, cost: LinkCostModel) -> float:
    total, _ = ring_all2all_time(phase.bytes_matrix, cost)
    return total


def _phase_comp_full(phase: PhaseRecord, perf: PerfModel) -> float:
    """Max over devices of the full (all-node) layer computation."""
    times = [
        perf.compute_time(phase.agg_flops[d], phase.dense_flops[d])
        for d in range(phase.num_devices)
    ]
    return max(times)


def schedule_vanilla(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """Synchronous interleaved comm→comp per layer (paper Fig. 4a)."""
    comm = sum(_phase_comm_ring(p, cost) for p in record.phases)
    comp = sum(_phase_comp_full(p, perf) for p in record.phases)
    comm += ring_allreduce_time(record.grad_allreduce_bytes, cost)
    epoch = comm + comp
    return ScheduleResult(
        epoch_time=epoch, comm_time=comm, comp_time=comp, quant_time=0.0
    )


def schedule_adaqp(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """AdaQP's three-stage overlap (paper Figs. 4b and 7)."""
    comm_bucket = 0.0
    comp_bucket = 0.0
    quant_bucket = 0.0
    epoch = 0.0
    for phase in record.phases:
        n = phase.num_devices
        stage1 = max(perf.quant_time(phase.quant_send_bytes[d]) for d in range(n))
        ring = _phase_comm_ring(phase, cost)
        central = max(
            perf.compute_time(
                phase.agg_flops_central[d], phase.dense_flops_central[d]
            )
            for d in range(n)
        )
        stage2 = max(ring, central)
        dequant = max(perf.quant_time(phase.quant_recv_bytes[d]) for d in range(n))
        marginal = max(
            perf.compute_time(
                phase.agg_flops_marginal[d], phase.dense_flops_marginal[d]
            )
            for d in range(n)
        )
        stage3 = dequant + marginal
        epoch += stage1 + stage2 + stage3
        quant_bucket += stage1 + dequant
        comm_bucket += stage2  # central compute hides inside this stage
        comp_bucket += marginal
    allreduce = ring_allreduce_time(record.grad_allreduce_bytes, cost)
    comm_bucket += allreduce
    epoch += allreduce
    return ScheduleResult(
        epoch_time=epoch,
        comm_time=comm_bucket,
        comp_time=comp_bucket,
        quant_time=quant_bucket,
    )


def schedule_pipegcn(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """Cross-iteration pipelining: comm hides under compute (or vice versa)."""
    comm = sum(_phase_comm_ring(p, cost) for p in record.phases)
    comp = sum(_phase_comp_full(p, perf) for p in record.phases)
    allreduce = ring_allreduce_time(record.grad_allreduce_bytes, cost)
    epoch = max(comm, comp) + allreduce
    return ScheduleResult(
        epoch_time=epoch,
        comm_time=comm + allreduce,
        comp_time=comp,
        quant_time=0.0,
        detail={"overlapped": min(comm, comp)},
    )


def schedule_sancus(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """Sequential unicast broadcasts (no overlap), as the paper describes."""
    comm = 0.0
    for phase in record.phases:
        bm = phase.bytes_matrix
        n = phase.num_devices
        comm += sum(
            cost.time(s, d, bm[s, d]) for s in range(n) for d in range(n) if s != d
        )
    comp = sum(_phase_comp_full(p, perf) for p in record.phases)
    allreduce = ring_allreduce_time(record.grad_allreduce_bytes, cost)
    comm += allreduce
    epoch = comm + comp
    return ScheduleResult(
        epoch_time=epoch, comm_time=comm, comp_time=comp, quant_time=0.0
    )


def schedule_quantized_no_overlap(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """Quantization without parallelization (ablation): Vanilla's serial
    comm → comp layout, plus the quant/de-quant kernels on the critical
    path.  Isolates how much of AdaQP's win comes from traffic reduction
    alone."""
    comm_bucket = 0.0
    comp_bucket = 0.0
    quant_bucket = 0.0
    for phase in record.phases:
        n = phase.num_devices
        quant = max(perf.quant_time(phase.quant_send_bytes[d]) for d in range(n))
        dequant = max(perf.quant_time(phase.quant_recv_bytes[d]) for d in range(n))
        comm_bucket += _phase_comm_ring(phase, cost)
        comp_bucket += _phase_comp_full(phase, perf)
        quant_bucket += quant + dequant
    comm_bucket += ring_allreduce_time(record.grad_allreduce_bytes, cost)
    epoch = comm_bucket + comp_bucket + quant_bucket
    return ScheduleResult(
        epoch_time=epoch,
        comm_time=comm_bucket,
        comp_time=comp_bucket,
        quant_time=quant_bucket,
    )


SCHEDULES = {
    "vanilla": schedule_vanilla,
    "adaqp": schedule_adaqp,
    "pipegcn": schedule_pipegcn,
    "sancus": schedule_sancus,
    "quantized-no-overlap": schedule_quantized_no_overlap,
}


# ---------------------------------------------------------------------------
# Per-device views (Table 2, Fig. 3 benchmarks)
# ---------------------------------------------------------------------------
def device_comm_times(
    record: EpochRecord, cost: LinkCostModel
) -> np.ndarray:
    """Per-device communication occupancy: each ring round, a device is busy
    for its own send; rounds are barriers, so the device also waits for the
    round's straggler.  This returns the *send occupancy* (the paper's
    per-device 'comm.' column in Table 2)."""
    if not record.phases:
        raise ValueError("record has no phases")
    n = record.phases[0].num_devices
    busy = np.zeros(n)
    for phase in record.phases:
        bm = phase.bytes_matrix
        for s in range(n):
            for d in range(n):
                if s != d:
                    busy[s] += cost.time(s, d, bm[s, d])
    return busy


def device_compute_times(
    record: EpochRecord, perf: PerfModel, *, central_only: bool = False
) -> np.ndarray:
    """Per-device total compute time across the epoch's phases."""
    if not record.phases:
        raise ValueError("record has no phases")
    n = record.phases[0].num_devices
    total = np.zeros(n)
    for phase in record.phases:
        for d in range(n):
            if central_only:
                total[d] += perf.compute_time(
                    phase.agg_flops_central[d], phase.dense_flops_central[d]
                )
            else:
                total[d] += perf.compute_time(phase.agg_flops[d], phase.dense_flops[d])
    return total
