"""Schedule simulators: how each system turns one epoch's work into time.

Each schedule consumes an :class:`~repro.cluster.records.EpochRecord`
(measured wire bytes + analytic FLOPs) plus the link cost model and the
device performance model, and returns the epoch's simulated duration with
a comm/comp/quant breakdown.  Keeping the schedule separate from execution
lets one training run be re-timed under several policies (used by the
overlap-ablation benchmark).

Stage accounting is shared with the executor: every schedule builds
modelled :class:`~repro.cluster.records.StepTimeline` instances via
``StepTimeline.from_record`` — the same step-DAG type the split-phase
pipelined executor emits in *measured* form — instead of keeping its own
per-device comm/comp helpers.

Policies (paper Fig. 4):

* **Vanilla** — per layer and direction: barrier-synchronized ring all2all,
  then compute; nothing overlaps.
* **AdaQP** — the three-stage GPU-resource-isolated pipeline of Fig. 7:
  (1) quantize outgoing marginal messages; (2) marginal-graph ring
  all2all *in parallel with* central-graph compute; (3) de-quantize, then
  marginal-graph compute.  Reported "computation" covers only the marginal
  graph — central compute is hidden inside stage 2, exactly the paper's
  accounting for Fig. 10.
* **PipeGCN** — cross-iteration pipelining: the epoch's total communication
  fully overlaps its total computation (staleness makes this legal), so
  epoch time is the max of the two.
* **SANCUS** — sequential (unicast) embedding broadcasts; skipped
  broadcasts (historical embeddings) simply contribute no bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.perfmodel import PerfModel
from repro.cluster.records import EpochRecord, StepTimeline
from repro.comm.allreduce import ring_allreduce_time
from repro.comm.costmodel import LinkCostModel
from repro.comm.ring import ring_all2all_time

__all__ = [
    "ScheduleResult",
    "schedule_vanilla",
    "schedule_adaqp",
    "schedule_adaqp_pipelined",
    "schedule_pipegcn",
    "schedule_sancus",
    "SCHEDULES",
    "device_comm_times",
    "device_compute_times",
]


@dataclass
class ScheduleResult:
    """Simulated epoch duration and its breakdown.

    ``comm + comp + quant`` equals ``epoch_time`` for the barrier-style
    schedules (Vanilla, AdaQP, SANCUS); for PipeGCN the epoch is the max of
    overlapped totals, so the buckets describe the overlapped quantities
    instead of stacking.
    """

    epoch_time: float
    comm_time: float
    comp_time: float
    quant_time: float
    detail: dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Epochs per second."""
        return 1.0 / self.epoch_time if self.epoch_time > 0 else float("inf")


def _modeled_timelines(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> list[StepTimeline]:
    return [StepTimeline.from_record(p, cost, perf) for p in record.phases]


def _serial_comm_comp(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> tuple[float, float]:
    """Ring-comm and full-compute totals for the non-splitting schedules.

    Uses the timeline type's per-device accounting directly — building a
    full :class:`StepTimeline` per phase would model the central/marginal
    and quant stages these schedules never read.
    """
    comm = sum(ring_all2all_time(p.bytes_matrix, cost)[0] for p in record.phases)
    comp = sum(
        float(StepTimeline.device_compute(p, perf).max()) for p in record.phases
    )
    return comm, comp


def schedule_vanilla(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """Synchronous interleaved comm→comp per layer (paper Fig. 4a)."""
    comm, comp = _serial_comm_comp(record, cost, perf)
    comm += ring_allreduce_time(record.grad_allreduce_bytes, cost)
    epoch = comm + comp
    return ScheduleResult(
        epoch_time=epoch, comm_time=comm, comp_time=comp, quant_time=0.0
    )


def schedule_adaqp(
    record: EpochRecord,
    cost: LinkCostModel,
    perf: PerfModel,
    *,
    pipeline_depth: int = 1,
) -> ScheduleResult:
    """AdaQP's three-stage overlap (paper Figs. 4b and 7).

    ``pipeline_depth=2`` models the executor's two-deep cross-step
    interleave: step ``i``'s quantize+post runs inside step ``i-1``'s
    marginal window (forward lookahead; dependency-mirrored backward), so
    for each consecutive same-phase pair the schedule hides
    ``min(quantize_s[i], marginal_s[i-1])`` — the dispatch cost survives
    only where the previous marginal window is too short to cover it.
    Phase-boundary steps (the first forward and first backward layer)
    have no prior window and keep their full quantize stage.
    """
    if pipeline_depth not in (1, 2):
        raise ValueError(f"pipeline_depth must be 1 or 2, got {pipeline_depth}")
    timelines = _modeled_timelines(record, cost, perf)
    quant_bucket = sum(t.quantize_s + t.dequantize_s for t in timelines)
    # Central compute hides inside the overlap stage's comm bucket.
    comm_bucket = sum(t.overlap_stage_s for t in timelines)
    comp_bucket = sum(t.marginal_s for t in timelines)
    epoch = sum(t.pipelined_s for t in timelines)
    hidden_lookahead = 0.0
    if pipeline_depth == 2:
        for prev, cur in zip(timelines, timelines[1:]):
            if prev.phase == cur.phase:
                hidden_lookahead += min(cur.quantize_s, prev.marginal_s)
        epoch -= hidden_lookahead
    allreduce = ring_allreduce_time(record.grad_allreduce_bytes, cost)
    comm_bucket += allreduce
    epoch += allreduce
    detail = (
        {"hidden_lookahead": hidden_lookahead} if pipeline_depth == 2 else {}
    )
    return ScheduleResult(
        epoch_time=epoch,
        comm_time=comm_bucket,
        comp_time=comp_bucket,
        quant_time=quant_bucket,
        detail=detail,
    )


def schedule_adaqp_pipelined(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """:func:`schedule_adaqp` at ``pipeline_depth=2`` (Fig. 10 extension:
    the two-deep cross-step interleave the PR-8 executor runs)."""
    return schedule_adaqp(record, cost, perf, pipeline_depth=2)


def schedule_pipegcn(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """Cross-iteration pipelining: comm hides under compute (or vice versa)."""
    comm, comp = _serial_comm_comp(record, cost, perf)
    allreduce = ring_allreduce_time(record.grad_allreduce_bytes, cost)
    epoch = max(comm, comp) + allreduce
    return ScheduleResult(
        epoch_time=epoch,
        comm_time=comm + allreduce,
        comp_time=comp,
        quant_time=0.0,
        detail={"overlapped": min(comm, comp)},
    )


def schedule_sancus(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """Sequential unicast broadcasts (no overlap), as the paper describes."""
    # Serialized pairwise unicasts: every device's send occupancy stacks.
    comm = sum(
        StepTimeline.device_comm_occupancy(p, cost).sum() for p in record.phases
    )
    comp = sum(
        float(StepTimeline.device_compute(p, perf).max()) for p in record.phases
    )
    allreduce = ring_allreduce_time(record.grad_allreduce_bytes, cost)
    comm += allreduce
    epoch = comm + comp
    return ScheduleResult(
        epoch_time=epoch, comm_time=comm, comp_time=comp, quant_time=0.0
    )


def schedule_quantized_no_overlap(
    record: EpochRecord, cost: LinkCostModel, perf: PerfModel
) -> ScheduleResult:
    """Quantization without parallelization (ablation): Vanilla's serial
    comm → comp layout, plus the quant/de-quant kernels on the critical
    path.  Isolates how much of AdaQP's win comes from traffic reduction
    alone."""
    timelines = _modeled_timelines(record, cost, perf)
    comm_bucket = sum(t.comm_s for t in timelines)
    comp_bucket = sum(t.comp_full_s for t in timelines)
    quant_bucket = sum(t.quantize_s + t.dequantize_s for t in timelines)
    comm_bucket += ring_allreduce_time(record.grad_allreduce_bytes, cost)
    epoch = comm_bucket + comp_bucket + quant_bucket
    return ScheduleResult(
        epoch_time=epoch,
        comm_time=comm_bucket,
        comp_time=comp_bucket,
        quant_time=quant_bucket,
    )


SCHEDULES = {
    "vanilla": schedule_vanilla,
    "adaqp": schedule_adaqp,
    "adaqp-pipelined": schedule_adaqp_pipelined,
    "pipegcn": schedule_pipegcn,
    "sancus": schedule_sancus,
    "quantized-no-overlap": schedule_quantized_no_overlap,
}


# ---------------------------------------------------------------------------
# Per-device views (Table 2, Fig. 3 benchmarks)
# ---------------------------------------------------------------------------
def device_comm_times(
    record: EpochRecord, cost: LinkCostModel
) -> np.ndarray:
    """Per-device communication occupancy: each ring round, a device is busy
    for its own send; rounds are barriers, so the device also waits for the
    round's straggler.  This returns the *send occupancy* (the paper's
    per-device 'comm.' column in Table 2)."""
    if not record.phases:
        raise ValueError("record has no phases")
    busy = np.zeros(record.phases[0].num_devices)
    for phase in record.phases:
        busy += StepTimeline.device_comm_occupancy(phase, cost)
    return busy


def device_compute_times(
    record: EpochRecord, perf: PerfModel, *, central_only: bool = False
) -> np.ndarray:
    """Per-device total compute time across the epoch's phases."""
    if not record.phases:
        raise ValueError("record has no phases")
    total = np.zeros(record.phases[0].num_devices)
    for phase in record.phases:
        total += StepTimeline.device_compute(phase, perf, central_only=central_only)
    return total
