"""PipeGCN-style exchange: epoch-stale boundary features and gradients.

PipeGCN (Wan et al., MLSys 2022) hides communication inside computation by
consuming the halo messages *sent during the previous epoch* while the
current epoch's messages travel.  Two consequences the paper leans on:

* throughput: communication fully overlaps computation (modelled by
  :func:`repro.core.scheduler.schedule_pipegcn`), which wins only when the
  graph is dense enough for compute to cover comm (paper Sec. 5.1's Reddit
  discussion);
* convergence: one-epoch-stale embeddings/gradients slow convergence
  (paper Fig. 9; O(T^{-2/3}) vs O(T^{-1})).

Epoch 0 performs a synchronous warm-up exchange so training never sees
uninitialized halos.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.exchange import HaloExchange
from repro.comm.transport import Transport

__all__ = ["StaleHaloExchange"]


class StaleHaloExchange(HaloExchange):
    """Exact-precision transfers consumed one epoch late."""

    quantizes = False

    def __init__(self) -> None:
        # Caches: key = (kind, layer) -> {dst_rank: {src_rank: payload}}
        self._fwd_cache: dict[int, dict[int, dict[int, np.ndarray]]] = {}
        self._bwd_cache: dict[int, dict[int, dict[int, np.ndarray]]] = {}
        self._epoch = 0

    def on_epoch_start(self, epoch: int) -> None:
        self._epoch = epoch

    # ------------------------------------------------------------------
    def exchange_embeddings(
        self,
        layer: int,
        devices: list,
        transport: Transport,
        h_by_dev: list[np.ndarray],
        out: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        tag = f"fwd/L{layer}"
        for dev in devices:
            part = dev.part
            for q in part.peers_out():
                # The gather always copies (fancy indexing), so cached
                # payloads stay frozen even when ``h_by_dev`` entries are
                # views of the fused engine's reused buffers.
                rows = np.ascontiguousarray(
                    h_by_dev[dev.rank][part.send_map[q]], dtype=np.float32
                )
                transport.post(dev.rank, q, tag, rows, rows.nbytes)

        fresh: dict[int, dict[int, np.ndarray]] = {
            dev.rank: transport.collect(dev.rank, tag) for dev in devices
        }
        cached = self._fwd_cache.get(layer)
        source = cached if cached is not None else fresh  # warm-up epoch: sync
        self._fwd_cache[layer] = fresh

        halo_by_dev: list[np.ndarray] = []
        for dev in devices:
            part = dev.part
            d = h_by_dev[dev.rank].shape[1]
            halo = self._halo_out(out, dev.rank, part.n_halo, d)
            for p, payload in source[dev.rank].items():
                halo[part.recv_map[p]] = payload
            halo_by_dev.append(halo)
        return halo_by_dev

    def exchange_gradients(
        self,
        layer: int,
        devices: list,
        transport: Transport,
        d_halo_by_dev: list[np.ndarray],
        d_own_by_dev: list[np.ndarray],
    ) -> None:
        tag = f"bwd/L{layer}"
        for dev in devices:
            part = dev.part
            for q in part.peers_in():
                rows = np.ascontiguousarray(
                    d_halo_by_dev[dev.rank][part.recv_map[q]], dtype=np.float32
                )
                transport.post(dev.rank, q, tag, rows, rows.nbytes)

        fresh = {dev.rank: transport.collect(dev.rank, tag) for dev in devices}
        cached = self._bwd_cache.get(layer)
        source = cached if cached is not None else fresh
        self._bwd_cache[layer] = fresh

        for dev in devices:
            part = dev.part
            for p, payload in source[dev.rank].items():
                if payload.shape == d_own_by_dev[dev.rank][part.send_map[p]].shape:
                    d_own_by_dev[dev.rank][part.send_map[p]] += payload
