"""PipeGCN-style exchange: epoch-stale boundary features and gradients.

PipeGCN (Wan et al., MLSys 2022) hides communication inside computation by
consuming the halo messages *sent during the previous epoch* while the
current epoch's messages travel.  Two consequences the paper leans on:

* throughput: communication fully overlaps computation (modelled by
  :func:`repro.core.scheduler.schedule_pipegcn`), which wins only when the
  graph is dense enough for compute to cover comm (paper Sec. 5.1's Reddit
  discussion);
* convergence: one-epoch-stale embeddings/gradients slow convergence
  (paper Fig. 9; O(T^{-2/3}) vs O(T^{-1})).

Epoch 0 performs a synchronous warm-up exchange so training never sees
uninitialized halos.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.exchange import HaloExchange, InFlightStep
from repro.comm.transport import SyncTransport as Transport

__all__ = ["StaleHaloExchange"]


class StaleHaloExchange(HaloExchange):
    """Exact-precision transfers consumed one epoch late.

    Split-phase like every exchange: ``post_step`` ships this epoch's
    payloads (snapshot copies), ``finalize_step`` collects them into the
    cache and serves the *previous* epoch's payloads — the warm-up epoch
    consumes its own messages synchronously.
    """

    quantizes = False

    def __init__(self) -> None:
        # Caches: layer -> {dst_rank: {src_rank: payload}}
        self._fwd_cache: dict[int, dict[int, dict[int, np.ndarray]]] = {}
        self._bwd_cache: dict[int, dict[int, dict[int, np.ndarray]]] = {}
        self._epoch = 0

    def on_epoch_start(self, epoch: int) -> None:
        self._epoch = epoch

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The one-epoch-stale payload caches (bitwise resume): a resumed
        epoch must consume exactly the payloads the interrupted run's
        previous epoch posted."""

        def copy_cache(cache):
            return {
                layer: {
                    dst: {src: rows.copy() for src, rows in box.items()}
                    for dst, box in by_dst.items()
                }
                for layer, by_dst in cache.items()
            }

        return {
            "fwd_cache": copy_cache(self._fwd_cache),
            "bwd_cache": copy_cache(self._bwd_cache),
        }

    def load_state_dict(self, state: dict) -> None:
        def coerce(cache):
            return {
                int(layer): {
                    int(dst): {
                        int(src): np.asarray(rows, dtype=np.float32)
                        for src, rows in box.items()
                    }
                    for dst, box in by_dst.items()
                }
                for layer, by_dst in cache.items()
            }

        self._fwd_cache = coerce(state["fwd_cache"])
        self._bwd_cache = coerce(state["bwd_cache"])

    # ------------------------------------------------------------------
    def post_step(
        self,
        layer: int,
        phase: str,
        devices: list,
        transport: Transport,
        values_by_dev: list[np.ndarray],
        out: list[np.ndarray] | None = None,
    ) -> InFlightStep:
        # ``out`` is accepted for API parity (the pipelined executor names
        # halo destinations at post time); the stale policy always
        # scatters in finalize, where the cache decides what lands.
        tag = f"{phase}/L{layer}"
        staged: list[tuple[int, int, np.ndarray]] = []
        for dev in devices:
            part = dev.part
            maps = part.send_map if phase == "fwd" else part.recv_map
            for q in sorted(maps.keys()):
                # The gather always copies (fancy indexing), so cached
                # payloads stay frozen even when ``values_by_dev`` entries
                # are views of the fused engine's reused buffers.
                rows = np.ascontiguousarray(
                    values_by_dev[dev.rank][maps[q]], dtype=np.float32
                )
                staged.append((dev.rank, q, rows))
        if staged:
            # Posting is the deferred half (async transports run it on the
            # worker); the snapshot above already happened on this thread.
            def job() -> None:
                for src, q, rows in staged:
                    transport.post(src, q, tag, rows, rows.nbytes)

            transport.defer(tag, job)
        dim = int(values_by_dev[devices[0].rank].shape[1])
        return InFlightStep(layer, phase, tag, devices, transport, dim)

    def finalize_step(
        self, step: InFlightStep, out: list[np.ndarray] | None = None
    ) -> list[np.ndarray] | None:
        step.mark_done()
        fresh: dict[int, dict[int, np.ndarray]] = {
            dev.rank: step.transport.collect(dev.rank, step.tag)
            for dev in step.devices
        }
        cache = self._fwd_cache if step.phase == "fwd" else self._bwd_cache
        cached = cache.get(step.layer)
        source = cached if cached is not None else fresh  # warm-up epoch: sync
        cache[step.layer] = fresh

        if step.phase == "fwd":
            halo_by_dev: list[np.ndarray] = []
            for dev in step.devices:
                part = dev.part
                halo = self._halo_out(out, dev.rank, part.n_halo, step.dim)
                for p, payload in source[dev.rank].items():
                    halo[part.recv_map[p]] = payload
                halo_by_dev.append(halo)
            return halo_by_dev
        if out is None:
            raise ValueError("backward finalize_step requires out= buffers")
        for dev in step.devices:
            part = dev.part
            for p, payload in source[dev.rank].items():
                if payload.shape == out[dev.rank][part.send_map[p]].shape:
                    out[dev.rank][part.send_map[p]] += payload
        return None
