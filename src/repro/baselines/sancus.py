"""SANCUS-style exchange: broadcast skipping with historical embeddings.

SANCUS (Peng et al., VLDB 2022) is "staleness-aware communication-avoiding"
training: devices re-broadcast their embedding blocks only periodically
(subject to a staleness bound) and peers otherwise compute with historical
embeddings.  The reproduction captures the three behaviours the paper
reports:

* skipped broadcasts → zero bytes on the wire for that device/layer that
  epoch (historical embeddings serve reads);
* stale embeddings plus locally-truncated gradients → slower convergence
  and accuracy degradation (paper Fig. 9 / Table 4);
* sequential *full-partition* broadcasts → communication slower than
  boundary-only ring all2all even with skipping (paper Sec. 5.1: SANCUS
  often loses to Vanilla), modelled by
  :func:`repro.core.scheduler.schedule_sancus`.

Two design notes:

* SANCUS replicates whole partition embedding blocks (its decentralized
  caches hold peers' partitions), so a broadcast ships ``n_owned × d``
  floats — not just boundary rows.  This is what makes its communication
  pattern expensive.
* Gradient handling: the decentralized historical-embedding design has no
  backward message push, so halo gradients are dropped — the source of
  its gradient bias.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.exchange import HaloExchange, InFlightStep
from repro.comm.transport import SyncTransport as Transport

__all__ = ["BroadcastSkipExchange"]


class BroadcastSkipExchange(HaloExchange):
    """Full-block embedding broadcasts under a bounded-staleness skip rule.

    Parameters
    ----------
    staleness_bound:
        A device re-broadcasts a layer's embeddings every
        ``staleness_bound`` epochs; in between, peers use historical
        values (staleness up to ``staleness_bound - 1`` epochs).  1 means
        broadcast every epoch (no staleness, pure sequential-broadcast
        Vanilla).
    """

    quantizes = False

    def __init__(self, staleness_bound: int = 4) -> None:
        if staleness_bound < 1:
            raise ValueError("staleness_bound must be >= 1")
        self.staleness_bound = int(staleness_bound)
        self._epoch = 0
        # (layer, dst) -> {src: historical full block}
        self._historical: dict[tuple[int, int], dict[int, np.ndarray]] = {}
        self.broadcasts_sent = 0
        self.broadcasts_skipped = 0

    def on_epoch_start(self, epoch: int) -> None:
        self._epoch = epoch

    def _broadcast_now(self) -> bool:
        return self._epoch % self.staleness_bound == 0

    def state_dict(self) -> dict:
        """Historical embedding blocks + skip counters (bitwise resume):
        skipped-broadcast epochs after a restore must serve exactly the
        blocks the interrupted run last broadcast."""
        return {
            "historical": {
                key: {src: block.copy() for src, block in hist.items()}
                for key, hist in self._historical.items()
            },
            "broadcasts_sent": int(self.broadcasts_sent),
            "broadcasts_skipped": int(self.broadcasts_skipped),
        }

    def load_state_dict(self, state: dict) -> None:
        self._historical = {
            tuple(key): {
                int(src): np.asarray(block, dtype=np.float32)
                for src, block in hist.items()
            }
            for key, hist in state["historical"].items()
        }
        self.broadcasts_sent = int(state["broadcasts_sent"])
        self.broadcasts_skipped = int(state["broadcasts_skipped"])

    def post_step(
        self,
        layer: int,
        phase: str,
        devices: list,
        transport: Transport,
        values_by_dev: list[np.ndarray],
        out: list[np.ndarray] | None = None,
    ) -> InFlightStep:
        # ``out`` is accepted for API parity; the broadcast-skip policy
        # scatters from its historical cache in finalize.
        if phase == "fwd":
            broadcast = self._broadcast_now()
            staged: list[tuple[int, list[int], np.ndarray]] = []
            for dev in devices:
                peers = dev.part.peers_out()
                if not peers:
                    continue
                if broadcast:
                    # Always copy: the historical cache must hold a frozen
                    # snapshot, and ``values_by_dev`` entries may be views
                    # of the fused compute engine's buffers, which are
                    # overwritten in later epochs (``ascontiguousarray``
                    # would alias them).
                    block = np.array(
                        values_by_dev[dev.rank], dtype=np.float32, order="C"
                    )
                    self.broadcasts_sent += 1
                    staged.append((dev.rank, peers, block))
                else:
                    self.broadcasts_skipped += 1
            if staged:
                # Deferred half: async transports run the posting loop on
                # the worker; the blocks above are frozen snapshots.
                def job() -> None:
                    for src, peers, block in staged:
                        for q in peers:
                            transport.post(
                                src, q, f"fwd/L{layer}", block, block.nbytes
                            )

                transport.defer(f"fwd/L{layer}", job)
        # "bwd": communication-avoiding — halo gradients are dropped.
        tag = f"{phase}/L{layer}"
        dim = int(values_by_dev[devices[0].rank].shape[1])
        return InFlightStep(layer, phase, tag, devices, transport, dim)

    def finalize_step(
        self, step: InFlightStep, out: list[np.ndarray] | None = None
    ) -> list[np.ndarray] | None:
        step.mark_done()
        if step.phase == "bwd":
            return None  # nothing was posted; owners keep truncated gradients
        halo_by_dev: list[np.ndarray] = []
        devices = step.devices
        for dev in devices:
            part = dev.part
            received = step.transport.collect(dev.rank, step.tag)
            hist = self._historical.setdefault((step.layer, dev.rank), {})
            hist.update(received)
            halo = self._halo_out(out, dev.rank, part.n_halo, step.dim)
            for p, block in hist.items():
                if p not in part.recv_map:
                    continue
                # Pick this device's halo rows out of p's full block; the
                # owner's send_map gives their positions in p's local order.
                rows = devices[p].part.send_map.get(dev.rank)
                if rows is not None and block.shape[0] > int(rows.max(initial=0)):
                    halo[part.recv_map[p]] = block[rows]
            halo_by_dev.append(halo)
        return halo_by_dev
