"""Comparator systems (paper Sec. 5.1).

* **Vanilla** — synchronous full-precision training (exact exchange + the
  no-overlap schedule); implemented by composing
  :class:`~repro.cluster.exchange.ExactHaloExchange` with
  :func:`~repro.core.scheduler.schedule_vanilla`.
* **PipeGCN** (Wan et al. 2022) — cross-iteration pipelining with
  epoch-stale boundary embeddings and gradients.
* **SANCUS** (Peng et al. 2022) — staleness-triggered broadcast skipping
  with historical embeddings and sequential broadcast communication.
* **Uniform** — AdaQP's quantized transport but with uniformly random
  bit-width sampling (the Table 6 ablation).

Each baseline reproduces the *mechanism* the paper credits for that
system's behaviour (staleness → slower convergence; broadcast
serialization → slow comm; random bits → variance spikes), not the full
engineering of the original codebases.
"""

from repro.baselines.pipegcn import StaleHaloExchange
from repro.baselines.sancus import BroadcastSkipExchange

__all__ = ["StaleHaloExchange", "BroadcastSkipExchange"]
