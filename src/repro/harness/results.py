"""Experiment result container and on-disk persistence.

Every harness function returns an :class:`ExperimentResult`; benchmarks
persist them under ``benchmarks/results/`` (JSON for the structured data,
``.txt`` for the rendered table) so EXPERIMENTS.md can be assembled from a
complete benchmark run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.format import render_table

__all__ = ["ExperimentResult", "results_dir", "save_result"]


@dataclass
class ExperimentResult:
    """Structured output of one regenerated table/figure."""

    experiment_id: str  # e.g. "table4"
    title: str
    headers: list[str]
    rows: list[list[object]]
    # Optional extras: named series (for figures) and free-form scalars.
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=self.title)

    def to_json(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": self.headers,
            "rows": [[_jsonable(c) for c in row] for row in self.rows],
            "series": self.series,
            "notes": {k: _jsonable(v) for k, v in self.notes.items()},
        }


def _jsonable(value: object) -> object:
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def results_dir() -> Path:
    """Directory for persisted experiment outputs (created on demand).

    Override with the ``REPRO_RESULTS_DIR`` environment variable.
    """
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        root = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def save_result(result: ExperimentResult) -> Path:
    """Persist JSON + rendered text; returns the JSON path."""
    out = results_dir()
    json_path = out / f"{result.experiment_id}.json"
    json_path.write_text(json.dumps(result.to_json(), indent=2))
    (out / f"{result.experiment_id}.txt").write_text(result.render() + "\n")
    return json_path
