"""Huge-graph bench: streaming store epochs vs. the materialized arm.

The huge-graph execution mode (PR 10) trades RAM for page faults: the
partition store stays on disk as aligned memmap regions and the fused
engine streams one device's operator/feature window at a time, releasing
pages behind itself.  The claims this bench pins:

* **peak RSS**: the streaming arm's resident high-water mark is a
  fraction (gated at ≤ 0.5) of the materialized arm's, measured as the
  ``ru_maxrss`` *delta* over the interpreter baseline so small quick-mode
  graphs don't drown the signal in the Python/numpy footprint;
* **bitwise equivalence**: both arms run the same streaming engine — one
  over memmaps, one over RAM copies — so losses and wire bytes must be
  *equal*, not close;
* **throughput**: epoch edges/s of the streaming arm, and its ratio to
  the materialized arm (the cost of faulting the window under the
  kernels; prefetch hides it only when a spare core exists, so the ratio
  is multi-core-gated like the other fan-out benches);
* **estimate accuracy**: :func:`~repro.cluster.memory.estimate_peak_resident`
  vs. the measured streaming delta, reported as a signed relative error.

``ru_maxrss`` is a process-wide monotone high-water mark, so the two
arms *cannot* share a process — each runs in a fresh subprocess (this
module's ``__main__``) that prints one JSON line on stdout.  The parent
builds the store once (page-cache warmth then favors neither arm) and
composes the report.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

__all__ = [
    "HUGE_WORKLOAD",
    "HUGE_WORKLOAD_QUICK",
    "bench_huge_graph",
    "prepare_store",
    "run_arm",
    "run_arm_subprocess",
]

#: The full-size workload: 1M nodes at the paper-scale feature width.
#: Narrow hidden layers keep the epoch spmv/GEMM time bounded while the
#: layer-0 feature traffic — what huge-graph mode exists to keep out of
#: RAM — stays dominant.
HUGE_WORKLOAD = {
    "num_nodes": 1_000_000,
    "avg_degree": 6.0,
    "num_features": 256,
    "num_classes": 8,
    "num_communities": 32,
    "homophily": 0.97,
    "neighbor_locality": 0.97,
    "parts": 16,
    "setting": "4M-4D",
    "hidden_dim": 8,
    "num_layers": 2,
    "system": "adaqp",
}

#: CI-smoke scale: same shape, quarter the nodes (logged in the report —
#: the curated baseline ratios come from the full workload).
HUGE_WORKLOAD_QUICK = dict(HUGE_WORKLOAD, num_nodes=250_000)


def _ru_maxrss_bytes() -> int:
    """This process's peak resident set in bytes.

    Prefers ``VmHWM`` from ``/proc/self/status``: unlike ``ru_maxrss``
    (which Linux carries across ``fork``+``exec``, so a subprocess forked
    off a fat parent inherits the parent's high-water mark and measures
    nothing), ``VmHWM`` belongs to the process's own ``mm`` and resets on
    exec.  Falls back to ``getrusage`` where ``/proc`` is unavailable.
    """
    try:
        for line in Path("/proc/self/status").read_text().splitlines():
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    import resource

    # Linux reports KiB (macOS reports bytes; this repo targets Linux CI).
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def prepare_store(path: str | Path, workload: dict, *, seed: int = 0):
    """Build the workload's partition store at ``path`` (idempotent)."""
    from repro.graph.generators import HugeGraphConfig
    from repro.graph.io import PartitionStore, build_partition_store

    path = Path(path)
    if (path / "header.json").is_file():
        return PartitionStore.open(path)
    cfg = HugeGraphConfig(
        num_nodes=int(workload["num_nodes"]),
        avg_degree=float(workload["avg_degree"]),
        num_features=int(workload["num_features"]),
        num_classes=int(workload["num_classes"]),
        num_communities=int(workload["num_communities"]),
        homophily=float(workload.get("homophily", 0.8)),
        neighbor_locality=float(workload.get("neighbor_locality", 0.9)),
    )
    return build_partition_store(
        cfg, int(workload["parts"]), path, seed=seed, agg_kind="gcn"
    )


def run_arm(
    store_path: str | Path,
    arm: str,
    *,
    workload: dict,
    epochs: int,
    seed: int = 0,
) -> dict:
    """One measurement arm, in-process: train ``epochs`` on the store.

    ``arm`` is ``"stream"`` (memmap-backed huge-graph mode) or
    ``"materialize"`` (the same engine over full RAM copies — the
    in-RAM reference footprint).  Returns the JSON-serializable record
    the parent composes; call this only from a fresh subprocess when the
    RSS numbers matter.
    """
    if arm not in ("stream", "materialize"):
        raise ValueError(f"unknown arm {arm!r}")
    from repro.cluster.cluster import Cluster
    from repro.cluster.memory import estimate_peak_resident
    from repro.comm.costmodel import LinkCostModel
    from repro.comm.topology import parse_topology
    from repro.core.config import RunConfig
    from repro.core.trainer import build_system
    from repro.graph.io import PartitionStore

    store = PartitionStore.open(store_path)
    baseline_rss = _ru_maxrss_bytes()
    ds = store.dataset(materialize=(arm == "materialize"))
    book = store.book()
    topology = parse_topology(workload["setting"])
    cfg = RunConfig(
        epochs=epochs,
        hidden_dim=int(workload["hidden_dim"]),
        num_layers=int(workload["num_layers"]),
        dropout=0.0,
        seed=seed,
        transport="sync",
        rng_mode="keyed",
    )
    cluster = Cluster(
        ds,
        book,
        model_kind="gcn",
        hidden_dim=cfg.hidden_dim,
        num_layers=cfg.num_layers,
        dropout=0.0,
        seed=seed,
        fused_compute=True,
        overlap=False,
        transport="sync",
    )
    cost_model = LinkCostModel.for_topology(topology)
    setup = build_system(workload["system"], cluster, cost_model, cfg)
    estimate = estimate_peak_resident(cluster)
    losses: list[float] = []
    epoch_s: list[float] = []
    wire = 0
    try:
        for epoch in range(epochs):
            t0 = time.perf_counter()
            record = cluster.train_epoch(setup.exchange, epoch)
            epoch_s.append(time.perf_counter() - t0)
            losses.append(record.loss)
            wire += record.total_wire_bytes()
    finally:
        cluster.close()
    peak_rss = _ru_maxrss_bytes()
    edges = int(store.num_directed_edges)
    best = min(epoch_s[1:]) if len(epoch_s) > 1 else epoch_s[0]
    return {
        "arm": arm,
        "losses": losses,
        "wire_bytes": int(wire),
        "epoch_s": epoch_s,
        "best_epoch_s": best,
        "edges": edges,
        "edges_per_s": edges / best,
        "baseline_rss": baseline_rss,
        "peak_rss": peak_rss,
        "delta_rss": peak_rss - baseline_rss,
        "estimate_resident": int(estimate),
    }


def run_arm_subprocess(
    store_path: str | Path,
    arm: str,
    *,
    workload: dict,
    epochs: int,
    seed: int = 0,
    rlimit_as: int | None = None,
) -> dict:
    """Run one arm in a fresh interpreter and parse its JSON record."""
    import repro

    env = dict(os.environ)
    pkg_root = str(Path(repro.__file__).parents[1])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        pkg_root + os.pathsep + existing if existing else pkg_root
    )
    cmd = [
        sys.executable,
        "-m",
        "repro.harness.hugebench",
        "--store",
        str(store_path),
        "--arm",
        arm,
        "--epochs",
        str(epochs),
        "--seed",
        str(seed),
        "--workload",
        json.dumps(workload),
    ]
    if rlimit_as is not None:
        cmd += ["--rlimit-as", str(int(rlimit_as))]
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"hugebench arm {arm!r} failed (exit {proc.returncode}):\n"
            f"{proc.stderr.strip()}"
        )
    # The record is the last stdout line (warnings may precede it).
    line = proc.stdout.strip().splitlines()[-1]
    return json.loads(line)


def bench_huge_graph(
    *,
    quick: bool = False,
    seed: int = 0,
    workload: dict | None = None,
    store_dir: str | Path | None = None,
    epochs: int | None = None,
) -> dict:
    """The ``huge_graph`` perf section: stream vs. materialize arms.

    ``unfused_ms``/``fused_ms`` follow the suite's naming convention —
    "unfused" is the materialized in-RAM arm, "fused" the streaming
    arm — so the shared rendering and gating machinery applies.  The
    headline metrics are ``rss_fraction`` (streaming high-water delta
    over materialized, gated unconditionally at ≤ 0.5) and
    ``throughput_ratio`` (multi-core-gated: without a spare core the
    prefetch touch runs inline and the ratio measures the page-fault
    tax, not the design).
    """
    from repro.comm.transport import detected_cores

    wl = dict(HUGE_WORKLOAD_QUICK if quick else HUGE_WORKLOAD)
    if workload:
        wl.update(workload)
    n_epochs = epochs if epochs is not None else (2 if quick else 3)

    tmp = None
    if store_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-hugebench-")
        store_dir = Path(tmp.name) / "store"
    try:
        prepare_store(store_dir, wl, seed=seed)
        stream = run_arm_subprocess(
            store_dir, "stream", workload=wl, epochs=n_epochs, seed=seed
        )
        inram = run_arm_subprocess(
            store_dir, "materialize", workload=wl, epochs=n_epochs, seed=seed
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    stream_delta = max(stream["delta_rss"], 1)
    inram_delta = max(inram["delta_rss"], 1)
    rss_fraction = stream_delta / inram_delta
    estimate = stream["estimate_resident"]
    cores = detected_cores()
    return {
        "system": wl["system"],
        "workload": wl,
        "epochs": n_epochs,
        "cores": cores,
        "multi_core": cores >= 2,
        "unfused_ms": inram["best_epoch_s"] * 1e3,  # materialized arm
        "fused_ms": stream["best_epoch_s"] * 1e3,  # streaming arm
        "throughput_ratio": inram["best_epoch_s"] / stream["best_epoch_s"],
        "edges": stream["edges"],
        "edges_per_s": stream["edges_per_s"],
        "stream_peak_rss": stream["peak_rss"],
        "stream_delta_rss": stream["delta_rss"],
        "inram_peak_rss": inram["peak_rss"],
        "inram_delta_rss": inram["delta_rss"],
        "rss_fraction": rss_fraction,
        "rss_within_half": rss_fraction <= 0.5,
        "estimate_resident": estimate,
        "estimate_rel_error": (estimate - stream_delta) / stream_delta,
        "losses_match": stream["losses"] == inram["losses"],
        "wire_bytes_match": stream["wire_bytes"] == inram["wire_bytes"],
    }


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="hugebench measurement arm (one JSON line on stdout)"
    )
    parser.add_argument("--store", required=True)
    parser.add_argument("--arm", required=True, choices=("stream", "materialize"))
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workload", default=None,
                        help="workload overrides as a JSON object")
    parser.add_argument(
        "--rlimit-as", type=int, default=None, metavar="BYTES",
        help="hard RLIMIT_AS address-space cap applied before any "
             "allocation — the CI huge-graph job's guard that the "
             "streaming arm never piles anonymous copies on top of its "
             "maps (residency itself is gated by rss_fraction, not AS: "
             "memmaps cost the same address space as materialized "
             "copies, just not the same resident pages)")
    args = parser.parse_args(argv)
    if args.rlimit_as is not None:
        import resource

        resource.setrlimit(resource.RLIMIT_AS, (args.rlimit_as, args.rlimit_as))
    wl = dict(HUGE_WORKLOAD)
    if args.workload:
        wl.update(json.loads(args.workload))
    record = run_arm(
        args.store, args.arm, workload=wl, epochs=args.epochs, seed=args.seed
    )
    print(json.dumps(record))
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(_main())
