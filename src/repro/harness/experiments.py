"""Regeneration of every table and figure in the paper's evaluation.

Each ``run_*`` function is self-contained and returns an
:class:`~repro.harness.results.ExperimentResult`.  Training runs are
memoized per process (`_cached_run`), so Table 4, Table 5, Fig. 9 and
Fig. 10 — which all view the same underlying runs — cost one training run
each, exactly as in the paper's evaluation.

Conventions shared with the paper:

* "accuracy" means micro-F1 on the multi-label datasets;
* PipeGCN results exist only for GraphSAGE and SANCUS only for GCN (the
  original systems implement only those models); missing combinations are
  rendered as ``†`` like the paper's Table 4;
* throughput is epochs/second, with the speedup over Vanilla in
  parentheses.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import ExactHaloExchange, FixedBitProvider, QuantizedHaloExchange
from repro.cluster.perfmodel import PerfModel
from repro.comm.costmodel import LinkCostModel
from repro.core.decompose import decompose_partition
from repro.core.scheduler import (
    device_comm_times,
    device_compute_times,
    schedule_vanilla,
)
from repro.core.trainer import TrainResult, train
from repro.graph.datasets import DATASET_CATALOG, load_dataset
from repro.graph.partition.quality import remote_neighbor_ratio
from repro.harness.results import ExperimentResult
from repro.harness.workloads import WORKLOADS, prepared_case, standard_config
from repro.utils.seed import RngPool

__all__ = [
    "run_table1_comm_overhead",
    "run_fig02_pair_imbalance",
    "run_table2_overlap_headroom",
    "run_fig03_central_compute_share",
    "run_table3_datasets",
    "run_main_results",
    "run_table4_main",
    "run_table5_wallclock",
    "run_table6_uniform_vs_adaptive",
    "run_table7_scalability",
    "run_table8_configs",
    "run_fig09_convergence",
    "run_fig10_time_breakdown",
    "run_fig11_sensitivity",
]

# The paper's system/model support matrix (Table 4's daggers).
_MODEL_SUPPORT = {
    "vanilla": ("gcn", "sage"),
    "adaqp": ("gcn", "sage"),
    "adaqp-uniform": ("gcn", "sage"),
    "adaqp-fixed": ("gcn", "sage"),
    "pipegcn": ("sage",),
    "sancus": ("gcn",),
}

_RUN_CACHE: dict[tuple, TrainResult] = {}


def _cached_run(
    system: str,
    dataset: str,
    setting: str,
    model_kind: str,
    *,
    seed: int = 0,
    epochs: int | None = None,
    **overrides,
) -> TrainResult:
    key = (system, dataset, setting, model_kind, seed, epochs, tuple(sorted(overrides.items())))
    if key not in _RUN_CACHE:
        ds, book, topology = prepared_case(dataset, setting, seed)
        cfg = standard_config(dataset, model_kind, epochs=epochs, seed=seed, **overrides)
        _RUN_CACHE[key] = train(system, ds, book, topology, cfg)
    return _RUN_CACHE[key]


# ---------------------------------------------------------------------------
# Table 1 — communication overhead of Vanilla
# ---------------------------------------------------------------------------
def run_table1_comm_overhead(*, seed: int = 0, epochs: int = 3) -> ExperimentResult:
    """Communication cost %% of epoch time and remote-neighbor ratio."""
    rows = []
    for name, wl in WORKLOADS.items():
        for setting in wl.settings:
            ds, book, topology = prepared_case(name, setting, seed)
            result = _cached_run("vanilla", name, setting, "gcn", seed=seed, epochs=epochs)
            comm = result.comm_time_total
            total = comm + result.comp_time_total
            rnr = remote_neighbor_ratio(ds.graph, book)
            rows.append(
                [
                    ds.spec.paper_name,
                    setting,
                    f"{100.0 * comm / total:.2f}%",
                    f"{100.0 * rnr:.2f}%",
                ]
            )
    return ExperimentResult(
        experiment_id="table1",
        title="Table 1: communication overhead in Vanilla",
        headers=["Dataset", "Partition Setting", "Communication Cost", "Remote Neighbor Ratio"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Fig. 2 — per-device-pair data-size imbalance
# ---------------------------------------------------------------------------
def run_fig02_pair_imbalance(*, seed: int = 0) -> ExperimentResult:
    """Bytes each device pair moves in GCN layer 1's forward pass."""
    ds, book, topology = prepared_case("amazonproducts", "2M-2D", seed)
    cluster = Cluster(ds, book, model_kind="gcn", hidden_dim=32, num_layers=3, dropout=0.0, seed=seed)
    record = cluster.train_epoch(ExactHaloExchange(), epoch=0)
    layer1_fwd = record.phases[0].bytes_matrix
    rows = []
    sizes = []
    n = book.num_parts
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            mb = layer1_fwd[s, d] / 1e6
            sizes.append(mb)
            rows.append([f"{s}_{d}", f"{mb:.3f}"])
    imbalance = max(sizes) / max(min(sizes), 1e-12)
    return ExperimentResult(
        experiment_id="fig02",
        title="Fig. 2: data size per device pair (GCN layer 1 fwd, AmazonProducts, 4 partitions)",
        headers=["Device Pair", "Data size (MB)"],
        rows=rows,
        notes={"max_over_min": round(imbalance, 2)},
    )


# ---------------------------------------------------------------------------
# Table 2 — 2-bit marginal comm time vs central comp time per device
# ---------------------------------------------------------------------------
def _measured_overlap_notes(record) -> dict | None:
    """Cross-check payload from the executor's measured timelines.

    ``None`` when the epoch ran without the pipelined executor (the
    analytic per-device accounting is then the only source).
    """
    if not record.timelines:
        return None
    central = sum(t.central_s for t in record.timelines)
    marginal = sum(t.marginal_s for t in record.timelines)
    return {
        "hidden_byte_fraction": record.hidden_byte_fraction(),
        "central_share": central / max(central + marginal, 1e-12),
        "central_ms": central * 1e3,
        "marginal_ms": marginal * 1e3,
    }


def run_table2_overlap_headroom(
    *, seed: int = 0, overlap: bool = True
) -> ExperimentResult:
    """Central computation hides inside even 2-bit quantized communication.

    The per-device comm/comp columns are modelled (the simulator's link
    and device models); with ``overlap`` the epoch additionally *executes*
    the split-phase pipeline, so ``notes["measured"]`` carries the real
    interleave — model and measurement cross-checked on one record.
    """
    ds, book, topology = prepared_case("ogbn-products", "2M-4D", seed)
    cost = LinkCostModel.for_topology(topology)
    perf = PerfModel()
    cluster = Cluster(
        ds, book, model_kind="gcn", hidden_dim=32, num_layers=3, dropout=0.0,
        seed=seed, overlap=overlap,
    )
    exchange = QuantizedHaloExchange(FixedBitProvider(2), RngPool(seed).get("table2"))
    record = cluster.train_epoch(exchange, epoch=0)
    comm = device_comm_times(record, cost)
    comp = device_compute_times(record, perf, central_only=True)
    rows = [
        [f"Device{d}", f"{comm[d] * 1e3:.2f} ms", f"{comp[d] * 1e3:.2f} ms"]
        for d in range(book.num_parts)
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: 2-bit marginal comm vs central comp (ogbn-products, 8 partitions)",
        headers=["Device", "comm.", "Comp. (central)"],
        rows=rows,
        notes={
            "comm_exceeds_comp_on_all_devices": bool((comm > comp).all()),
            "measured": _measured_overlap_notes(record),
        },
    )


# ---------------------------------------------------------------------------
# Fig. 3 — marginal vs all-node computation time
# ---------------------------------------------------------------------------
def run_fig03_central_compute_share(
    *, seed: int = 0, overlap: bool = True
) -> ExperimentResult:
    """Computation reduction when central-node work is hidden (paper: 23-55%).

    Per-device shares come from the analytic FLOP split; with ``overlap``
    the same epoch runs on the pipelined executor, so ``notes["measured"]``
    reports the wall-clock central share of the *executed* split for
    cross-checking (gathers and BLAS non-linearity make it deviate from
    the FLOP share, but it must stay inside the same qualitative band).
    """
    ds, book, topology = prepared_case("ogbn-products", "2M-4D", seed)
    perf = PerfModel()
    cluster = Cluster(
        ds, book, model_kind="gcn", hidden_dim=32, num_layers=3, dropout=0.0,
        seed=seed, overlap=overlap,
    )
    record = cluster.train_epoch(ExactHaloExchange(), epoch=0)
    all_nodes = device_compute_times(record, perf)
    central = device_compute_times(record, perf, central_only=True)
    marginal = all_nodes - central
    rows = []
    for d in range(book.num_parts):
        stats = decompose_partition(cluster.devices[d].part, cluster.devices[d].agg)
        rows.append(
            [
                f"device{d}",
                f"{100.0 * marginal[d] / all_nodes[d]:.1f}%",
                f"{100.0 * central[d] / all_nodes[d]:.1f}%",
                f"{100.0 * stats.marginal_row_fraction:.1f}%",
            ]
        )
    return ExperimentResult(
        experiment_id="fig03",
        title="Fig. 3: marginal vs all-node computation time (ogbn-products, 8 partitions)",
        headers=["Device", "Marginal comp. share", "Hidden (central) share", "Marginal node share"],
        rows=rows,
        series={
            "reduction_pct": [
                float(100.0 * central[d] / all_nodes[d]) for d in range(book.num_parts)
            ]
        },
        notes={"measured": _measured_overlap_notes(record)},
    )


# ---------------------------------------------------------------------------
# Table 3 — dataset catalog
# ---------------------------------------------------------------------------
def run_table3_datasets(*, scale: str = "tiny", seed: int = 0) -> ExperimentResult:
    rows = []
    for name in sorted(DATASET_CATALOG[scale]):
        ds = load_dataset(name, scale=scale, seed=seed)
        spec = ds.spec
        rows.append(
            [
                spec.paper_name,
                ds.num_nodes,
                ds.graph.num_edges,
                ds.num_features,
                ds.num_classes,
                spec.task,
            ]
        )
    return ExperimentResult(
        experiment_id="table3",
        title=f"Table 3: graph datasets (synthetic stand-ins, scale={scale})",
        headers=["Dataset", "#Nodes", "#Edges", "#Features", "#Classes", "Task"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Tables 4/5 + Fig. 9/12 share the main-results runs
# ---------------------------------------------------------------------------
def run_main_results(
    *,
    datasets: tuple[str, ...] = ("reddit", "yelp", "ogbn-products", "amazonproducts"),
    models: tuple[str, ...] = ("gcn", "sage"),
    systems: tuple[str, ...] = ("vanilla", "pipegcn", "sancus", "adaqp"),
    seed: int = 0,
    epochs: int | None = None,
) -> dict[tuple[str, str, str, str], TrainResult]:
    """All Table 4 runs: {(dataset, setting, model, system): result}."""
    results: dict[tuple[str, str, str, str], TrainResult] = {}
    for name in datasets:
        for setting in WORKLOADS[name].settings:
            for model in models:
                for system in systems:
                    if model not in _MODEL_SUPPORT[system]:
                        continue
                    results[(name, setting, model, system)] = _cached_run(
                        system, name, setting, model, seed=seed, epochs=epochs
                    )
    return results


def run_table4_main(**kwargs) -> ExperimentResult:
    """Accuracy and throughput of all systems (the paper's headline table)."""
    results = run_main_results(**kwargs)
    rows = []
    cases = sorted({(d, s, m) for d, s, m, _ in results})
    for dataset, setting, model in cases:
        vanilla = results.get((dataset, setting, model, "vanilla"))
        base_thr = vanilla.throughput if vanilla else float("nan")
        for system in ("vanilla", "pipegcn", "sancus", "adaqp"):
            res = results.get((dataset, setting, model, system))
            if res is None:
                if system in ("pipegcn", "sancus"):
                    rows.append([dataset, setting, model, system, "†", "†"])
                continue
            speed = (
                f"{res.throughput:.2f}"
                if system == "vanilla"
                else f"{res.throughput:.2f} ({res.throughput / base_thr:.2f}x)"
            )
            rows.append(
                [dataset, setting, model, system, f"{100 * res.final_val:.2f}", speed]
            )
    return ExperimentResult(
        experiment_id="table4",
        title="Table 4: accuracy (%) and throughput (epoch/s) across systems",
        headers=["Dataset", "Partitions", "Model", "Method", "Accuracy(%)", "Throughput (epoch/s)"],
        rows=rows,
    )


def run_table5_wallclock(**kwargs) -> ExperimentResult:
    """Wall-clock training time (AdaQP includes measured assignment time)."""
    results = run_main_results(**kwargs)
    rows = []
    cases = sorted({(d, s, m) for d, s, m, _ in results})
    for dataset, setting, model in cases:
        for system in ("vanilla", "pipegcn", "sancus", "adaqp"):
            res = results.get((dataset, setting, model, system))
            if res is None:
                if system in ("pipegcn", "sancus"):
                    rows.append([dataset, setting, model, system, "†"])
                continue
            rows.append(
                [dataset, setting, model, system, f"{res.total_wallclock:.3f} s"]
            )
    return ExperimentResult(
        experiment_id="table5",
        title="Table 5/9: wall-clock time (simulated train + measured assignment)",
        headers=["Dataset", "Partitions", "Model", "Method", "Wall-clock Time"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 6 — uniform vs adaptive bit-width
# ---------------------------------------------------------------------------
def run_table6_uniform_vs_adaptive(*, seed: int = 0, epochs: int | None = None) -> ExperimentResult:
    rows = []
    for setting in WORKLOADS["ogbn-products"].settings:
        for model in ("gcn", "sage"):
            uniform = _cached_run(
                "adaqp-uniform", "ogbn-products", setting, model, seed=seed, epochs=epochs
            )
            adaptive = _cached_run(
                "adaqp", "ogbn-products", setting, model, seed=seed, epochs=epochs
            )
            rows.append(
                [setting, model, "Uniform", f"{100 * uniform.final_val:.2f}", f"{uniform.throughput:.2f}"]
            )
            rows.append(
                [setting, model, "Adaptive", f"{100 * adaptive.final_val:.2f}", f"{adaptive.throughput:.2f}"]
            )
    return ExperimentResult(
        experiment_id="table6",
        title="Table 6: uniform bit-width sampling vs adaptive assignment (ogbn-products)",
        headers=["Partitions", "Model", "Method", "Accuracy (%)", "Throughput (epoch/s)"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 7 — scalability (6M-4D = 24 devices)
# ---------------------------------------------------------------------------
def run_table7_scalability(*, seed: int = 0, epochs: int = 12) -> ExperimentResult:
    rows = []
    for name in ("ogbn-products", "amazonproducts"):
        vanilla = _cached_run("vanilla", name, "6M-4D", "sage", seed=seed, epochs=epochs)
        adaqp = _cached_run("adaqp", name, "6M-4D", "sage", seed=seed, epochs=epochs)
        rows.append([name, "Vanilla", f"{vanilla.throughput:.2f}"])
        rows.append(
            [
                name,
                "AdaQP",
                f"{adaqp.throughput:.2f} ({adaqp.throughput / vanilla.throughput:.2f}x)",
            ]
        )
    return ExperimentResult(
        experiment_id="table7",
        title="Table 7: training throughput on the 6M-4D partition (24 devices)",
        headers=["Dataset", "Method", "Throughput (epoch/s)"],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Table 8 — training configurations
# ---------------------------------------------------------------------------
def run_table8_configs() -> ExperimentResult:
    rows = []
    for name, wl in WORKLOADS.items():
        cfg = standard_config(name, "gcn")
        rows.append(
            [
                name,
                cfg.num_layers,
                cfg.hidden_dim,
                "LayerNorm",
                "Adam",
                cfg.lr,
                cfg.dropout,
                cfg.epochs,
                wl.group_size,
                cfg.lam,
            ]
        )
    return ExperimentResult(
        experiment_id="table8",
        title="Table 8: training configurations (GCN and GraphSAGE share them)",
        headers=[
            "Dataset", "Layers", "Hidden", "Norm", "Optimizer", "LR", "Dropout",
            "Epochs", "Group Size", "lambda",
        ],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Fig. 9 / Fig. 12 — convergence curves
# ---------------------------------------------------------------------------
def run_fig09_convergence(
    *,
    datasets: tuple[str, ...] = ("reddit", "ogbn-products"),
    models: tuple[str, ...] = ("gcn", "sage"),
    seed: int = 0,
    epochs: int | None = None,
) -> ExperimentResult:
    """Validation-accuracy-vs-epoch series for every system.

    The paper's qualitative claims, checked in ``notes``: AdaQP's curve
    coincides with Vanilla's (max pointwise gap small) while the
    staleness-based systems converge more slowly (lower area under curve).
    """
    series: dict[str, list[float]] = {}
    rows = []
    gaps = []
    for dataset in datasets:
        setting = WORKLOADS[dataset].settings[-1]
        for model in models:
            for system in ("vanilla", "adaqp", "pipegcn", "sancus"):
                if model not in _MODEL_SUPPORT[system]:
                    continue
                res = _cached_run(
                    system, dataset, setting, model, seed=seed, epochs=epochs, eval_every=3
                )
                key = f"{dataset}/{setting}/{model}/{system}"
                series[f"{key}/epochs"] = [float(e) for e in res.curve_epochs]
                series[f"{key}/val"] = [float(v) for v in res.curve_val]
                auc = float(np.trapezoid(res.curve_val, res.curve_epochs)) if len(res.curve_val) > 1 else 0.0
                rows.append(
                    [dataset, setting, model, system, f"{100 * res.final_val:.2f}", f"{auc:.2f}"]
                )
            vanilla_key = f"{dataset}/{setting}/{model}/vanilla/val"
            adaqp_key = f"{dataset}/{setting}/{model}/adaqp/val"
            if vanilla_key in series and adaqp_key in series:
                gap = float(
                    np.abs(np.array(series[vanilla_key]) - np.array(series[adaqp_key])).max()
                )
                gaps.append(gap)
    return ExperimentResult(
        experiment_id="fig09",
        title="Fig. 9/12: convergence (final accuracy and area under the val curve)",
        headers=["Dataset", "Partitions", "Model", "Method", "Final Acc (%)", "Curve AUC"],
        rows=rows,
        series=series,
        notes={"max_adaqp_vanilla_curve_gap": max(gaps) if gaps else None},
    )


# ---------------------------------------------------------------------------
# Fig. 10 — time breakdown
# ---------------------------------------------------------------------------
def run_fig10_time_breakdown(
    *, seed: int = 0, epochs: int | None = None
) -> ExperimentResult:
    rows = []
    for name, wl in WORKLOADS.items():
        for setting in wl.settings:
            for system in ("vanilla", "adaqp"):
                res = _cached_run(system, name, setting, "gcn", seed=seed, epochs=epochs)
                bd = res.breakdown()
                rows.append(
                    [
                        name,
                        setting,
                        system,
                        f"{bd['comm'] * 1e3:.2f}",
                        f"{bd['comp'] * 1e3:.2f}",
                        f"{bd['quant'] * 1e3:.2f}",
                        f"{res.wire_bytes_total / res.epochs / 1e6:.3f}",
                        f"{res.train_wallclock:.3f}",
                        f"{res.assign_seconds:.3f}",
                    ]
                )
    return ExperimentResult(
        experiment_id="fig10",
        title=(
            "Fig. 10: per-epoch breakdown (ms), wire volume (MB) and "
            "wall-clock split (s), GCN — AdaQP's Comm column is the overlap "
            "stage and so includes the central compute it hides"
        ),
        headers=[
            "Dataset", "Partitions", "Method", "Comm (ms)", "Comp (ms)", "Quant (ms)",
            "Wire (MB)", "Train (s)", "Assign (s)",
        ],
        rows=rows,
    )


# ---------------------------------------------------------------------------
# Fig. 11 — sensitivity to group size, lambda, re-assignment period
# ---------------------------------------------------------------------------
def run_fig11_sensitivity(
    *,
    seed: int = 0,
    epochs: int | None = None,
    group_sizes: tuple[int, ...] = (50, 500, 2000),
    lambdas: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    periods: tuple[int, ...] = (8, 16, 32),
) -> ExperimentResult:
    rows = []
    dataset, setting, model = "ogbn-products", "2M-4D", "gcn"
    for gs in group_sizes:
        res = _cached_run(
            "adaqp", dataset, setting, model, seed=seed, epochs=epochs, group_size=gs
        )
        rows.append(["group_size", gs, f"{100 * res.final_val:.2f}", f"{res.assign_seconds:.3f}"])
    for lam in lambdas:
        res = _cached_run(
            "adaqp", dataset, setting, model, seed=seed, epochs=epochs, lam=lam
        )
        rows.append(["lambda", lam, f"{100 * res.final_val:.2f}", f"{res.assign_seconds:.3f}"])
    for period in periods:
        res = _cached_run(
            "adaqp", dataset, setting, model, seed=seed, epochs=epochs, reassign_period=period
        )
        rows.append(["period", period, f"{100 * res.final_val:.2f}", f"{res.assign_seconds:.3f}"])
    return ExperimentResult(
        experiment_id="fig11",
        title="Fig. 11: sensitivity (GCN, ogbn-products, 2M-4D)",
        headers=["Hyper-parameter", "Value", "Accuracy (%)", "Assign overhead (s)"],
        rows=rows,
    )
