"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's own tables: they isolate AdaQP's two
contributions (quantization vs parallelization), quantify how partition
quality (paper Sec. 4.1, factor (i)) drives communication, compare the
exact MILP against the greedy assignment solver, and reproduce the paper's
footnote-1 size argument for compressing messages rather than gradients.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import ExactHaloExchange
from repro.cluster.memory import estimate_memory
from repro.comm.topology import parse_topology
from repro.core.trainer import train
from repro.graph.datasets import load_dataset
from repro.graph.partition.api import partition_graph
from repro.graph.partition.quality import balance, edge_cut, remote_neighbor_ratio
from repro.harness.experiments import _cached_run
from repro.harness.results import ExperimentResult
from repro.harness.workloads import prepared_case, standard_config

__all__ = [
    "run_ablation_contributions",
    "run_ablation_partition_method",
    "run_ablation_solver",
    "run_footnote1_sizes",
]


def run_ablation_contributions(*, seed: int = 0, epochs: int | None = None) -> ExperimentResult:
    """Quantization-only and overlap-only systems vs Vanilla and full AdaQP.

    The paper presents the two techniques jointly; this ablation shows how
    much each contributes on its own.  Expected shape: overlap alone is
    bounded by the central-compute share (small), quantization alone
    captures most of the win, and the combination is fastest.
    """
    rows = []
    speedups = {}
    dataset, setting, model = "ogbn-products", "2M-4D", "gcn"
    base = _cached_run("vanilla", dataset, setting, model, seed=seed, epochs=epochs)
    for system, label in [
        ("vanilla", "Vanilla (neither)"),
        ("vanilla-overlap", "+ overlap only"),
        ("adaqp-no-overlap", "+ quantization only"),
        ("adaqp", "AdaQP (both)"),
    ]:
        res = _cached_run(system, dataset, setting, model, seed=seed, epochs=epochs)
        speedups[system] = res.throughput / base.throughput
        rows.append(
            [
                label,
                f"{res.throughput:.2f}",
                f"{speedups[system]:.2f}x",
                f"{100 * res.final_val:.2f}",
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_contributions",
        title="Ablation: AdaQP's two techniques in isolation (ogbn-products, 2M-4D, GCN)",
        headers=["System", "Throughput (ep/s)", "Speedup", "Accuracy (%)"],
        rows=rows,
        notes={k: round(v, 3) for k, v in speedups.items()},
    )


def run_ablation_partition_method(*, seed: int = 0, epochs: int = 12) -> ExperimentResult:
    """Partition quality drives communication (paper Sec. 4.1 factor (i)).

    Trains Vanilla and AdaQP on METIS-like / spectral / BFS / random
    partitions of the same graph and reports cut, remote-neighbor ratio,
    Vanilla comm share and AdaQP speedup.
    """
    dataset_name, setting, model = "ogbn-products", "2M-2D", "gcn"
    ds = load_dataset(dataset_name, scale="tiny", seed=seed)
    topology = parse_topology(setting)
    rows = []
    cut_by_method = {}
    for method in ("metis", "spectral", "bfs", "random"):
        book = partition_graph(ds.graph, topology.num_devices, method=method, seed=seed)
        cfg = standard_config(dataset_name, model, epochs=epochs, seed=seed)
        vanilla = train("vanilla", ds, book, topology, cfg)
        adaqp = train("adaqp", ds, book, topology, cfg)
        cut = edge_cut(ds.graph, book)
        cut_by_method[method] = cut
        bd = vanilla.breakdown()
        comm_share = bd["comm"] / (bd["comm"] + bd["comp"])
        rows.append(
            [
                method,
                f"{100 * cut / ds.graph.num_edges:.1f}%",
                f"{balance(book):.3f}",
                f"{100 * remote_neighbor_ratio(ds.graph, book):.1f}%",
                f"{100 * comm_share:.1f}%",
                f"{adaqp.throughput / vanilla.throughput:.2f}x",
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_partition",
        title="Ablation: partition method vs communication (ogbn-products, 2M-2D, GCN)",
        headers=["Method", "Edge cut", "Balance", "Remote-neighbor ratio",
                 "Vanilla comm share", "AdaQP speedup"],
        rows=rows,
        notes={"cut_by_method": {k: int(v) for k, v in cut_by_method.items()}},
    )


def run_ablation_solver(*, seed: int = 0, epochs: int | None = None) -> ExperimentResult:
    """Exact MILP (HiGHS, the GUROBI stand-in) vs the greedy solver."""
    dataset, setting, model = "ogbn-products", "2M-2D", "gcn"
    rows = []
    finals = {}
    for solver in ("milp", "greedy"):
        res = _cached_run(
            "adaqp", dataset, setting, model, seed=seed, epochs=epochs, solver=solver
        )
        finals[solver] = res.final_val
        rows.append(
            [
                solver,
                f"{100 * res.final_val:.2f}",
                f"{res.throughput:.2f}",
                f"{res.assign_seconds:.3f}",
            ]
        )
    return ExperimentResult(
        experiment_id="ablation_solver",
        title="Ablation: bit-width assignment solver (ogbn-products, 2M-2D, GCN)",
        headers=["Solver", "Accuracy (%)", "Throughput (ep/s)", "Assign overhead (s)"],
        rows=rows,
        notes={"accuracy_gap": abs(finals["milp"] - finals["greedy"])},
    )


def run_footnote1_sizes(*, seed: int = 0) -> ExperimentResult:
    """Paper footnote 1: model gradients are tiny next to messages.

    This is the argument for compressing messages rather than gradients —
    the opposite of the distributed-DNN literature's focus.
    """
    ds, book, topology = prepared_case("ogbn-products", "2M-2D", seed)
    cluster = Cluster(ds, book, model_kind="gcn", hidden_dim=32, num_layers=3,
                      dropout=0.0, seed=seed)
    record = cluster.train_epoch(ExactHaloExchange(), 0)
    footprints = estimate_memory(cluster)
    wire_per_epoch = record.total_wire_bytes()
    grad_bytes = record.grad_allreduce_bytes
    rows = []
    for fp in footprints:
        rows.append(
            [
                f"device{fp.device}",
                f"{fp.feature_bytes / 1e6:.2f}",
                f"{fp.activation_bytes / 1e6:.2f}",
                f"{fp.halo_buffer_bytes / 1e6:.2f}",
                f"{fp.model_grad_bytes / 1e6:.3f}",
            ]
        )
    ratio = wire_per_epoch / max(grad_bytes, 1)
    rows.append(
        ["epoch totals", "-", "-", f"{wire_per_epoch / 1e6:.2f} (wire)",
         f"{grad_bytes / 1e6:.3f} (allreduce)"]
    )
    return ExperimentResult(
        experiment_id="footnote1_sizes",
        title="Footnote 1: message vs model-gradient volumes (MB; ogbn-products, 2M-2D, GCN)",
        headers=["Device", "Features", "Activations", "Halo/messages", "Model grads"],
        rows=rows,
        notes={"wire_to_gradient_ratio": round(float(ratio), 1)},
    )
