"""Standard workloads: the paper's Table 8 configurations, scaled.

Per-dataset partition settings follow the paper's evaluation matrix:
Reddit/Yelp run on ``2M-1D`` and ``2M-2D``; ogbn-products/AmazonProducts
on ``2M-2D`` and ``2M-4D``; the scalability study (Table 7) uses ``6M-4D``.

Datasets and partition books are cached per ``(dataset, setting, seed)``,
so one benchmark session prepares each case exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.comm.topology import ClusterTopology, parse_topology
from repro.core.config import RunConfig
from repro.graph.datasets import GraphDataset, load_dataset
from repro.graph.partition.api import partition_graph
from repro.graph.partition.book import PartitionBook

__all__ = ["Workload", "WORKLOADS", "standard_config", "prepared_case"]


@dataclass(frozen=True)
class Workload:
    """One dataset's standard evaluation recipe (paper Table 8, scaled).

    ``epochs`` are scaled with the synthetic datasets (they converge in
    tens of epochs rather than the paper's hundreds); dropout and message
    group size follow Table 8's per-dataset values.
    """

    dataset: str
    settings: tuple[str, ...]
    epochs: int
    dropout: float
    group_size: int
    reassign_period: int


WORKLOADS: dict[str, Workload] = {
    "reddit": Workload("reddit", ("2M-1D", "2M-2D"), 48, 0.5, 100, 16),
    "yelp": Workload("yelp", ("2M-1D", "2M-2D"), 48, 0.1, 200, 16),
    "ogbn-products": Workload("ogbn-products", ("2M-2D", "2M-4D"), 48, 0.5, 200, 16),
    "amazonproducts": Workload("amazonproducts", ("2M-2D", "2M-4D"), 48, 0.5, 100, 16),
}


def standard_config(
    dataset: str,
    model_kind: str,
    *,
    epochs: int | None = None,
    seed: int = 0,
    **overrides,
) -> RunConfig:
    """The paper-aligned configuration for one (dataset, model) pair.

    >>> standard_config("reddit", "gcn").dropout
    0.5
    >>> standard_config("yelp", "sage").dropout
    0.1
    """
    wl = WORKLOADS[dataset]
    base = RunConfig(
        model_kind=model_kind,
        hidden_dim=32,  # paper: 256; scaled with dataset size
        num_layers=3,
        dropout=wl.dropout,
        lr=0.01,
        epochs=epochs if epochs is not None else wl.epochs,
        eval_every=6,
        seed=seed,
        group_size=wl.group_size,
        reassign_period=wl.reassign_period,
    )
    return base.with_overrides(**overrides) if overrides else base


@lru_cache(maxsize=64)
def prepared_case(
    dataset: str, setting: str, seed: int = 0, scale: str = "tiny"
) -> tuple[GraphDataset, PartitionBook, ClusterTopology]:
    """Load + partition one evaluation case (cached within the process)."""
    topology = parse_topology(setting)
    ds = load_dataset(dataset, scale=scale, seed=seed)
    book = partition_graph(ds.graph, topology.num_devices, method="metis", seed=seed)
    return ds, book, topology
