"""Experiment harness: regenerates every table and figure of the paper.

One ``run_*`` function per experiment (see DESIGN.md §3 for the
experiment-to-module index); each returns a :class:`ExperimentResult`
holding structured rows plus a rendered ASCII table.  The benchmark suite
under ``benchmarks/`` is a thin wrapper that calls these and records
timings; the functions are equally usable from a REPL.
"""

from repro.harness.workloads import (
    WORKLOADS,
    Workload,
    prepared_case,
    standard_config,
)
from repro.harness.results import ExperimentResult, results_dir, save_result
from repro.harness.perfbench import (
    compare_to_baseline,
    render_report,
    run_bench,
)
from repro.harness.ablations import (
    run_ablation_contributions,
    run_ablation_partition_method,
    run_ablation_solver,
    run_footnote1_sizes,
)
from repro.harness.experiments import (
    run_fig02_pair_imbalance,
    run_fig03_central_compute_share,
    run_fig09_convergence,
    run_fig10_time_breakdown,
    run_fig11_sensitivity,
    run_main_results,
    run_table1_comm_overhead,
    run_table2_overlap_headroom,
    run_table3_datasets,
    run_table4_main,
    run_table5_wallclock,
    run_table6_uniform_vs_adaptive,
    run_table7_scalability,
    run_table8_configs,
)

__all__ = [
    "Workload",
    "WORKLOADS",
    "standard_config",
    "prepared_case",
    "ExperimentResult",
    "results_dir",
    "save_result",
    "run_table1_comm_overhead",
    "run_fig02_pair_imbalance",
    "run_table2_overlap_headroom",
    "run_fig03_central_compute_share",
    "run_table3_datasets",
    "run_main_results",
    "run_table4_main",
    "run_table5_wallclock",
    "run_table6_uniform_vs_adaptive",
    "run_table7_scalability",
    "run_table8_configs",
    "run_fig09_convergence",
    "run_fig10_time_breakdown",
    "run_fig11_sensitivity",
    "run_ablation_contributions",
    "run_ablation_partition_method",
    "run_ablation_solver",
    "run_footnote1_sizes",
    "run_bench",
    "compare_to_baseline",
    "render_report",
]
