"""Performance benchmark harness for the fused exchange engine.

Unlike everything else under :mod:`repro.harness`, these benchmarks measure
*real host wall-clock* of the simulator's hot path — the quantize → pack →
transmit → unpack → dequantize pipeline — not simulated device time.  They
answer one question: how much faster is
:class:`~repro.cluster.exchange.FusedQuantizedHaloExchange` than the legacy
per-pair :class:`~repro.cluster.exchange.QuantizedHaloExchange`, and is the
result still numerically identical?

Three benchmark families:

* **encode** / **decode** — microbenchmarks of one exchange step on a
  synthetic message block (throughput in MB/s of float32 payload);
* **epoch** — end-to-end ``Cluster.train_epoch`` wall time on the default
  benchmark workload (the paper's many-partition scalability regime, where
  per-pair dispatch dominates the legacy path), fused vs. unfused, with a
  hard equality check on wire bytes and losses.

:func:`run_bench` bundles them into one JSON-serializable report
(``BENCH_perf.json``); :func:`compare_to_baseline` implements the CI
regression gate.  The gate compares only *dimensionless* speedup ratios —
absolute milliseconds differ across machines, ratios travel well.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.cluster.cluster import Cluster
from repro.comm.costmodel import LinkCostModel
from repro.comm.topology import parse_topology
from repro.core.config import RunConfig
from repro.core.trainer import build_system
from repro.graph.datasets import load_dataset
from repro.graph.partition.api import partition_graph
from repro.quant.fused import FusedStepEncoder, decode_step
from repro.quant.mixed import MixedPrecisionEncoder

__all__ = [
    "DEFAULT_WORKLOAD",
    "bench_encode",
    "bench_decode",
    "bench_epoch",
    "run_bench",
    "compare_to_baseline",
    "render_report",
]

#: The default end-to-end workload: the paper's scalability regime (many
#: partitions, Table 7), where the legacy path's per-pair dispatch cost is
#: the bottleneck this engine removes.
DEFAULT_WORKLOAD = {
    "dataset": "reddit",
    "scale": "tiny",
    "parts": 16,
    "setting": "4M-4D",
    "hidden_dim": 32,
    "num_layers": 3,
}

# Ratio metrics the CI regression gate watches (see compare_to_baseline).
_GATED_METRICS = (
    ("encode", "speedup"),
    ("decode", "speedup"),
    ("epoch", "speedup"),
)


def _median_time(fn, reps: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _synthetic_step(
    seed: int, n_pairs: int, rows_per_pair: int, dim: int
) -> tuple[np.ndarray, list, np.ndarray, np.ndarray, np.ndarray]:
    gen = np.random.default_rng(seed)
    n = n_pairs * rows_per_pair
    values = gen.normal(size=(max(4 * rows_per_pair, 256), dim)).astype(np.float32)
    cat_idx = gen.integers(0, values.shape[0], n)
    bits_cat = gen.choice([2, 4, 8], size=n)
    pairs = [(0, q + 1) for q in range(n_pairs)]
    counts = np.full(n_pairs, rows_per_pair, dtype=np.int64)
    return values, pairs, counts, cat_idx, bits_cat


def bench_encode(
    *,
    n_pairs: int = 48,
    rows_per_pair: int = 64,
    dim: int = 64,
    reps: int = 30,
    seed: int = 0,
) -> dict:
    """Throughput of one step's encode: legacy per-pair loop vs. fused."""
    values, pairs, counts, cat_idx, bits_cat = _synthetic_step(
        seed, n_pairs, rows_per_pair, dim
    )
    n = n_pairs * rows_per_pair
    payload_mb = n * dim * 4 / 1e6
    bounds = np.arange(0, n + 1, rows_per_pair)

    legacy = MixedPrecisionEncoder(np.random.default_rng(seed))

    def run_legacy():
        for i in range(n_pairs):
            sel = cat_idx[bounds[i] : bounds[i + 1]]
            legacy.encode(values[sel], bits_cat[bounds[i] : bounds[i + 1]])

    fused = FusedStepEncoder(np.random.default_rng(seed))
    blocks = [(0, 0, n)]
    plan = fused.plan_for("bench", pairs, counts, blocks, cat_idx, bits_cat, dim)

    def run_fused():
        fused.encode_step(plan, {0: values})

    t_legacy = _median_time(run_legacy, reps)
    t_fused = _median_time(run_fused, reps)
    return {
        "unfused_ms": t_legacy * 1e3,
        "fused_ms": t_fused * 1e3,
        "unfused_mbps": payload_mb / t_legacy,
        "fused_mbps": payload_mb / t_fused,
        "speedup": t_legacy / t_fused,
    }


def bench_decode(
    *,
    n_pairs: int = 48,
    rows_per_pair: int = 64,
    dim: int = 64,
    reps: int = 30,
    seed: int = 0,
) -> dict:
    """Throughput of one step's decode: per-payload loop vs. batched."""
    values, pairs, counts, cat_idx, bits_cat = _synthetic_step(
        seed, n_pairs, rows_per_pair, dim
    )
    n = n_pairs * rows_per_pair
    payload_mb = n * dim * 4 / 1e6
    fused = FusedStepEncoder(np.random.default_rng(seed))
    plan = fused.plan_for(
        "bench", pairs, counts, [(0, 0, n)], cat_idx, bits_cat, dim
    )
    payloads = fused.encode_step(plan, {0: values})
    mailbox = {dst: payload for (_, dst), payload in payloads.items()}

    def run_legacy():
        for payload in mailbox.values():
            payload.decode()

    def run_fused():
        decode_step(mailbox)

    t_legacy = _median_time(run_legacy, reps)
    t_fused = _median_time(run_fused, reps)
    return {
        "unfused_ms": t_legacy * 1e3,
        "fused_ms": t_fused * 1e3,
        "unfused_mbps": payload_mb / t_legacy,
        "fused_mbps": payload_mb / t_fused,
        "speedup": t_legacy / t_fused,
    }


def bench_epoch(
    *,
    system: str = "adaqp-fixed",
    workload: dict | None = None,
    epochs: int = 8,
    warmup: int = 2,
    seed: int = 0,
) -> dict:
    """End-to-end epoch wall time, fused vs. unfused, same RNG stream.

    Also asserts the engine's core contract on the fly: both paths must
    produce identical per-epoch losses and identical total wire bytes.
    """
    wl = dict(DEFAULT_WORKLOAD)
    if workload:
        wl.update(workload)
    topology = parse_topology(wl["setting"])
    ds = load_dataset(wl["dataset"], scale=wl["scale"], seed=seed)
    book = partition_graph(ds.graph, wl["parts"], method="metis", seed=seed)
    cost_model = LinkCostModel.for_topology(topology)

    def run(fused: bool) -> tuple[float, list[float], int]:
        cfg = RunConfig(
            epochs=epochs,
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            reassign_period=4,
            seed=seed,
            fused_exchange=fused,
        )
        cluster = Cluster(
            ds,
            book,
            model_kind="gcn",
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            dropout=0.5,
            seed=seed,
        )
        setup = build_system(system, cluster, cost_model, cfg)
        times: list[float] = []
        losses: list[float] = []
        wire_bytes = 0
        for epoch in range(epochs):
            t0 = time.perf_counter()
            record = cluster.train_epoch(setup.exchange, epoch)
            times.append(time.perf_counter() - t0)
            losses.append(record.loss)
            wire_bytes += record.total_wire_bytes()
        return float(np.median(times[warmup:])), losses, wire_bytes

    t_fused, losses_f, bytes_f = run(True)
    t_unfused, losses_u, bytes_u = run(False)
    return {
        "system": system,
        "workload": wl,
        "epochs": epochs,
        "fused_ms": t_fused * 1e3,
        "unfused_ms": t_unfused * 1e3,
        "speedup": t_unfused / t_fused,
        "wire_bytes_match": bytes_f == bytes_u,
        "losses_match": losses_f == losses_u,
    }


def run_bench(*, quick: bool = False, seed: int = 0) -> dict:
    """Run the full perf suite; returns the ``BENCH_perf.json`` payload."""
    micro_reps = 20 if quick else 40
    epochs = 5 if quick else 10
    extra_systems = () if quick else ("adaqp", "adaqp-uniform")

    report: dict = {
        "bench": "fused-exchange-engine",
        "schema": 1,
        "quick": quick,
        "seed": seed,
        "encode": bench_encode(reps=micro_reps, seed=seed),
        "decode": bench_decode(reps=micro_reps, seed=seed),
        "epoch": bench_epoch(epochs=epochs, warmup=1 if quick else 2, seed=seed),
    }
    for system in extra_systems:
        report[f"epoch_{system}"] = bench_epoch(
            system=system, epochs=epochs, seed=seed
        )
    return report


def compare_to_baseline(
    current: dict, baseline: dict, *, max_regression: float = 0.2
) -> list[str]:
    """Regression gate: returns a list of failures (empty == pass).

    Gates only on dimensionless speedup ratios (absolute times are
    machine-dependent) plus the numerical-equivalence flags, which must
    never be False.
    """
    problems: list[str] = []
    for section, metric in _GATED_METRICS:
        cur = current.get(section, {}).get(metric)
        base = baseline.get(section, {}).get(metric)
        if cur is None or base is None:
            problems.append(f"missing metric {section}.{metric}")
            continue
        floor = base * (1.0 - max_regression)
        if cur < floor:
            problems.append(
                f"{section}.{metric} regressed: {cur:.2f}x < "
                f"{floor:.2f}x (baseline {base:.2f}x - {max_regression:.0%})"
            )
    for key in ("wire_bytes_match", "losses_match"):
        if not current.get("epoch", {}).get(key, False):
            problems.append(f"epoch.{key} is False: fused path is not equivalent")
    return problems


def render_report(report: dict) -> str:
    """Human-readable summary of one :func:`run_bench` report."""
    from repro.utils.format import render_table

    rows = []
    for section in ("encode", "decode"):
        r = report[section]
        rows.append(
            [
                section,
                f"{r['unfused_ms']:.2f} ms ({r['unfused_mbps']:.0f} MB/s)",
                f"{r['fused_ms']:.2f} ms ({r['fused_mbps']:.0f} MB/s)",
                f"{r['speedup']:.2f}x",
            ]
        )
    for key, r in report.items():
        if not key.startswith("epoch"):
            continue
        label = f"epoch [{r['system']}]"
        rows.append(
            [
                label,
                f"{r['unfused_ms']:.1f} ms",
                f"{r['fused_ms']:.1f} ms",
                f"{r['speedup']:.2f}x",
            ]
        )
    table = render_table(["benchmark", "unfused", "fused", "speedup"], rows)
    epoch = report["epoch"]
    checks = (
        f"equivalence: wire_bytes_match={epoch['wire_bytes_match']} "
        f"losses_match={epoch['losses_match']}"
    )
    wl = epoch["workload"]
    head = (
        f"workload: {wl['dataset']}-{wl['scale']}, {wl['parts']} partitions "
        f"({wl['setting']}), hidden={wl['hidden_dim']}"
    )
    return f"{head}\n{table}\n{checks}"


def save_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
