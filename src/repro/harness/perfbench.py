"""Performance benchmark harness for the fused engines.

Unlike everything else under :mod:`repro.harness`, these benchmarks measure
*real host wall-clock* of the simulator's hot paths — not simulated device
time.  Two engines are covered:

* the **fused exchange engine** (PR 1): quantize → pack → transmit →
  unpack → dequantize as batched whole-step kernels
  (:class:`~repro.cluster.exchange.FusedQuantizedHaloExchange` vs. the
  legacy per-pair :class:`~repro.cluster.exchange.QuantizedHaloExchange`);
* the **cluster-fused compute engine** (PR 2): block-diagonal aggregation
  + stacked GEMMs for the whole training step
  (:class:`~repro.cluster.compute.FusedClusterCompute` vs. the legacy
  per-device layer loop).

Benchmark families:

* **encode** / **decode** — microbenchmarks of one exchange step on a
  synthetic message block (throughput in MB/s of float32 payload);
* **compute_spmv** / **compute_gemm** — microbenchmarks of one compute
  step: the cluster block-diagonal spmv vs. K per-device spmv's, and one
  stacked GEMM vs. K per-device GEMMs;
* **epoch** — end-to-end ``Cluster.train_epoch`` wall time on the default
  benchmark workload under the quantized system, across the three engine
  generations (legacy everything → fused exchange → fused exchange +
  fused compute), with hard equality checks on wire bytes and losses;
* **epoch_vanilla** — the compute engine's headline: end-to-end Vanilla
  (exact-exchange) epochs on the many-partition compute workload, the
  PR-1-era state (per-pair exact exchange + per-device compute) vs. the
  fully fused engine.

:func:`run_bench` bundles them into one JSON-serializable report
(``BENCH_perf.json``); :func:`compare_to_baseline` implements the CI
regression gate.  The gate compares only *dimensionless* speedup ratios —
absolute milliseconds differ across machines, ratios travel well.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import (
    ExactHaloExchange,
    FixedBitProvider,
    FusedQuantizedHaloExchange,
    HaloExchange,
)
from repro.cluster.perfmodel import PerfModel
from repro.cluster.records import StepTimeline
from repro.comm.costmodel import LinkCostModel
from repro.comm.topology import parse_topology
from repro.core.config import RunConfig
from repro.core.trainer import build_system
from repro.graph.datasets import load_dataset
from repro.graph.partition.api import partition_graph
from repro.harness.hugebench import bench_huge_graph
from repro.nn.blas import row_matmul
from repro.quant.fused import FusedStepEncoder, decode_step
from repro.quant.mixed import MixedPrecisionEncoder

__all__ = [
    "DEFAULT_WORKLOAD",
    "COMPUTE_WORKLOAD",
    "OVERLAP_WORKLOAD",
    "bench_encode",
    "bench_decode",
    "bench_pack_kernel",
    "bench_unpack_kernel",
    "bench_compute_spmv",
    "bench_compute_gemm",
    "bench_epoch",
    "bench_epoch_vanilla",
    "bench_epoch_overlap",
    "bench_epoch_overlap_async",
    "bench_exchange_split_phase",
    "bench_worker_scaling",
    "bench_process_scaling",
    "bench_decode_scatter",
    "bench_pipeline_depth",
    "bench_huge_graph",
    "run_bench",
    "compare_to_baseline",
    "render_report",
]

#: The default end-to-end workload: the paper's scalability regime (many
#: partitions, Table 7), where the legacy path's per-pair dispatch cost is
#: the bottleneck this engine removes.
DEFAULT_WORKLOAD = {
    "dataset": "reddit",
    "scale": "tiny",
    "parts": 16,
    "setting": "4M-4D",
    "hidden_dim": 32,
    "num_layers": 3,
}

#: The compute engine's epoch workload: the same graph pushed deeper into
#: the many-partition regime (64-node partitions), where per-device
#: dispatch dominates the legacy compute path.
COMPUTE_WORKLOAD = {
    "dataset": "reddit",
    "scale": "tiny",
    "parts": 32,
    "setting": "8M-4D",
    "hidden_dim": 32,
    "num_layers": 3,
}

#: The pipelined executor's workload: Table 2's dataset in the
#: many-partition regime, partitioned so every device keeps a real central
#: block (~14-20% of rows; reddit at 32 parts is 100% marginal, which
#: would make the central windows trivially empty).
OVERLAP_WORKLOAD = {
    "dataset": "ogbn-products",
    "scale": "tiny",
    "parts": 16,
    "setting": "4M-4D",
    "hidden_dim": 32,
    "num_layers": 3,
}

# Ratio metrics the CI regression gate watches (see compare_to_baseline).
_GATED_METRICS = (
    ("encode", "speedup"),
    ("decode", "speedup"),
    # Quantization hot kernels: the PR-4 word/LUT formulations vs the
    # PR-3 shift-mask/lane-loop ones.
    ("pack_kernel", "speedup"),
    ("unpack_kernel", "speedup"),
    ("compute_spmv", "speedup"),
    ("compute_gemm", "speedup"),
    ("epoch", "speedup"),
    ("epoch_vanilla", "speedup"),
    # Split-phase pipeline: dispatching an exchange step as two halves
    # must cost what one monolithic call costs...
    ("exchange_split_phase", "speedup"),
    # ...and the executed schedule must keep hiding the halo traffic
    # (every byte posted before its central window opens).
    ("epoch_overlap", "hidden_byte_fraction"),
    # The shipped overlapped engine (auto async transport + rewritten
    # quant kernels) vs the resurrected PR-3 synchronous overlapped state.
    ("epoch_overlap_async", "speedup"),
    # Keyed-RNG multi-worker pipeline: one exchange step at 4 transport
    # workers vs 1.  Gated only on multi-core runners (compare_to_baseline
    # skips it when the current report says multi_core=false — thread
    # fan-out on a starved host measures the scheduler, not the engine).
    ("worker_scaling", "speedup"),
    # Process-backed transport: the same step at 4 worker processes vs 1,
    # payloads over shared-memory rings.  Gated only on multi-core runners
    # (same rule as worker_scaling — process fan-out on a starved host
    # measures the scheduler, not the GIL escape).
    ("process_scaling", "speedup"),
    # PR 8: worker-side decode scatter under the central window vs the
    # main-thread scatter after it (multi-core only — no window to hide
    # under when the pool timeshares the main thread's core).
    ("decode_scatter", "speedup"),
    # PR 8: two-deep cross-step pipelining vs the classic depth-1
    # pipeline, full epochs on the worker transport (multi-core only).
    ("pipeline_depth", "speedup"),
    # PR 10: streaming (memmap) epochs vs the materialized in-RAM arm.
    # Multi-core only — without a spare core the page prefetch runs
    # inline and the ratio measures the fault tax, not the overlap.  The
    # section's RSS fraction and equivalence flags are gated
    # unconditionally below.
    ("huge_graph", "throughput_ratio"),
)

#: Sections whose speedup floor applies only on multi-core runners (their
#: ratio measures the OS scheduler, not the engine, on a starved host).
_MULTI_CORE_SECTIONS = frozenset(
    {"worker_scaling", "process_scaling", "decode_scatter", "pipeline_depth",
     "huge_graph"}
)


# ---------------------------------------------------------------------------
# PR-3-era quantization kernels, resurrected as baselines.
#
# The shipped pack/unpack were rewritten in PR 4 (word-merge packing,
# lookup-table unpacking, validate=False on the trusted path); benchmarking
# the new kernels against themselves would show nothing, so the old
# formulations live on here — both for the kernel microbenches and for the
# epoch_overlap_async baseline arm, which runs a whole epoch on them.
# ---------------------------------------------------------------------------
def _pr3_pack_bits(codes: np.ndarray, bits: int) -> np.ndarray:
    codes = np.ascontiguousarray(codes, dtype=np.uint8).ravel()
    if codes.size and int(codes.max()) >= (1 << bits):
        raise ValueError(f"codes exceed {bits}-bit range")
    if bits == 8:
        return codes.copy()
    per_byte = 8 // bits
    padded_len = -(-codes.size // per_byte) * per_byte
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[: codes.size] = codes
    groups = padded.reshape(-1, per_byte)
    out = groups[:, 0].copy()
    for lane in range(1, per_byte):
        out |= groups[:, lane] << np.uint8(lane * bits)
    return out


def _pr3_unpack_bits(stream: np.ndarray, bits: int, count: int) -> np.ndarray:
    if bits == 8:
        return stream[:count].copy()
    per_byte = 8 // bits
    needed = -(-count // per_byte)
    mask = np.uint8((1 << bits) - 1)
    shifts = (np.arange(per_byte, dtype=np.uint8) * bits)[None, :]
    codes = ((stream[:needed, None] >> shifts) & mask).reshape(-1)
    return codes[:count].astype(np.uint8)


def _pr3_pack_bits_batched(codes, bits, counts, *, validate=True):
    counts = np.asarray(counts, dtype=np.int64)
    codes = np.ascontiguousarray(codes, dtype=np.uint8).ravel()
    if bits == 8 or not ((counts * bits) % 8).any():
        packed = _pr3_pack_bits(codes, bits)
        offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts * bits // 8, out=offsets[1:])
        return [packed[offsets[i] : offsets[i + 1]] for i in range(counts.size)]
    bounds = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return [
        _pr3_pack_bits(codes[bounds[i] : bounds[i + 1]], bits)
        for i in range(counts.size)
    ]


def _pr3_unpack_bits_batched(streams, bits, counts, *, out=None):
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return np.zeros(0, dtype=np.uint8)
    if bits == 8 or not ((counts * bits) % 8).any():
        return _pr3_unpack_bits(np.concatenate(streams), bits, int(counts.sum()))
    return np.concatenate(
        [_pr3_unpack_bits(s, bits, int(n)) for s, n in zip(streams, counts)]
    )


def _pr3_decode_cluster_step(collects, *, workspace=None):
    """The PR-3 ``decode_cluster_step``: shift/mask unpack, per-payload
    result allocations and the trailing astype copy (``workspace`` accepted
    for signature compatibility, ignored — PR 3 had no decode scratch)."""
    flat = [
        (dst, src, payload)
        for dst, mailbox in collects.items()
        for src, payload in mailbox.items()
    ]
    if not flat:
        return {dst: {} for dst in collects}
    dim = flat[0][2].dim

    targets: dict[int, list] = {}
    streams: dict[int, list] = {}
    zero_points: dict[int, list] = {}
    scales: dict[int, list] = {}
    for dst, src, payload in flat:
        for bits, rows, stream, z, s in zip(
            payload.group_bits,
            payload.group_rows,
            payload.streams,
            payload.zero_points,
            payload.scales,
        ):
            targets.setdefault(bits, []).append((dst, src, rows))
            streams.setdefault(bits, []).append(stream)
            zero_points.setdefault(bits, []).append(z)
            scales.setdefault(bits, []).append(s)

    out: dict[int, dict[int, np.ndarray]] = {dst: {} for dst in collects}
    for dst, src, payload in flat:
        out[dst][src] = np.empty((payload.num_rows, payload.dim), dtype=np.float32)
    for bits in sorted(targets):
        counts = np.asarray(
            [rows.size * dim for _, _, rows in targets[bits]], dtype=np.int64
        )
        codes = _pr3_unpack_bits_batched(streams[bits], bits, counts).reshape(-1, dim)
        z_all = (
            zero_points[bits][0]
            if len(zero_points[bits]) == 1
            else np.concatenate(zero_points[bits])
        )
        s_all = (
            scales[bits][0] if len(scales[bits]) == 1 else np.concatenate(scales[bits])
        )
        deq = (
            codes.astype(np.float32) * s_all[:, None] + z_all[:, None]
        ).astype(np.float32)
        cursor = 0
        for dst, src, rows in targets[bits]:
            mat = out[dst][src]
            if rows.size == mat.shape[0]:
                mat[...] = deq[cursor : cursor + rows.size]
            else:
                mat[rows] = deq[cursor : cursor + rows.size]
            cursor += rows.size
    return out


class _MonolithicFusedQuantizedExchange(FusedQuantizedHaloExchange):
    """The PR-2-era fused quantized exchange: one-shot encode→post→collect→
    decode→scatter in a single call, no in-flight handle.

    Since the split-phase refactor, the shipped ``exchange_embeddings`` is
    just ``post_step`` + ``finalize_step`` — benchmarking it against the
    split halves would compare the split path against itself.  This
    resurrected monolith is the true pre-split baseline, so the gated
    ratio really measures what the two-half dispatch costs.
    """

    def exchange_embeddings(self, layer, devices, transport, h_by_dev, out=None):
        from repro.quant.fused import decode_cluster_step

        tag = f"fwd/L{layer}"
        self._encode_and_post(transport, layer, "fwd", devices, tag, h_by_dev)
        collects = {dev.rank: transport.collect(dev.rank, tag) for dev in devices}
        decoded = decode_cluster_step(collects)
        halo_by_dev = []
        for dev in devices:
            part = dev.part
            d = h_by_dev[dev.rank].shape[1]
            if out is not None:
                halo = self._halo_out(out, dev.rank, part.n_halo, d)
            else:
                halo = self._halo_buffer(dev.rank, layer, part.n_halo, d)
            for p, mat in decoded[dev.rank].items():
                halo[part.recv_map[p]] = mat
            halo_by_dev.append(halo)
        return halo_by_dev


class _PerPairExactHaloExchange(ExactHaloExchange):
    """The PR-1-era exact exchange: one post and one scatter per pair.

    Restores the generic base-class step halves over the fused subclass's
    step-batched ones; used as the epoch_vanilla baseline.  (The monolithic
    entry points are base-class compositions of these halves, so overriding
    the halves restores the whole per-pair path.)
    """

    post_step = HaloExchange.post_step
    finalize_step = HaloExchange.finalize_step


def _median_time(fn, reps: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def _synthetic_step(
    seed: int, n_pairs: int, rows_per_pair: int, dim: int
) -> tuple[np.ndarray, list, np.ndarray, np.ndarray, np.ndarray]:
    gen = np.random.default_rng(seed)
    n = n_pairs * rows_per_pair
    values = gen.normal(size=(max(4 * rows_per_pair, 256), dim)).astype(np.float32)
    cat_idx = gen.integers(0, values.shape[0], n)
    bits_cat = gen.choice([2, 4, 8], size=n)
    pairs = [(0, q + 1) for q in range(n_pairs)]
    counts = np.full(n_pairs, rows_per_pair, dtype=np.int64)
    return values, pairs, counts, cat_idx, bits_cat


def bench_encode(
    *,
    n_pairs: int = 48,
    rows_per_pair: int = 64,
    dim: int = 64,
    reps: int = 30,
    seed: int = 0,
) -> dict:
    """Throughput of one step's encode: legacy per-pair loop vs. fused."""
    values, pairs, counts, cat_idx, bits_cat = _synthetic_step(
        seed, n_pairs, rows_per_pair, dim
    )
    n = n_pairs * rows_per_pair
    payload_mb = n * dim * 4 / 1e6
    bounds = np.arange(0, n + 1, rows_per_pair)

    legacy = MixedPrecisionEncoder(np.random.default_rng(seed))

    def run_legacy():
        for i in range(n_pairs):
            sel = cat_idx[bounds[i] : bounds[i + 1]]
            legacy.encode(values[sel], bits_cat[bounds[i] : bounds[i + 1]])

    fused = FusedStepEncoder(np.random.default_rng(seed))
    blocks = [(0, 0, n)]
    plan = fused.plan_for("bench", pairs, counts, blocks, cat_idx, bits_cat, dim)

    def run_fused():
        fused.encode_step(plan, {0: values})

    t_legacy = _median_time(run_legacy, reps)
    t_fused = _median_time(run_fused, reps)
    return {
        "unfused_ms": t_legacy * 1e3,
        "fused_ms": t_fused * 1e3,
        "unfused_mbps": payload_mb / t_legacy,
        "fused_mbps": payload_mb / t_fused,
        "speedup": t_legacy / t_fused,
    }


def bench_decode(
    *,
    n_pairs: int = 48,
    rows_per_pair: int = 64,
    dim: int = 64,
    reps: int = 30,
    seed: int = 0,
) -> dict:
    """Throughput of one step's decode: per-payload loop vs. batched."""
    values, pairs, counts, cat_idx, bits_cat = _synthetic_step(
        seed, n_pairs, rows_per_pair, dim
    )
    n = n_pairs * rows_per_pair
    payload_mb = n * dim * 4 / 1e6
    fused = FusedStepEncoder(np.random.default_rng(seed))
    plan = fused.plan_for(
        "bench", pairs, counts, [(0, 0, n)], cat_idx, bits_cat, dim
    )
    payloads = fused.encode_step(plan, {0: values})
    mailbox = {dst: payload for (_, dst), payload in payloads.items()}

    def run_legacy():
        for payload in mailbox.values():
            payload.decode()

    def run_fused():
        decode_step(mailbox)

    t_legacy = _median_time(run_legacy, reps)
    t_fused = _median_time(run_fused, reps)
    return {
        "unfused_ms": t_legacy * 1e3,
        "fused_ms": t_fused * 1e3,
        "unfused_mbps": payload_mb / t_legacy,
        "fused_mbps": payload_mb / t_fused,
        "speedup": t_legacy / t_fused,
    }


def bench_pack_kernel(
    *, bits: int = 2, count: int = 1 << 20, reps: int = 30, seed: int = 0
) -> dict:
    """One step-sized ``pack_bits`` call: PR-3 lane loop vs word merge.

    The new kernel also runs with ``validate=False`` — the trusted fused
    path skips the O(n) range scan the old kernel always paid.
    Throughput is MB/s of unpacked uint8 codes consumed.
    """
    from repro.quant.packing import pack_bits

    gen = np.random.default_rng(seed)
    codes = gen.integers(0, 1 << bits, count).astype(np.uint8)
    payload_mb = codes.nbytes / 1e6
    t_legacy = _median_time(lambda: _pr3_pack_bits(codes, bits), reps)
    t_new = _median_time(lambda: pack_bits(codes, bits, validate=False), reps)
    return {
        "bits": bits,
        "count": count,
        "unfused_ms": t_legacy * 1e3,
        "fused_ms": t_new * 1e3,
        "unfused_mbps": payload_mb / t_legacy,
        "fused_mbps": payload_mb / t_new,
        "speedup": t_legacy / t_new,
    }


def bench_unpack_kernel(
    *, bits: int = 2, count: int = 1 << 20, reps: int = 30, seed: int = 0
) -> dict:
    """One step-sized ``unpack_bits`` call: PR-3 shift/mask vs word LUT.

    Throughput is MB/s of decoded uint8 codes produced (the acceptance
    metric for the lookup-table decode).
    """
    from repro.quant.packing import pack_bits, unpack_bits

    gen = np.random.default_rng(seed)
    codes = gen.integers(0, 1 << bits, count).astype(np.uint8)
    stream = pack_bits(codes, bits)
    payload_mb = count / 1e6
    t_legacy = _median_time(lambda: _pr3_unpack_bits(stream, bits, count), reps)
    t_new = _median_time(lambda: unpack_bits(stream, bits, count), reps)
    return {
        "bits": bits,
        "count": count,
        "unfused_ms": t_legacy * 1e3,
        "fused_ms": t_new * 1e3,
        "unfused_mbps": payload_mb / t_legacy,
        "fused_mbps": payload_mb / t_new,
        "speedup": t_legacy / t_new,
    }


def _load_workload(wl: dict, seed: int):
    ds = load_dataset(wl["dataset"], scale=wl["scale"], seed=seed)
    book = partition_graph(ds.graph, wl["parts"], method="metis", seed=seed)
    return ds, book


def _workload_cluster(ds, book, wl: dict, seed: int, fused_compute: bool) -> Cluster:
    return Cluster(
        ds,
        book,
        model_kind="gcn",
        hidden_dim=wl["hidden_dim"],
        num_layers=wl["num_layers"],
        dropout=0.5,
        seed=seed,
        fused_compute=fused_compute,
    )


def bench_compute_spmv(
    *, workload: dict | None = None, reps: int = 30, seed: int = 0
) -> dict:
    """One cluster aggregation: block-diagonal spmv vs. K per-device spmv's.

    Throughput is reported in MB/s of float32 activation rows consumed.
    """
    wl = dict(COMPUTE_WORKLOAD)
    if workload:
        wl.update(workload)
    ds, book = _load_workload(wl, seed)
    cluster = _workload_cluster(ds, book, wl, seed, True)
    engine = cluster._compute_engine()
    dim = wl["hidden_dim"]
    gen = np.random.default_rng(seed)
    x_global = gen.normal(size=(engine.matrix.shape[1], dim)).astype(np.float32)
    x_by_dev = [
        np.vstack(
            [
                x_global[engine.own_off[k] : engine.own_off[k + 1]],
                x_global[
                    engine.total_own + engine.halo_off[k] : engine.total_own
                    + engine.halo_off[k + 1]
                ],
            ]
        )
        for k in range(len(cluster.devices))
    ]

    def run_fused():
        return engine.matrix @ x_global

    def run_legacy():
        for dev, x in zip(cluster.devices, x_by_dev):
            dev.agg.aggregate(x)

    t_fused = _median_time(run_fused, reps)
    t_legacy = _median_time(run_legacy, reps)
    payload_mb = x_global.nbytes / 1e6
    return {
        "workload": wl,
        "unfused_ms": t_legacy * 1e3,
        "fused_ms": t_fused * 1e3,
        "unfused_mbps": payload_mb / t_legacy,
        "fused_mbps": payload_mb / t_fused,
        "speedup": t_legacy / t_fused,
    }


def bench_compute_gemm(
    *,
    n_devices: int = 32,
    rows_per_device: int = 64,
    d_in: int = 32,
    d_out: int = 32,
    reps: int = 50,
    seed: int = 0,
) -> dict:
    """One layer's dense transform: stacked GEMM vs. K per-device GEMMs.

    The legacy loop uses plain ``@`` — the true pre-engine cost — so the
    gated ratio is not inflated by :func:`row_matmul`'s row-determinism
    padding (which the shipped per-device escape hatch does pay; that
    cost is reported separately as ``unfused_padded_ms``).
    """
    gen = np.random.default_rng(seed)
    stacked = gen.normal(size=(n_devices * rows_per_device, d_in)).astype(np.float32)
    weight = gen.normal(size=(d_in, d_out)).astype(np.float32)
    slices = [
        stacked[k * rows_per_device : (k + 1) * rows_per_device].copy()
        for k in range(n_devices)
    ]

    def run_fused():
        row_matmul(stacked, weight)

    def run_legacy():
        for x in slices:
            x @ weight

    def run_legacy_padded():
        for x in slices:
            row_matmul(x, weight)

    t_fused = _median_time(run_fused, reps)
    t_legacy = _median_time(run_legacy, reps)
    t_padded = _median_time(run_legacy_padded, reps)
    payload_mb = stacked.nbytes / 1e6
    return {
        "n_devices": n_devices,
        "rows_per_device": rows_per_device,
        "unfused_ms": t_legacy * 1e3,
        "unfused_padded_ms": t_padded * 1e3,
        "fused_ms": t_fused * 1e3,
        "unfused_mbps": payload_mb / t_legacy,
        "fused_mbps": payload_mb / t_fused,
        "speedup": t_legacy / t_fused,
    }


def bench_epoch(
    *,
    system: str = "adaqp-fixed",
    workload: dict | None = None,
    epochs: int = 8,
    warmup: int = 2,
    seed: int = 0,
) -> dict:
    """End-to-end epoch wall time across the three engine generations.

    ``legacy`` is per-pair exchange + per-device compute, ``pr1`` is fused
    exchange + per-device compute, ``fused`` is the full engine stack.
    All three must produce identical per-epoch losses and identical total
    wire bytes — the contract both fused engines are built on.
    """
    wl = dict(DEFAULT_WORKLOAD)
    if workload:
        wl.update(workload)
    topology = parse_topology(wl["setting"])
    ds, book = _load_workload(wl, seed)
    cost_model = LinkCostModel.for_topology(topology)

    def run(fused_exchange: bool, fused_compute: bool) -> tuple[float, list[float], int]:
        cfg = RunConfig(
            epochs=epochs,
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            reassign_period=4,
            seed=seed,
            fused_exchange=fused_exchange,
            fused_compute=fused_compute,
        )
        cluster = _workload_cluster(ds, book, wl, seed, fused_compute)
        setup = build_system(system, cluster, cost_model, cfg)
        times: list[float] = []
        losses: list[float] = []
        wire_bytes = 0
        for epoch in range(epochs):
            t0 = time.perf_counter()
            record = cluster.train_epoch(setup.exchange, epoch)
            times.append(time.perf_counter() - t0)
            losses.append(record.loss)
            wire_bytes += record.total_wire_bytes()
        # min over warm epochs: epoch work is deterministic, so the
        # fastest repetition is the least noise-contaminated one.
        return float(np.min(times[warmup:])), losses, wire_bytes

    t_fused, losses_f, bytes_f = run(True, True)
    t_pr1, losses_p, bytes_p = run(True, False)
    t_legacy, losses_u, bytes_u = run(False, False)
    return {
        "system": system,
        "workload": wl,
        "epochs": epochs,
        "fused_ms": t_fused * 1e3,
        "pr1_ms": t_pr1 * 1e3,
        "unfused_ms": t_legacy * 1e3,
        "speedup": t_legacy / t_fused,
        "exchange_speedup": t_legacy / t_pr1,
        "compute_speedup": t_pr1 / t_fused,
        "wire_bytes_match": bytes_f == bytes_p == bytes_u,
        "losses_match": losses_f == losses_p == losses_u,
    }


def bench_epoch_vanilla(
    *,
    workload: dict | None = None,
    epochs: int = 8,
    warmup: int = 2,
    seed: int = 0,
) -> dict:
    """Vanilla (exact-exchange) epochs: PR-1-era state vs. the fused stack.

    The baseline runs the per-pair exact exchange with per-device compute
    — exactly the state this engine inherited; the fused run uses the
    step-batched exact exchange and the cluster-fused compute engine.
    Wire bytes must match exactly; losses agree to float32 tolerance (the
    batched exact exchange reduces incoming gradients per owner in one
    operator, which regroups — never reorders — the additions).  The
    bitwise fused-vs-legacy-compute contract is asserted separately with a
    shared exchange.

    The in-binary baseline arm is a fair PR-1 proxy: it pays
    ``row_matmul``'s padding (which actual PR-1 code did not) but rides
    this PR's faster transport and cached phase records (which actual
    PR-1 code also did not); measured against a real PR-1 checkout the
    two effects roughly cancel (~52ms/epoch there vs ~53-58ms here on the
    reference machine, ratio 2.0-2.3x either way).
    """
    wl = dict(COMPUTE_WORKLOAD)
    if workload:
        wl.update(workload)
    ds, book = _load_workload(wl, seed)

    def run(fused_compute: bool, exchange: HaloExchange):
        cluster = _workload_cluster(ds, book, wl, seed, fused_compute)
        times: list[float] = []
        losses: list[float] = []
        wire_bytes = 0
        for epoch in range(epochs):
            t0 = time.perf_counter()
            record = cluster.train_epoch(exchange, epoch)
            times.append(time.perf_counter() - t0)
            losses.append(record.loss)
            wire_bytes += record.total_wire_bytes()
        # min over warm epochs: epoch work is deterministic, so the
        # fastest repetition is the least noise-contaminated one.
        return float(np.min(times[warmup:])), losses, wire_bytes

    t_fused, losses_f, bytes_f = run(True, ExactHaloExchange())
    t_pr1, losses_p, bytes_p = run(False, _PerPairExactHaloExchange())
    t_legacy_compute, losses_l, bytes_l = run(False, ExactHaloExchange())
    return {
        "system": "vanilla",
        "workload": wl,
        "epochs": epochs,
        "fused_ms": t_fused * 1e3,
        "unfused_ms": t_pr1 * 1e3,
        "legacy_compute_ms": t_legacy_compute * 1e3,
        "speedup": t_pr1 / t_fused,
        "compute_speedup": t_legacy_compute / t_fused,
        "wire_bytes_match": bytes_f == bytes_p == bytes_l,
        "losses_match": losses_f == losses_l,  # bitwise, shared exchange
        "losses_close": bool(
            np.allclose(losses_p, losses_f, rtol=1e-5, atol=1e-8)
        ),
    }


def bench_exchange_split_phase(
    *, workload: dict | None = None, reps: int = 30, seed: int = 0
) -> dict:
    """Split-phase vs monolithic exchange dispatch on one real step.

    Both arms run the fused quantized kernels over the same cluster step;
    the split arm goes through ``post_step`` → ``finalize_step`` while the
    baseline is the resurrected PR-2-era one-shot call
    (:class:`_MonolithicFusedQuantizedExchange` — the shipped monolithic
    entry point is itself the composition now, so it cannot serve as the
    baseline).  The gated ratio (monolithic / split) should sit at ~1.0 —
    the pipeline's cost lives in the compute engine's gathers, not in the
    exchange — and the gate catches either half growing a hidden per-step
    overhead.
    """
    wl = dict(DEFAULT_WORKLOAD)
    if workload:
        wl.update(workload)
    ds, book = _load_workload(wl, seed)
    cluster = _workload_cluster(ds, book, wl, seed, True)
    devices = cluster.devices
    transport = cluster.transport
    mono = _MonolithicFusedQuantizedExchange(
        FixedBitProvider(2), np.random.default_rng(seed)
    )
    split = FusedQuantizedHaloExchange(
        FixedBitProvider(2), np.random.default_rng(seed)
    )
    h_by_dev = [dev.features for dev in devices]
    rows_out = sum(
        len(rows) for dev in devices for rows in dev.part.send_map.values()
    )
    payload_mb = rows_out * ds.num_features * 4 / 1e6

    def run_mono():
        mono.exchange_embeddings(0, devices, transport, h_by_dev)

    def run_split():
        step = split.post_step(0, "fwd", devices, transport, h_by_dev)
        split.finalize_step(step)

    t_mono = _median_time(run_mono, reps)
    t_split = _median_time(run_split, reps)
    return {
        "workload": wl,
        "unfused_ms": t_mono * 1e3,  # monolithic call
        "fused_ms": t_split * 1e3,  # post_step + finalize_step
        "unfused_mbps": payload_mb / t_mono,
        "fused_mbps": payload_mb / t_split,
        "speedup": t_mono / t_split,
    }


def bench_worker_scaling(
    *,
    workload: dict | None = None,
    reps: int = 20,
    workers: int = 4,
    seed: int = 0,
) -> dict:
    """Keyed-RNG encode/decode fan-out: 1 transport worker vs ``workers``.

    Drives one real fused quantized exchange step (the DEFAULT_WORKLOAD
    topology) through :class:`~repro.comm.transport.WorkerTransport` under
    :class:`~repro.quant.stochastic.KeyedRounding`: ``post_step`` shards
    the quantize/pack across the pool, the last shard chases it with
    per-receiver decode jobs, and ``finalize_step`` just joins and
    scatters.  The calling thread blocks in finalize, so the measured
    ratio isolates intra-pool parallelism — the thing the keyed RNG makes
    legal — rather than main-thread overlap (that is
    ``epoch_overlap_async``'s job).

    ``multi_core`` gates: on hosts with fewer cores than ``workers`` the
    ratio measures timesharing, so the CI comparison skips it there
    (``speedup`` is still reported).  Wire bytes must match across worker
    counts — the order-independence contract's cheap half; the bitwise
    losses/gradients matrix lives in the tier-1 equivalence suite.
    """
    from repro.comm.transport import WorkerTransport, detected_cores
    from repro.quant.stochastic import KeyedRounding

    wl = dict(DEFAULT_WORKLOAD)
    if workload:
        wl.update(workload)
    ds, book = _load_workload(wl, seed)
    cluster = _workload_cluster(ds, book, wl, seed, True)
    devices = cluster.devices
    h_by_dev = [dev.features for dev in devices]
    rows_out = sum(
        len(rows) for dev in devices for rows in dev.part.send_map.values()
    )
    payload_mb = rows_out * ds.num_features * 4 / 1e6

    def run(n_workers: int) -> tuple[float, int]:
        transport = WorkerTransport(cluster.num_devices, workers=n_workers)
        exchange = FusedQuantizedHaloExchange(
            FixedBitProvider(2), KeyedRounding(seed)
        )

        def step():
            in_flight = exchange.post_step(0, "fwd", devices, transport, h_by_dev)
            exchange.finalize_step(in_flight)

        try:
            elapsed = _median_time(step, reps)
            total = transport.total_bytes()
        finally:
            transport.close()
        return elapsed, total

    t_one, bytes_one = run(1)
    t_many, bytes_many = run(workers)
    cores = detected_cores()
    return {
        "workload": wl,
        "workers": workers,
        "cores": cores,
        "multi_core": cores >= workers,
        # unfused/fused ride the generic renderer + gate machinery; the
        # explicit aliases say what the arms actually are.
        "unfused_ms": t_one * 1e3,  # == one_worker_ms
        "fused_ms": t_many * 1e3,  # == pool_ms
        "one_worker_ms": t_one * 1e3,
        "pool_ms": t_many * 1e3,
        "unfused_mbps": payload_mb / t_one,
        "fused_mbps": payload_mb / t_many,
        "speedup": t_one / t_many,
        "wire_bytes_match": bytes_one == bytes_many,
    }


def bench_process_scaling(
    *,
    workload: dict | None = None,
    reps: int = 20,
    workers: int = 4,
    seed: int = 0,
) -> dict:
    """Process-backed encode/decode fan-out: 1 worker process vs ``workers``.

    The :func:`bench_worker_scaling` experiment re-run on
    :class:`~repro.comm.process.ProcessTransport`: each shard's
    quantize/pack — and each receiver's decode — executes in a separate
    *process*, with float inputs and packed payloads crossing over
    shared-memory ring segments instead of the heap.  Threads share one
    GIL, so the worker pool only scales while the kernels are in
    GIL-releasing NumPy; processes do not, which is the whole point of
    the backend — quantize-heavy steps whose Python-side dispatch starves
    the thread pool keep scaling here.

    Same gating contract as worker_scaling: ``speedup`` is held to the CI
    floor only on multi-core runners, ``wire_bytes_match`` always (worker
    count must never change the keyed-rounding wire bytes).
    """
    from repro.comm.process import ProcessTransport
    from repro.comm.transport import detected_cores
    from repro.quant.stochastic import KeyedRounding

    wl = dict(DEFAULT_WORKLOAD)
    if workload:
        wl.update(workload)
    ds, book = _load_workload(wl, seed)
    cluster = _workload_cluster(ds, book, wl, seed, True)
    devices = cluster.devices
    h_by_dev = [dev.features for dev in devices]
    rows_out = sum(
        len(rows) for dev in devices for rows in dev.part.send_map.values()
    )
    payload_mb = rows_out * ds.num_features * 4 / 1e6

    def run(n_workers: int) -> tuple[float, int]:
        transport = ProcessTransport(cluster.num_devices, workers=n_workers)
        exchange = FusedQuantizedHaloExchange(
            FixedBitProvider(2), KeyedRounding(seed)
        )

        def step():
            in_flight = exchange.post_step(0, "fwd", devices, transport, h_by_dev)
            exchange.finalize_step(in_flight)

        try:
            # One unmeasured step beyond _median_time's warmup: the first
            # step pays process spawn + shm ring creation, and on slow
            # hosts that cost can survive a short warmup window.
            step()
            transport.reset_accounting()
            elapsed = _median_time(step, reps)
            total = transport.total_bytes()
        finally:
            transport.close()
        return elapsed, total

    t_one, bytes_one = run(1)
    t_many, bytes_many = run(workers)
    cores = detected_cores()
    return {
        "workload": wl,
        "workers": workers,
        "cores": cores,
        "multi_core": cores >= workers,
        "unfused_ms": t_one * 1e3,  # == one_proc_ms
        "fused_ms": t_many * 1e3,  # == pool_ms
        "one_proc_ms": t_one * 1e3,
        "pool_ms": t_many * 1e3,
        "unfused_mbps": payload_mb / t_one,
        "fused_mbps": payload_mb / t_many,
        "speedup": t_one / t_many,
        "wire_bytes_match": bytes_one == bytes_many,
    }


def bench_epoch_overlap(
    *,
    system: str = "adaqp-fixed",
    workload: dict | None = None,
    epochs: int = 8,
    warmup: int = 2,
    seed: int = 0,
) -> dict:
    """The pipelined executor's headline: measured overlap efficiency.

    Runs the adaqp pipeline on the many-partition workload with the
    split-phase executor on vs. off (both fused-engine, bit-identical) and
    reports, from the executed schedule:

    * ``hidden_byte_fraction`` — fraction of halo wire bytes that really
      were in flight during a central-compute window (the transport's
      interleave record; 1.0 means the executed pipeline posted every
      message before its central window opened);
    * ``measured_central_share`` — measured central fraction of the split
      compute (the work the schedule hides under communication);
    * ``modeled_hidden_comm_fraction`` and ``table2_headroom_fraction`` —
      the cost-model's view of the same record: how much of the simulated
      comm time central compute covers, and the fraction of steps where
      comm fully outlasts central compute (Table 2's headroom claim) —
      model and measurement cross-checked on one record;
    * ``speedup`` — wall-clock ratio of the non-overlapped engine to the
      pipelined one (the split's gather overhead makes this hover near or
      slightly below 1.0 on the host simulator; it is reported, not
      gated).
    """
    wl = dict(OVERLAP_WORKLOAD)
    if workload:
        wl.update(workload)
    topology = parse_topology(wl["setting"])
    ds, book = _load_workload(wl, seed)
    cost_model = LinkCostModel.for_topology(topology)
    perf_model = PerfModel()

    def run(overlap: bool):
        cfg = RunConfig(
            epochs=epochs,
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            reassign_period=4,
            seed=seed,
            overlap=overlap,
            transport="sync",
            pipeline_depth=1,
        )
        # Transport pinned to sync and depth pinned to 1: this bench
        # isolates the split-phase executor itself; the auto transport
        # would make the ratio depend on the runner's core count (the
        # transport comparison lives in bench_epoch_overlap_async, the
        # depth comparison in bench_pipeline_depth).
        cluster = Cluster(
            ds,
            book,
            model_kind="gcn",
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            dropout=0.5,
            seed=seed,
            fused_compute=True,
            overlap=overlap,
            transport="sync",
            pipeline_depth=1,
        )
        setup = build_system(system, cluster, cost_model, cfg)
        times: list[float] = []
        losses: list[float] = []
        wire = 0
        record = None
        try:
            for epoch in range(epochs):
                t0 = time.perf_counter()
                record = cluster.train_epoch(setup.exchange, epoch)
                times.append(time.perf_counter() - t0)
                losses.append(record.loss)
                wire += record.total_wire_bytes()
        finally:
            cluster.close()
        return float(np.min(times[warmup:])), losses, wire, record

    t_overlap, losses_o, bytes_o, rec_o = run(True)
    t_plain, losses_p, bytes_p, _ = run(False)

    timelines = rec_o.timelines
    central = sum(t.central_s for t in timelines)
    marginal = sum(t.marginal_s for t in timelines)
    modeled = [
        StepTimeline.from_record(p, cost_model, perf_model) for p in rec_o.phases
    ]
    modeled_comm = sum(t.comm_s for t in modeled)
    modeled_hidden = sum(t.hidden_comm_s for t in modeled)
    headroom = [t.comm_s >= t.central_s for t in modeled]
    return {
        "system": system,
        "workload": wl,
        "epochs": epochs,
        "fused_ms": t_overlap * 1e3,  # split-phase pipelined executor
        "unfused_ms": t_plain * 1e3,  # fused engine, no overlap
        "speedup": t_plain / t_overlap,
        "hidden_byte_fraction": rec_o.hidden_byte_fraction(),
        "measured_central_share": central / max(central + marginal, 1e-12),
        "modeled_hidden_comm_fraction": modeled_hidden / max(modeled_comm, 1e-12),
        "table2_headroom_fraction": float(np.mean(headroom)),
        "losses_match": losses_o == losses_p,
        "wire_bytes_match": bytes_o == bytes_p,
    }


def bench_epoch_overlap_async(
    *,
    system: str = "adaqp-fixed",
    workload: dict | None = None,
    epochs: int = 8,
    warmup: int = 2,
    seed: int = 0,
) -> dict:
    """The PR-4 headline: the shipped overlapped engine vs the PR-3 state.

    Four arms, all bitwise-identical (asserted on losses and wire bytes):

    * ``fused`` — the shipped default: auto-selected transport (worker
      thread when the host has a spare core, synchronous otherwise) plus
      the rewritten quantization kernels;
    * ``async`` / ``sync`` — the same engine with the transport forced on
      / off; their ratio (``concurrency_speedup``) isolates what the
      worker thread alone buys, which exceeds 1.0 only on multi-core
      hosts (on one core the worker merely timeshares);
    * ``unfused`` — the resurrected PR-3 synchronous overlapped epoch:
      synchronous transport, PR-3 shift/mask + lane-loop quantization
      kernels (patched into the fused encoder's call sites) and no decode
      scratch reuse.

    The gated ``speedup`` is ``unfused / fused`` — what this PR delivered
    end to end on this host.
    """
    import contextlib
    from unittest import mock

    import repro.quant.fused as fused_mod

    wl = dict(OVERLAP_WORKLOAD)
    if workload:
        wl.update(workload)
    ds, book = _load_workload(wl, seed)
    cost_model = LinkCostModel.for_topology(parse_topology(wl["setting"]))

    def run(transport, pr3_kernels: bool = False):
        cfg = RunConfig(
            epochs=epochs,
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            reassign_period=4,
            seed=seed,
            overlap=True,
            transport=transport,
        )
        cluster = Cluster(
            ds,
            book,
            model_kind="gcn",
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            dropout=0.5,
            seed=seed,
            fused_compute=True,
            overlap=True,
            transport=transport,
        )
        setup = build_system(system, cluster, cost_model, cfg)
        with contextlib.ExitStack() as stack:
            if pr3_kernels:
                import repro.cluster.exchange as exchange_mod

                setup.exchange._decode_ws = None
                stack.enter_context(
                    mock.patch.object(
                        fused_mod, "pack_bits_batched", _pr3_pack_bits_batched
                    )
                )
                stack.enter_context(
                    mock.patch.object(
                        fused_mod, "unpack_bits_batched", _pr3_unpack_bits_batched
                    )
                )
                stack.enter_context(
                    mock.patch.object(
                        exchange_mod,
                        "decode_cluster_step",
                        _pr3_decode_cluster_step,
                    )
                )
            times: list[float] = []
            losses: list[float] = []
            wire = 0
            record = None
            try:
                for epoch in range(epochs):
                    t0 = time.perf_counter()
                    record = cluster.train_epoch(setup.exchange, epoch)
                    times.append(time.perf_counter() - t0)
                    losses.append(record.loss)
                    wire += record.total_wire_bytes()
            finally:
                cluster.close()
        was_async = cluster.async_transport
        return float(np.min(times[warmup:])), losses, wire, record, was_async

    t_default, losses_d, bytes_d, _, default_async = run("auto")
    t_async, losses_a, bytes_a, rec_a, _ = run("worker")
    t_sync, losses_s, bytes_s, _, _ = run("sync")
    t_pr3, losses_p, bytes_p, _, _ = run("sync", pr3_kernels=True)

    import os

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        cores = os.cpu_count() or 1
    summary = rec_a.timeline_summary
    stage_total = (
        summary.quantize_s
        + summary.central_s
        + summary.dequantize_s
        + summary.marginal_s
    )
    return {
        "system": system,
        "workload": wl,
        "epochs": epochs,
        "cores": cores,
        "default_is_async": default_async,
        "fused_ms": t_default * 1e3,  # shipped default engine
        "unfused_ms": t_pr3 * 1e3,  # resurrected PR-3 sync overlapped epoch
        "async_ms": t_async * 1e3,
        "sync_ms": t_sync * 1e3,
        "speedup": t_pr3 / t_default,
        "concurrency_speedup": t_sync / t_async,
        "kernel_speedup": t_pr3 / t_sync,
        "hidden_byte_fraction": rec_a.hidden_byte_fraction(),
        "worker_wait_share": summary.worker_wait_s / max(stage_total, 1e-12),
        "losses_match": losses_d == losses_a == losses_s == losses_p,
        "wire_bytes_match": bytes_d == bytes_a == bytes_s == bytes_p,
    }


def bench_decode_scatter(
    *,
    workload: dict | None = None,
    reps: int = 20,
    workers: int = 4,
    seed: int = 0,
) -> dict:
    """Worker-side decode scatter vs the main-thread scatter it replaced.

    One real fused quantized exchange step on the worker transport, with a
    central-window stand-in (a GIL-releasing GEMM) between post and
    finalize — the shape of the pipelined executor's forward step.  Two
    arms, identical numerics:

    * ``unfused`` — post without ``out=``: workers decode, finalize runs
      the per-receiver permutation scatter on the main thread, *after*
      the central window closed (the pre-PR-8 exposed cost);
    * ``fused`` — post with ``out=`` halo buffers named at post time:
      each receiver's decode job scatters its contiguous halo shard on
      the pool, under the GEMM, and finalize is join-only.

    The ratio is the exposed-scatter time the sharding hides.  Gated only
    on multi-core runners: with the pool timesharing the main thread's
    core there is no window to hide under.
    """
    from repro.comm.transport import WorkerTransport, detected_cores
    from repro.quant.stochastic import KeyedRounding

    wl = dict(DEFAULT_WORKLOAD)
    if workload:
        wl.update(workload)
    ds, book = _load_workload(wl, seed)
    cluster = _workload_cluster(ds, book, wl, seed, True)
    devices = cluster.devices
    h_by_dev = [dev.features for dev in devices]
    dim = int(h_by_dev[0].shape[1])
    halo_rows = sum(dev.part.n_halo for dev in devices)
    payload_mb = halo_rows * dim * 4 / 1e6
    # The central-window stand-in: sized so one GEMM takes the same order
    # of magnitude as the scatter — the regime where hiding it matters.
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((2048, 256)).astype(np.float32)
    b = rng.standard_normal((256, 256)).astype(np.float32)
    gemm_out = np.empty((2048, 256), dtype=np.float32)

    def run(scatter_out: bool) -> tuple[float, list[np.ndarray]]:
        transport = WorkerTransport(cluster.num_devices, workers=workers)
        exchange = FusedQuantizedHaloExchange(
            FixedBitProvider(2), KeyedRounding(seed)
        )
        halos = [
            np.zeros((dev.part.n_halo, dim), dtype=np.float32)
            for dev in devices
        ]

        def step():
            in_flight = exchange.post_step(
                0, "fwd", devices, transport, h_by_dev,
                out=halos if scatter_out else None,
            )
            np.matmul(a, b, out=gemm_out)  # the central window
            exchange.finalize_step(in_flight, out=halos)

        try:
            elapsed = _median_time(step, reps)
        finally:
            transport.close()
        return elapsed, halos

    t_main, halos_main = run(False)
    t_sharded, halos_sharded = run(True)
    cores = detected_cores()
    return {
        "workload": wl,
        "workers": workers,
        "cores": cores,
        "multi_core": cores >= workers,
        "unfused_ms": t_main * 1e3,  # main-thread scatter after the window
        "fused_ms": t_sharded * 1e3,  # worker-side scatter under the window
        "unfused_mbps": payload_mb / t_main,
        "fused_mbps": payload_mb / t_sharded,
        "speedup": t_main / t_sharded,
        "scatter_match": all(
            np.array_equal(m, s) for m, s in zip(halos_main, halos_sharded)
        ),
    }


def bench_pipeline_depth(
    *,
    system: str = "adaqp-fixed",
    workload: dict | None = None,
    epochs: int = 8,
    warmup: int = 2,
    seed: int = 0,
) -> dict:
    """PR 8's headline: two-deep cross-step pipelining vs depth 1.

    Full adaqp epochs on the overlap workload with the worker transport,
    ``pipeline_depth=2`` vs ``pipeline_depth=1`` — bitwise-identical by
    construction (asserted on losses and wire bytes); the ratio is what
    moving each step's post dispatch into the previous marginal window
    (and deferring the backward parameter partials past the next post)
    buys in wall-clock.  Also reported:

    * ``worker_wait_share`` — depth-2 exposed join wait over total stage
      time (the acceptance target is ~0: the lookahead gives every encode
      a whole extra marginal window to finish under);
    * ``modeled_speedup`` and ``modeled_hidden_lookahead_s`` — the
      extended Fig. 10 simulator (``schedule_adaqp(pipeline_depth=2)``)
      re-timing the *same* depth-2 record, cross-checked against the
      measured ``lookahead_post_s`` the StepTimelines carry.

    Gated on multi-core runners only: depth 2 trades main-thread dispatch
    for pool concurrency, which a single-core host cannot cash in.
    """
    from repro.comm.transport import detected_cores
    from repro.core.scheduler import schedule_adaqp

    wl = dict(OVERLAP_WORKLOAD)
    if workload:
        wl.update(workload)
    topology = parse_topology(wl["setting"])
    ds, book = _load_workload(wl, seed)
    cost_model = LinkCostModel.for_topology(topology)
    perf_model = PerfModel()

    def run(depth: int):
        cfg = RunConfig(
            epochs=epochs,
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            reassign_period=4,
            seed=seed,
            overlap=True,
            transport="worker",
            pipeline_depth=depth,
        )
        cluster = Cluster(
            ds,
            book,
            model_kind="gcn",
            hidden_dim=wl["hidden_dim"],
            num_layers=wl["num_layers"],
            dropout=0.5,
            seed=seed,
            fused_compute=True,
            overlap=True,
            transport="worker",
            pipeline_depth=depth,
        )
        setup = build_system(system, cluster, cost_model, cfg)
        times: list[float] = []
        losses: list[float] = []
        wire = 0
        record = None
        try:
            for epoch in range(epochs):
                t0 = time.perf_counter()
                record = cluster.train_epoch(setup.exchange, epoch)
                times.append(time.perf_counter() - t0)
                losses.append(record.loss)
                wire += record.total_wire_bytes()
        finally:
            cluster.close()
        return float(np.min(times[warmup:])), losses, wire, record

    t_deep, losses_2, bytes_2, rec_2 = run(2)
    t_shallow, losses_1, bytes_1, _ = run(1)

    summary = rec_2.timeline_summary
    stage_total = (
        summary.quantize_s
        + summary.central_s
        + summary.dequantize_s
        + summary.marginal_s
    )
    modeled_1 = schedule_adaqp(rec_2, cost_model, perf_model, pipeline_depth=1)
    modeled_2 = schedule_adaqp(rec_2, cost_model, perf_model, pipeline_depth=2)
    cores = detected_cores()
    return {
        "system": system,
        "workload": wl,
        "epochs": epochs,
        "cores": cores,
        "multi_core": cores >= 2,
        "unfused_ms": t_shallow * 1e3,  # pipeline_depth=1
        "fused_ms": t_deep * 1e3,  # pipeline_depth=2
        "speedup": t_shallow / t_deep,
        "worker_wait_share": summary.worker_wait_s / max(stage_total, 1e-12),
        "measured_lookahead_post_s": summary.lookahead_post_s,
        "modeled_speedup": modeled_1.epoch_time / modeled_2.epoch_time,
        "modeled_hidden_lookahead_s": modeled_2.detail["hidden_lookahead"],
        "depth_reported": all(t.pipeline_depth == 2 for t in rec_2.timelines),
        "losses_match": losses_2 == losses_1,
        "wire_bytes_match": bytes_2 == bytes_1,
    }


def run_bench(*, quick: bool = False, seed: int = 0) -> dict:
    """Run the full perf suite; returns the ``BENCH_perf.json`` payload."""
    micro_reps = 20 if quick else 40
    # Epoch benches keep a real warmup even in quick mode: with only a
    # few warm epochs the min-of-warm-epochs estimator is noise-bound and
    # the CI gate flakes.
    epochs = 8 if quick else 10
    warmup = 2
    extra_systems = () if quick else ("adaqp", "adaqp-uniform")

    report: dict = {
        "bench": "fused-engines",
        "schema": 7,
        "quick": quick,
        "seed": seed,
        "encode": bench_encode(reps=micro_reps, seed=seed),
        "decode": bench_decode(reps=micro_reps, seed=seed),
        "pack_kernel": bench_pack_kernel(reps=micro_reps, seed=seed),
        "unpack_kernel": bench_unpack_kernel(reps=micro_reps, seed=seed),
        "compute_spmv": bench_compute_spmv(reps=micro_reps, seed=seed),
        "compute_gemm": bench_compute_gemm(reps=micro_reps, seed=seed),
        "epoch": bench_epoch(epochs=epochs, warmup=warmup, seed=seed),
        "epoch_vanilla": bench_epoch_vanilla(epochs=epochs, warmup=warmup, seed=seed),
        "exchange_split_phase": bench_exchange_split_phase(reps=micro_reps, seed=seed),
        "worker_scaling": bench_worker_scaling(reps=micro_reps // 2, seed=seed),
        "process_scaling": bench_process_scaling(
            reps=max(micro_reps // 4, 5), seed=seed
        ),
        "epoch_overlap": bench_epoch_overlap(epochs=epochs, warmup=warmup, seed=seed),
        "epoch_overlap_async": bench_epoch_overlap_async(
            epochs=epochs, warmup=warmup, seed=seed
        ),
        "decode_scatter": bench_decode_scatter(reps=micro_reps // 2, seed=seed),
        "pipeline_depth": bench_pipeline_depth(
            epochs=epochs, warmup=warmup, seed=seed
        ),
        "huge_graph": bench_huge_graph(quick=quick, seed=seed),
    }
    for system in extra_systems:
        report[f"epoch_{system}"] = bench_epoch(
            system=system, epochs=epochs, seed=seed
        )
    return report


def compare_to_baseline(
    current: dict, baseline: dict, *, max_regression: float = 0.2
) -> list[str]:
    """Regression gate: returns a list of failures (empty == pass).

    Gates only on dimensionless speedup ratios (absolute times are
    machine-dependent) plus the numerical-equivalence flags, which must
    never be False.
    """
    problems: list[str] = []
    for section, metric in _GATED_METRICS:
        if (
            section in _MULTI_CORE_SECTIONS
            and section in current
            and not current[section].get("multi_core", False)
        ):
            # Thread/process fan-out on a core-starved runner measures
            # the OS scheduler; the ratio is reported but not held to the
            # floor.  (A *missing* section still falls through to the
            # missing-metric check below — skipping is for measured-but-
            # ungateable runs only.)
            continue
        cur = current.get(section, {}).get(metric)
        base = baseline.get(section, {}).get(metric)
        if cur is None or base is None:
            problems.append(f"missing metric {section}.{metric}")
            continue
        floor = base * (1.0 - max_regression)
        if cur < floor:
            problems.append(
                f"{section}.{metric} regressed: {cur:.2f}x < "
                f"{floor:.2f}x (baseline {base:.2f}x - {max_regression:.0%})"
            )
    for section in (
        "epoch", "epoch_vanilla", "epoch_overlap", "epoch_overlap_async",
        "pipeline_depth",
    ):
        for key in ("wire_bytes_match", "losses_match"):
            if not current.get(section, {}).get(key, False):
                problems.append(
                    f"{section}.{key} is False: fused path is not equivalent"
                )
    if not current.get("decode_scatter", {}).get("scatter_match", True):
        problems.append(
            "decode_scatter.scatter_match is False: worker-side scatter "
            "diverged from the main-thread scatter"
        )
    if not current.get("epoch_vanilla", {}).get("losses_close", True):
        problems.append(
            "epoch_vanilla.losses_close is False: batched exact exchange "
            "diverged from the per-pair baseline"
        )
    for section in ("worker_scaling", "process_scaling"):
        if not current.get(section, {}).get("wire_bytes_match", True):
            problems.append(
                f"{section}.wire_bytes_match is False: worker count "
                "changed the wire bytes under keyed rounding"
            )
    hg = current.get("huge_graph")
    if hg is not None:
        # Unconditional (not ratio-to-baseline, not multi-core-gated):
        # the streaming arm must be bitwise-equal and hold the RSS bound
        # on any host — that is huge-graph mode's whole contract.
        for key in ("losses_match", "wire_bytes_match"):
            if not hg.get(key, False):
                problems.append(
                    f"huge_graph.{key} is False: streaming arm is not "
                    "equivalent to the materialized arm"
                )
        if not hg.get("rss_within_half", False):
            problems.append(
                "huge_graph.rss_fraction "
                f"{hg.get('rss_fraction', float('nan')):.2f} > 0.50: "
                "streaming peak RSS is not under half the materialized arm"
            )
    return problems


def render_report(report: dict) -> str:
    """Human-readable summary of one :func:`run_bench` report."""
    from repro.utils.format import render_table

    rows = []
    for section in (
        "encode", "decode", "pack_kernel", "unpack_kernel",
        "compute_spmv", "compute_gemm", "exchange_split_phase",
        "worker_scaling", "process_scaling", "decode_scatter",
    ):
        if section not in report:
            continue
        r = report[section]
        rows.append(
            [
                section,
                f"{r['unfused_ms']:.2f} ms ({r['unfused_mbps']:.0f} MB/s)",
                f"{r['fused_ms']:.2f} ms ({r['fused_mbps']:.0f} MB/s)",
                f"{r['speedup']:.2f}x",
            ]
        )
    if "huge_graph" in report:
        r = report["huge_graph"]
        rows.append(
            [
                f"huge_graph [{r['system']}/{r['workload']['parts']}p]",
                f"{r['unfused_ms']:.1f} ms",  # materialized arm
                f"{r['fused_ms']:.1f} ms",  # streaming arm
                f"{r['throughput_ratio']:.2f}x",
            ]
        )
    for key, r in report.items():
        if not key.startswith("epoch") and key != "pipeline_depth":
            continue
        parts = r["workload"]["parts"]
        label = f"{key} [{r['system']}/{parts}p]"
        extra = (
            f" (comp {r['compute_speedup']:.2f}x)" if "compute_speedup" in r else ""
        )
        rows.append(
            [
                label,
                f"{r['unfused_ms']:.1f} ms",
                f"{r['fused_ms']:.1f} ms",
                f"{r['speedup']:.2f}x{extra}",
            ]
        )
    table = render_table(["benchmark", "unfused", "fused", "speedup"], rows)
    checks = []
    for section in ("epoch", "epoch_vanilla", "epoch_overlap", "epoch_overlap_async"):
        if section in report:
            r = report[section]
            checks.append(
                f"{section}: wire_bytes_match={r['wire_bytes_match']} "
                f"losses_match={r['losses_match']}"
            )
    if "epoch_overlap" in report:
        r = report["epoch_overlap"]
        checks.append(
            "epoch_overlap: hidden_byte_fraction="
            f"{r['hidden_byte_fraction']:.2f} "
            f"measured_central_share={r['measured_central_share']:.2f} "
            f"modeled_hidden_comm={r['modeled_hidden_comm_fraction']:.2f} "
            f"table2_headroom={r['table2_headroom_fraction']:.2f}"
        )
    if "epoch_overlap_async" in report:
        r = report["epoch_overlap_async"]
        checks.append(
            f"epoch_overlap_async: cores={r['cores']} "
            f"default_is_async={r['default_is_async']} "
            f"kernel_speedup={r['kernel_speedup']:.2f}x "
            f"concurrency_speedup={r['concurrency_speedup']:.2f}x "
            f"worker_wait_share={r['worker_wait_share']:.2f}"
        )
    for section in ("worker_scaling", "process_scaling"):
        if section in report:
            r = report[section]
            checks.append(
                f"{section}: {r['workers']} workers on {r['cores']} cores "
                f"(gated={r['multi_core']}) "
                f"wire_bytes_match={r['wire_bytes_match']}"
            )
    if "decode_scatter" in report:
        r = report["decode_scatter"]
        checks.append(
            f"decode_scatter: {r['workers']} workers on {r['cores']} cores "
            f"(gated={r['multi_core']}) scatter_match={r['scatter_match']}"
        )
    if "pipeline_depth" in report:
        r = report["pipeline_depth"]
        checks.append(
            f"pipeline_depth: depth2 vs depth1 {r['speedup']:.2f}x "
            f"(gated={r['multi_core']}) "
            f"worker_wait_share={r['worker_wait_share']:.3f} "
            f"modeled_speedup={r['modeled_speedup']:.2f}x "
            f"losses_match={r['losses_match']}"
        )
    if "huge_graph" in report:
        r = report["huge_graph"]
        checks.append(
            f"huge_graph: {r['workload']['num_nodes']} nodes, "
            f"{r['edges_per_s'] / 1e6:.1f}M edges/s streaming; "
            f"rss_fraction={r['rss_fraction']:.2f} "
            f"(within_half={r['rss_within_half']}) "
            f"estimate_rel_error={r['estimate_rel_error']:+.2f} "
            f"losses_match={r['losses_match']} "
            f"wire_bytes_match={r['wire_bytes_match']}"
        )
    wl = report["epoch"]["workload"]
    head = (
        f"workload: {wl['dataset']}-{wl['scale']}, {wl['parts']} partitions "
        f"({wl['setting']}), hidden={wl['hidden_dim']}"
    )
    return "\n".join([head, table] + checks)


def save_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict:
    return json.loads(Path(path).read_text())
