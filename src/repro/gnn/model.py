"""The full GNN model: stacked conv layers with LayerNorm/ReLU/Dropout.

Mirrors the paper's configuration (Table 8): 3 layers, hidden width 256,
LayerNorm between layers, dropout, Adam at lr 0.01 (optimizer lives with
the trainer).  The model is *layer-driven*: the cluster orchestrator calls
one layer at a time, exchanging halo messages before each layer's forward
and after each layer's backward — the model never talks to the network
itself.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.coefficients import AggregationContext
from repro.gnn.conv import GCNConv, SAGEConv
from repro.nn.layers import Dropout, LayerNorm, ReLU
from repro.nn.module import Module
from repro.utils.validation import check_in_set

__all__ = ["MODEL_KINDS", "GNNLayer", "DistGNN"]

MODEL_KINDS = ("gcn", "sage")


class GNNLayer(Module):
    """One GNN block: conv followed by optional LayerNorm + ReLU + Dropout.

    The final layer of a network skips the post-processing (raw logits).
    """

    def __init__(
        self,
        kind: str,
        in_features: int,
        out_features: int,
        agg: AggregationContext,
        rng: np.random.Generator,
        *,
        dropout: float,
        is_output: bool,
        dropout_rng: np.random.Generator,
    ) -> None:
        super().__init__()
        check_in_set(kind, MODEL_KINDS, name="kind")
        conv_cls = GCNConv if kind == "gcn" else SAGEConv
        self.conv = conv_cls(in_features, out_features, agg, rng)
        self.is_output = bool(is_output)
        if not self.is_output:
            self.norm = LayerNorm(out_features)
            self.act = ReLU()
            self.drop = Dropout(dropout, dropout_rng)

    @property
    def has_post_stage(self) -> bool:
        """Whether LayerNorm/ReLU/Dropout follow the conv (all but the
        output layer).  The fused compute engine branches on this instead
        of poking ``is_output`` so the stage contract lives in one place."""
        return not self.is_output

    def forward(self, x_own: np.ndarray, x_halo: np.ndarray) -> np.ndarray:
        h = self.conv.forward(x_own, x_halo)
        if self.is_output:
            return h
        h = self.norm.forward(h)
        h = self.act.forward(h)
        return self.drop.forward(h)

    def backward(self, d_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not self.is_output:
            d_out = self.drop.backward(d_out)
            d_out = self.act.backward(d_out)
            d_out = self.norm.backward(d_out)
        return self.conv.backward(d_out)


class DistGNN(Module):
    """A stack of :class:`GNNLayer` blocks sharing one aggregation context.

    Parameters
    ----------
    kind:
        ``"gcn"`` or ``"sage"``.
    dims:
        Layer widths ``[in, hidden, ..., out]``; ``len(dims) - 1`` layers.
    agg:
        This device's aggregation operator (shape fixed across layers,
        because full-graph training touches all 1-hop halos every layer).
    weight_rng:
        Stream for weight init — all replicas must share this stream's
        sequence so they start identical (the trainer arranges that).
    dropout_rng:
        Per-device stream for dropout masks.
    """

    def __init__(
        self,
        kind: str,
        dims: list[int],
        agg: AggregationContext,
        *,
        dropout: float,
        weight_rng: np.random.Generator,
        dropout_rng: np.random.Generator,
    ) -> None:
        super().__init__()
        check_in_set(kind, MODEL_KINDS, name="kind")
        if len(dims) < 2:
            raise ValueError("dims needs at least [in, out]")
        self.kind = kind
        self.dims = list(dims)
        self.layers = [
            GNNLayer(
                kind,
                dims[i],
                dims[i + 1],
                agg,
                weight_rng,
                dropout=dropout,
                is_output=(i == len(dims) - 2),
                dropout_rng=dropout_rng,
            )
            for i in range(len(dims) - 1)
        ]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layer_dims(self, layer: int) -> tuple[int, int]:
        """(input width, output width) of ``layer``."""
        return self.dims[layer], self.dims[layer + 1]
