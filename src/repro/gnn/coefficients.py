"""Aggregation coefficients α_{u,v} and the weighted local adjacency.

The paper's analysis (Theorem 3) and the bit-width assigner both depend on
the aggregation coefficients: the variance a quantized message ``h_k``
injects is weighted by ``Σ_{v ∈ N_T(k)} α²_{k,v}`` — the squared
coefficients with which the *target* device aggregates that message.  This
module builds, per device:

* ``matrix`` — the weighted aggregation operator ``P`` with shape
  ``(n_owned, n_owned + n_halo)``; ``Z = P @ [H_own; H_halo]`` performs the
  layer's neighborhood aggregation (self-loop folded in for GCN);
* ``halo_alpha_sq`` — per halo column, ``Σ_v α²`` (exactly the weight the
  assigner needs for each incoming message).

Coefficients use **global** degrees, so the distributed aggregation is
numerically identical to single-machine full-graph aggregation — a
property the integration tests assert exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.graph.partition.book import LocalPartition
from repro.utils.validation import check_array, check_in_set

__all__ = ["AggregationContext", "build_aggregation", "AGGREGATION_KINDS"]

AGGREGATION_KINDS = ("gcn", "sage", "sum")


@dataclass
class AggregationContext:
    """Weighted aggregation operator and derived statistics for one device."""

    kind: str
    matrix: sp.csr_matrix  # (n_owned, n_owned + n_halo)
    halo_alpha_sq: np.ndarray  # (n_halo,) Σ_v α²_{k,v} per halo column
    n_owned: int
    n_halo: int
    _matrix_t: sp.csr_matrix | None = field(default=None, repr=False, compare=False)

    @property
    def nnz(self) -> int:
        return int(self.matrix.nnz)

    @property
    def matrix_t(self) -> sp.csr_matrix:
        """``P^T`` as CSR, built once and cached.

        ``matrix.T`` alone yields a CSC *view*, so every backward spmv used
        to pay a column-major traversal (and scipy's implicit conversion
        work) per layer per epoch.  The cached CSR transpose is traversed
        row-major like the forward operator; per-output-row accumulation
        order (ascending source row) is identical to the CSC path, so
        results are bit-identical.  Shared by the legacy per-device path
        and the fused engine's block-diagonal builder.
        """
        if self._matrix_t is None:
            t = self.matrix.T.tocsr()
            t.sort_indices()
            self._matrix_t = t
        return self._matrix_t

    def nnz_for_rows(self, row_mask: np.ndarray) -> int:
        """Aggregation nonzeros attributable to the masked rows (for FLOPs)."""
        if row_mask.shape != (self.n_owned,):
            raise ValueError("row_mask must cover owned rows")
        row_nnz = np.diff(self.matrix.indptr)
        return int(row_nnz[row_mask].sum())

    def aggregate(self, x_full: np.ndarray) -> np.ndarray:
        """``Z = P @ x_full`` where ``x_full`` stacks owned then halo rows."""
        if x_full.shape[0] != self.n_owned + self.n_halo:
            raise ValueError(
                f"x_full has {x_full.shape[0]} rows, expected "
                f"{self.n_owned + self.n_halo}"
            )
        return np.asarray(self.matrix @ x_full)

    def aggregate_transpose(self, d_z: np.ndarray) -> np.ndarray:
        """``P^T @ d_z``: routes embedding gradients back to input rows."""
        if d_z.shape[0] != self.n_owned:
            raise ValueError("d_z must have one row per owned node")
        return np.asarray(self.matrix_t @ d_z)


def build_aggregation(
    part: LocalPartition, global_degrees: np.ndarray, kind: str
) -> AggregationContext:
    """Build the weighted aggregation operator for one partition.

    Parameters
    ----------
    part:
        The device's :class:`LocalPartition` (raw 0/1 adjacency).
    global_degrees:
        Degrees in the *full* graph (so coefficients match single-machine
        training exactly).
    kind:
        ``"gcn"`` — symmetric normalization with self-loop;
        ``"sage"`` — mean over neighbors (no self term; the SAGE root
        weight handles self separately);
        ``"sum"`` — raw summation (for tests/ablations).
    """
    check_in_set(kind, AGGREGATION_KINDS, name="kind")
    check_array(global_degrees, name="global_degrees", ndim=1)

    n_owned, n_cols = part.adj.shape
    coo = part.adj.tocoo()
    row_global = part.owned_global[coo.row]
    col_local = coo.col
    col_global = np.where(
        col_local < n_owned,
        part.owned_global[np.minimum(col_local, n_owned - 1)],
        part.halo_global[np.maximum(col_local - n_owned, 0)]
        if part.n_halo
        else 0,
    )

    if kind == "gcn":
        # α_{u,v} = 1/sqrt((d_u + 1)(d_v + 1)); self term appears as a
        # diagonal entry on the owned block.
        d_hat_row = global_degrees[row_global] + 1.0
        d_hat_col = global_degrees[col_global] + 1.0
        data = 1.0 / np.sqrt(d_hat_row * d_hat_col)
        diag_rows = np.arange(n_owned)
        diag_data = 1.0 / (global_degrees[part.owned_global] + 1.0)
        rows = np.concatenate([coo.row, diag_rows])
        cols = np.concatenate([col_local, diag_rows])
        vals = np.concatenate([data, diag_data]).astype(np.float32)
    elif kind == "sage":
        # α_{u,v} = 1/d_v (mean over the full neighborhood, local + remote).
        deg_row = np.maximum(global_degrees[row_global], 1.0)
        vals = (1.0 / deg_row).astype(np.float32)
        rows, cols = coo.row, col_local
    else:  # "sum"
        vals = np.ones(coo.row.size, dtype=np.float32)
        rows, cols = coo.row, col_local

    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(n_owned, n_cols))
    matrix.sum_duplicates()

    squared = matrix.copy()
    squared.data = squared.data**2
    col_alpha_sq = np.asarray(squared.sum(axis=0)).ravel()
    halo_alpha_sq = col_alpha_sq[n_owned:].astype(np.float64)

    return AggregationContext(
        kind=kind,
        matrix=matrix,
        halo_alpha_sq=halo_alpha_sq,
        n_owned=n_owned,
        n_halo=part.n_halo,
    )
