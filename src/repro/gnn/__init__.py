"""GNN layers over partitioned graphs.

Implements the paper's Eqn. 3 form — ``h_v = σ(W · Σ α_{u,v} h_u)`` — for
the two evaluated models:

* **GCN** (Kipf & Welling): symmetric normalization
  ``α_{u,v} = 1/√((d_u+1)(d_v+1))`` including the self term;
* **GraphSAGE** (mean): root weight plus mean-aggregated neighbors,
  ``α_{u,v} = 1/d_v``.

The distributed aggregation operates on a local adjacency whose columns
span owned ∪ halo nodes; forward consumes halo *features/embeddings* and
backward emits halo *embedding gradients* — the two message classes AdaQP
quantizes.
"""

from repro.gnn.coefficients import AggregationContext, build_aggregation
from repro.gnn.conv import GCNConv, SAGEConv
from repro.gnn.model import MODEL_KINDS, DistGNN, GNNLayer

__all__ = [
    "AggregationContext",
    "build_aggregation",
    "GCNConv",
    "SAGEConv",
    "DistGNN",
    "GNNLayer",
    "MODEL_KINDS",
]
