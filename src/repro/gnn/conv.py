"""Graph convolution layers with explicit distributed backward passes.

Both convolutions share the same contract:

* ``forward(x_own, x_halo)`` consumes the device's own node inputs plus the
  halo inputs *fetched from peers* (possibly de-quantized), and returns the
  new embeddings of owned nodes;
* ``backward(d_out)`` accumulates weight gradients and returns
  ``(d_x_own, d_x_halo)`` — the halo part is exactly the "embedding
  gradients (errors)" the paper quantizes and routes back to owners during
  the backward pass.
"""

from __future__ import annotations

import numpy as np

from repro.gnn.coefficients import AggregationContext
from repro.nn.layers import Linear
from repro.nn.module import Module

__all__ = ["GCNConv", "SAGEConv", "stack_conv_inputs"]


def stack_conv_inputs(x_own: np.ndarray, x_halo: np.ndarray) -> np.ndarray:
    """``[x_own; x_halo]`` with as few copies as possible.

    With an empty halo, ``x_own`` passes through untouched (contiguity is
    restored only if a caller handed us a strided view — the old
    unconditional path silently re-copied inside scipy on every spmv);
    otherwise one ``np.vstack`` copy, exactly the legacy behaviour.  The
    fused compute engine never stacks at all — its aggregation reads the
    stacked layer buffer directly.

    Dtypes pass through untouched: the training path is float32 end to end
    (:class:`~repro.cluster.runtime.DeviceRuntime` normalizes features,
    exchanges decode to float32, and the operator data is float32 by
    construction), while gradcheck tests deliberately run in float64.
    """
    if not x_halo.size:
        return x_own if x_own.flags.c_contiguous else np.ascontiguousarray(x_own)
    return np.vstack([x_own, x_halo])


class GCNConv(Module):
    """GCN layer: ``out = (P @ [x_own; x_halo]) @ W + b``.

    ``P`` carries the symmetric normalization including the self loop, so a
    single sparse-dense product realizes Eqn. 3.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        agg: AggregationContext,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.agg = agg
        self.linear = Linear(in_features, out_features, rng)
        self._cache_shapes: tuple[int, int] | None = None

    def forward(self, x_own: np.ndarray, x_halo: np.ndarray) -> np.ndarray:
        x_full = stack_conv_inputs(x_own, x_halo)
        z = self.agg.aggregate(x_full)
        self._cache_shapes = (x_own.shape[0], x_halo.shape[0])
        return self.linear.forward(z)

    def backward(self, d_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._cache_shapes is None:
            raise RuntimeError("backward called before forward")
        n_own, n_halo = self._cache_shapes
        self._cache_shapes = None
        d_z = self.linear.backward(d_out)
        d_full = self.agg.aggregate_transpose(d_z)
        return d_full[:n_own], d_full[n_own : n_own + n_halo]


class SAGEConv(Module):
    """GraphSAGE (mean): ``out = x_own @ W_root + (P @ x_full) @ W_neigh + b``.

    ``P`` is the neighbor-mean operator; the root term keeps the node's own
    representation at full precision (it never crosses devices).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        agg: AggregationContext,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.agg = agg
        self.root = Linear(in_features, out_features, rng, bias=True)
        self.neigh = Linear(in_features, out_features, rng, bias=False)
        self._cache_shapes: tuple[int, int] | None = None

    def forward(self, x_own: np.ndarray, x_halo: np.ndarray) -> np.ndarray:
        x_full = stack_conv_inputs(x_own, x_halo)
        z = self.agg.aggregate(x_full)
        self._cache_shapes = (x_own.shape[0], x_halo.shape[0])
        return self.root.forward(x_own) + self.neigh.forward(z)

    def backward(self, d_out: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self._cache_shapes is None:
            raise RuntimeError("backward called before forward")
        n_own, n_halo = self._cache_shapes
        self._cache_shapes = None
        d_x_own = self.root.backward(d_out)
        d_z = self.neigh.backward(d_out)
        d_full = self.agg.aggregate_transpose(d_z)
        d_x_own = d_x_own + d_full[:n_own]
        return d_x_own, d_full[n_own : n_own + n_halo]
