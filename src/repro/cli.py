"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Version, available datasets, systems and partition settings.
``train``
    Train one system on one dataset/setting and print the result summary.
``prepare``
    Stream a huge synthetic power-law graph into an on-disk partition
    store (the out-of-core input of ``train --store``); the full graph is
    never held in RAM.
``partition``
    Partition a dataset and report quality metrics (cut, balance,
    remote-neighbor ratio, marginal fractions).
``experiment``
    Run one of the harness's table/figure regenerations by id
    (``table1`` ... ``table8``, ``fig02`` ... ``fig11``, ``ablation-*``,
    ``footnote1``) and print the rendered table.
``bench``
    Run the fused-engine performance benchmarks (exchange encode/decode
    throughput, compute spmv/GEMM throughput, end-to-end epoch speedups),
    write ``BENCH_perf.json`` and optionally gate against a baseline (the
    CI perf-smoke job).
"""

from __future__ import annotations

import argparse
import getpass
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import __version__
from repro.core.config import RunConfig
from repro.core.trainer import SYSTEMS, train
from repro.graph.datasets import available_datasets, load_dataset
from repro.graph.partition.api import partition_graph
from repro.graph.partition.book import build_local_partitions
from repro.graph.partition.quality import balance, edge_cut, remote_neighbor_ratio
from repro.utils.format import format_seconds, render_table

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": "run_table1_comm_overhead",
    "table2": "run_table2_overlap_headroom",
    "table3": "run_table3_datasets",
    "table4": "run_table4_main",
    "table5": "run_table5_wallclock",
    "table6": "run_table6_uniform_vs_adaptive",
    "table7": "run_table7_scalability",
    "table8": "run_table8_configs",
    "fig02": "run_fig02_pair_imbalance",
    "fig03": "run_fig03_central_compute_share",
    "fig09": "run_fig09_convergence",
    "fig10": "run_fig10_time_breakdown",
    "fig11": "run_fig11_sensitivity",
    "ablation-contributions": "run_ablation_contributions",
    "ablation-partition": "run_ablation_partition_method",
    "ablation-solver": "run_ablation_solver",
    "footnote1": "run_footnote1_sizes",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AdaQP reproduction (MLSys 2023) — simulated distributed "
        "full-graph GNN training with adaptive message quantization.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show datasets, systems and settings")

    p_train = sub.add_parser("train", help="train one system on one dataset")
    p_train.add_argument("--system", default="adaqp", choices=SYSTEMS)
    p_train.add_argument("--dataset", default="ogbn-products",
                         choices=available_datasets("tiny"))
    p_train.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    p_train.add_argument("--setting", default=None,
                         help="cluster topology, e.g. 2M-2D (default 2M-2D; "
                              "with --store, one device per stored partition)")
    p_train.add_argument(
        "--store", default=None, metavar="DIR",
        help="train out-of-core from a partition store built by `repro "
             "prepare` instead of an in-RAM --dataset; features/labels/"
             "operators stay memmapped and are paged in one device window "
             "at a time (bit-identical to the in-RAM run of the same store)")
    p_train.add_argument(
        "--materialize-store", action="store_true",
        help="with --store, load every partition fully into RAM instead of "
             "streaming (the bitwise reference arm of huge-graph mode)")
    p_train.add_argument("--model", default="gcn", choices=("gcn", "sage"))
    p_train.add_argument("--epochs", type=int, default=48)
    p_train.add_argument("--hidden", type=int, default=32)
    p_train.add_argument("--lr", type=float, default=0.01)
    p_train.add_argument("--dropout", type=float, default=0.5)
    p_train.add_argument("--lam", type=float, default=0.5)
    p_train.add_argument("--group-size", type=int, default=100)
    p_train.add_argument("--period", type=int, default=16)
    p_train.add_argument("--seed", type=int, default=0)
    p_train.add_argument(
        "--no-fused-compute", action="store_true",
        help="escape hatch: run the legacy per-device layer loop instead of "
             "the cluster-fused compute engine (bit-identical, slower)")
    p_train.add_argument(
        "--no-overlap", action="store_true",
        help="escape hatch: disable the split-phase central/marginal "
             "pipelined executor (adaqp variants overlap by default; "
             "bit-identical, but epoch records then carry no measured "
             "stage timelines)")
    p_train.add_argument(
        "--transport", default=None, metavar="SPEC",
        help="transport backend spec 'backend[:workers]': auto (default), "
             "sync, worker[:N] (thread pool), process[:N] (worker "
             "processes over shared memory — scales quantize-heavy steps "
             "past the GIL); every backend is bit-identical to sync "
             "under the same seed")
    p_train.add_argument(
        "--pipeline-depth", type=int, default=None, choices=(1, 2),
        metavar="D",
        help="split-phase pipeline depth: 2 (default) keeps two exchange "
             "steps in flight via cross-step lookahead; 1 restores the "
             "one-tag-deep Fig. 7 pipeline (bit-identical, exposes the "
             "encode tail on multi-core hosts)")
    p_train.add_argument(
        "--rng-mode", default="keyed", choices=("keyed", "stream"),
        help="stochastic-rounding noise source: 'keyed' (default) derives "
             "each message's noise from its (epoch, phase, layer, src, dst) "
             "coordinates, so results are independent of execution order "
             "and worker count; 'stream' restores the legacy shared "
             "sequential generator (the pre-PR-5 bitwise contract)")
    p_train.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="save an epoch-boundary checkpoint under DIR (model, "
             "optimizer, RNG positions, exchange carry-over); with "
             "--rng-mode keyed a killed-and-resumed run is bitwise "
             "identical to the uninterrupted one")
    p_train.add_argument(
        "--resume", action="store_true",
        help="restore from the newest checkpoint in --checkpoint-dir "
             "before training (fresh start when the directory is empty)")
    p_train.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint cadence in epochs (default 1; the final epoch "
             "always saves)")
    p_train.add_argument(
        "--transport-timeout", type=float, default=None, metavar="SECONDS",
        help="per-tag completion deadline for async transports — a "
             "stalled tag raises TransportError naming its outstanding "
             "shards instead of hanging (default: RunConfig's 120s)")
    p_train.add_argument(
        "--inject-fault", action="append", default=None, metavar="SPEC",
        dest="inject_faults",
        help="inject a transport fault, repeatable; SPEC is "
             "'kind[:tag[@epoch]][:key=value,...]' with kinds "
             "drop, duplicate, stall, error, kill_worker, poison — e.g. "
             "'drop:fwd/L1@2:src=0,dst=1' or 'kill_worker:*@3' "
             "(fault-tolerance testing; recovery is exercised live)")

    p_prep = sub.add_parser(
        "prepare",
        help="stream a huge synthetic graph into an on-disk partition store",
    )
    p_prep.add_argument("out", metavar="DIR",
                        help="store directory to create (must not exist)")
    p_prep.add_argument("--nodes", type=int, default=1_000_000)
    p_prep.add_argument("--degree", type=float, default=8.0,
                        help="average undirected degree (default 8)")
    p_prep.add_argument("--features", type=int, default=128)
    p_prep.add_argument("--classes", type=int, default=8)
    p_prep.add_argument("--communities", type=int, default=32)
    p_prep.add_argument("--homophily", type=float, default=0.8,
                        help="fraction of cross-community edges suppressed "
                             "(default 0.8)")
    p_prep.add_argument("--locality", type=float, default=0.9,
                        help="ring locality of cross-community edges; higher "
                             "values shrink every partition's halo (default "
                             "0.9)")
    p_prep.add_argument("--parts", type=int, default=8,
                        help="partition count == training device count")
    p_prep.add_argument("--model", default="gcn", choices=("gcn", "sage"),
                        help="aggregation operator baked into the store")
    p_prep.add_argument("--seed", type=int, default=0)

    p_part = sub.add_parser("partition", help="partition a dataset, report quality")
    p_part.add_argument("--dataset", default="ogbn-products",
                        choices=available_datasets("tiny"))
    p_part.add_argument("--scale", default="tiny", choices=("tiny", "small"))
    p_part.add_argument("--parts", type=int, default=4)
    p_part.add_argument("--method", default="metis",
                        choices=("metis", "random", "bfs", "spectral"))
    p_part.add_argument("--seed", type=int, default=0)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument("id", choices=sorted(_EXPERIMENTS))

    p_bench = sub.add_parser(
        "bench", help="benchmark the fused exchange + compute engines (wall-clock)"
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="smaller reps/epochs for CI smoke runs")
    p_bench.add_argument(
        "--output", default="BENCH_perf.json",
        help="where to write the JSON report (default: ./BENCH_perf.json)")
    p_bench.add_argument(
        "--baseline", default=None,
        help="baseline BENCH_perf.json to gate speedup ratios against")
    p_bench.add_argument(
        "--max-regression", type=float, default=0.2,
        help="allowed fractional speedup regression vs. baseline (default 0.2)")
    p_bench.add_argument("--seed", type=int, default=0)

    return parser


def _health_file() -> Path:
    """Where ``repro train`` drops its last-run transport-health report
    (and ``repro info`` picks it up)."""
    try:
        user = getpass.getuser()
    except (KeyError, OSError):
        user = "user"
    return Path(tempfile.gettempdir()) / f"repro-{user}-transport-health.json"


def _write_health_report(result) -> None:
    payload = {
        "system": result.system,
        "dataset": result.dataset,
        "start_epoch": result.start_epoch,
        "epochs_run": result.epochs,
        "health": result.transport_health,
    }
    try:
        _health_file().write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
        )
    except OSError:
        pass  # a read-only tempdir must not fail the run


def _cmd_info() -> int:
    from repro.cluster.memory import host_memory
    from repro.comm.transport import (
        detected_cores,
        host_has_spare_core,
        host_spare_cores,
    )
    from repro.comm.transports import available_backends, resolve_spec

    print(f"repro {__version__} — AdaQP reproduction (MLSys 2023)")
    print(f"systems:  {', '.join(SYSTEMS)}")
    print(f"datasets: {', '.join(available_datasets('tiny'))} (scales: tiny, small)")
    print("settings: any xM-yD topology, e.g. 2M-1D, 2M-2D, 2M-4D, 6M-4D")

    # Host / transport auto-selection, so "why did my run pick that
    # transport?" is answerable from the CLI.
    cores = detected_cores()
    spare = host_spare_cores()
    verdict = "yes" if host_has_spare_core() else "no"
    cfg = RunConfig()
    resolved = resolve_spec(cfg.transport, overlap=True)
    async_default = (
        f"worker transport with {max(1, spare)} worker(s)"
        if host_has_spare_core()
        else "synchronous transport (no spare core)"
    )
    print(f"host:     {cores} core(s) detected; spare core for transport "
          f"workers: {verdict} ({spare} spare)")
    hm = host_memory()
    if hm is not None:
        print(f"memory:   {hm.total_bytes / 2**30:.1f} GiB total, "
              f"{hm.available_bytes / 2**30:.1f} GiB available "
              "(huge-graph runs warn when the estimated working set "
              "exceeds this)")
    print(f"backends: {', '.join(available_backends())} "
          "(select with --transport backend[:workers])")
    print(f"defaults: rng_mode={cfg.rng_mode}; transport={cfg.transport} — "
          f"overlapped runs resolve to '{resolved}', i.e. {async_default}")
    print("          (override: --transport sync|worker[:N]|process[:N], "
          "--rng-mode, --no-overlap)")

    # Last-run transport health (written by `repro train`): worker exit
    # codes, pool respawns and fault-recovery counters.
    health_path = _health_file()
    if health_path.is_file():
        try:
            report = json.loads(health_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            report = None
        if report:
            health = report.get("health", {}) or {}
            abnormal = health.get("abnormal_exits", [])
            respawns = health.get("respawns", 0)
            faults = {
                k: v for k, v in (health.get("fault_stats") or {}).items() if v
            }
            verdict = (
                f"{len(abnormal)} abnormal worker exit(s)"
                if abnormal
                else "all workers exited cleanly"
            )
            print(
                f"last run: {report.get('system')} on {report.get('dataset')} — "
                f"transport {health.get('kind', '?')}; {verdict}"
                + (f"; {respawns} pool respawn(s)" if respawns else "")
            )
            if faults:
                print(f"          fault counters: {faults}")
    return 0


def _overlap_rows(result) -> list[list[str]]:
    """Measured-overlap table rows, derived from the full-run summary.

    The aggregate ``TimelineSummary`` covers every executed step, so the
    numbers stay accurate even when ``timeline_history`` has capped the
    retained ``recent_timelines`` list.
    """
    summary = result.timeline_summary
    if not summary.steps:
        return []
    stage_total = (
        summary.quantize_s + summary.central_s
        + summary.dequantize_s + summary.marginal_s
    )
    wait_share = summary.worker_wait_s / max(stage_total, 1e-12)
    depth = max((t.pipeline_depth for t in result.recent_timelines), default=1)
    return [
        [
            "measured overlap",
            f"{100 * summary.hidden_byte_fraction:.0f}% of halo bytes in "
            f"flight during central windows (pipeline depth {depth})",
        ],
        [
            "worker wait",
            f"{format_seconds(summary.worker_wait_s)} total "
            f"({100 * wait_share:.1f}% of step time)",
        ],
    ]


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.comm.faults import FaultPlan
    from repro.comm.topology import parse_topology
    from repro.comm.transport import TransportError
    from repro.comm.transports import parse_transport_spec

    if args.transport is not None:
        try:
            parse_transport_spec(args.transport)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    fault_plan = None
    if args.inject_faults:
        try:
            fault_plan = FaultPlan.parse(args.inject_faults)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    if args.store is not None:
        from repro.graph.io import PartitionStore

        try:
            store = PartitionStore.open(args.store)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        setting = args.setting or f"{store.num_parts}M-1D"
        topology = parse_topology(setting)
        if topology.num_devices != store.num_parts:
            print(
                f"error: setting {setting} has {topology.num_devices} devices "
                f"but the store holds {store.num_parts} partitions",
                file=sys.stderr,
            )
            return 2
        ds = store.dataset(materialize=args.materialize_store)
        book = store.book()
        dataset_label = f"store:{args.store}"
    else:
        topology = parse_topology(args.setting or "2M-2D")
        ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
        book = partition_graph(
            ds.graph, topology.num_devices, method="metis", seed=args.seed
        )
        dataset_label = f"{args.dataset}-{args.scale}"
    cfg = RunConfig(
        model_kind=args.model,
        hidden_dim=args.hidden,
        epochs=args.epochs,
        lr=args.lr,
        dropout=args.dropout,
        lam=args.lam,
        group_size=args.group_size,
        reassign_period=args.period,
        seed=args.seed,
        eval_every=max(1, args.epochs // 8),
        fused_compute=not args.no_fused_compute,
        overlap=not args.no_overlap,
        transport=args.transport if args.transport is not None else "auto",
        rng_mode=args.rng_mode,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=max(1, args.checkpoint_every),
        resume=args.resume,
    )
    if args.pipeline_depth is not None:
        cfg = cfg.with_overrides(pipeline_depth=args.pipeline_depth)
    if args.transport_timeout is not None:
        cfg = cfg.with_overrides(transport_timeout_s=args.transport_timeout)
    print(f"training {args.system} / {args.model} on {dataset_label} "
          f"({topology.name}, {args.epochs} epochs)...")
    try:
        result = train(args.system, ds, book, topology, cfg, fault_plan=fault_plan)
    except TransportError as exc:
        print(f"error: transport failure: {exc}", file=sys.stderr)
        return 1
    _write_health_report(result)
    if result.start_epoch:
        print(f"resumed from checkpoint at epoch {result.start_epoch}")
        if result.start_epoch >= cfg.epochs:
            print(
                "checkpoint already covers all requested epochs; "
                "nothing left to train (accuracy shows as nan)"
            )
    bd = result.breakdown()
    print(
        render_table(
            ["metric", "value"],
            [
                ["final val accuracy", f"{100 * result.final_val:.2f}%"],
                ["final test accuracy", f"{100 * result.final_test:.2f}%"],
                ["throughput", f"{result.throughput:.2f} epoch/s (simulated)"],
                ["epoch time", format_seconds(result.epoch_time_mean)],
                ["comm / comp / quant",
                 f"{format_seconds(bd['comm'])} / {format_seconds(bd['comp'])} / "
                 f"{format_seconds(bd['quant'])}"],
                ["wall-clock (train+assign)",
                 f"{format_seconds(result.train_wallclock)} + "
                 f"{format_seconds(result.assign_seconds)}"],
                ["wire bytes / epoch",
                 f"{result.wire_bytes_total / max(result.epochs, 1) / 1e6:.2f} MB"],
            ]
            + _overlap_rows(result),
        )
    )
    if result.bit_histogram:
        print("bit-width histogram:", result.bit_histogram)
    health = result.transport_health
    faults = {k: v for k, v in (health.get("fault_stats") or {}).items() if v}
    abnormal = health.get("abnormal_exits") or []
    if abnormal or faults or health.get("respawns"):
        print(
            f"transport health: {len(abnormal)} abnormal worker exit(s), "
            f"{health.get('respawns', 0)} pool respawn(s); "
            f"fault counters: {faults or '{}'}"
        )
    return 0


def _cmd_prepare(args: argparse.Namespace) -> int:
    from repro.graph.generators import HugeGraphConfig
    from repro.graph.io import build_partition_store

    out = Path(args.out)
    if (out / "header.json").exists():
        print(f"error: {out} already holds a partition store", file=sys.stderr)
        return 2
    cfg = HugeGraphConfig(
        num_nodes=args.nodes,
        avg_degree=args.degree,
        num_features=args.features,
        num_classes=args.classes,
        num_communities=args.communities,
        homophily=args.homophily,
        neighbor_locality=args.locality,
    )
    store = build_partition_store(
        cfg, args.parts, out, seed=args.seed, agg_kind=args.model,
        progress=print,
    )
    sizes = np.diff(store.part_bounds).tolist()
    halos = [
        int(entry["regions"]["halo_global"]["shape"][0])
        for entry in store.header["partitions"]
    ]
    disk = sum(f.stat().st_size for f in out.iterdir() if f.is_file())
    print(
        render_table(
            ["metric", "value"],
            [
                ["store", str(out)],
                ["nodes / directed edges",
                 f"{store.num_nodes} / {store.num_directed_edges}"],
                ["features / classes",
                 f"{args.features} / {args.classes}"],
                ["parts", f"{store.num_parts} "
                 f"(sizes {min(sizes)}..{max(sizes)})"],
                ["halo rows / part", f"{min(halos)}..{max(halos)}"],
                ["on disk", f"{disk / 1e9:.2f} GB"],
            ],
        )
    )
    print(f"train with: repro train --store {out} "
          f"--setting {store.num_parts}M-1D")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    ds = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    book = partition_graph(ds.graph, args.parts, method=args.method, seed=args.seed)
    parts = build_local_partitions(ds.graph, book)
    marginal = [p.n_marginal / p.n_owned for p in parts]
    print(
        render_table(
            ["metric", "value"],
            [
                ["nodes / edges", f"{ds.graph.num_nodes} / {ds.graph.num_edges}"],
                ["parts", str(args.parts)],
                ["method", args.method],
                ["edge cut", f"{edge_cut(ds.graph, book)} "
                 f"({100 * edge_cut(ds.graph, book) / ds.graph.num_edges:.1f}%)"],
                ["balance", f"{balance(book):.3f}"],
                ["remote-neighbor ratio",
                 f"{100 * remote_neighbor_ratio(ds.graph, book):.1f}%"],
                ["marginal node fraction",
                 f"{100 * float(np.mean(marginal)):.1f}% "
                 f"(min {100 * min(marginal):.1f}%, max {100 * max(marginal):.1f}%)"],
                ["part sizes", str(book.sizes().tolist())],
            ],
        )
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import repro.harness as harness

    fn = getattr(harness, _EXPERIMENTS[args.id])
    result = fn()
    print(result.render())
    if result.notes:
        print("\nnotes:", result.notes)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.perfbench import (
        compare_to_baseline,
        load_report,
        render_report,
        run_bench,
        save_report,
    )

    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2

    mode = "quick" if args.quick else "full"
    print(f"benchmarking the fused engines ({mode} mode)...")
    report = run_bench(quick=args.quick, seed=args.seed)
    print(render_report(report))
    out = save_report(report, args.output)
    print(f"\nwrote {out}")

    if baseline is not None:
        problems = compare_to_baseline(
            report, baseline, max_regression=args.max_regression
        )
        if problems:
            print(f"\nPERF REGRESSION vs {args.baseline}:")
            for p in problems:
                print(f"  - {p}")
            return 1
        print(f"\nno regression vs {args.baseline} "
              f"(tolerance {args.max_regression:.0%})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "prepare":
        return _cmd_prepare(args)
    if args.command == "partition":
        return _cmd_partition(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "bench":
        return _cmd_bench(args)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
