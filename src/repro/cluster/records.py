"""Execution records: what one epoch produced, per layer and direction.

The cluster fills these while executing real numerics; the schedule
simulators (``repro.core.scheduler``) consume them to produce epoch times
under each system's overlap policy.  Keeping measurement (records) separate
from policy (schedules) lets one training run be re-timed under several
schedules — used by the ablation benchmarks.

:class:`StepTimeline` is the shared step-DAG currency between the two
worlds: the split-phase pipelined executor *emits* measured instances
(host wall-clock per stage, plus the transport's in-flight byte record)
while the schedule simulators *build* modelled instances from a
:class:`PhaseRecord` and the cost/perf models.  Same stage decomposition,
two sources — which is what lets the Table 2 / Fig. 3 benchmarks
cross-check model against measurement in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.perfmodel import PerfModel
from repro.comm.costmodel import LinkCostModel
from repro.comm.ring import ring_all2all_time

__all__ = ["PhaseRecord", "EpochRecord", "StepTimeline", "TimelineSummary"]


@dataclass
class PhaseRecord:
    """One (layer, direction) step across all devices.

    Attributes
    ----------
    layer / phase:
        Layer index and ``"fwd"`` or ``"bwd"``.
    bytes_matrix:
        ``(N, N)`` wire bytes actually posted for this step.
    quant_send_bytes / quant_recv_bytes:
        Per device: float32 bytes passed through the quantize kernel before
        sending / the de-quantize kernel after receiving (zero when the
        exchange is exact).  Kept separate because AdaQP's three-stage
        schedule places them in different stages (Fig. 7).
    agg_flops / agg_flops_central:
        Per device: sparse aggregation FLOPs, total and for central rows.
    dense_flops / dense_flops_central:
        Per device: dense (GEMM) FLOPs, total and attributable to central
        rows.
    """

    layer: int
    phase: str
    bytes_matrix: np.ndarray
    quant_send_bytes: np.ndarray
    quant_recv_bytes: np.ndarray
    agg_flops: np.ndarray
    agg_flops_central: np.ndarray
    dense_flops: np.ndarray
    dense_flops_central: np.ndarray

    @property
    def num_devices(self) -> int:
        return int(self.bytes_matrix.shape[0])

    @property
    def quant_float_bytes(self) -> np.ndarray:
        """Total float bytes through quant kernels (send + receive sides)."""
        return self.quant_send_bytes + self.quant_recv_bytes

    @property
    def agg_flops_marginal(self) -> np.ndarray:
        return self.agg_flops - self.agg_flops_central

    @property
    def dense_flops_marginal(self) -> np.ndarray:
        return self.dense_flops - self.dense_flops_central


@dataclass
class StepTimeline:
    """Stage decomposition of one (layer, phase) step of the split-phase
    pipeline: quantize → (comm ∥ central compute) → de-quantize → marginal
    compute.

    Two sources, one shape:

    * the pipelined executor emits **measured** instances
      (``measured=True``): stage durations are host wall-clock seconds of
      the stages it really ran, ``overlapped_bytes`` is the transport's
      record of traffic that was in flight during the central window, and
      ``comm_s`` is 0 (the in-memory transport moves bytes instantly — the
      interleave, not the wire time, is what execution can measure);
    * :meth:`from_record` builds **modelled** instances from a
      :class:`PhaseRecord` plus the link cost and device performance
      models — exactly the per-device accounting the schedule simulators
      used to inline.

    For backward steps the marginal stage runs *first* (marginal gradients
    must exist before they can be posted) — the fields name the pipeline
    roles, not their temporal order.

    Under the async worker transport the encode job runs concurrently with
    the central window: ``quantize_s`` then measures only the snapshot +
    dispatch cost on the main thread, and ``worker_wait_s`` the seconds
    finalize spent blocked joining the worker — the *exposed* encode tail
    the central window failed to cover (0.0 when fully hidden, and always
    0.0 on the synchronous transport, where the encode runs inside
    ``quantize_s``).
    """

    layer: int
    phase: str
    quantize_s: float  # stage 1: gather + quantize + post
    comm_s: float  # in-flight message time (modelled ring all2all)
    central_s: float  # central-graph compute, overlapped with comm
    dequantize_s: float  # collect + de-quantize + scatter
    marginal_s: float  # marginal-graph compute
    comp_full_s: float  # the un-split compute duration (serial schedules)
    overlapped_bytes: int = 0
    total_bytes: int = 0
    measured: bool = False
    worker_wait_s: float = 0.0  # exposed join wait on the async transport
    # Cross-step pipelining (PR 8): how many (layer, phase) tags the
    # executor kept in flight around this step (1 = classic Fig. 7), and
    # — when this step's post was issued by the *previous* step's
    # marginal window (forward lookahead) — the dispatch seconds paid
    # there.  For such steps ``quantize_s == lookahead_post_s``: the cost
    # was real but it ran inside the previous step's marginal stage, so
    # depth-aware schedules (``schedule_adaqp(pipeline_depth=2)``) may
    # hide it under that stage.
    pipeline_depth: int = 1
    lookahead_post_s: float = 0.0

    # -- modelled construction (the schedule simulators' accounting) -------
    @staticmethod
    def device_comm_occupancy(
        phase: PhaseRecord, cost: LinkCostModel
    ) -> np.ndarray:
        """Per-device send occupancy of one step (Table 2's 'comm.' column)."""
        bm = phase.bytes_matrix
        n = phase.num_devices
        busy = np.zeros(n)
        for s in range(n):
            for d in range(n):
                if s != d:
                    busy[s] += cost.time(s, d, bm[s, d])
        return busy

    @staticmethod
    def device_compute(
        phase: PhaseRecord, perf: PerfModel, *, central_only: bool = False
    ) -> np.ndarray:
        """Per-device compute duration of one step (optionally central only)."""
        if central_only:
            agg, dense = phase.agg_flops_central, phase.dense_flops_central
        else:
            agg, dense = phase.agg_flops, phase.dense_flops
        return np.array(
            [perf.compute_time(agg[d], dense[d]) for d in range(phase.num_devices)]
        )

    @classmethod
    def from_record(
        cls, phase: PhaseRecord, cost: LinkCostModel, perf: PerfModel
    ) -> "StepTimeline":
        """Modelled stage durations of one step (max over devices per stage)."""
        n = phase.num_devices
        ring_s, _ = ring_all2all_time(phase.bytes_matrix, cost)
        central = cls.device_compute(phase, perf, central_only=True)
        full = cls.device_compute(phase, perf)
        marginal = np.array(
            [
                perf.compute_time(
                    phase.agg_flops_marginal[d], phase.dense_flops_marginal[d]
                )
                for d in range(n)
            ]
        )
        return cls(
            layer=phase.layer,
            phase=phase.phase,
            quantize_s=max(
                perf.quant_time(phase.quant_send_bytes[d]) for d in range(n)
            ),
            comm_s=ring_s,
            central_s=float(central.max()),
            dequantize_s=max(
                perf.quant_time(phase.quant_recv_bytes[d]) for d in range(n)
            ),
            marginal_s=float(marginal.max()),
            comp_full_s=float(full.max()),
            total_bytes=int(phase.bytes_matrix.sum()),
        )

    # -- derived stage views ------------------------------------------------
    @property
    def overlap_stage_s(self) -> float:
        """Stage 2 of the paper's pipeline: comm in parallel with central."""
        return max(self.comm_s, self.central_s)

    @property
    def pipelined_s(self) -> float:
        """Step duration under the three-stage overlapped schedule."""
        return (
            self.quantize_s + self.overlap_stage_s + self.dequantize_s + self.marginal_s
        )

    @property
    def serial_s(self) -> float:
        """Step duration with no overlap (quant + comm + full compute)."""
        return self.quantize_s + self.comm_s + self.comp_full_s + self.dequantize_s

    @property
    def hidden_comm_s(self) -> float:
        """Communication time hidden under the central window."""
        return min(self.comm_s, self.central_s)

    @property
    def split_compute_s(self) -> float:
        """Total compute of the split stages (central + marginal)."""
        return self.central_s + self.marginal_s

    @property
    def hidden_byte_fraction(self) -> float:
        """Fraction of this step's wire bytes in flight during overlap."""
        if self.total_bytes <= 0:
            return 0.0
        return self.overlapped_bytes / self.total_bytes


@dataclass
class TimelineSummary:
    """Bounded-size aggregate of measured :class:`StepTimeline` entries.

    Long runs cannot afford to retain one stage list per step forever —
    this is the summarize half of the keep-last-N-or-summarize policy:
    stage seconds and byte counters accumulate here while the per-step
    objects themselves can be dropped.
    """

    steps: int = 0
    quantize_s: float = 0.0
    central_s: float = 0.0
    dequantize_s: float = 0.0
    marginal_s: float = 0.0
    worker_wait_s: float = 0.0
    lookahead_post_s: float = 0.0
    overlapped_bytes: int = 0
    total_bytes: int = 0

    def add(self, t: StepTimeline) -> None:
        self.steps += 1
        self.quantize_s += t.quantize_s
        self.central_s += t.central_s
        self.dequantize_s += t.dequantize_s
        self.marginal_s += t.marginal_s
        self.worker_wait_s += t.worker_wait_s
        self.lookahead_post_s += t.lookahead_post_s
        self.overlapped_bytes += t.overlapped_bytes
        self.total_bytes += t.total_bytes

    def merge(self, other: "TimelineSummary") -> None:
        self.steps += other.steps
        self.quantize_s += other.quantize_s
        self.central_s += other.central_s
        self.dequantize_s += other.dequantize_s
        self.marginal_s += other.marginal_s
        self.worker_wait_s += other.worker_wait_s
        self.lookahead_post_s += other.lookahead_post_s
        self.overlapped_bytes += other.overlapped_bytes
        self.total_bytes += other.total_bytes

    @property
    def hidden_byte_fraction(self) -> float:
        if self.total_bytes <= 0:
            return 0.0
        return self.overlapped_bytes / self.total_bytes

    @property
    def central_share(self) -> float:
        """Central fraction of the split compute (what overlap can hide)."""
        split = self.central_s + self.marginal_s
        if split <= 0.0:
            return 0.0
        return self.central_s / split


@dataclass
class EpochRecord:
    """Everything one training epoch produced (numerics + accounting)."""

    loss: float
    phases: list[PhaseRecord] = field(default_factory=list)
    # Measured per-step stage timelines, emitted only by the split-phase
    # pipelined executor (empty under the non-overlapped engines).  Feed
    # entries through :meth:`add_timeline` so ``timeline_summary`` stays
    # authoritative even when old entries are dropped under a cap.
    timelines: list[StepTimeline] = field(default_factory=list)
    timeline_summary: TimelineSummary = field(default_factory=TimelineSummary)
    grad_allreduce_bytes: int = 0
    # Wall-clock seconds of *host-side* work measured for real (bit-width
    # assignment solving); simulated device time never lands here.
    host_overhead_s: float = 0.0

    def add_timeline(self, t: StepTimeline, keep_last: int | None = None) -> None:
        """Record one measured step; caps the retained list at ``keep_last``.

        The summary always absorbs the step, so byte/stage accounting
        (:meth:`hidden_byte_fraction`) never loses dropped entries.
        """
        self.timeline_summary.add(t)
        self.timelines.append(t)
        if keep_last is not None and len(self.timelines) > keep_last:
            del self.timelines[: len(self.timelines) - keep_last]

    def total_wire_bytes(self) -> int:
        return int(sum(p.bytes_matrix.sum() for p in self.phases))

    def bytes_by_pair(self) -> np.ndarray:
        """Sum of wire bytes over all phases, per (src, dst) pair."""
        if not self.phases:
            raise ValueError("epoch has no recorded phases")
        total = np.zeros_like(self.phases[0].bytes_matrix)
        for p in self.phases:
            total = total + p.bytes_matrix
        return total

    def hidden_byte_fraction(self) -> float:
        """Measured epoch-level overlap efficiency: the fraction of halo
        wire bytes that were in flight during a central-compute window.
        0.0 when the epoch ran without the pipelined executor."""
        if self.timeline_summary.steps:
            return self.timeline_summary.hidden_byte_fraction
        total = sum(t.total_bytes for t in self.timelines)
        if total <= 0:
            return 0.0
        return sum(t.overlapped_bytes for t in self.timelines) / total
