"""Execution records: what one epoch produced, per layer and direction.

The cluster fills these while executing real numerics; the schedule
simulators (``repro.core.scheduler``) consume them to produce epoch times
under each system's overlap policy.  Keeping measurement (records) separate
from policy (schedules) lets one training run be re-timed under several
schedules — used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PhaseRecord", "EpochRecord"]


@dataclass
class PhaseRecord:
    """One (layer, direction) step across all devices.

    Attributes
    ----------
    layer / phase:
        Layer index and ``"fwd"`` or ``"bwd"``.
    bytes_matrix:
        ``(N, N)`` wire bytes actually posted for this step.
    quant_send_bytes / quant_recv_bytes:
        Per device: float32 bytes passed through the quantize kernel before
        sending / the de-quantize kernel after receiving (zero when the
        exchange is exact).  Kept separate because AdaQP's three-stage
        schedule places them in different stages (Fig. 7).
    agg_flops / agg_flops_central:
        Per device: sparse aggregation FLOPs, total and for central rows.
    dense_flops / dense_flops_central:
        Per device: dense (GEMM) FLOPs, total and attributable to central
        rows.
    """

    layer: int
    phase: str
    bytes_matrix: np.ndarray
    quant_send_bytes: np.ndarray
    quant_recv_bytes: np.ndarray
    agg_flops: np.ndarray
    agg_flops_central: np.ndarray
    dense_flops: np.ndarray
    dense_flops_central: np.ndarray

    @property
    def num_devices(self) -> int:
        return int(self.bytes_matrix.shape[0])

    @property
    def quant_float_bytes(self) -> np.ndarray:
        """Total float bytes through quant kernels (send + receive sides)."""
        return self.quant_send_bytes + self.quant_recv_bytes

    @property
    def agg_flops_marginal(self) -> np.ndarray:
        return self.agg_flops - self.agg_flops_central

    @property
    def dense_flops_marginal(self) -> np.ndarray:
        return self.dense_flops - self.dense_flops_central


@dataclass
class EpochRecord:
    """Everything one training epoch produced (numerics + accounting)."""

    loss: float
    phases: list[PhaseRecord] = field(default_factory=list)
    grad_allreduce_bytes: int = 0
    # Wall-clock seconds of *host-side* work measured for real (bit-width
    # assignment solving); simulated device time never lands here.
    host_overhead_s: float = 0.0

    def total_wire_bytes(self) -> int:
        return int(sum(p.bytes_matrix.sum() for p in self.phases))

    def bytes_by_pair(self) -> np.ndarray:
        """Sum of wire bytes over all phases, per (src, dst) pair."""
        if not self.phases:
            raise ValueError("epoch has no recorded phases")
        total = np.zeros_like(self.phases[0].bytes_matrix)
        for p in self.phases:
            total = total + p.bytes_matrix
        return total
