"""Halo exchange strategies: exact (Vanilla) and quantized (AdaQP).

An exchange implements the two message movements of distributed full-graph
training:

* **embeddings** (forward): each device sends, per peer, the current
  activations of the boundary rows that peer's halo needs;
* **gradients** (backward): each device sends, per halo-owner, the
  accumulated embedding gradients of that owner's nodes, which the owner
  adds into its own backward signal.

The quantized exchange additionally consults a :class:`BitProvider` for the
per-message bit-widths and (optionally) feeds an input tracer — the hook
the Adaptive Bit-width Assigner hangs off.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.comm.transport import Transport
from repro.quant.mixed import MixedPrecisionEncoder
from repro.quant.theory import SUPPORTED_BITS
from repro.utils.validation import check_in_set

__all__ = [
    "BitProvider",
    "FixedBitProvider",
    "UniformRandomBitProvider",
    "HaloExchange",
    "ExactHaloExchange",
    "QuantizedHaloExchange",
]


class BitProvider(Protocol):
    """Supplies per-message bit-widths for one transfer."""

    def bits_for(
        self, layer: int, phase: str, src: int, dst: int, n_rows: int
    ) -> np.ndarray:  # pragma: no cover - protocol
        ...


class FixedBitProvider:
    """Every message gets the same bit-width (the paper's naive scheme)."""

    def __init__(self, bits: int) -> None:
        check_in_set(bits, SUPPORTED_BITS, name="bits")
        self.bits = int(bits)

    def bits_for(
        self, layer: int, phase: str, src: int, dst: int, n_rows: int
    ) -> np.ndarray:
        return np.full(n_rows, self.bits, dtype=np.int64)


class UniformRandomBitProvider:
    """Uniform random bit-width per message (paper Table 6's baseline).

    Assignments are resampled every ``period`` epochs, mirroring how the
    adaptive scheme re-assigns periodically (buffer sizes change at the
    same cadence in both schemes).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        choices: tuple[int, ...] = SUPPORTED_BITS,
        period: int = 50,
    ) -> None:
        for b in choices:
            check_in_set(b, SUPPORTED_BITS, name="choices entry")
        if period < 1:
            raise ValueError("period must be >= 1")
        self.rng = rng
        self.choices = np.asarray(choices, dtype=np.int64)
        self.period = int(period)
        self._epoch = 0
        self._cache: dict[tuple[int, str, int, int], np.ndarray] = {}

    def set_epoch(self, epoch: int) -> None:
        if epoch % self.period == 0:
            self._cache.clear()
        self._epoch = epoch

    def bits_for(
        self, layer: int, phase: str, src: int, dst: int, n_rows: int
    ) -> np.ndarray:
        key = (layer, phase, src, dst)
        cached = self._cache.get(key)
        if cached is None or cached.size != n_rows:
            cached = self.rng.choice(self.choices, size=n_rows)
            self._cache[key] = cached
        return cached


class HaloExchange:
    """Base class; subclasses override the payload encode/decode policy."""

    #: whether payloads pass through quantize/de-quantize kernels
    quantizes: bool = False

    def on_epoch_start(self, epoch: int) -> None:
        """Hook for per-epoch state (bit re-sampling, staleness caches)."""

    def exchange_embeddings(
        self,
        layer: int,
        devices: list,  # list[DeviceRuntime]; untyped to avoid cycle
        transport: Transport,
        h_by_dev: list[np.ndarray],
    ) -> list[np.ndarray]:
        """All-to-all halo fetch; returns per device an (n_halo, d) matrix."""
        tag = f"fwd/L{layer}"
        for dev in devices:
            part = dev.part
            for q in part.peers_out():
                rows = part.send_map[q]
                self._post(
                    transport, layer, "fwd", dev.rank, q, tag, h_by_dev[dev.rank][rows]
                )
        halo_by_dev: list[np.ndarray] = []
        for dev in devices:
            part = dev.part
            d = h_by_dev[dev.rank].shape[1]
            halo = np.zeros((part.n_halo, d), dtype=np.float32)
            for p, payload in transport.collect(dev.rank, tag).items():
                halo[part.recv_map[p]] = self._decode(payload)
            halo_by_dev.append(halo)
        return halo_by_dev

    def exchange_gradients(
        self,
        layer: int,
        devices: list,
        transport: Transport,
        d_halo_by_dev: list[np.ndarray],
        d_own_by_dev: list[np.ndarray],
    ) -> None:
        """Route halo gradients back to owners, accumulating in-place."""
        tag = f"bwd/L{layer}"
        for dev in devices:
            part = dev.part
            for q in part.peers_in():
                slots = part.recv_map[q]
                self._post(
                    transport,
                    layer,
                    "bwd",
                    dev.rank,
                    q,
                    tag,
                    d_halo_by_dev[dev.rank][slots],
                )
        for dev in devices:
            part = dev.part
            for p, payload in transport.collect(dev.rank, tag).items():
                d_own_by_dev[dev.rank][part.send_map[p]] += self._decode(payload)

    # -- policy hooks --------------------------------------------------------
    def _post(
        self,
        transport: Transport,
        layer: int,
        phase: str,
        src: int,
        dst: int,
        tag: str,
        rows: np.ndarray,
    ) -> None:
        raise NotImplementedError

    def _decode(self, payload: object) -> np.ndarray:
        raise NotImplementedError


class ExactHaloExchange(HaloExchange):
    """Full-precision float32 transfers (Vanilla and evaluation passes)."""

    quantizes = False

    def _post(self, transport, layer, phase, src, dst, tag, rows) -> None:
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        transport.post(src, dst, tag, rows, rows.nbytes)

    def _decode(self, payload: object) -> np.ndarray:
        return payload  # type: ignore[return-value]


class QuantizedHaloExchange(HaloExchange):
    """AdaQP's transfers: per-message stochastic quantization + packing.

    Parameters
    ----------
    bit_provider:
        Source of per-message bit-widths (fixed, uniform-random or the
        adaptive assigner).
    rng:
        Stream for stochastic rounding.
    tracer:
        Optional object with ``observe(phase, layer, src, dst, rows)``;
        the adaptive assigner registers one to see every transfer's input
        statistics (paper Fig. 6, step 1).
    """

    quantizes = True

    def __init__(
        self,
        bit_provider: BitProvider,
        rng: np.random.Generator,
        tracer: object | None = None,
    ) -> None:
        self.bit_provider = bit_provider
        self.encoder = MixedPrecisionEncoder(rng)
        self.tracer = tracer

    def on_epoch_start(self, epoch: int) -> None:
        set_epoch = getattr(self.bit_provider, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(epoch)

    def _post(self, transport, layer, phase, src, dst, tag, rows) -> None:
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        if self.tracer is not None:
            self.tracer.observe(phase, layer, src, dst, rows)
        bits = self.bit_provider.bits_for(layer, phase, src, dst, rows.shape[0])
        payload = self.encoder.encode(rows, bits)
        transport.post(src, dst, tag, payload, payload.wire_bytes)

    def _decode(self, payload: object) -> np.ndarray:
        return payload.decode()  # type: ignore[union-attr]
