"""Halo exchange strategies: exact (Vanilla) and quantized (AdaQP).

An exchange implements the two message movements of distributed full-graph
training:

* **embeddings** (forward): each device sends, per peer, the current
  activations of the boundary rows that peer's halo needs;
* **gradients** (backward): each device sends, per halo-owner, the
  accumulated embedding gradients of that owner's nodes, which the owner
  adds into its own backward signal.

The quantized exchange additionally consults a :class:`BitProvider` for the
per-message bit-widths and (optionally) feeds an input tracer — the hook
the Adaptive Bit-width Assigner hangs off.

**Split-phase API.**  Every exchange executes one step as two halves:
:meth:`HaloExchange.post_step` snapshots, encodes and posts all outgoing
messages and returns an :class:`InFlightStep` handle; the messages then
stay pending in the transport until :meth:`HaloExchange.finalize_step`
collects, decodes and scatters (forward) or accumulates (backward) them.
The pipelined executor runs the central-graph sub-step between the two
halves — the paper's Fig. 7 overlap — while the classic
``exchange_embeddings``/``exchange_gradients`` entry points are just the
back-to-back composition.  Payload values are frozen at post time (every
policy's gather or encode copies), so callers may mutate the source
buffers while a step is in flight.

**Async post paths.**  Each ``post_step`` splits into a *snapshot* half
(gathers the outgoing rows on the calling thread) and one or more
*encode-and-post* jobs handed to :meth:`TransportBackend.defer` /
:meth:`TransportBackend.defer_many`.  On the synchronous transport the jobs run
inline, byte-for-byte the old behaviour; on a
:class:`~repro.comm.transport.WorkerTransport` they run on the worker
pool, overlapping the caller's subsequent compute.  Because the snapshot
happens before ``post_step`` returns, the frozen-at-post contract holds
under both transports; ``finalize_step`` joins the jobs (via
:meth:`InFlightStep.mark_done`) before reading results, so receivers
never observe a half-posted step.

**Worker fan-out.**  How many jobs a step becomes depends on the
exchange's determinism model.  Under keyed rounding
(:class:`~repro.quant.stochastic.KeyedRounding`) every message block's
noise is a pure function of its coordinates, so the fused engine shards
one step's encode across all ``transport.workers`` and — on async
transports — chases it with per-receiver collect/decode jobs, all free
to retire in any order; the exact exchange (no noise at all) shards its
batched posts per source device.  Under stream rounding the shared
sequential RNG forces one job per step (the PR-4 contract, preserved
bit for bit).  Thread placement of the per-pair engines' ``_post`` hook
— bit lookup, tracer ``observe`` and the RNG draw — is *inside* the
single deferred job, i.e. on a worker under an async transport.  That is
safe only because exactly one such job runs at a time and finalize joins
before any consumer reads the tracer or RNG; code adding mid-window
readers of either must not rely on the main thread owning them.  The
one-at-a-time property survives the two-deep pipeline (PR 8): a
cross-step lookahead post fires only after the previous step's finalize
has joined its tag, so even with two tags alive on the transport at
once, at most one tag ever has outstanding encode jobs.

**Worker-side decode scatter.**  Forward callers that already know the
destination halo buffers may pass them to ``post_step(..., out=...)``:
on async thread-backed transports the fused engine's per-receiver decode
jobs then scatter straight into them (each receiver's halo region is a
disjoint, contiguous row range of the stacked buffer, so the writes are
race-free shards), and ``finalize_step`` with the *same* ``out`` object
becomes join-only.  Backward steps never take this path (their
accumulate is float-order-sensitive), nor does the process transport
(the halo buffer is not in shared memory); both keep the main-thread
scatter/accumulate.
"""

from __future__ import annotations

import threading
import zlib
from typing import Protocol

import numpy as np
import scipy.sparse as sp

from repro.comm.transport import (
    TransportAccounting,
    TransportBackend,
    TransportError,
)
from repro.quant.fused import (
    DecodeWorkspace,
    FusedStepEncoder,
    decode_cluster_step,
    decode_step,
    pair_shard,
    shard_descriptor,
)
from repro.quant.mixed import MixedPrecisionEncoder, MixedPrecisionPayload
from repro.quant.theory import SUPPORTED_BITS
from repro.utils.validation import check_in_set

__all__ = [
    "BitProvider",
    "FixedBitProvider",
    "UniformRandomBitProvider",
    "InFlightStep",
    "HaloExchange",
    "ExactHaloExchange",
    "QuantizedHaloExchange",
    "FusedQuantizedHaloExchange",
    "step_tag",
]


def step_tag(phase: str, layer: int) -> str:
    """The transport tag of one (phase, layer) exchange step."""
    return f"{phase}/L{layer}"


class BitProvider(Protocol):
    """Supplies per-message bit-widths for one transfer."""

    def bits_for(
        self, layer: int, phase: str, src: int, dst: int, n_rows: int
    ) -> np.ndarray:  # pragma: no cover - protocol
        ...


class FixedBitProvider:
    """Every message gets the same bit-width (the paper's naive scheme)."""

    def __init__(self, bits: int) -> None:
        check_in_set(bits, SUPPORTED_BITS, name="bits")
        self.bits = int(bits)

    def bits_for(
        self, layer: int, phase: str, src: int, dst: int, n_rows: int
    ) -> np.ndarray:
        return np.full(n_rows, self.bits, dtype=np.int64)


class UniformRandomBitProvider:
    """Uniform random bit-width per message (paper Table 6's baseline).

    Assignments are resampled every ``period`` epochs, mirroring how the
    adaptive scheme re-assigns periodically (buffer sizes change at the
    same cadence in both schemes).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        choices: tuple[int, ...] = SUPPORTED_BITS,
        period: int = 50,
    ) -> None:
        for b in choices:
            check_in_set(b, SUPPORTED_BITS, name="choices entry")
        if period < 1:
            raise ValueError("period must be >= 1")
        self.rng = rng
        self.choices = np.asarray(choices, dtype=np.int64)
        self.period = int(period)
        self._epoch = 0
        self._cache: dict[tuple[int, str, int, int], np.ndarray] = {}

    def set_epoch(self, epoch: int) -> None:
        if epoch % self.period == 0:
            self._cache.clear()
        self._epoch = epoch

    def bits_for(
        self, layer: int, phase: str, src: int, dst: int, n_rows: int
    ) -> np.ndarray:
        key = (layer, phase, src, dst)
        cached = self._cache.get(key)
        if cached is None or cached.size != n_rows:
            cached = self.rng.choice(self.choices, size=n_rows)
            self._cache[key] = cached
        return cached

    def state_dict(self) -> dict:
        """Generator position + live assignments (bitwise resume)."""
        return {
            "bit_generator": self.rng.bit_generator.state,
            "epoch": int(self._epoch),
            "cache": {key: arr.copy() for key, arr in self._cache.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        self.rng.bit_generator.state = state["bit_generator"]
        self._epoch = int(state["epoch"])
        self._cache = {
            tuple(key): np.asarray(arr, dtype=np.int64)
            for key, arr in state["cache"].items()
        }


class InFlightStep:
    """Handle for one posted-but-not-finalized exchange step.

    Returned by :meth:`HaloExchange.post_step`; every field the receive
    half needs is captured here so ``finalize_step`` takes only the handle
    (plus destination buffers).  ``tag`` doubles as the transport key the
    pipelined executor passes to :meth:`TransportAccounting.note_overlap`.

    ``worker_wait_s`` is filled by :meth:`mark_done`: the seconds the
    finalize half spent blocked joining the step's deferred encode (and,
    on async transports, decode) jobs — 0.0 on the synchronous transport,
    and ~0.0 under the async transport whenever the central window fully
    covered the deferred work (the exposed tail the timelines report).

    ``decoded`` is the async fused engine's stash: per-receiver decoded
    matrices produced by worker-side decode jobs, complete once
    :meth:`mark_done` returns; ``None`` whenever decode happens in
    ``finalize_step`` itself (synchronous transports, non-fused policies).

    ``scatter_out``/``scattered`` carry the worker-side scatter contract:
    ``scatter_out`` is the per-device halo-destination list the caller
    supplied at post time (if any), and ``scattered`` is set by the fused
    engine once its decode jobs have been queued to write those buffers
    directly — ``finalize_step`` passed the *same* ``out`` object then
    skips the scatter entirely.  ``ws_parity`` selects which of the A/B
    :class:`~repro.quant.fused.DecodeWorkspace` pair this step's decodes
    use, so a lookahead step's decode never reuses buffers whose views
    the previous step's finalize has not yet consumed.
    """

    __slots__ = (
        "layer",
        "phase",
        "tag",
        "devices",
        "transport",
        "dim",
        "done",
        "worker_wait_s",
        "decoded",
        "scatter_out",
        "scattered",
        "ws_parity",
        "plan",
        "replayable",
    )

    def __init__(
        self,
        layer: int,
        phase: str,
        tag: str,
        devices: list,
        transport: TransportBackend,
        dim: int,
    ) -> None:
        self.layer = layer
        self.phase = phase
        self.tag = tag
        self.devices = devices
        self.transport = transport
        self.dim = dim
        self.done = False
        self.worker_wait_s = 0.0
        self.decoded: dict[int, dict[int, np.ndarray]] | None = None
        self.scatter_out: list[np.ndarray] | None = None
        self.scattered = False
        self.ws_parity = 0
        # Keyed-replay recovery handles: the fused engine stashes the
        # step's encode plan here and flags whether a dropped envelope can
        # be regenerated from it (keyed rounding + plan scratch staged on
        # this side of the process boundary).
        self.plan = None
        self.replayable = False

    def mark_done(self) -> None:
        if self.done:
            raise RuntimeError(
                f"step {self.tag!r} finalized twice (stale in-flight handle)"
            )
        self.done = True
        # Join the step's deferred encode/post/decode jobs (no-op when the
        # transport is synchronous); every finalize half calls mark_done
        # first, so no policy can collect a half-posted step.
        self.worker_wait_s = self.transport.complete(self.tag)


class HaloExchange:
    """Base class; subclasses override the payload encode/decode policy.

    The generic implementation posts one envelope per (src, dst) pair
    through the :meth:`_post` hook and decodes per payload via
    :meth:`_decode`; subclasses either keep those hooks (per-pair
    policies) or override the step halves wholesale (the fused engines).
    """

    #: whether payloads pass through quantize/de-quantize kernels
    quantizes: bool = False

    def on_epoch_start(self, epoch: int) -> None:
        """Hook for per-epoch state (bit re-sampling, staleness caches)."""

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """Cross-epoch state a bitwise resume must restore.

        The base policies are stateless across epochs (plans and scratch
        are caches, rebuilt identically); policies with numeric carry-over
        — stream-rounding positions, adaptive traces, staleness caches —
        override both hooks.
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        if state:
            raise ValueError(f"unexpected exchange state keys: {sorted(state)}")

    # -- delivery audit ------------------------------------------------------
    @staticmethod
    def _check_delivery(dev, phase: str, tag: str, received) -> None:
        """Fail fast when a step's mailbox is missing expected envelopes.

        Every peer in the partition's recv map (forward) / send map
        (backward) posts exactly one envelope per step, so a shortfall
        means an envelope was lost in transit.  Policies with a recovery
        path (the fused keyed engine's replay) handle the shortfall
        before scattering; everyone else must raise — zero-filled halo
        rows or missing gradient contributions are silent corruption.
        """
        part = dev.part
        expected = part.recv_map if phase == "fwd" else part.send_map
        if len(received) != len(expected):
            missing = sorted(set(expected) - set(received))
            raise TransportError(
                f"device {dev.rank} is missing envelope(s) from source(s)"
                f" {missing} under tag {tag!r} — dropped in transit, and this"
                " exchange has no replay path"
            )

    # -- split-phase halves --------------------------------------------------
    def post_step(
        self,
        layer: int,
        phase: str,
        devices: list,  # list[DeviceRuntime]; untyped to avoid cycle
        transport: TransportBackend,
        values_by_dev: list[np.ndarray],
        out: list[np.ndarray] | None = None,
    ) -> InFlightStep:
        """Stage 1: snapshot, encode and post this step's outgoing rows.

        ``phase`` is ``"fwd"`` (boundary embeddings to halo holders) or
        ``"bwd"`` (halo gradients back to owners).  Returns the in-flight
        handle for :meth:`finalize_step`; payload values are copied out of
        ``values_by_dev`` before returning (the gathers below), while the
        per-pair encode/post loop runs as one deferred transport job.

        ``out`` (forward only) optionally names the per-device halo
        destinations up front so a policy that can scatter on its workers
        does (see the module docstring); policies without that fast path
        simply record it on the handle.  Finalize's own ``out`` argument
        stays authoritative either way.
        """
        check_in_set(phase, ("fwd", "bwd"), name="phase")
        tag = step_tag(phase, layer)
        staged: list[tuple[int, int, np.ndarray]] = []
        for dev in devices:
            part = dev.part
            maps = part.send_map if phase == "fwd" else part.recv_map
            values = values_by_dev[dev.rank]
            for q in sorted(maps.keys()):
                # Fancy indexing copies: the snapshot happens here, on the
                # calling thread, regardless of where the job runs.
                staged.append((dev.rank, q, values[maps[q]]))
        if staged:
            # One job per step: the _post hook may consume a sequential
            # RNG stream or feed a tracer, neither of which tolerates
            # concurrent callers (see the module docstring).
            def job() -> None:
                for src, q, rows in staged:
                    self._post(transport, layer, phase, src, q, tag, rows)

            transport.defer(tag, job)
        dim = int(values_by_dev[devices[0].rank].shape[1])
        step = InFlightStep(layer, phase, tag, devices, transport, dim)
        step.scatter_out = out if phase == "fwd" else None
        return step

    def finalize_step(
        self, step: InFlightStep, out: list[np.ndarray] | None = None
    ) -> list[np.ndarray] | None:
        """Stage 2: collect, decode and land this step's messages.

        Forward steps scatter into per-device ``(n_halo, d)`` buffers
        (``out`` views or fresh arrays) and return them; backward steps
        *accumulate* into the per-device ``out`` gradient buffers and
        return ``None``.  See the class docstring for buffer ownership.
        """
        step.mark_done()
        if step.phase == "fwd":
            halo_by_dev: list[np.ndarray] = []
            for dev in step.devices:
                part = dev.part
                halo = self._halo_out(out, dev.rank, part.n_halo, step.dim)
                received = step.transport.collect(dev.rank, step.tag)
                self._check_delivery(dev, step.phase, step.tag, received)
                for p, payload in received.items():
                    halo[part.recv_map[p]] = self._decode(payload)
                halo_by_dev.append(halo)
            return halo_by_dev
        if out is None:
            raise ValueError("backward finalize_step requires out= buffers")
        for dev in step.devices:
            part = dev.part
            received = step.transport.collect(dev.rank, step.tag)
            self._check_delivery(dev, step.phase, step.tag, received)
            for p, payload in received.items():
                out[dev.rank][part.send_map[p]] += self._decode(payload)
        return None

    # -- monolithic entry points (post + finalize back to back) -------------
    def exchange_embeddings(
        self,
        layer: int,
        devices: list,
        transport: TransportBackend,
        h_by_dev: list[np.ndarray],
        out: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """All-to-all halo fetch; returns per device an (n_halo, d) matrix.

        ``out``, when given, supplies per-device ``(n_halo, d)`` destination
        buffers (the fused compute engine passes halo-region views of its
        stacked layer buffer, so decoded rows land in place).  Each buffer
        is zeroed before scattering — reused buffers must be
        indistinguishable from the fresh allocations of the default path.
        """
        step = self.post_step(layer, "fwd", devices, transport, h_by_dev)
        halo_by_dev = self.finalize_step(step, out=out)
        assert halo_by_dev is not None
        return halo_by_dev

    def exchange_gradients(
        self,
        layer: int,
        devices: list,
        transport: TransportBackend,
        d_halo_by_dev: list[np.ndarray],
        d_own_by_dev: list[np.ndarray],
    ) -> None:
        """Route halo gradients back to owners, accumulating in-place."""
        step = self.post_step(layer, "bwd", devices, transport, d_halo_by_dev)
        self.finalize_step(step, out=d_own_by_dev)

    @staticmethod
    def _halo_out(
        out: list[np.ndarray] | None, rank: int, n_halo: int, dim: int
    ) -> np.ndarray:
        """Zeroed halo destination: caller-provided view or fresh array."""
        if out is None:
            return np.zeros((n_halo, dim), dtype=np.float32)
        buf = out[rank]
        if buf.shape != (n_halo, dim):
            raise ValueError(
                f"out[{rank}] has shape {buf.shape}, expected {(n_halo, dim)}"
            )
        buf.fill(0.0)
        return buf

    # -- policy hooks --------------------------------------------------------
    def _post(
        self,
        transport: TransportBackend,
        layer: int,
        phase: str,
        src: int,
        dst: int,
        tag: str,
        rows: np.ndarray,
    ) -> None:
        raise NotImplementedError

    def _decode(self, payload: object) -> np.ndarray:
        raise NotImplementedError


class ExactHaloExchange(HaloExchange):
    """Full-precision float32 transfers (Vanilla and evaluation passes).

    Executed step-fused like the quantized engine: per device, one gather
    over all outgoing boundary rows and one batched transport post; on the
    receive side, one permutation scatter per device instead of one
    assignment per peer.  Wire bytes and every transferred value are
    identical to the per-pair path (payloads are row slices of the same
    gather), so Vanilla epochs and evaluation passes stop paying K·peers
    Python dispatches per layer.

    Step plans (gather indices, scatter permutations) are cached per
    cluster: the cache key is the identity of device 0's ``owned_global``
    array, so an instance reused across *different* clusters rebuilds
    automatically.
    """

    quantizes = False

    def __init__(self) -> None:
        # phase -> (identity key, per-device plan list); see class docstring.
        self._plans: dict[str, tuple[object, list]] = {}

    def _plan_for(self, phase: str, devices: list) -> list:
        key = devices[0].part.owned_global
        cached = self._plans.get(phase)
        if cached is not None and cached[0] is key:
            return cached[1]
        plans = []
        for dev in devices:
            part = dev.part
            send = part.send_map if phase == "fwd" else part.recv_map
            peers = sorted(send.keys())
            counts = [int(send[q].size) for q in peers]
            bounds = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
            gather = (
                np.concatenate([send[q] for q in peers])
                if peers
                else np.zeros(0, dtype=np.int64)
            )
            # Receive side.  "fwd" scatters into halo slots — each fed by
            # exactly one peer, so one permuted assignment covers the
            # whole region.  "bwd" accumulates into owned rows, which may
            # repeat across peers; a 0/1 selection operator reduces all
            # incoming rows per owner in one spmv (summation over peers in
            # ascending-peer order, like the per-peer loop it replaces).
            recv = part.recv_map if phase == "fwd" else part.send_map
            recv_peers = sorted(recv.keys())
            scatter = (
                np.concatenate([recv[p] for p in recv_peers])
                if recv_peers
                else np.zeros(0, dtype=np.int64)
            )
            if phase == "fwd" and scatter.size != part.n_halo:
                # The zero-fill-free scatter below relies on full halo
                # coverage; LocalPartition.validate() guarantees it, so a
                # violation means a hand-built partition broke the maps.
                raise ValueError(
                    f"partition {part.part_id}: recv maps cover "
                    f"{scatter.size} of {part.n_halo} halo slots"
                )
            reduce_op = None
            if phase == "bwd" and scatter.size:
                reduce_op = sp.csr_matrix(
                    (
                        np.ones(scatter.size, dtype=np.float32),
                        (scatter, np.arange(scatter.size, dtype=np.int64)),
                    ),
                    shape=(part.n_owned, scatter.size),
                )
            plans.append((peers, bounds, gather, recv_peers, scatter, reduce_op))
        self._plans[phase] = (key, plans)
        return plans

    @staticmethod
    def _batch_posts(plan: tuple, block: np.ndarray) -> list[tuple[int, object, int]]:
        """One device's ``post_batch`` entries from its gathered block.

        Payloads are row slices of a single fresh gather, so wire bytes
        and transferred values are exactly the per-pair path's.
        """
        peers, bounds = plan[:2]
        row_bytes = block.shape[1] * 4
        return [
            (
                q,
                block[bounds[i] : bounds[i + 1]],
                int(bounds[i + 1] - bounds[i]) * row_bytes,
            )
            for i, q in enumerate(peers)
        ]

    def post_step(
        self,
        layer: int,
        phase: str,
        devices: list,
        transport: TransportBackend,
        values_by_dev: list[np.ndarray],
        out: list[np.ndarray] | None = None,
    ) -> InFlightStep:
        check_in_set(phase, ("fwd", "bwd"), name="phase")
        tag = step_tag(phase, layer)
        plans = self._plan_for(phase, devices)
        # Snapshot half: one gather per device, fresh memory; the float32
        # coercion mirrors the per-pair _post hook (and keeps the byte
        # accounting honest for non-float32 inputs).
        staged: list[tuple[int, tuple, np.ndarray]] = []
        for dev in devices:
            plan = plans[dev.rank]
            if not plan[0]:  # no peers
                continue
            block = np.ascontiguousarray(
                values_by_dev[dev.rank][plan[2]], dtype=np.float32
            )
            staged.append((dev.rank, plan, block))
        if staged:
            # Exact payloads carry no rounding noise, so per-device post
            # jobs are order-free: a multi-worker pool runs them
            # concurrently (receivers sort mailboxes by source, so the
            # arrival order is invisible).
            if transport.workers > 1:

                def make_job(rank: int, plan: tuple, block: np.ndarray):
                    def job() -> None:
                        transport.post_batch(rank, tag, self._batch_posts(plan, block))

                    return job

                transport.defer_many(tag, [make_job(*entry) for entry in staged])
            else:

                def job() -> None:
                    for rank, plan, block in staged:
                        transport.post_batch(rank, tag, self._batch_posts(plan, block))

                transport.defer(tag, job)
        dim = int(values_by_dev[devices[0].rank].shape[1])
        step = InFlightStep(layer, phase, tag, devices, transport, dim)
        step.scatter_out = out if phase == "fwd" else None
        return step

    def finalize_step(
        self, step: InFlightStep, out: list[np.ndarray] | None = None
    ) -> list[np.ndarray] | None:
        step.mark_done()
        plans = self._plan_for(step.phase, step.devices)
        if step.phase == "fwd":
            halo_by_dev: list[np.ndarray] = []
            for dev in step.devices:
                part = dev.part
                received = step.transport.collect(dev.rank, step.tag)
                self._check_delivery(dev, step.phase, step.tag, received)
                if received:
                    # The scatter permutation covers every halo slot (each
                    # is fed by exactly one peer and all peers posted), so
                    # the destination needs no zero-fill before assignment.
                    if out is not None:
                        halo = out[dev.rank]
                        if halo.shape != (part.n_halo, step.dim):
                            raise ValueError(
                                f"out[{dev.rank}] has shape {halo.shape}, "
                                f"expected {(part.n_halo, step.dim)}"
                            )
                    else:
                        halo = np.empty((part.n_halo, step.dim), dtype=np.float32)
                    recv_peers, scatter = plans[dev.rank][3:5]
                    halo[scatter] = np.concatenate([received[p] for p in recv_peers])
                else:
                    halo = self._halo_out(out, dev.rank, part.n_halo, step.dim)
                halo_by_dev.append(halo)
            return halo_by_dev
        if out is None:
            raise ValueError("backward finalize_step requires out= buffers")
        for dev in step.devices:
            received = step.transport.collect(dev.rank, step.tag)
            self._check_delivery(dev, step.phase, step.tag, received)
            if not received:
                continue
            recv_peers, _, reduce_op = plans[dev.rank][3:6]
            cat = np.concatenate([received[p] for p in recv_peers])
            out[dev.rank] += np.asarray(reduce_op @ cat)
        return None

    # Per-pair hooks kept for subclasses/tests that drive the generic path.
    def _post(self, transport, layer, phase, src, dst, tag, rows) -> None:
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        transport.post(src, dst, tag, rows, rows.nbytes)

    def _decode(self, payload: object) -> np.ndarray:
        return payload  # type: ignore[return-value]


class QuantizedHaloExchange(HaloExchange):
    """AdaQP's transfers: per-message stochastic quantization + packing.

    Parameters
    ----------
    bit_provider:
        Source of per-message bit-widths (fixed, uniform-random or the
        adaptive assigner).
    rng:
        Source of stochastic-rounding noise: a plain generator (shared
        sequential stream — the legacy order-dependent contract) or a
        rounding policy such as
        :class:`~repro.quant.stochastic.KeyedRounding`, whose noise is a
        pure function of each message's (epoch, phase, layer, src, dst)
        coordinates.
    tracer:
        Optional object with ``observe(phase, layer, src, dst, rows)``;
        the adaptive assigner registers one to see every transfer's input
        statistics (paper Fig. 6, step 1).
    """

    quantizes = True

    def __init__(
        self,
        bit_provider: BitProvider,
        rng,
        tracer: object | None = None,
    ) -> None:
        self.bit_provider = bit_provider
        self.encoder = MixedPrecisionEncoder(rng)
        self.rounding = self.encoder.rounding
        self.tracer = tracer

    def on_epoch_start(self, epoch: int) -> None:
        set_epoch = getattr(self.bit_provider, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(epoch)
        # Keyed rounding takes the epoch as a noise coordinate (stream
        # rounding's state is its stream position; the call is a no-op).
        self.rounding.set_epoch(epoch)

    def state_dict(self) -> dict:
        """Rounding-stream position plus any stateful bit provider.

        The adaptive assigner is checkpointed separately by the trainer
        (it is shared infrastructure, not exchange-owned); only providers
        reachable solely through the exchange land here.
        """
        state: dict = {"rounding": self.rounding.state_dict()}
        provider_state = getattr(self.bit_provider, "state_dict", None)
        if provider_state is not None and not hasattr(
            self.bit_provider, "reassign"
        ):
            state["bit_provider"] = provider_state()
        return state

    def load_state_dict(self, state: dict) -> None:
        self.rounding.load_state_dict(state["rounding"])
        if "bit_provider" in state:
            self.bit_provider.load_state_dict(state["bit_provider"])

    def _post(self, transport, layer, phase, src, dst, tag, rows) -> None:
        rows = np.ascontiguousarray(rows, dtype=np.float32)
        if self.tracer is not None:
            self.tracer.observe(phase, layer, src, dst, rows)
        bits = self.bit_provider.bits_for(layer, phase, src, dst, rows.shape[0])
        payload = self.encoder.encode(rows, bits, block=(phase, layer, src, dst))
        transport.post(src, dst, tag, payload, payload.wire_bytes)

    def _decode(self, payload: object) -> np.ndarray:
        return payload.decode()  # type: ignore[union-attr]


class FusedQuantizedHaloExchange(QuantizedHaloExchange):
    """The fused exchange engine: batched kernels over whole cluster steps.

    Numerically *identical* to :class:`QuantizedHaloExchange` under the
    same seed — same wire bytes, same dequantized tensors, same accuracy
    curves (the equivalence suite asserts this) — but executed as a few
    large NumPy kernels per (layer, phase) step instead of thousands of
    per-pair, per-group dispatches:

    * the boundary rows of **every** (src, dst) pair of the step are
      gathered into one step-wide buffer (one ``take`` per source device);
    * stochastic quantization for the whole step runs as one kernel, and
      packing as one batch per distinct bit-width
      (:class:`~repro.quant.fused.FusedStepEncoder`);
    * each device's payloads enter the transport through one batched post;
    * all receivers' payloads are decoded together, batched per bit-width
      (:func:`~repro.quant.fused.decode_cluster_step`).

    Boundary index structures, permutation plans and scratch buffers are
    cached across epochs and only rebuilt when the bit-width assignment of
    a step changes (i.e. at reassignment boundaries).
    """

    def __init__(
        self,
        bit_provider: BitProvider,
        rng,
        tracer: object | None = None,
    ) -> None:
        super().__init__(bit_provider, rng, tracer)
        # Shares the rounding policy with the (now unused) per-pair
        # encoder: under stream rounding the stream position matches the
        # legacy path draw for draw; under keyed rounding both produce the
        # same coordinate-determined noise by construction.
        self.fused_encoder = FusedStepEncoder(self.rounding)
        self._decode_ws = DecodeWorkspace()
        # Worker-side decode scratch, an A/B workspace pair per receiving
        # rank, keyed ``(rank, parity)``: per-receiver decode jobs run
        # concurrently on the pool, so ranks must never share buffers —
        # and with cross-step lookahead two *steps* can be alive at once,
        # so consecutive steps alternate parity (``_ws_parity``) to keep a
        # pending step's decode from recycling buffers whose views the
        # previous step's finalize has not yet consumed.
        self._decode_ws_by_rank: dict[tuple[int, int], DecodeWorkspace] = {}
        self._ws_parity = 0
        self._topologies: dict[str, tuple] = {}
        self._halo_bufs: dict[tuple[int, int], np.ndarray] = {}
        #: envelopes regenerated bitwise from plan scratch after a drop
        self.replayed_messages = 0
        #: shm payload spans re-encoded in-parent after checksum mismatch
        self.slab_repairs = 0
        # In-parent segment/plan caches for slab repairs (the repair runs
        # the same ShardEncodeJob code path the workers do).
        self._repair_segments: dict = {}
        self._repair_cache: dict = {}

    # -- fused fast paths ---------------------------------------------------
    def post_step(
        self,
        layer: int,
        phase: str,
        devices: list,
        transport: TransportBackend,
        values_by_dev: list[np.ndarray],
        out: list[np.ndarray] | None = None,
    ) -> InFlightStep:
        check_in_set(phase, ("fwd", "bwd"), name="phase")
        tag = step_tag(phase, layer)
        dim = int(values_by_dev[devices[0].rank].shape[1])
        step = InFlightStep(layer, phase, tag, devices, transport, dim)
        # Alternate the decode-workspace parity per posted step; with two
        # steps in flight the lookahead one lands on the other half of the
        # A/B pair (see _defer_decodes).
        self._ws_parity ^= 1
        step.ws_parity = self._ws_parity
        if out is not None and phase == "fwd":
            # Validate destination shapes on the calling thread, so the
            # worker-side scatter can assume them.
            for dev in devices:
                buf = out[dev.rank]
                expected = (dev.part.n_halo, dim)
                if buf.shape != expected:
                    raise ValueError(
                        f"out[{dev.rank}] has shape {buf.shape}, "
                        f"expected {expected}"
                    )
            step.scatter_out = out
        self._encode_and_post(
            transport, layer, phase, devices, tag, values_by_dev, step=step
        )
        return step

    def finalize_step(
        self, step: InFlightStep, out: list[np.ndarray] | None = None
    ) -> list[np.ndarray] | None:
        step.mark_done()
        if step.scattered and out is not None and out is step.scatter_out:
            # Worker-side scatter already landed every receiver's rows in
            # the buffers named at post time (mark_done joined the jobs);
            # finalize is join-only — plus the delivery audit, which
            # re-scatters a receiver wholesale when a dropped envelope was
            # replayed (halo assignments are idempotent).
            for dev in step.devices:
                decoded = step.decoded[dev.rank]
                if len(decoded) == len(dev.part.recv_map):
                    continue
                repaired = self._ensure_complete(step, dev, decoded)
                halo = out[dev.rank]
                for p, mat in repaired.items():
                    halo[dev.part.recv_map[p]] = mat
            return [out[dev.rank] for dev in step.devices]
        if step.decoded is not None:
            # Async transport: worker jobs already collected and decoded
            # every receiver's mailbox (mark_done joined them); only the
            # scatter/accumulate below — the order-sensitive half — runs
            # on this thread.
            decoded = step.decoded
        else:
            collects = {
                dev.rank: step.transport.collect(dev.rank, step.tag)
                for dev in step.devices
            }
            decoded = decode_cluster_step(collects, workspace=self._decode_ws)
        for dev in step.devices:
            decoded[dev.rank] = self._ensure_complete(
                step, dev, decoded[dev.rank]
            )
        if step.phase == "fwd":
            halo_by_dev: list[np.ndarray] = []
            for dev in step.devices:
                part = dev.part
                if out is not None:
                    halo = self._halo_out(out, dev.rank, part.n_halo, step.dim)
                else:
                    halo = self._halo_buffer(
                        dev.rank, step.layer, part.n_halo, step.dim
                    )
                for p, mat in decoded[dev.rank].items():
                    halo[part.recv_map[p]] = mat
                halo_by_dev.append(halo)
            return halo_by_dev
        if out is None:
            raise ValueError("backward finalize_step requires out= buffers")
        for dev in step.devices:
            part = dev.part
            # Mailbox iteration order is the transport's collection order
            # (src ascending), so float accumulation order matches the
            # legacy per-peer loop exactly.
            for p, mat in decoded[dev.rank].items():
                out[dev.rank][part.send_map[p]] += mat
        return None

    # -- fault detection and keyed-replay recovery --------------------------
    def _ensure_complete(
        self, step: InFlightStep, dev, decoded: dict[int, np.ndarray]
    ) -> dict[int, np.ndarray]:
        """Audit one receiver's decoded set; keyed-replay any missing peer.

        Every peer in the step plan posts exactly one envelope, so a
        shortfall means an envelope was dropped in transit.  When the
        step is replayable (keyed rounding, plan scratch staged on this
        side of any process boundary) the missing pair's payload is
        regenerated *bitwise* — noise is a pure function of coordinates,
        and payload bytes are independent of the shard decomposition —
        and the dict is re-sorted src-ascending so the backward float
        accumulation order is unchanged.  Otherwise a typed
        :class:`TransportError` escalates to the trainer's
        checkpoint-restore path.
        """
        part = dev.part
        expected = part.recv_map if step.phase == "fwd" else part.send_map
        if len(decoded) == len(expected):
            return decoded
        missing = sorted(set(expected) - set(decoded))
        plan = step.plan
        if not (step.replayable and plan is not None):
            raise TransportError(
                f"device {dev.rank} is missing envelope(s) from source(s)"
                f" {missing} under tag {step.tag!r} and the step is not"
                " keyed-replayable"
            )
        pair_index = {pair: i for i, pair in enumerate(plan.pairs)}
        stats = getattr(step.transport, "fault_stats", None)
        for p in missing:
            i = pair_index.get((p, dev.rank))
            if i is None:
                raise TransportError(
                    f"pair ({p}, {dev.rank}) of tag {step.tag!r} is not in"
                    " the step plan; cannot replay the dropped envelope"
                )
            shard = pair_shard(plan, i)
            payloads = self.fused_encoder.quantize_pack_shard(
                plan, shard, coords=(step.phase, step.layer)
            )
            decoded[p] = payloads[(p, dev.rank)].decode()
            self.replayed_messages += 1
            if stats is not None:
                stats["replays"] += 1
        return {src: decoded[src] for src in sorted(decoded)}

    # -- internals ----------------------------------------------------------
    def _encode_and_post(
        self,
        transport: TransportBackend,
        layer: int,
        phase: str,
        devices: list,
        tag: str,
        values_by_rank: list[np.ndarray],
        step: InFlightStep | None = None,
    ) -> None:
        pairs, pair_counts, device_blocks, cat_idx = self._topology_for(
            phase, devices
        )
        if not pairs:
            return
        dim = int(values_by_rank[devices[0].rank].shape[1])

        bits_cat = np.concatenate(
            [
                self.bit_provider.bits_for(layer, phase, src, dst, int(n))
                for (src, dst), n in zip(pairs, pair_counts)
            ]
        )
        plan = self.fused_encoder.plan_for(
            (phase, layer), pairs, pair_counts, device_blocks, cat_idx, bits_cat, dim
        )
        if step is not None:
            step.plan = plan
        observe = None
        if self.tracer is not None:
            tracer = self.tracer

            def observe(src: int, dst: int, rows: np.ndarray) -> None:
                tracer.observe(phase, layer, src, dst, rows)

        if (
            step is not None
            and getattr(transport, "kind", None) == "process"
            and self.rounding.mode == "keyed"
        ):
            # Process transport + keyed rounding: descriptor jobs over
            # shared memory (closures cannot cross the process boundary).
            # Stream rounding on a process transport falls through to the
            # deferred-closure path below, which ProcessTransport runs
            # inline — the bitwise sync behaviour.
            self._post_step_process(
                transport, plan, layer, phase, tag, step, values_by_rank, observe
            )
            return

        # Snapshot half (calling thread): gather the step's source rows
        # into plan scratch and feed the tracer (bit lookups above run
        # here too — providers and tracers never see worker threads).
        encoder = self.fused_encoder
        encoder.gather_step(plan, values_by_rank, observe)
        if step is not None and self.rounding.mode == "keyed":
            # The step's source rows now sit in plan scratch on this side
            # of any process boundary, and keyed noise is a pure function
            # of coordinates: a dropped envelope can be regenerated
            # bitwise via pair_shard + quantize_pack_shard.  (Stream
            # rounding cannot replay — a re-encode would advance the
            # shared stream; the process path never needs to — its data
            # plane is the shm slab, not the mailbox.)
            step.replayable = True

        # Quantize/pack/post half: one deferred job per encode shard.
        # Keyed rounding gives every pair coordinate-determined noise, so
        # the step splits into transport.workers contiguous shards that
        # may run concurrently and retire in any order; stream rounding
        # yields exactly one shard (shards_for pins it), preserving the
        # sequential-stream contract.  On async transports the last shard
        # to finish defers one collect+decode job per receiver under the
        # same tag — decode overlaps the central window too, and finalize
        # is left with only the order-sensitive scatter/accumulate.
        shards = encoder.shards_for(plan, max(transport.workers, 1))
        eager_decode = transport.is_async and step is not None
        if eager_decode:
            step.decoded = {}
        remaining = [len(shards)]
        remaining_lock = threading.Lock()

        def make_job(shard):
            def job() -> None:
                payloads = encoder.quantize_pack_shard(
                    plan, shard, coords=(phase, layer)
                )
                posts_by_rank: dict[int, list[tuple[int, object, int]]] = {}
                for (src, dst), payload in payloads.items():
                    posts_by_rank.setdefault(src, []).append(
                        (dst, payload, payload.wire_bytes)
                    )
                for rank, posts in posts_by_rank.items():
                    transport.post_batch(rank, tag, posts)
                if eager_decode:
                    with remaining_lock:
                        remaining[0] -= 1
                        last = remaining[0] == 0
                    if last:
                        self._defer_decodes(transport, step)

            return job

        transport.defer_many(tag, [make_job(shard) for shard in shards])

    def _defer_decodes(self, transport: TransportBackend, step: InFlightStep) -> None:
        """Queue one collect+decode job per receiver (worker side).

        Called by the step's last encode shard, so every envelope is
        already posted; the jobs use the *base* ``TransportAccounting.collect``
        (which sorts by source) — the subclass safety-net would try to
        join the very job set they run in.  Each receiver gets its own
        :class:`DecodeWorkspace` from the ``(rank, parity)`` A/B pair; the
        views stashed in ``step.decoded`` stay valid until that receiver's
        next *same-parity* decode, two whole steps away, so they survive
        even when a lookahead step's decode runs before this step's
        finalize has consumed them.

        When the step carries ``scatter_out`` (forward halo destinations
        named at post time), each decode job also scatters its receiver's
        rows straight into that buffer — receivers own disjoint buffers,
        so the writes are race-free — and flags the step ``scattered`` so
        finalize is join-only.  The zero-fill-then-assign matches
        ``_halo_out``'s semantics exactly.
        """
        scatter = step.phase == "fwd" and step.scatter_out is not None
        if scatter:
            step.scattered = True
        for dev in step.devices:

            def decode_job(rank: int = dev.rank, part=dev.part) -> None:
                mailbox = TransportAccounting.collect(transport, rank, step.tag)
                key = (rank, step.ws_parity)
                workspace = self._decode_ws_by_rank.get(key)
                if workspace is None:
                    workspace = self._decode_ws_by_rank[key] = DecodeWorkspace()
                decoded = decode_step(mailbox, workspace=workspace)
                step.decoded[rank] = decoded
                if scatter:
                    halo = step.scatter_out[rank]
                    halo.fill(0.0)
                    for p, mat in decoded.items():
                        halo[part.recv_map[p]] = mat

            transport.defer(step.tag, decode_job)

    def _post_step_process(
        self,
        transport,
        plan,
        layer: int,
        phase: str,
        tag: str,
        step: InFlightStep,
        values_by_rank,
        observe,
    ) -> None:
        """Post one step through a :class:`~repro.comm.process.
        ProcessTransport`: shard descriptors out, shared memory back.

        The slab layout is a pure function of the plan's group structure,
        so it is computed here once and shipped to the workers as plain
        offsets: input rows (cat order), then per (pair, group) the packed
        stream + per-row zero/scale metadata, then per receiver the
        decoded float32 output region.  Workers reproduce their shard's
        bytes from the descriptor alone (keyed noise); the main thread's
        ``on_done`` callbacks post shm-view payloads into the mailboxes
        (wire accounting identical to the sync path — same streams, same
        group structure) and, after the decode wave, stash ``step.decoded``
        views exactly where the thread path does.
        """
        from repro.comm.process import ShardEncodeJob, StepDecodeJob

        dim = plan.dim
        n_total = plan.n_total
        bounds = plan.cat_bounds

        def align(offset: int) -> int:
            return (offset + 7) & ~7

        # ---- slab layout (group structure only; no payload data) --------
        cursor = align(n_total * dim * 4)
        pair_layouts: list[tuple] = []  # aligned with plan.pairs
        for pair in plan.pairs:
            groups = []
            for g in plan.pair_groups[pair]:
                n_g = g.stop - g.start
                stream_nbytes = (n_g * dim * g.bits + 7) // 8
                stream_off = cursor
                z_off = align(stream_off + stream_nbytes)
                s_off = z_off + n_g * 4
                cursor = align(s_off + n_g * 4)
                groups.append((g.bits, n_g, stream_off, stream_nbytes, z_off, s_off))
            pair_layouts.append(tuple(groups))
        # Decoded-output regions, grouped by receiver.  The topology walks
        # devices (and each device's peers) in ascending order, so a fixed
        # receiver's entries appear src-ascending — the same order
        # ``collect`` anchors the sync path to.
        out_layout: dict[int, list[tuple[int, int, int, int]]] = {}
        for i, (src, dst) in enumerate(plan.pairs):
            n_rows = int(plan.pair_counts[i])
            out_off = cursor
            cursor = align(out_off + n_rows * dim * 4)
            out_layout.setdefault(dst, []).append((i, src, n_rows, out_off))

        segment, base, view = transport.step_buffer(tag, cursor)

        # ---- snapshot half (calling thread, directly into shm) ----------
        in2d = view[: n_total * dim * 4].view(np.float32).reshape(n_total, dim)
        for rank, start, stop in plan.device_blocks:
            vals = values_by_rank[rank]
            if vals.dtype != np.float32:
                vals = np.asarray(vals, dtype=np.float32)
            np.take(vals, plan.cat_idx[start:stop], axis=0, out=in2d[start:stop])
        if observe is not None:
            for i, pair in enumerate(plan.pairs):
                observe(pair[0], pair[1], in2d[bounds[i] : bounds[i + 1]])

        step.decoded = {dev.rank: {} for dev in step.devices}

        def payload_for(i: int) -> MixedPrecisionPayload:
            group_bits, group_rows, streams, zero_points, scales = [], [], [], [], []
            for g, (_, n_g, so, sn, zo, sco) in zip(
                plan.pair_groups[plan.pairs[i]], pair_layouts[i]
            ):
                group_bits.append(g.bits)
                group_rows.append(g.rows)
                streams.append(view[so : so + sn])
                zero_points.append(view[zo : zo + n_g * 4].view(np.float32))
                scales.append(view[sco : sco + n_g * 4].view(np.float32))
            return MixedPrecisionPayload(
                num_rows=int(plan.pair_counts[i]),
                dim=dim,
                group_bits=group_bits,
                group_rows=group_rows,
                streams=streams,
                zero_points=zero_points,
                scales=scales,
            )

        def make_posted(pair_lo: int, pair_hi: int):
            def on_posted() -> None:
                posts_by_rank: dict[int, list[tuple[int, object, int]]] = {}
                for i in range(pair_lo, pair_hi):
                    src, dst = plan.pairs[i]
                    payload = payload_for(i)
                    posts_by_rank.setdefault(src, []).append(
                        (dst, payload, payload.wire_bytes)
                    )
                for rank, posts in posts_by_rank.items():
                    transport.post_batch(rank, tag, posts)

            return on_posted

        # ---- encode wave: one descriptor job per shard ------------------
        # Slab verification: workers return per-pair stream checksums and
        # a main-side wave check re-reads the slab between the encode wave
        # and the decode followups — the window where corruption (or a
        # scripted poison fault) would otherwise flow silently into every
        # receiver.  On by default in fault runs; opt-in elsewhere.
        verify = transport.fault_plan is not None or bool(
            getattr(transport, "verify_slabs", False)
        )
        for shard in self.fused_encoder.shards_for(plan, max(transport.workers, 1)):
            descriptor = shard_descriptor(
                plan, shard, rounding=self.rounding, phase=phase, layer=layer
            )
            job = ShardEncodeJob(
                descriptor=descriptor,
                segment=segment,
                rows_offset=base + shard.start * dim * 4,
                n_rows=shard.stop - shard.start,
                pair_layouts=tuple(
                    tuple(
                        (b, n_g, base + so, sn, base + zo, base + sco)
                        for (b, n_g, so, sn, zo, sco) in pair_layouts[i]
                    )
                    for i in range(shard.pair_lo, shard.pair_hi)
                ),
                checksum=verify,
            )
            transport.submit(
                tag, job, on_done=make_posted(shard.pair_lo, shard.pair_hi)
            )

        if verify:

            def slab_check(crcs: dict) -> None:
                fplan = transport.fault_plan
                spec = (
                    fplan.take("poison", tag) if fplan is not None else None
                )
                if spec is not None:
                    # Scripted slab corruption: scribble a stream span of
                    # the (src, dst)-matching pair after the encode wave
                    # landed, before any decode reads it.
                    idx = 0
                    for i, (s, d) in enumerate(plan.pairs):
                        if (spec.src is None or spec.src == s) and (
                            spec.dst is None or spec.dst == d
                        ):
                            idx = i
                            break
                    _, _, so, sn, _, _ = pair_layouts[idx][0]
                    view[so : so + max(1, min(sn, 64))] ^= 0xFF
                    transport.fault_stats["slabs_poisoned"] += 1
                self._verify_slab(
                    transport, plan, pair_layouts, view, base, segment,
                    phase, layer, tag, crcs,
                )

            transport.submit_wave_check(tag, slab_check)

        # ---- decode wave: one job per receiver, after encode drains -----
        def make_decoded(rank: int, entries: list) -> object:
            def on_decoded() -> None:
                # Drain the mailbox (closing the books on the posted
                # bytes); values are discarded — decode already ran in the
                # worker against the same shm streams.
                TransportAccounting.collect(transport, rank, tag)
                decoded: dict[int, np.ndarray] = {}
                for _, src, n_rows, out_off in entries:
                    decoded[src] = (
                        view[out_off : out_off + n_rows * dim * 4]
                        .view(np.float32)
                        .reshape(n_rows, dim)
                    )
                step.decoded[rank] = decoded

            return on_decoded

        for dev in step.devices:
            entries = out_layout.get(dev.rank)
            if not entries:
                continue
            sources = []
            for i, src, n_rows, out_off in entries:
                pair_groups = plan.pair_groups[plan.pairs[i]]
                groups = tuple(
                    (
                        b,
                        n_g,
                        base + so,
                        sn,
                        base + zo,
                        base + sco,
                        None if len(pair_groups) == 1 else g.rows.tobytes(),
                    )
                    for g, (b, n_g, so, sn, zo, sco) in zip(
                        pair_groups, pair_layouts[i]
                    )
                )
                sources.append((src, n_rows, base + out_off, groups))
            decode_job = StepDecodeJob(
                segment=segment,
                tag=tag,
                rank=dev.rank,
                dim=dim,
                sources=tuple(sources),
            )
            transport.submit_followup(
                tag, decode_job, on_done=make_decoded(dev.rank, entries)
            )

    def _verify_slab(
        self,
        transport,
        plan,
        pair_layouts,
        view,
        base,
        segment,
        phase,
        layer,
        tag,
        crcs: dict,
    ) -> None:
        """CRC-verify every pair's stream bytes against the encode wave's
        worker-computed checksums; re-encode mismatching pairs in-parent.

        The repair runs the *same* :class:`ShardEncodeJob` code path the
        worker did — a single-pair shard over the (uncorrupted) input
        rows, keyed noise — so repaired bytes are bitwise the originals.
        A pair that still mismatches after re-encoding means the
        corruption reaches beyond the payload spans (or the reference
        checksum itself is untrustworthy): fail fast.
        """
        from repro.comm.process import ShardEncodeJob

        for i, pair in enumerate(plan.pairs):
            expect = crcs.get(pair)
            if expect is None:
                continue
            if self._pair_crc(view, pair_layouts[i]) == expect:
                continue
            shard = pair_shard(plan, i)
            job = ShardEncodeJob(
                descriptor=shard_descriptor(
                    plan, shard, rounding=self.rounding, phase=phase, layer=layer
                ),
                segment=segment,
                rows_offset=base + shard.start * plan.dim * 4,
                n_rows=shard.stop - shard.start,
                pair_layouts=(
                    tuple(
                        (b, n_g, base + so, sn, base + zo, base + sco)
                        for (b, n_g, so, sn, zo, sco) in pair_layouts[i]
                    ),
                ),
                checksum=True,
            )
            repaired = job.run(self._repair_segments, self._repair_cache)
            if repaired[pair] != expect or self._pair_crc(
                view, pair_layouts[i]
            ) != expect:
                raise TransportError(
                    f"slab corruption on tag {tag!r} pair {pair} could not"
                    " be repaired (re-encoded checksum still mismatches)"
                )
            self.slab_repairs += 1
            transport.fault_stats["slab_repairs"] += 1

    @staticmethod
    def _pair_crc(view: np.ndarray, groups: tuple) -> int:
        """CRC32 over one pair's stream spans, in group order (the same
        accumulation :class:`ShardEncodeJob` computes worker-side)."""
        crc = 0
        for _, _, so, sn, _, _ in groups:
            crc = zlib.crc32(view[so : so + sn], crc)
        return crc

    def _topology_for(self, phase: str, devices: list) -> tuple:
        """Static step topology: pair order, row counts, gather indices."""
        cached = self._topologies.get(phase)
        if cached is None:
            pairs: list[tuple[int, int]] = []
            pair_counts: list[int] = []
            device_blocks: list[tuple[int, int, int]] = []
            chunks: list[np.ndarray] = []
            pos = 0
            for dev in devices:
                part = dev.part
                maps = part.send_map if phase == "fwd" else part.recv_map
                start = pos
                for q in sorted(maps.keys()):
                    rows = np.asarray(maps[q], dtype=np.int64)
                    pairs.append((dev.rank, q))
                    pair_counts.append(rows.size)
                    chunks.append(rows)
                    pos += rows.size
                device_blocks.append((dev.rank, start, pos))
            cat_idx = (
                np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
            )
            cached = (
                pairs,
                np.asarray(pair_counts, dtype=np.int64),
                device_blocks,
                cat_idx,
            )
            self._topologies[phase] = cached
        return cached

    def _halo_buffer(self, rank: int, layer: int, n_halo: int, dim: int) -> np.ndarray:
        buf = self._halo_bufs.get((rank, layer))
        if buf is None or buf.shape != (n_halo, dim):
            buf = np.zeros((n_halo, dim), dtype=np.float32)
            self._halo_bufs[(rank, layer)] = buf
        else:
            buf.fill(0.0)
        return buf
