"""The lock-step distributed training executor.

``Cluster`` owns the simulated devices and drives one *real* training epoch
at a time: per GNN layer, it exchanges halo messages through the transport
(under whatever exchange policy the caller supplies — exact, quantized,
stale), runs the layer's forward/backward, and finally allreduces model
gradients exactly.

Layer compute runs, by default, on the cluster-fused engine
(:class:`~repro.cluster.compute.FusedClusterCompute`): one block-diagonal
spmv and one stacked GEMM per layer step for all devices together, with
halo rows exchanged straight into the stacked buffers.
``fused_compute=False`` selects the legacy per-device loop — both paths
are bit-identical under the same seed (the equivalence suite asserts it),
so the flag is purely an execution-shape escape hatch.

It simultaneously fills an :class:`EpochRecord` with the measured wire
bytes and the analytic FLOP counts of every (layer, direction) step; the
schedule simulators later turn those into epoch times under each system's
overlap policy.

Numerical contract (tested): with an exact exchange and dropout disabled, a
K-device cluster produces *identical* losses and model gradients to a
1-device cluster — distribution is purely a systems concern.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.compute import FusedClusterCompute
from repro.cluster.exchange import ExactHaloExchange, HaloExchange
from repro.cluster.records import EpochRecord, PhaseRecord
from repro.cluster.runtime import DeviceRuntime
from repro.comm.allreduce import allreduce_sum
from repro.comm.transport import SyncTransport, TransportBackend
from repro.comm.transports import TransportSpec, create_transport, resolve_spec
from repro.gnn.coefficients import build_aggregation
from repro.gnn.model import MODEL_KINDS, DistGNN
from repro.graph.datasets import GraphDataset
from repro.graph.io import StoreDataset
from repro.graph.partition.book import PartitionBook, build_local_partitions
from repro.nn.losses import bce_with_logits_loss, softmax_cross_entropy
from repro.nn.metrics import metric_counts, metric_from_counts, task_metric
from repro.utils.seed import RngPool
from repro.utils.validation import check_in_set

__all__ = ["Cluster"]


class Cluster:
    """All simulated devices for one training job.

    Parameters
    ----------
    dataset:
        The full-graph dataset (features, labels, splits).
    book:
        Partition assignment (one partition per simulated device).
    model_kind:
        ``"gcn"`` or ``"sage"``.
    hidden_dim / num_layers / dropout:
        Model shape (paper defaults: 256 / 3 / 0.5 — scaled down in the
        benchmark configs).
    seed:
        Root seed for weights (shared across replicas), dropout (per
        device) and stochastic rounding (per device).
    fused_compute:
        Execute layer compute on the cluster-fused engine (default) or the
        legacy per-device loop.  Both are bit-identical under the same
        seed; the flag exists for the equivalence suite and benchmarks.
    overlap:
        Execute training steps as the split-phase central/marginal
        pipeline (paper Fig. 7): post marginal messages, run the central
        sub-step while they are in flight, finalize, run the marginal
        sub-step — and emit measured per-stage
        :class:`~repro.cluster.records.StepTimeline` entries into each
        epoch record.  Requires the fused engine (silently off with
        ``fused_compute=False``); bit-identical to the non-overlapped
        engines under the same seed.  The trainer turns it on for the
        adaqp-variant systems.
    transport:
        Transport backend selection — a spec string (``"auto"``,
        ``"sync"``, ``"worker:4"``, ``"process:2"``) or a parsed
        :class:`~repro.comm.transports.TransportSpec`.  ``"auto"`` (the
        default) resolves to the worker backend when the split-phase
        pipeline executes and the host has a spare core, sync otherwise;
        the async backends degrade to sync for non-overlapped runs
        (there is no central window to hide work under).  Resolution
        happens here, once: ``cluster.transport_spec`` is the concrete
        spec, and a process pool spawns at construction (before epoch
        state exists to drag through a fork) and drains + unlinks its
        shared memory at :meth:`close`.  ``cluster.async_transport`` /
        ``cluster.transport_workers`` remain as read-only mirrors derived
        from the resolved spec.
    pipeline_depth:
        How many (layer, phase) exchange steps the split-phase executor
        keeps in flight (1 or 2; default 2).  Depth 2 adds cross-step
        lookahead: forward layers post layer L+1's boundary rows from
        inside layer L's marginal sub-step (the moment its owned outputs
        land), and backward layers defer their parameter-partial GEMMs to
        run inside the next step's in-flight window.  Bitwise-identical
        to depth 1 — posts stay strictly ordered (each lookahead fires
        after the previous finalize) and deferred partials touch only
        per-layer accumulators.  Degrades to 1 when ``overlap`` is off.
    timeline_keep:
        Cap on the per-step :class:`~repro.cluster.records.StepTimeline`
        entries retained in each epoch record (``None`` keeps all — one
        per layer per direction); dropped steps stay counted in
        ``record.timeline_summary``, so long-running jobs keep bounded
        records without losing the measured overlap accounting.
    transport_timeout_s:
        Per-tag completion deadline applied to async transports: a tag
        whose jobs have not finished within this many seconds raises a
        :class:`~repro.comm.transport.TransportError` naming the tag and
        its outstanding shards instead of hanging.  ``None`` (default)
        waits forever, matching the pre-deadline behaviour.
    fault_plan:
        A :class:`~repro.comm.faults.FaultPlan` of injected transport
        faults (drops, duplicates, stalls, worker kills, slab poison) for
        the fault-tolerance tests; ``None`` disables injection entirely.
    """

    def __init__(
        self,
        dataset: GraphDataset,
        book: PartitionBook,
        *,
        model_kind: str = "gcn",
        hidden_dim: int = 64,
        num_layers: int = 3,
        dropout: float = 0.5,
        seed: int = 0,
        fused_compute: bool = True,
        overlap: bool = False,
        transport: str | TransportSpec | None = None,
        pipeline_depth: int = 2,
        timeline_keep: int | None = None,
        transport_timeout_s: float | None = None,
        fault_plan=None,
    ) -> None:
        check_in_set(model_kind, MODEL_KINDS, name="model_kind")
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.dataset = dataset
        self.book = book
        self.model_kind = model_kind
        self.num_devices = book.num_parts
        self.seed = int(seed)
        self.pool = RngPool(seed).fork("cluster")
        # Store-backed (huge-graph) datasets carry no global arrays — the
        # partitions, operators and attribute slices come pre-built from
        # the on-disk PartitionStore as (typically memmapped) regions.
        store_ds = dataset if isinstance(dataset, StoreDataset) else None
        self._store_dataset = store_ds
        if store_ds is not None:
            self.global_train_count = int(store_ds.global_train_count)
        else:
            self.global_train_count = int(dataset.train_mask.sum())
        # Everything repartition() needs to rebuild this cluster around a
        # new PartitionBook (the dataset and book are passed fresh).
        self._ctor = dict(
            model_kind=model_kind,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            dropout=dropout,
            seed=seed,
            fused_compute=fused_compute,
            overlap=overlap,
            transport=transport,
            pipeline_depth=pipeline_depth,
            timeline_keep=timeline_keep,
            transport_timeout_s=transport_timeout_s,
            fault_plan=fault_plan,
        )

        dims = [dataset.num_features] + [hidden_dim] * (num_layers - 1) + [
            dataset.num_classes
        ]
        self.dims = dims

        agg_kind = "gcn" if model_kind == "gcn" else "sage"
        if store_ds is not None:
            store = store_ds.store
            if book.num_parts != store.num_parts:
                raise ValueError(
                    f"partition book has {book.num_parts} parts but the store"
                    f" was built for {store.num_parts}"
                )
            if store.agg_kind != agg_kind:
                raise ValueError(
                    f"store was prepared with agg_kind={store.agg_kind!r};"
                    f" model_kind={model_kind!r} needs {agg_kind!r}"
                )
            store_parts = [
                store.partition(p, materialize=store_ds.materialize)
                for p in range(store.num_parts)
            ]
            device_data = [
                (sp.part, sp.agg, sp.features, sp.labels,
                 sp.train_mask, sp.val_mask, sp.test_mask)
                for sp in store_parts
            ]
            self._stream_ops = [sp.ops for sp in store_parts]
        else:
            degrees = dataset.graph.degrees.astype(np.float64)
            parts = build_local_partitions(dataset.graph, book)
            device_data = []
            for part in parts:
                owned = part.owned_global
                device_data.append(
                    (
                        part,
                        build_aggregation(part, degrees, agg_kind),
                        dataset.features[owned],
                        dataset.labels[owned],
                        dataset.train_mask[owned],
                        dataset.val_mask[owned],
                        dataset.test_mask[owned],
                    )
                )
            self._stream_ops = None

        self.devices: list[DeviceRuntime] = []
        weight_seed_pool = self.pool.fork("weights")
        for part, agg, features, labels, train_m, val_m, test_m in device_data:
            # Every replica consumes the *same* weight stream so replicas
            # start bit-identical without any broadcast.
            weight_rng = weight_seed_pool.fork("shared").get("init")
            model = DistGNN(
                model_kind,
                dims,
                agg,
                dropout=dropout,
                weight_rng=weight_rng,
                dropout_rng=self.pool.device(part.part_id, "dropout"),
            )
            self.devices.append(
                DeviceRuntime(
                    rank=part.part_id,
                    part=part,
                    agg=agg,
                    model=model,
                    features=features,
                    labels=labels,
                    train_mask=train_m,
                    val_mask=val_m,
                    test_mask=test_m,
                )
            )

        # Static per-device message-row counts (drive quant-time modelling).
        self._rows_out = np.array(
            [sum(len(v) for v in d.part.send_map.values()) for d in self.devices],
            dtype=np.int64,
        )
        self._rows_in = np.array([d.part.n_halo for d in self.devices], dtype=np.int64)

        # Evaluation's exact exchange is stateless, so one instance serves
        # every evaluate() call; its Transport stays per-call (a cached one
        # would accumulate byte accounting and, after an interrupted eval,
        # poison later calls with stale undelivered envelopes).
        self._eval_exchange = ExactHaloExchange()

        # The fused engine's step plan (operators, stacked buffers, views)
        # is static across epochs, so it is built once and lazily; the
        # per-phase FLOP-accounting arrays are likewise cached.  Store
        # datasets always run the fused engine in streaming shape — the
        # legacy per-device loop has no paging discipline.
        self.fused_compute = bool(fused_compute) or store_ds is not None
        # The split-phase pipeline is an execution shape of the fused
        # engine; without it there is nothing to split, so the knob
        # degrades to off rather than erroring (the legacy loop remains a
        # pure escape hatch).  Streaming mode likewise degrades it: the
        # pipeline's row-split operators presuppose the materialized
        # block-diagonal matrix.
        self.overlap = bool(overlap) and self.fused_compute and store_ds is None
        if pipeline_depth not in (1, 2):
            raise ValueError("pipeline_depth must be 1 or 2")
        # Cross-step lookahead is an execution shape of the split-phase
        # pipeline; without overlap there is no step to look ahead from.
        self.pipeline_depth = int(pipeline_depth) if self.overlap else 1
        if transport is None:
            transport = TransportSpec("auto")
        spec = resolve_spec(transport, overlap=self.overlap)
        self.transport_spec = spec
        self.async_transport = spec.backend != "sync"
        self.transport_workers = spec.workers or 0
        self.transport: TransportBackend = create_transport(spec, self.num_devices)
        if transport_timeout_s is not None:
            self.transport.timeout_s = float(transport_timeout_s)
        if fault_plan is not None:
            self.transport.fault_plan = fault_plan
        # Process pools spawn here, at cluster open, before any epoch
        # state exists to drag through a fork.
        start = getattr(self.transport, "start", None)
        if start is not None:
            start()
        self.timeline_keep = timeline_keep
        self._engine: FusedClusterCompute | None = None
        self._phase_static: dict[tuple[int, str, bool], tuple[np.ndarray, ...]] = {}

    def _compute_engine(self) -> FusedClusterCompute:
        if self._engine is None:
            self._engine = FusedClusterCompute(
                self.devices, self.dims, self.model_kind, stream=self._stream_ops
            )
        return self._engine

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train_epoch(self, exchange: HaloExchange, epoch: int) -> EpochRecord:
        """Run one full forward/backward pass and gradient allreduce.

        Does *not* step optimizers — the trainer owns those (it may need to
        interleave assigner work between gradient computation and update).
        """
        devices = self.devices
        exchange.on_epoch_start(epoch)
        plan = getattr(self.transport, "fault_plan", None)
        if plan is not None:
            # Epoch-scoped fault specs (``kind:tag@epoch``) arm here.
            plan.set_epoch(epoch)
        for dev in devices:
            if not dev.model.training:
                dev.model.train()
            if not self.fused_compute:
                # The fused engine never reads replica grads mid-epoch and
                # overwrites them wholesale at reduce time, so the legacy
                # per-parameter zeroing walk is skipped there.
                dev.model.zero_grad()
        self.transport.reset_accounting()

        record = EpochRecord(loss=0.0)
        num_layers = devices[0].model.num_layers

        if self.fused_compute:
            engine = self._compute_engine()
            engine.begin_epoch()
            depth2 = self.overlap and self.pipeline_depth >= 2
            for layer in range(num_layers):
                if self.overlap:
                    # Depth 2: every layer but the last posts its successor's
                    # boundary rows from inside its marginal sub-step, so the
                    # next step's encode overlaps this step's epilogue.
                    record.add_timeline(
                        engine.forward_layer_overlap(
                            layer,
                            exchange,
                            self.transport,
                            training=True,
                            lookahead=depth2 and layer + 1 < num_layers,
                        ),
                        keep_last=self.timeline_keep,
                    )
                else:
                    engine.forward_layer(
                        layer, exchange, self.transport, training=True
                    )
                record.phases.append(
                    self._phase_record(layer, "fwd", exchange, f"fwd/L{layer}")
                )
            record.loss = engine.epoch_loss(self._loss)
            for layer in reversed(range(num_layers)):
                if self.overlap:
                    # Depth 2 (backward mirror): defer this layer's
                    # parameter-partial GEMMs into the next step's central
                    # window, after its post dispatch — layer 0 has no next
                    # step, so its partials stay inline.
                    record.add_timeline(
                        engine.backward_layer_overlap(
                            layer,
                            exchange,
                            self.transport,
                            defer_partials=depth2 and layer > 0,
                        ),
                        keep_last=self.timeline_keep,
                    )
                else:
                    engine.backward_layer(layer, exchange, self.transport)
                record.phases.append(
                    self._phase_record(layer, "bwd", exchange, f"bwd/L{layer}")
                )
            record.grad_allreduce_bytes = engine.reduce_gradients()
            return record

        # ---- forward (legacy per-device path) ---------------------------
        h_by_dev = [dev.features for dev in devices]
        for layer in range(num_layers):
            halo = exchange.exchange_embeddings(layer, devices, self.transport, h_by_dev)
            h_by_dev = [
                dev.model.layers[layer].forward(h_by_dev[dev.rank], halo[dev.rank])
                for dev in devices
            ]
            record.phases.append(
                self._phase_record(layer, "fwd", exchange, f"fwd/L{layer}")
            )

        # ---- loss --------------------------------------------------------
        d_h = []
        total_loss = 0.0
        for dev in devices:
            loss, d_logits = self._loss(dev, h_by_dev[dev.rank])
            total_loss += loss
            d_h.append(d_logits)
        record.loss = float(total_loss)

        # ---- backward ------------------------------------------------------
        for layer in reversed(range(num_layers)):
            d_own_list: list[np.ndarray] = []
            d_halo_list: list[np.ndarray] = []
            for dev in devices:
                d_own, d_halo = dev.model.layers[layer].backward(d_h[dev.rank])
                d_own_list.append(d_own)
                d_halo_list.append(d_halo)
            exchange.exchange_gradients(
                layer, devices, self.transport, d_halo_list, d_own_list
            )
            record.phases.append(
                self._phase_record(layer, "bwd", exchange, f"bwd/L{layer}")
            )
            d_h = d_own_list

        # ---- model-gradient allreduce -----------------------------------
        vectors = [dev.model.grad_vector() for dev in devices]
        reduced = allreduce_sum(vectors)
        for dev in devices:
            dev.model.set_grad_vector(reduced)
        record.grad_allreduce_bytes = int(reduced.nbytes)
        return record

    def _loss(
        self,
        dev: DeviceRuntime,
        logits: np.ndarray,
        out: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        loss_fn = (
            bce_with_logits_loss if self.dataset.multilabel else softmax_cross_entropy
        )
        return loss_fn(
            logits,
            dev.labels,
            dev.train_mask,
            normalizer=self.global_train_count,
            out=out,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def full_logits(self) -> np.ndarray:
        """Exact (un-quantized) eval-mode forward; global logits matrix."""
        devices = self.devices
        exchange = self._eval_exchange
        transport = SyncTransport(self.num_devices)
        for dev in devices:
            dev.model.eval()
        logits = np.zeros(
            (self.dataset.num_nodes, self.dims[-1]), dtype=np.float32
        )
        if self.fused_compute:
            engine = self._compute_engine()
            for layer in range(devices[0].model.num_layers):
                engine.forward_layer(layer, exchange, transport, training=False)
            engine.scatter_logits(logits)
        else:
            h_by_dev = [dev.features for dev in devices]
            for layer in range(devices[0].model.num_layers):
                halo = exchange.exchange_embeddings(layer, devices, transport, h_by_dev)
                h_by_dev = [
                    dev.model.layers[layer].forward(h_by_dev[dev.rank], halo[dev.rank])
                    for dev in devices
                ]
            for dev in devices:
                logits[dev.part.owned_global] = h_by_dev[dev.rank]
        for dev in devices:
            dev.model.train()
        return logits

    # ------------------------------------------------------------------
    # Elastic repartition
    # ------------------------------------------------------------------
    def repartition(self, book: PartitionBook, *, transport=None) -> "Cluster":
        """Rebuild this cluster around a new partition assignment.

        Returns a *new* cluster with ``book.num_parts`` devices, each
        replica carrying this cluster's trained parameters (replicas are
        bit-identical, so device 0's state seeds every new device).  Only
        valid at an epoch boundary — mid-epoch transport state does not
        carry across.  This cluster stays open; the caller closes it once
        the handover is complete (typically via separate ``with`` blocks
        or an explicit :meth:`close`).

        Optimizer slots, exchange caches and RNG positions live outside
        the cluster; the trainer re-attaches them through
        :func:`repro.cluster.checkpoint.restore_state`, whose elastic rule
        starts partition-bound state fresh when the device count changed.
        """
        if self._store_dataset is not None:
            raise RuntimeError(
                "store-backed clusters cannot repartition — the partition"
                " layout is baked into the on-disk store; rebuild it with"
                " a different part count instead"
            )
        kwargs = dict(self._ctor)
        if transport is not None:
            kwargs["transport"] = transport
        resized = Cluster(self.dataset, book, **kwargs)
        state = self.devices[0].model.state_dict()
        for dev in resized.devices:
            dev.model.load_state_dict(state)
        return resized

    def close(self) -> None:
        """Release background transport resources (worker threads or
        processes, plus any shared-memory slabs).

        Idempotent, and safe after a failed epoch: the transport joins
        outstanding worker jobs swallowing their exceptions (the caller
        already saw them) before shutting the pool down; a process
        transport additionally unlinks every shm segment (with a
        finalizer backstop for the path where close never runs).
        """
        self.transport.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Context-managed clusters cannot leak worker pools, whatever the
        # body raised — the reason this is the recommended usage form.
        self.close()

    def evaluate(self) -> dict[str, float]:
        """Global metrics on train/val/test splits (paper's 'accuracy')."""
        if self._store_dataset is not None:
            return self._evaluate_store()
        logits = self.full_logits()
        ds = self.dataset
        return {
            split: task_metric(
                logits, ds.labels, getattr(ds, f"{split}_mask"), multilabel=ds.multilabel
            )
            for split in ("train", "val", "test")
        }

    def _evaluate_store(self) -> dict[str, float]:
        """Split metrics accumulated shard-by-shard (huge-graph path).

        Runs the exact eval-mode forward on the streaming engine and folds
        each device's logit slice into integer count accumulators
        (:func:`~repro.nn.metrics.metric_counts`) — both metrics are
        ratios of summed integer counts, so this equals the global
        ``task_metric`` value without ever materializing a global label or
        logits matrix.
        """
        devices = self.devices
        transport = SyncTransport(self.num_devices)
        for dev in devices:
            dev.model.eval()
        engine = self._compute_engine()
        for layer in range(devices[0].model.num_layers):
            engine.forward_layer(
                layer, self._eval_exchange, transport, training=False
            )
        for dev in devices:
            dev.model.train()
        multilabel = self.dataset.multilabel
        out: dict[str, float] = {}
        for split in ("train", "val", "test"):
            counts = None
            for k, dev in enumerate(devices):
                sl = engine.logits[engine.own_off[k] : engine.own_off[k + 1]]
                shard = metric_counts(
                    sl,
                    dev.labels,
                    getattr(dev, f"{split}_mask"),
                    multilabel=multilabel,
                )
                counts = shard if counts is None else counts + shard
            out[split] = metric_from_counts(counts, multilabel=multilabel)
        return out

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _phase_record(
        self, layer: int, phase: str, exchange: HaloExchange, tag: str
    ) -> PhaseRecord:
        # Everything but the byte matrix is static across epochs (FLOP
        # counts depend only on partition shape and layer dims), so the
        # per-device arrays are built once per (layer, phase, quantizes)
        # and copied into each record.
        key = (layer, phase, exchange.quantizes)
        static = self._phase_static.get(key)
        if static is None:
            static = self._build_phase_static(layer, phase, exchange.quantizes)
            self._phase_static[key] = static
        agg_flops, agg_central, dense_flops, dense_central, quant_send, quant_recv = static
        return PhaseRecord(
            layer=layer,
            phase=phase,
            bytes_matrix=self.transport.bytes_matrix(tag),
            quant_send_bytes=quant_send.copy(),
            quant_recv_bytes=quant_recv.copy(),
            agg_flops=agg_flops.copy(),
            agg_flops_central=agg_central.copy(),
            dense_flops=dense_flops.copy(),
            dense_flops_central=dense_central.copy(),
        )

    def _build_phase_static(
        self, layer: int, phase: str, quantizes: bool
    ) -> tuple[np.ndarray, ...]:
        n = self.num_devices
        d_in, d_out = self.dims[layer], self.dims[layer + 1]
        dense_factor = 2.0 if self.model_kind == "sage" else 1.0
        if phase == "bwd":
            dense_factor *= 2.0  # d_input GEMM + weight-gradient GEMM

        agg_flops = np.zeros(n)
        agg_central = np.zeros(n)
        dense_flops = np.zeros(n)
        dense_central = np.zeros(n)
        quant_send = np.zeros(n)
        quant_recv = np.zeros(n)
        for dev in self.devices:
            nnz = dev.agg.nnz
            nnz_central = dev.agg.nnz_for_rows(dev.part.central_mask)
            agg_flops[dev.rank] = 2.0 * nnz * d_in
            agg_central[dev.rank] = 2.0 * nnz_central * d_in
            dense = dense_factor * 2.0 * dev.n_owned * d_in * d_out
            dense_flops[dev.rank] = dense
            central_frac = dev.part.n_central / max(dev.n_owned, 1)
            dense_central[dev.rank] = dense * central_frac
            if quantizes:
                # Quantize what we send, de-quantize what we receive; the
                # message width is the layer *input* width in both passes.
                sent = self._rows_out[dev.rank] if phase == "fwd" else self._rows_in[dev.rank]
                recv = self._rows_in[dev.rank] if phase == "fwd" else self._rows_out[dev.rank]
                quant_send[dev.rank] = 4.0 * d_in * sent
                quant_recv[dev.rank] = 4.0 * d_in * recv

        return agg_flops, agg_central, dense_flops, dense_central, quant_send, quant_recv
