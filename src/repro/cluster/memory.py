"""Per-device memory and transfer-volume estimator.

Reproduces the paper's footnote-1 argument for *message* compression over
*gradient* compression: for GNNs, model gradients are tiny next to the
node features and layer embeddings that cross devices every epoch (the
paper quotes 0.55 MB of gradients vs 1.17 GB features / 3.00 GB embeddings
for a 3-layer, hidden-256 GCN on ogbn-products).

The estimator is analytic (counts, not allocation tracking): given a
cluster it reports, per device, the bytes of features, per-layer
activations, halo buffers and model parameters/gradients — and the epoch
wire volume for comparison.

Beyond the footnote-1 data counts, the footprint also models the
*resident working set* the training process actually holds:

* the fused engine's stacked activation/gradient buffers (both the
  standard in-RAM shape and the streaming huge-graph shape, which drops
  the layer-0 feature-width buffers);
* the exchange's decode workspaces — an A/B pair per receiving rank
  since the two-deep pipeline (PR 8), so the halo-row scratch counts
  twice;
* the process transport's shared-memory ring slabs (two step records per
  in-flight tag, sized here at the full-precision upper bound);
* the memmap window a streaming device faults in (its operator blocks
  plus feature/label regions) — of which only the current and prefetched
  device's windows are resident at once.

:func:`estimate_peak_resident` folds these into one cluster-wide
peak-RSS prediction, cross-checked against measured ``ru_maxrss`` by the
``bench_huge_graph`` perf entry; :func:`host_memory` reads the host's
total/available RAM so the CLI can warn before a job that cannot fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.cluster.cluster import Cluster

__all__ = [
    "HostMemory",
    "MemoryFootprint",
    "estimate_memory",
    "estimate_peak_resident",
    "host_memory",
]

_F32 = 4  # bytes per float32 element


@dataclass(frozen=True)
class MemoryFootprint:
    """Analytic per-device byte counts for one training job.

    The first five fields are the paper's footnote-1 data counts (what
    the device's share of the graph *is*); the remaining fields model
    what the process actually keeps resident to train on it, which
    differs per execution mode — see :attr:`resident_bytes`.
    """

    device: int
    feature_bytes: int
    activation_bytes: int  # all layer outputs kept for backward
    halo_buffer_bytes: int  # receive buffers across layers
    model_param_bytes: int
    model_grad_bytes: int
    #: exchange decode scratch: an A/B workspace pair per receiving rank
    #: (two steps may be in flight since the two-deep pipeline), so the
    #: widest halo-row buffer counts twice.
    decode_workspace_bytes: int = 0
    #: process-transport shared-memory rings: two step records per tag,
    #: sized at the full-precision (32-bit) upper bound.  Zero for
    #: thread/sync transports.
    shm_slab_bytes: int = 0
    #: the fused engine's stacked buffers attributable to this device's
    #: rows (activations, aggregation outputs, gradients, logits, masks).
    #: Zero for the legacy per-device executor.
    stacked_buffer_bytes: int = 0
    #: bytes of store-backed memmap regions this device faults in while
    #: its kernels run (CSR operator blocks + features + labels).  Only
    #: meaningful in streaming mode; pages are released after use, so at
    #: most two devices' windows (current + prefetch) are resident.
    memmap_window_bytes: int = 0
    #: True when the device reads a memmapped partition store (huge-graph
    #: mode): features/activations at layer 0 are not resident copies.
    streaming: bool = False

    @property
    def message_bytes(self) -> int:
        """Data that crosses devices (features/embeddings/halo traffic)."""
        return self.halo_buffer_bytes

    @property
    def total_bytes(self) -> int:
        """The materialized working set (footnote-1 counts + scratch)."""
        return (
            self.feature_bytes
            + self.activation_bytes
            + self.halo_buffer_bytes
            + self.model_param_bytes
            + self.model_grad_bytes
            + self.decode_workspace_bytes
            + self.shm_slab_bytes
        )

    @property
    def resident_bytes(self) -> int:
        """Bytes the process is expected to hold in RAM for this device.

        Streaming mode never materializes features or layer-0 buffers
        (they stay on the mapped store, counted by
        :attr:`memmap_window_bytes`); the fused in-RAM engine holds the
        device features *and* their copy inside the stacked layer-0
        buffer; the legacy executor has no stacked buffers at all.
        """
        shared = (
            self.model_param_bytes
            + self.model_grad_bytes
            + self.decode_workspace_bytes
            + self.shm_slab_bytes
        )
        if self.streaming:
            return shared + self.stacked_buffer_bytes + self.memmap_window_bytes
        if self.stacked_buffer_bytes:
            # Stacked buffers already include activations and halo
            # regions; device features exist alongside their layer-0 copy.
            return shared + self.feature_bytes + self.stacked_buffer_bytes
        return (
            shared
            + self.feature_bytes
            + self.activation_bytes
            + self.halo_buffer_bytes
        )


def _stacked_bytes(
    n: int, h: int, dims: list[int], model_kind: str, *, streaming: bool
) -> int:
    """This device's rows of the fused engine's preallocated buffers.

    Mirrors ``FusedClusterCompute.__init__`` exactly: every buffer there
    is a concatenation of per-device row blocks, so per-device
    attribution is the same formula with that device's ``n_owned`` /
    ``n_halo``.  Streaming mode drops the layer-0 members (``_x[0]``,
    ``_z[0]``, ``_dz[0]``, ``_dx[0]``, sage's ``_d_own[0]``) and keeps
    only the layer-0 halo landing zone.
    """
    r = n + h
    L = len(dims) - 1
    lo = 1 if streaming else 0
    elems = 0
    if streaming:
        elems += h * dims[0]  # _x0_halo landing zone
    for l in range(lo, L):
        elems += r * dims[l]  # _x[l]
        elems += 2 * n * dims[l]  # _z[l] + _dz[l]
        elems += r * dims[l]  # _dx[l]
    elems += 2 * n * dims[-1]  # logits + d_logits
    if model_kind == "sage":
        elems += sum(n * dims[l + 1] for l in range(L))  # _neigh_out
        elems += sum(n * dims[l] for l in range(lo, L))  # _d_own
    post = sum(n * dims[l + 1] for l in range(L - 1))
    bytes_ = elems * _F32
    bytes_ += post * _F32  # _x_hat
    bytes_ += post  # _relu_mask (bool)
    bytes_ += post * _F32  # _drop_mask
    return bytes_


def _csr_bytes(m) -> int:
    return int(m.data.nbytes + m.indices.nbytes + m.indptr.nbytes)


def _quant_stage_bytes(cluster: Cluster) -> int:
    """Plan-resident staging of the fused quantized exchange.

    Per (phase, layer) step the encoder keeps the staged source rows
    (float32) and their quantized codes (uint8) — 5 bytes per element —
    for every send row of the cluster (the kernel's own intermediates
    are chunk-bounded and don't register at peak).  Send rows total the
    halo rows (each halo row is sent exactly once); forward steps carry
    every non-output width, backward the same minus layer 0 when
    streaming (its gradient exchange is skipped).
    """
    dims = cluster.dims
    streaming = cluster._stream_ops is not None
    send = sum(dev.part.n_halo for dev in cluster.devices)
    fwd = sum(dims[:-1])
    bwd = sum(dims[(1 if streaming else 0) : -1])
    return send * (fwd + bwd) * 5


def estimate_memory(cluster: Cluster) -> list[MemoryFootprint]:
    """Estimate every device's footprint for ``cluster``'s configuration.

    Examples
    --------
    >>> from repro.graph import load_dataset, partition_graph
    >>> from repro.cluster import Cluster
    >>> ds = load_dataset("yelp", scale="tiny")
    >>> book = partition_graph(ds.graph, 2, method="metis")
    >>> cluster = Cluster(ds, book, hidden_dim=16)
    >>> fp = estimate_memory(cluster)[0]
    >>> fp.model_grad_bytes < fp.message_bytes
    True
    """
    dims = cluster.dims
    streaming = cluster._stream_ops is not None
    is_process = getattr(cluster.transport, "kind", "") == "process"
    max_width = max(dims[:-1])
    footprints = []
    for k, dev in enumerate(cluster.devices):
        n = dev.n_owned
        h = dev.part.n_halo
        feature_bytes = n * dims[0] * _F32
        activation_bytes = sum(n * d_out * _F32 for d_out in dims[1:])
        halo_buffer_bytes = sum(h * d_in * _F32 for d_in in dims[:-1])
        params = dev.model.num_parameters()
        # Shm rings hold two records per (phase, layer) tag; forward
        # steps carry every non-output width, backward the same minus
        # layer 0 in streaming mode (its gradient exchange is skipped).
        shm = 0
        if is_process:
            fwd = sum(h * d for d in dims[:-1])
            bwd = sum(h * d for d in dims[(1 if streaming else 0) : -1])
            shm = 2 * (fwd + bwd) * _F32
        window = 0
        if streaming:
            ops = cluster._stream_ops[k]
            window = (
                _csr_bytes(ops.own)
                + _csr_bytes(ops.halo)
                + _csr_bytes(ops.own_t)
                + _csr_bytes(ops.halo_t)
                + int(dev.features.nbytes)
                + int(dev.labels.nbytes)
            )
        stacked = 0
        if cluster.fused_compute:
            stacked = _stacked_bytes(
                n, h, dims, cluster.model_kind, streaming=streaming
            )
        footprints.append(
            MemoryFootprint(
                device=dev.rank,
                feature_bytes=feature_bytes,
                activation_bytes=activation_bytes,
                halo_buffer_bytes=halo_buffer_bytes,
                model_param_bytes=params * _F32,
                model_grad_bytes=params * _F32,
                decode_workspace_bytes=2 * h * max_width * _F32,
                shm_slab_bytes=shm,
                stacked_buffer_bytes=stacked,
                memmap_window_bytes=window,
                streaming=streaming,
            )
        )
    return footprints


def estimate_peak_resident(cluster: Cluster) -> int:
    """Predicted peak resident bytes for training on ``cluster``.

    Sums every device's :attr:`MemoryFootprint.resident_bytes` — except
    the streaming memmap windows, of which only two (the running device
    and its prefetched successor) are resident at once thanks to the
    engine's page release, so the widest adjacent pair stands in for the
    sum.  The streaming layer-0 aggregation scratch (one ``(max_own, F)``
    buffer reused across devices) and the quantized exchange's staging
    buffers are added once each — the latter assumes an adaqp-family
    system (the common case); a vanilla run is overestimated by that
    term, which errs on the safe side for the RAM-fit warning.

    This is the analytic half of ``bench_huge_graph``'s estimate-vs-
    measured check; it deliberately excludes the Python interpreter
    baseline, which the bench subtracts out by measuring ``ru_maxrss``
    before the cluster is built.
    """
    fps = estimate_memory(cluster)
    total = sum(fp.resident_bytes - fp.memmap_window_bytes for fp in fps)
    total += _quant_stage_bytes(cluster)
    if cluster._stream_ops is not None:
        windows = [fp.memmap_window_bytes for fp in fps]
        if len(windows) == 1:
            total += windows[0]
        elif windows:
            total += max(
                windows[k] + windows[k + 1] for k in range(len(windows) - 1)
            )
        max_own = max(dev.n_owned for dev in cluster.devices)
        total += max_own * cluster.dims[0] * _F32  # stream_z0 scratch
    return int(total)


@dataclass(frozen=True)
class HostMemory:
    """Host RAM totals read from ``/proc/meminfo`` (bytes)."""

    total_bytes: int
    available_bytes: int


def host_memory(path: str | Path = "/proc/meminfo") -> HostMemory | None:
    """Read total/available RAM; ``None`` when the file is unreadable.

    ``MemAvailable`` is the kernel's estimate of memory available to a
    new workload without swapping — the right comparison point for
    :func:`estimate_peak_resident`, since page-cache pages (including a
    partition store's) are reclaimable.
    """
    try:
        text = Path(path).read_text()
    except OSError:
        return None
    fields: dict[str, int] = {}
    for line in text.splitlines():
        key, _, rest = line.partition(":")
        parts = rest.split()
        if parts and parts[0].isdigit():
            # /proc/meminfo reports kB (kibibytes, despite the label).
            fields[key.strip()] = int(parts[0]) * 1024
    if "MemTotal" not in fields or "MemAvailable" not in fields:
        return None
    return HostMemory(
        total_bytes=fields["MemTotal"],
        available_bytes=fields["MemAvailable"],
    )
