"""Per-device memory and transfer-volume estimator.

Reproduces the paper's footnote-1 argument for *message* compression over
*gradient* compression: for GNNs, model gradients are tiny next to the
node features and layer embeddings that cross devices every epoch (the
paper quotes 0.55 MB of gradients vs 1.17 GB features / 3.00 GB embeddings
for a 3-layer, hidden-256 GCN on ogbn-products).

The estimator is analytic (counts, not allocation tracking): given a
cluster it reports, per device, the bytes of features, per-layer
activations, halo buffers and model parameters/gradients — and the epoch
wire volume for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster

__all__ = ["MemoryFootprint", "estimate_memory"]

_F32 = 4  # bytes per float32 element


@dataclass(frozen=True)
class MemoryFootprint:
    """Analytic per-device byte counts for one training job."""

    device: int
    feature_bytes: int
    activation_bytes: int  # all layer outputs kept for backward
    halo_buffer_bytes: int  # receive buffers across layers
    model_param_bytes: int
    model_grad_bytes: int

    @property
    def message_bytes(self) -> int:
        """Data that crosses devices (features/embeddings/halo traffic)."""
        return self.halo_buffer_bytes

    @property
    def total_bytes(self) -> int:
        return (
            self.feature_bytes
            + self.activation_bytes
            + self.halo_buffer_bytes
            + self.model_param_bytes
            + self.model_grad_bytes
        )


def estimate_memory(cluster: Cluster) -> list[MemoryFootprint]:
    """Estimate every device's footprint for ``cluster``'s configuration.

    Examples
    --------
    >>> from repro.graph import load_dataset, partition_graph
    >>> from repro.cluster import Cluster
    >>> ds = load_dataset("yelp", scale="tiny")
    >>> book = partition_graph(ds.graph, 2, method="metis")
    >>> cluster = Cluster(ds, book, hidden_dim=16)
    >>> fp = estimate_memory(cluster)[0]
    >>> fp.model_grad_bytes < fp.message_bytes
    True
    """
    dims = cluster.dims
    footprints = []
    for dev in cluster.devices:
        n = dev.n_owned
        h = dev.part.n_halo
        feature_bytes = n * dims[0] * _F32
        activation_bytes = sum(n * d_out * _F32 for d_out in dims[1:])
        halo_buffer_bytes = sum(h * d_in * _F32 for d_in in dims[:-1])
        params = dev.model.num_parameters()
        footprints.append(
            MemoryFootprint(
                device=dev.rank,
                feature_bytes=feature_bytes,
                activation_bytes=activation_bytes,
                halo_buffer_bytes=halo_buffer_bytes,
                model_param_bytes=params * _F32,
                model_grad_bytes=params * _F32,
            )
        )
    return footprints
