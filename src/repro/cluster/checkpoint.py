"""Epoch-boundary checkpoint/restore for keyed-replay fault tolerance.

A checkpoint captures everything a *bitwise* resume needs — model
parameters, optimizer slots, every cross-epoch RNG position and exchange
carry-over — at an epoch boundary, the one point in the run where no
transport state is in flight.  Under keyed rounding (PR 5) quantization
noise is a pure function of ``(run_seed, epoch, phase, layer, src, dst)``,
so a run killed mid-training and resumed from its last checkpoint produces
the *same* losses, gradients and wire bytes as the uninterrupted run —
the equivalence tests assert it byte for byte.

Device-replica symmetry keeps checkpoints small and **elastic**: model
replicas are bit-identical across devices (same weight stream, allreduced
gradients, identical Adam updates), so one replica's parameters and one
optimizer's slots restore any number of devices.  Partition-*dependent*
state — per-device dropout streams, exchange caches, assigner traces — is
restored only when the checkpoint's partition count matches the restoring
cluster's; on an elastic N→M resize it is skipped, so a resumed M-way run
and a fresh M-way run started from the same checkpoint take identical
paths (the repartition equivalence test pins this).

On-disk layout (one directory per checkpoint, atomically renamed into
place so a crash mid-save can never corrupt an existing checkpoint)::

    <checkpoint_dir>/
        epoch-00012/
            meta.json    # epoch, num_parts, model_kind, dims, seed, meta
            state.pkl    # the full ClusterState (arrays + RNG states)
        LATEST           # the newest epoch number, updated atomically
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.utils.logging import get_logger

__all__ = [
    "ClusterState",
    "capture_state",
    "restore_state",
    "save_checkpoint",
    "load_checkpoint",
    "latest_checkpoint_epoch",
    "list_checkpoint_epochs",
]

logger = get_logger("cluster.checkpoint")

_STATE_FILE = "state.pkl"
_META_FILE = "meta.json"
_LATEST_FILE = "LATEST"
_FORMAT_VERSION = 1


@dataclass
class ClusterState:
    """One epoch boundary's complete resume state.

    ``epoch`` is the *next* epoch to run: a checkpoint taken after epoch
    ``e``'s optimizer step carries ``epoch = e + 1``.
    """

    epoch: int
    num_parts: int
    model_kind: str
    dims: list[int]
    seed: int
    #: one replica's parameters (replicas are bit-identical)
    model: dict[str, np.ndarray]
    #: one replica's optimizer slots (identical across devices)
    optimizer: dict
    #: per-device dropout ``bit_generator.state`` dicts (partition-bound)
    dropout_rng: list[object] = field(default_factory=list)
    #: opaque exchange carry-over (``HaloExchange.state_dict``)
    exchange: dict = field(default_factory=dict)
    #: adaptive assigner traces/assignments, when the system has one
    assigner: dict | None = None
    #: free-form caller annotations (system name, config echo, ...)
    meta: dict = field(default_factory=dict)
    version: int = _FORMAT_VERSION


# ---------------------------------------------------------------------------
# Capture / restore
# ---------------------------------------------------------------------------


def _device_dropout_rng(dev):
    """The device's shared dropout generator (all non-output layers of one
    replica share a single stream), or None for dropout-free models."""
    for layer in dev.model.layers:
        drop = getattr(layer, "drop", None)
        if drop is not None:
            return drop.rng
    return None


def _strip_memmaps(obj, dropped: list | None = None, path: str = ""):
    """Recursively drop memmap-backed arrays from a state container.

    Huge-graph runs back features/labels/operators with ``np.memmap``
    regions of the partition store; pickling one would serialize the full
    on-disk region into the checkpoint.  They are reconstructable from the
    store path (recorded in ``ClusterState.meta``), so a memmap value is
    *skipped* — dict entries disappear, list/tuple slots become ``None`` —
    and its key path is collected in ``dropped`` for logging.  Plain
    arrays (model weights, optimizer slots, RNG states) pass through
    untouched, so non-store checkpoints are byte-identical to before.
    """
    if isinstance(obj, np.memmap):
        if dropped is not None:
            dropped.append(path or "<root>")
        return None
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if isinstance(value, np.memmap):
                if dropped is not None:
                    dropped.append(f"{path}.{key}" if path else str(key))
                continue
            out[key] = _strip_memmaps(value, dropped, f"{path}.{key}" if path else str(key))
        return out
    if isinstance(obj, (list, tuple)):
        items = [
            _strip_memmaps(v, dropped, f"{path}[{i}]") for i, v in enumerate(obj)
        ]
        return type(obj)(items) if isinstance(obj, tuple) else items
    return obj


def capture_state(
    cluster,
    optimizers: list,
    exchange,
    *,
    epoch: int,
    assigner=None,
    meta: dict | None = None,
) -> ClusterState:
    """Snapshot ``cluster`` (+ optimizers, exchange, assigner) at an epoch
    boundary.  Copies everything — the caller may keep training.

    Memmap-backed arrays (store-backed feature/label/operator regions) are
    skipped rather than serialized — see :func:`_strip_memmaps` — and the
    owning store's path is recorded in ``meta["store_path"]`` so a resume
    can reopen the same store."""
    dropout_states = []
    for dev in cluster.devices:
        rng = _device_dropout_rng(dev)
        dropout_states.append(None if rng is None else rng.bit_generator.state)
    meta = dict(meta or {})
    store_ds = getattr(cluster, "_store_dataset", None)
    if store_ds is not None:
        meta.setdefault("store_path", str(store_ds.store.path))
    dropped: list[str] = []
    state = ClusterState(
        epoch=int(epoch),
        num_parts=int(cluster.num_devices),
        model_kind=cluster.model_kind,
        dims=list(cluster.dims),
        seed=int(cluster.seed),
        model=_strip_memmaps(cluster.devices[0].model.state_dict(), dropped, "model"),
        optimizer=_strip_memmaps(optimizers[0].state_dict(), dropped, "optimizer"),
        dropout_rng=dropout_states,
        exchange=_strip_memmaps(exchange.state_dict(), dropped, "exchange"),
        assigner=(
            None
            if assigner is None
            else _strip_memmaps(assigner.state_dict(), dropped, "assigner")
        ),
        meta=meta,
    )
    if dropped:
        logger.info(
            "checkpoint skipped %d memmap-backed array(s): %s",
            len(dropped),
            ", ".join(dropped[:8]),
        )
    return state


def restore_state(
    state: ClusterState,
    cluster,
    optimizers: list,
    exchange,
    *,
    assigner=None,
) -> int:
    """Load ``state`` into a live cluster; returns the epoch to resume at.

    Model and optimizer state restore at any partition count (replica
    symmetry).  Partition-bound state — dropout streams, exchange caches,
    assigner traces — restores only when the partition counts match; an
    elastic resize starts those fresh, exactly like a new run would.
    """
    if state.model_kind != cluster.model_kind or list(state.dims) != list(
        cluster.dims
    ):
        raise ValueError(
            f"checkpoint is for a {state.model_kind} model with dims"
            f" {state.dims}; cluster has {cluster.model_kind}/{cluster.dims}"
        )
    for dev in cluster.devices:
        # In-place parameter writes keep the fused engine's views valid.
        dev.model.load_state_dict(state.model)
    for opt in optimizers:
        opt.load_state_dict(state.optimizer)
    elastic = int(state.num_parts) != int(cluster.num_devices)
    if elastic:
        logger.info(
            "elastic restore: checkpoint has %d parts, cluster has %d —"
            " partition-bound RNG/exchange state starts fresh",
            state.num_parts,
            cluster.num_devices,
        )
    else:
        for dev, rng_state in zip(cluster.devices, state.dropout_rng):
            rng = _device_dropout_rng(dev)
            if rng is not None and rng_state is not None:
                rng.bit_generator.state = rng_state
        exchange.load_state_dict(state.exchange)
        if assigner is not None and state.assigner is not None:
            assigner.load_state_dict(state.assigner)
    return int(state.epoch)


# ---------------------------------------------------------------------------
# On-disk persistence
# ---------------------------------------------------------------------------


def _epoch_dirname(epoch: int) -> str:
    return f"epoch-{int(epoch):05d}"


def save_checkpoint(checkpoint_dir: str | os.PathLike, state: ClusterState) -> Path:
    """Persist ``state`` under ``checkpoint_dir``; returns the final path.

    Atomic: the checkpoint is staged in a temp directory on the same
    filesystem and renamed into place, then the ``LATEST`` marker is
    replaced — a crash at any point leaves either the previous checkpoint
    set intact or the new one complete, never a torn directory.
    """
    root = Path(checkpoint_dir)
    root.mkdir(parents=True, exist_ok=True)
    final = root / _epoch_dirname(state.epoch)
    staging = Path(
        tempfile.mkdtemp(prefix=f".tmp-{_epoch_dirname(state.epoch)}-", dir=root)
    )
    try:
        with open(staging / _STATE_FILE, "wb") as fh:
            pickle.dump(state, fh, protocol=pickle.HIGHEST_PROTOCOL)
        meta = {
            "version": state.version,
            "epoch": state.epoch,
            "num_parts": state.num_parts,
            "model_kind": state.model_kind,
            "dims": list(state.dims),
            "seed": state.seed,
            "meta": state.meta,
        }
        with open(staging / _META_FILE, "w", encoding="utf-8") as fh:
            json.dump(meta, fh, indent=2, sort_keys=True)
        if final.exists():
            # Re-saving the same epoch (double-restore runs): replace.
            shutil.rmtree(final)
        os.replace(staging, final)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    _write_latest(root, state.epoch)
    logger.info("checkpoint saved: %s (epoch %d)", final, state.epoch)
    return final


def _write_latest(root: Path, epoch: int) -> None:
    fd, tmp = tempfile.mkstemp(prefix=".tmp-latest-", dir=root)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(f"{int(epoch)}\n")
        os.replace(tmp, root / _LATEST_FILE)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def list_checkpoint_epochs(checkpoint_dir: str | os.PathLike) -> list[int]:
    """Epoch numbers of every complete checkpoint, ascending."""
    root = Path(checkpoint_dir)
    if not root.is_dir():
        return []
    epochs = []
    for entry in root.iterdir():
        name = entry.name
        if (
            entry.is_dir()
            and name.startswith("epoch-")
            and (entry / _STATE_FILE).is_file()
        ):
            try:
                epochs.append(int(name.split("-", 1)[1]))
            except ValueError:
                continue
    return sorted(epochs)


def latest_checkpoint_epoch(checkpoint_dir: str | os.PathLike) -> int | None:
    """The newest complete checkpoint's epoch, or None when there is none.

    Trusts the ``LATEST`` marker when it names an existing checkpoint and
    falls back to a directory scan otherwise (a crash between the rename
    and the marker update leaves a valid checkpoint with a stale marker).
    """
    root = Path(checkpoint_dir)
    marker = root / _LATEST_FILE
    epochs = list_checkpoint_epochs(root)
    if marker.is_file():
        try:
            epoch = int(marker.read_text(encoding="utf-8").strip())
        except (OSError, ValueError):
            epoch = None
        if epoch is not None and epoch in epochs:
            return epoch
    return epochs[-1] if epochs else None


def load_checkpoint(
    checkpoint_dir: str | os.PathLike, epoch: int | None = None
) -> ClusterState | None:
    """Load one checkpoint (the newest by default); None when none exist."""
    root = Path(checkpoint_dir)
    if epoch is None:
        epoch = latest_checkpoint_epoch(root)
        if epoch is None:
            return None
    path = root / _epoch_dirname(epoch) / _STATE_FILE
    with open(path, "rb") as fh:
        state = pickle.load(fh)
    if not isinstance(state, ClusterState):
        raise ValueError(f"{path} does not contain a ClusterState")
    if state.version > _FORMAT_VERSION:
        raise ValueError(
            f"checkpoint {path} has format version {state.version};"
            f" this build reads <= {_FORMAT_VERSION}"
        )
    return state
