"""Analytic device performance model (the V100 stand-in).

Compute durations are *modelled*, not measured: NumPy on a CPU bears no
resemblance to the V100s the paper used, while the byte counts we feed the
link cost model are exact.  Mixing measured CPU compute with modelled
network time would distort every communication/computation ratio the paper
reports, so both sides of the ratio come from calibrated models
(DESIGN.md §4.1).

Rates are a V100 *scaled down by the same ~500-3000x factor as the
synthetic datasets* (see DESIGN.md), preserving the paper's regime:

* dense GEMM sustains far more throughput than sparse aggregation;
* sparse aggregation (SpMM) is memory-bound (the V100 ratio
  gemm/spmm ~ 17x is kept at ~2.5x here because tiny matrices lose
  less efficiency to SpMM irregularity);
* quant/de-quant kernels are bandwidth-bound elementwise passes;
* every kernel pays a launch overhead.

The calibration target (checked by benchmarks) is the paper's Table 1 /
Table 2 regime: communication takes ~65-80% of a Vanilla epoch, and 2-bit
quantized marginal communication still exceeds central-graph computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive

__all__ = ["PerfModel"]


@dataclass(frozen=True)
class PerfModel:
    """FLOP- and byte-rate model for one device class."""

    gemm_flops_per_s: float = 3.0e8
    spmm_flops_per_s: float = 1.2e8
    quant_bytes_per_s: float = 2.5e8
    kernel_launch_s: float = 2.0e-4

    def __post_init__(self) -> None:
        check_positive(self.gemm_flops_per_s, name="gemm_flops_per_s")
        check_positive(self.spmm_flops_per_s, name="spmm_flops_per_s")
        check_positive(self.quant_bytes_per_s, name="quant_bytes_per_s")
        check_positive(self.kernel_launch_s, name="kernel_launch_s", strict=False)

    # ------------------------------------------------------------------
    # FLOP counters
    # ------------------------------------------------------------------
    @staticmethod
    def gemm_flops(rows: int, inner: int, cols: int) -> float:
        """Multiply-accumulate count of a dense ``(rows×inner)@(inner×cols)``."""
        return 2.0 * rows * inner * cols

    @staticmethod
    def spmm_flops(nnz: int, width: int) -> float:
        """Sparse-dense product: 2 FLOPs per nonzero per output column."""
        return 2.0 * nnz * width

    # ------------------------------------------------------------------
    # Durations
    # ------------------------------------------------------------------
    def gemm_time(self, flops: float) -> float:
        return flops / self.gemm_flops_per_s + (self.kernel_launch_s if flops > 0 else 0.0)

    def spmm_time(self, flops: float) -> float:
        return flops / self.spmm_flops_per_s + (self.kernel_launch_s if flops > 0 else 0.0)

    def compute_time(self, spmm_flops: float, gemm_flops: float) -> float:
        """One layer stage: aggregation followed by dense update."""
        return self.spmm_time(spmm_flops) + self.gemm_time(gemm_flops)

    def quant_time(self, float_bytes: float) -> float:
        """Quantize or de-quantize ``float_bytes`` of float32 data."""
        if float_bytes <= 0:
            return 0.0
        return float_bytes / self.quant_bytes_per_s + self.kernel_launch_s
