"""Per-device state: partition, model replica, local data and RNG streams."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gnn.coefficients import AggregationContext
from repro.gnn.model import DistGNN
from repro.graph.partition.book import LocalPartition

__all__ = ["DeviceRuntime"]


@dataclass
class DeviceRuntime:
    """One simulated GPU worker.

    Holds everything rank-local: the graph partition, the weighted
    aggregation operator, the model replica (identically initialized across
    ranks), this rank's slice of features/labels/masks, and the local
    training-node count (the global count normalizes the loss so that
    summing device losses reproduces the single-machine loss exactly).
    """

    rank: int
    part: LocalPartition
    agg: AggregationContext
    model: DistGNN
    features: np.ndarray  # (n_owned, F) float32
    labels: np.ndarray  # (n_owned,) int64 or (n_owned, C) float32
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray

    def __post_init__(self) -> None:
        n = self.part.n_owned
        for name in ("features", "train_mask", "val_mask", "test_mask"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise ValueError(f"{name} has {arr.shape[0]} rows, partition owns {n}")
        if self.labels.shape[0] != n:
            raise ValueError("labels misaligned with partition")
        # Aggregation inputs must stay float32: a float64 feature slice
        # would silently upcast every spmv/GEMM downstream (and double
        # exchange payloads).  Normalized once here, both execution
        # engines can assume contiguous float32.
        if self.features.dtype != np.float32 or not self.features.flags.c_contiguous:
            self.features = np.ascontiguousarray(self.features, dtype=np.float32)

    @property
    def n_owned(self) -> int:
        return self.part.n_owned

    @property
    def n_train(self) -> int:
        return int(self.train_mask.sum())

    def central_row_mask(self) -> np.ndarray:
        return self.part.central_mask
