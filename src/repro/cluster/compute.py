"""The cluster-fused compute engine: one kernel per layer step, all devices.

The legacy executor dispatches K per-device Python loops per layer — K
small spmv's, K ``np.vstack`` copies, K small GEMMs, K losses — although
every replica holds bit-identical weights.  In the many-partition regime
the paper's wall-clock results live in, those tiny dispatches dominate the
epoch (the same thesis PR 1 applied to quantize/pack/exchange).

:class:`FusedClusterCompute` executes the whole cluster's forward/backward
with cluster-wide operators instead:

* **one block-diagonal CSR** stacks every device's aggregation operator
  into a single global column space (owned columns first, halo columns
  after), so each layer's aggregation is one spmv — and its cached CSR
  transpose makes the backward routing one spmv too;
* **stacked activations** live in preallocated ``(ΣN_own + ΣN_halo, d)``
  buffers; the halo exchange writes decoded rows straight into the halo
  region (the ``out=`` contract of
  :meth:`~repro.cluster.exchange.HaloExchange.exchange_embeddings`), so
  the per-layer ``np.vstack`` copies disappear entirely;
* **one stacked GEMM** per layer runs every device's dense transform using
  the shared replica weights (via :func:`repro.nn.blas.row_matmul`, which
  keeps per-row results identical to the per-device GEMMs it replaces);
* **weight gradients accumulate directly in reduced form**: per-device
  partial gradients are summed into float64 accumulators in rank order —
  exactly :func:`repro.comm.allreduce.allreduce_sum`'s reduction — so the
  K flat gradient vectors the legacy path materializes are never built.

Numerical contract (asserted by ``tests/cluster/test_fused_compute.py``):
under the same seed the engine is **bit-identical** to the legacy
per-device path — same losses, same reduced model gradients, same wire
bytes — for every exchange policy (exact, quantized, fused-quantized,
stale, broadcast-skip).  Everything per-row is trivially identical; the
three non-obvious cases are (a) GEMMs, handled by ``row_matmul``'s
row-determinism, (b) spmv's, where the block-diagonal remap preserves
per-row column order so scipy's row-major accumulation is unchanged, and
(c) reductions (loss sums, gradient sums, ``sum(axis=0)`` of contiguous
slices), which replicate the legacy operation order exactly.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.cluster.runtime import DeviceRuntime
from repro.nn.blas import row_matmul

__all__ = ["FusedClusterCompute", "build_block_diagonal"]

try:  # pragma: no cover - import guard
    from scipy.sparse import _sparsetools as _sptools

    _csr_matvecs = getattr(_sptools, "csr_matvecs", None)
except ImportError:  # pragma: no cover - scipy always present in this repo
    _csr_matvecs = None


def _spmv_into(matrix: sp.csr_matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[...] = matrix @ x`` without the per-call result allocation.

    Uses scipy's ``csr_matvecs`` kernel directly when available (it is what
    ``matrix @ x`` calls after allocating a zeroed result, so results are
    bit-identical); falls back to the public operator otherwise.
    """
    if (
        _csr_matvecs is not None
        and x.flags.c_contiguous
        and out.flags.c_contiguous
        and x.dtype == matrix.dtype == out.dtype
    ):
        out.fill(0.0)
        n_row, n_col = matrix.shape
        _csr_matvecs(
            n_row,
            n_col,
            x.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            x.ravel(),
            out.ravel(),
        )
        return out
    out[...] = matrix @ x
    return out


def build_block_diagonal(devices: list[DeviceRuntime]) -> sp.csr_matrix:
    """Stack per-device aggregation operators into one cluster operator.

    Row ``own_off[k] + i`` is device ``k``'s owned row ``i``; columns are
    remapped into the stacked buffer's global space — owned column ``j``
    of device ``k`` becomes ``own_off[k] + j`` and halo column ``j``
    becomes ``N_own + halo_off[k] + j``.  Both remaps are strictly
    monotone and all owned columns precede all halo columns, so every
    row's column order (hence scipy's accumulation order) is exactly the
    per-device operator's: ``(P_global @ X)`` rows are bit-identical to
    the K separate ``P_k @ x_k`` products they fuse.
    """
    n_own = np.array([d.part.n_owned for d in devices], dtype=np.int64)
    n_halo = np.array([d.part.n_halo for d in devices], dtype=np.int64)
    own_off = np.concatenate([[0], np.cumsum(n_own)])
    halo_off = np.concatenate([[0], np.cumsum(n_halo)])
    total_own, total_halo = int(own_off[-1]), int(halo_off[-1])

    data: list[np.ndarray] = []
    indices: list[np.ndarray] = []
    indptr: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    nnz = 0
    for k, dev in enumerate(devices):
        m = dev.agg.matrix
        idx = m.indices.astype(np.int64, copy=True)
        own_cols = idx < n_own[k]
        idx[own_cols] += own_off[k]
        idx[~own_cols] += total_own + halo_off[k] - n_own[k]
        data.append(m.data)
        indices.append(idx)
        indptr.append(m.indptr[1:].astype(np.int64) + nnz)
        nnz += m.nnz
    fused = sp.csr_matrix(
        (
            np.concatenate(data),
            np.concatenate(indices),
            np.concatenate(indptr),
        ),
        shape=(total_own, total_own + total_halo),
    )
    # Per-device operators are canonical (sorted, deduplicated) and the
    # remap is order-preserving, so the stacked matrix already is too.
    fused.has_sorted_indices = True
    fused.has_canonical_format = True
    return fused


class FusedClusterCompute:
    """Whole-cluster forward/backward on stacked buffers.

    Built once per :class:`~repro.cluster.cluster.Cluster` (the step plan —
    operators, offsets, views, scratch — is static across epochs, in the
    spirit of PR 1's ``FusedStepPlan``); the cluster drives it layer by
    layer so phase records keep their legacy shape.

    Parameters
    ----------
    devices:
        The cluster's device runtimes (replicas must be bit-identical —
        the engine computes with device 0's weights on every row).
    dims:
        Layer widths ``[in, hidden, ..., out]``.
    model_kind:
        ``"gcn"`` or ``"sage"``.
    """

    def __init__(
        self, devices: list[DeviceRuntime], dims: list[int], model_kind: str
    ) -> None:
        self.devices = devices
        self.dims = list(dims)
        self.model_kind = model_kind
        self.num_layers = len(dims) - 1

        n_own = [d.part.n_owned for d in devices]
        n_halo = [d.part.n_halo for d in devices]
        self.own_off = np.concatenate([[0], np.cumsum(n_own)]).astype(np.int64)
        self.halo_off = np.concatenate([[0], np.cumsum(n_halo)]).astype(np.int64)
        self.total_own = int(self.own_off[-1])
        self.total_halo = int(self.halo_off[-1])
        n_rows = self.total_own + self.total_halo

        self.matrix = build_block_diagonal(devices)
        matrix_t = self.matrix.T.tocsr()
        matrix_t.sort_indices()
        self.matrix_t = matrix_t

        self._owned_global = np.concatenate(
            [d.part.owned_global for d in devices]
        )

        L = self.num_layers
        # Layer inputs: [all owned rows][all halo rows] per the operator's
        # column space.  X[0]'s owned region holds the (static) features.
        self._x = [np.zeros((n_rows, dims[l]), dtype=np.float32) for l in range(L)]
        for k, dev in enumerate(devices):
            self._x[0][self.own_off[k] : self.own_off[k + 1]] = dev.features
        self._z = [np.zeros((self.total_own, dims[l]), dtype=np.float32) for l in range(L)]
        self._dz = [np.zeros((self.total_own, dims[l]), dtype=np.float32) for l in range(L)]
        self._dx = [np.zeros((n_rows, dims[l]), dtype=np.float32) for l in range(L)]
        self.logits = np.zeros((self.total_own, dims[-1]), dtype=np.float32)
        self._d_logits = np.zeros_like(self.logits)
        if model_kind == "sage":
            self._neigh_out = [
                np.zeros((self.total_own, dims[l + 1]), dtype=np.float32)
                for l in range(L)
            ]
            self._d_own = [
                np.zeros((self.total_own, dims[l]), dtype=np.float32) for l in range(L)
            ]
        # Post-processing caches (all but the output layer).
        self._x_hat = [
            np.zeros((self.total_own, dims[l + 1]), dtype=np.float32)
            for l in range(L - 1)
        ]
        self._inv_std: list[np.ndarray | None] = [None] * (L - 1)
        self._relu_mask = [
            np.zeros((self.total_own, dims[l + 1]), dtype=bool) for l in range(L - 1)
        ]
        self._drop_mask = [
            np.zeros((self.total_own, dims[l + 1]), dtype=np.float32)
            for l in range(L - 1)
        ]
        self._drop_active = [False] * (L - 1)

        # Per-layer, per-device views into the stacked buffers (static).
        self._own_views = [
            [x[self.own_off[k] : self.own_off[k + 1]] for k in range(len(devices))]
            for x in self._x
        ]
        self._halo_views = [
            [
                x[
                    self.total_own + self.halo_off[k] : self.total_own
                    + self.halo_off[k + 1]
                ]
                for k in range(len(devices))
            ]
            for x in self._x
        ]

        # Reduced-form gradient accumulators: one float64 buffer per
        # parameter of the (shared) replica structure, summed over devices
        # in rank order — allreduce_sum's exact operation order.
        self._params_by_dev = [dev.model.parameters() for dev in devices]
        self._acc = [np.zeros(p.shape, dtype=np.float64) for p in self._params_by_dev[0]]
        self._acc_by_id = {
            id(p): a for p, a in zip(self._params_by_dev[0], self._acc)
        }
        # Gradient of the current backward frontier (set by epoch_loss).
        self._d: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _own_slice(self, k: int) -> slice:
        return slice(int(self.own_off[k]), int(self.own_off[k + 1]))

    def _acc_add(self, param, partial: np.ndarray) -> None:
        self._acc_by_id[id(param)] += partial

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def begin_epoch(self) -> None:
        for acc in self._acc:
            acc.fill(0.0)
        self._d = None

    def forward_layer(self, layer, exchange, transport, *, training: bool) -> None:
        """Exchange halos, aggregate, and run layer ``layer``'s dense step."""
        x = self._x[layer]
        exchange.exchange_embeddings(
            layer,
            self.devices,
            transport,
            self._own_views[layer],
            out=self._halo_views[layer],
        )
        z = _spmv_into(self.matrix, x, self._z[layer])

        mod = self.devices[0].model.layers[layer]
        out_own = (
            self.logits if mod.is_output else self._x[layer + 1][: self.total_own]
        )
        conv = mod.conv
        if self.model_kind == "gcn":
            row_matmul(z, conv.linear.weight.data, out=out_own)
            out_own += conv.linear.bias.data
        else:
            row_matmul(x[: self.total_own], conv.root.weight.data, out=out_own)
            out_own += conv.root.bias.data
            neigh = row_matmul(z, conv.neigh.weight.data, out=self._neigh_out[layer])
            out_own += neigh
        if not mod.has_post_stage:
            return

        # LayerNorm — row-local, so stacked rows match per-device rows;
        # the formula lives in LayerNorm.forward_into (single source of
        # truth with the legacy forward).
        h = out_own
        self._inv_std[layer] = mod.norm.forward_into(h, self._x_hat[layer])

        # ReLU.
        relu_mask = self._relu_mask[layer]
        np.greater(h, 0, out=relu_mask)
        h *= relu_mask

        # Dropout: masks are drawn per device from that device's stream in
        # rank order (via Dropout.sample_mask, so stream consumption and
        # scaling match the legacy layer loop bit for bit); the multiply
        # then runs once on the stacked buffer.
        if training and mod.drop.p > 0.0:
            drop_mask = self._drop_mask[layer]
            for k, dev in enumerate(self.devices):
                sl = drop_mask[self._own_slice(k)]
                sl[...] = dev.model.layers[layer].drop.sample_mask(sl.shape)
            h *= drop_mask
            self._drop_active[layer] = True
        else:
            self._drop_active[layer] = False

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def epoch_loss(self, loss_fn) -> float:
        """Per-device losses on logit slices; gradients land in place.

        ``loss_fn(dev, logits_slice, out=grad_slice)`` must return
        ``(loss, d_logits)`` — the cluster passes its ``_loss`` (which
        carries the global normalizer).  Device losses are summed in rank
        order, reproducing the legacy Python-float accumulation exactly.
        """
        total = 0.0
        for k, dev in enumerate(self.devices):
            sl = self._own_slice(k)
            loss, _ = loss_fn(dev, self.logits[sl], out=self._d_logits[sl])
            total += loss
        self._d = self._d_logits
        return float(total)

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward_layer(self, layer, exchange, transport) -> None:
        """Backprop through layer ``layer`` and route halo gradients."""
        d_out = self._d
        if d_out is None:
            raise RuntimeError("backward_layer called before epoch_loss")
        mod = self.devices[0].model.layers[layer]

        if mod.has_post_stage:
            if self._drop_active[layer]:
                d_out *= self._drop_mask[layer]
            d_out *= self._relu_mask[layer]
            # LayerNorm: per-device parameter partials, stacked d_input
            # (the input-gradient formula is LayerNorm.input_grad).
            x_hat = self._x_hat[layer]
            prod = d_out * x_hat
            for k in range(len(self.devices)):
                sl = self._own_slice(k)
                self._acc_add(mod.norm.gamma, prod[sl].sum(axis=0))
                self._acc_add(mod.norm.beta, d_out[sl].sum(axis=0))
            d_out = mod.norm.input_grad(d_out, x_hat, self._inv_std[layer])

        conv = mod.conv
        z = self._z[layer]
        dx = self._dx[layer]
        if self.model_kind == "gcn":
            for k in range(len(self.devices)):
                sl = self._own_slice(k)
                self._acc_add(conv.linear.weight, z[sl].T @ d_out[sl])
                self._acc_add(conv.linear.bias, d_out[sl].sum(axis=0))
            d_z = row_matmul(d_out, conv.linear.weight.data.T, out=self._dz[layer])
            _spmv_into(self.matrix_t, d_z, dx)
            d_next = dx[: self.total_own]
        else:
            x_own = self._x[layer][: self.total_own]
            for k in range(len(self.devices)):
                sl = self._own_slice(k)
                self._acc_add(conv.root.weight, x_own[sl].T @ d_out[sl])
                self._acc_add(conv.root.bias, d_out[sl].sum(axis=0))
                self._acc_add(conv.neigh.weight, z[sl].T @ d_out[sl])
            d_next = row_matmul(d_out, conv.root.weight.data.T, out=self._d_own[layer])
            d_z = row_matmul(d_out, conv.neigh.weight.data.T, out=self._dz[layer])
            _spmv_into(self.matrix_t, d_z, dx)
            d_next += dx[: self.total_own]

        d_own_views = [d_next[self._own_slice(k)] for k in range(len(self.devices))]
        d_halo_views = [
            dx[
                self.total_own + self.halo_off[k] : self.total_own
                + self.halo_off[k + 1]
            ]
            for k in range(len(self.devices))
        ]
        exchange.exchange_gradients(
            layer, self.devices, transport, d_halo_views, d_own_views
        )
        self._d = d_next

    # ------------------------------------------------------------------
    # Gradient reduction
    # ------------------------------------------------------------------
    def reduce_gradients(self) -> int:
        """Distribute the reduced gradients to every replica.

        The accumulators already hold allreduce_sum's float64 totals (same
        addend order); each is rounded to float32 once and written into
        every device's ``Parameter.grad``.  Returns the reduced payload
        size in bytes (what one allreduce would move per device).
        """
        reduced = [acc.astype(np.float32) for acc in self._acc]
        for params in self._params_by_dev:
            for p, r in zip(params, reduced):
                p.grad[...] = r
        return int(sum(r.nbytes for r in reduced))

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def scatter_logits(self, out: np.ndarray) -> np.ndarray:
        """Write stacked per-device logits into a global (num_nodes, C) array."""
        out[self._owned_global] = self.logits
        return out
