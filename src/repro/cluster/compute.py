"""The cluster-fused compute engine: one kernel per layer step, all devices.

The legacy executor dispatches K per-device Python loops per layer — K
small spmv's, K ``np.vstack`` copies, K small GEMMs, K losses — although
every replica holds bit-identical weights.  In the many-partition regime
the paper's wall-clock results live in, those tiny dispatches dominate the
epoch (the same thesis PR 1 applied to quantize/pack/exchange).

:class:`FusedClusterCompute` executes the whole cluster's forward/backward
with cluster-wide operators instead:

* **one block-diagonal CSR** stacks every device's aggregation operator
  into a single global column space (owned columns first, halo columns
  after), so each layer's aggregation is one spmv — and its cached CSR
  transpose makes the backward routing one spmv too;
* **stacked activations** live in preallocated ``(ΣN_own + ΣN_halo, d)``
  buffers; the halo exchange writes decoded rows straight into the halo
  region (the ``out=`` contract of
  :meth:`~repro.cluster.exchange.HaloExchange.exchange_embeddings`), so
  the per-layer ``np.vstack`` copies disappear entirely;
* **one stacked GEMM** per layer runs every device's dense transform using
  the shared replica weights (via :func:`repro.nn.blas.row_matmul`, which
  keeps per-row results identical to the per-device GEMMs it replaces);
* **weight gradients accumulate directly in reduced form**: per-device
  partial gradients are summed into float64 accumulators in rank order —
  exactly :func:`repro.comm.allreduce.allreduce_sum`'s reduction — so the
  K flat gradient vectors the legacy path materializes are never built.

Numerical contract (asserted by ``tests/cluster/test_fused_compute.py``):
under the same seed the engine is **bit-identical** to the legacy
per-device path — same losses, same reduced model gradients, same wire
bytes — for every exchange policy (exact, quantized, fused-quantized,
stale, broadcast-skip).  Everything per-row is trivially identical; the
three non-obvious cases are (a) GEMMs, handled by ``row_matmul``'s
row-determinism, (b) spmv's, where the block-diagonal remap preserves
per-row column order so scipy's row-major accumulation is unchanged, and
(c) reductions (loss sums, gradient sums, ``sum(axis=0)`` of contiguous
slices), which replicate the legacy operation order exactly.

**Split-phase pipelined execution** (paper Sec. 3.1 / Fig. 7): with
``overlap`` enabled the engine runs each layer step as the paper's
three-stage pipeline instead of "exchange everything, then compute
everything".  Forward: post the boundary messages
(:meth:`~repro.cluster.exchange.HaloExchange.post_step`), run the
**central** sub-step while they are in flight (central rows of the
block-diagonal operator touch no halo column, so their aggregation and
dense update need no messages), then finalize the halos and run the
**marginal** sub-step.  Backward mirrors it dependency-first: the
marginal sub-step (halo-gradient routing needs only marginal rows of the
input-gradient GEMM) runs *before* the post, and parameter-gradient
accumulation plus owned-row routing overlap the in-flight messages.  The
central/marginal split is a row permutation of the same math: the
operator is split row-wise into two complementary CSRs whose
``csr_matvecs`` calls accumulate into the same output, and the dense
sub-steps run on contiguous *gathered* row blocks (``row_matmul``'s
row-determinism makes gathered sub-GEMMs equal the stacked GEMM bit for
bit).  The persistent stacked buffers keep their original row order —
permuting them would reorder reductions (loss sums, ``xᵀ·d`` weight
gradients) and break the bitwise contract.  Each overlapped step emits a
measured :class:`~repro.cluster.records.StepTimeline`.

**Two-deep cross-step lookahead** (``pipeline_depth=2``): the forward
pass posts layer L+1's marginal messages from *inside* layer L's
marginal sub-step — the moment its owned outputs land, before the
backward-cache scatters — so L+1's step begins with its messages
already in flight and its post stage collapses to a pending-step pop.
The backward pass mirrors it on the dependency axis (L-1's post needs
L's finalized gradient, so it cannot move earlier): each layer's
parameter-partial GEMMs are deferred into a closure flushed at the
start of the *next* step's central window, right after that step's
post, so the post dispatches sooner and the partials fill its in-flight
window.  Bitwise equivalence needs no rounding-mode gate: a lookahead
post fires only after the previous step's finalize has joined its tag,
so posts stay strictly ordered and at most one tag ever has outstanding
encode jobs — even the order-dependent stream-rounding contract is
preserved.  Deferred partials read only per-layer buffers (``_z``/
``_x``/``_x_hat``, LayerNorm's freshly-allocated input gradient, and
the *previous* frontier buffer), none of which the interposed step
touches, and per-accumulator addend order is unchanged because each
closure owns its layer's parameters exclusively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
import scipy.sparse as sp

from repro.cluster.exchange import step_tag
from repro.cluster.records import StepTimeline
from repro.cluster.runtime import DeviceRuntime
from repro.nn.blas import row_matmul

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.io import DeviceStreamOps

__all__ = [
    "FusedClusterCompute",
    "build_block_diagonal",
    "restrict_rows",
    "OverlapPlan",
]

#: Transport tag for streaming-mode page prefetch jobs.  On async backends
#: the next device's operator/feature pages fault in on a worker while the
#: main thread runs the current device's spmv/GEMM; synchronous backends
#: run the touch inline (a strided one-read-per-page scan, cheap next to
#: the kernels that follow it).
_PREFETCH_TAG = "stream/prefetch"

try:  # pragma: no cover - import guard
    from scipy.sparse import _sparsetools as _sptools

    _csr_matvecs = getattr(_sptools, "csr_matvecs", None)
except ImportError:  # pragma: no cover - scipy always present in this repo
    _csr_matvecs = None


def _spmv_into(matrix: sp.csr_matrix, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``out[...] = matrix @ x`` without the per-call result allocation.

    Uses scipy's ``csr_matvecs`` kernel directly when available (it is what
    ``matrix @ x`` calls after allocating a zeroed result, so results are
    bit-identical); falls back to the public operator otherwise.
    """
    if (
        _csr_matvecs is not None
        and x.flags.c_contiguous
        and out.flags.c_contiguous
        and x.dtype == matrix.dtype == out.dtype
    ):
        out.fill(0.0)
        n_row, n_col = matrix.shape
        _csr_matvecs(
            n_row,
            n_col,
            x.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            x.ravel(),
            out.ravel(),
        )
        return out
    out[...] = matrix @ x
    return out


def _spmv_accumulate(matrix: sp.csr_matrix, x: np.ndarray, out: np.ndarray) -> None:
    """``out += matrix @ x`` — the accumulate half of a row-split spmv.

    ``csr_matvecs`` natively accumulates into its output, which is exactly
    how the *full* operator's kernel builds each row (starting from the
    zero fill), so running the two complementary row-restricted operators
    through this produces bit-identical rows to one full-matrix call.
    """
    if (
        _csr_matvecs is not None
        and x.flags.c_contiguous
        and out.flags.c_contiguous
        and x.dtype == matrix.dtype == out.dtype
    ):
        n_row, n_col = matrix.shape
        _csr_matvecs(
            n_row,
            n_col,
            x.shape[1],
            matrix.indptr,
            matrix.indices,
            matrix.data,
            x.ravel(),
            out.ravel(),
        )
        return
    out += matrix @ x


def restrict_rows(matrix: sp.csr_matrix, row_mask: np.ndarray) -> sp.csr_matrix:
    """Same-shape copy of ``matrix`` keeping only the masked rows' entries.

    Unmasked rows become empty; kept rows carry their exact data/index
    spans, so per-row spmv accumulation order is untouched.  The two
    complements of a mask split one operator into the central and marginal
    halves the pipelined executor runs separately.
    """
    if row_mask.shape != (matrix.shape[0],):
        raise ValueError("row_mask must have one entry per matrix row")
    counts = np.diff(matrix.indptr)
    kept = np.where(row_mask, counts, 0)
    indptr = np.concatenate([[0], np.cumsum(kept)]).astype(matrix.indptr.dtype)
    sel = np.repeat(row_mask, counts)
    out = sp.csr_matrix(
        (matrix.data[sel], matrix.indices[sel], indptr), shape=matrix.shape
    )
    out.has_sorted_indices = matrix.has_sorted_indices
    out.has_canonical_format = matrix.has_canonical_format
    return out


@dataclass
class OverlapPlan:
    """Static structures of the split-phase pipeline (built once).

    ``rows_central``/``rows_marginal`` index the stacked owned region (its
    original row order); the four operators are row-splits of the engine's
    block-diagonal matrix and its transpose.  Central rows reference no
    halo column by construction — that independence is what makes the
    central sub-step legal before the halos arrive.
    """

    rows_central: np.ndarray
    rows_marginal: np.ndarray
    matrix_central: sp.csr_matrix
    matrix_marginal: sp.csr_matrix
    matrix_t_own: sp.csr_matrix  # routes gradients to owned rows
    matrix_t_halo: sp.csr_matrix  # routes gradients to halo rows (messages)


def build_block_diagonal(devices: list[DeviceRuntime]) -> sp.csr_matrix:
    """Stack per-device aggregation operators into one cluster operator.

    Row ``own_off[k] + i`` is device ``k``'s owned row ``i``; columns are
    remapped into the stacked buffer's global space — owned column ``j``
    of device ``k`` becomes ``own_off[k] + j`` and halo column ``j``
    becomes ``N_own + halo_off[k] + j``.  Both remaps are strictly
    monotone and all owned columns precede all halo columns, so every
    row's column order (hence scipy's accumulation order) is exactly the
    per-device operator's: ``(P_global @ X)`` rows are bit-identical to
    the K separate ``P_k @ x_k`` products they fuse.
    """
    n_own = np.array([d.part.n_owned for d in devices], dtype=np.int64)
    n_halo = np.array([d.part.n_halo for d in devices], dtype=np.int64)
    own_off = np.concatenate([[0], np.cumsum(n_own)])
    halo_off = np.concatenate([[0], np.cumsum(n_halo)])
    total_own, total_halo = int(own_off[-1]), int(halo_off[-1])

    data: list[np.ndarray] = []
    indices: list[np.ndarray] = []
    indptr: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
    nnz = 0
    for k, dev in enumerate(devices):
        m = dev.agg.matrix
        idx = m.indices.astype(np.int64, copy=True)
        own_cols = idx < n_own[k]
        idx[own_cols] += own_off[k]
        idx[~own_cols] += total_own + halo_off[k] - n_own[k]
        data.append(m.data)
        indices.append(idx)
        indptr.append(m.indptr[1:].astype(np.int64) + nnz)
        nnz += m.nnz
    fused = sp.csr_matrix(
        (
            np.concatenate(data),
            np.concatenate(indices),
            np.concatenate(indptr),
        ),
        shape=(total_own, total_own + total_halo),
    )
    # Per-device operators are canonical (sorted, deduplicated) and the
    # remap is order-preserving, so the stacked matrix already is too.
    fused.has_sorted_indices = True
    fused.has_canonical_format = True
    return fused


class FusedClusterCompute:
    """Whole-cluster forward/backward on stacked buffers.

    Built once per :class:`~repro.cluster.cluster.Cluster` (the step plan —
    operators, offsets, views, scratch — is static across epochs, in the
    spirit of PR 1's ``FusedStepPlan``); the cluster drives it layer by
    layer so phase records keep their legacy shape.

    Parameters
    ----------
    devices:
        The cluster's device runtimes (replicas must be bit-identical —
        the engine computes with device 0's weights on every row).
    dims:
        Layer widths ``[in, hidden, ..., out]``.
    model_kind:
        ``"gcn"`` or ``"sage"``.
    stream:
        Per-device :class:`~repro.graph.io.DeviceStreamOps` (one per
        device, rank order) to run in **streaming mode** — the huge-graph
        execution shape.  The block-diagonal operator is never
        materialized: aggregation runs device by device as column-split
        spmv pairs over the store's (typically memmapped) operators, the
        layer-0 input buffer shrinks to its halo block (owned features
        are read straight off the device's feature array), and layer 0's
        backward stops at the parameter partials — input features are not
        trainable, so the input-gradient GEMM, its routing spmv and the
        layer-0 gradient exchange are skipped (the only wire-byte
        difference from the standard engine; losses are unchanged).
        Each device's pages are released after use and the next device's
        are prefetched under the current kernels, bounding the resident
        window to roughly one partition.  ``None`` (default) selects the
        standard in-RAM engine.
    """

    def __init__(
        self,
        devices: list[DeviceRuntime],
        dims: list[int],
        model_kind: str,
        *,
        stream: "list[DeviceStreamOps] | None" = None,
    ) -> None:
        self.devices = devices
        self.dims = list(dims)
        self.model_kind = model_kind
        self.num_layers = len(dims) - 1
        if stream is not None and len(stream) != len(devices):
            raise ValueError("stream ops must match devices one-to-one")
        self.stream = list(stream) if stream is not None else None

        n_own = [d.part.n_owned for d in devices]
        n_halo = [d.part.n_halo for d in devices]
        self.own_off = np.concatenate([[0], np.cumsum(n_own)]).astype(np.int64)
        self.halo_off = np.concatenate([[0], np.cumsum(n_halo)]).astype(np.int64)
        self.total_own = int(self.own_off[-1])
        self.total_halo = int(self.halo_off[-1])
        self._max_own = int(max(n_own)) if n_own else 0
        n_rows = self.total_own + self.total_halo

        if self.stream is None:
            self.matrix = build_block_diagonal(devices)
            matrix_t = self.matrix.T.tocsr()
            matrix_t.sort_indices()
            self.matrix_t = matrix_t
        else:
            # Streaming mode never concatenates the per-device operators:
            # the store's column/row splits are used in place.
            self.matrix = None
            self.matrix_t = None

        self._owned_global = np.concatenate(
            [d.part.owned_global for d in devices]
        )

        L = self.num_layers
        # Layer inputs: [all owned rows][all halo rows] per the operator's
        # column space.  X[0]'s owned region holds the (static) features.
        # Streaming mode keeps only X[0]'s halo block resident (the
        # exchange's landing zone); owned features are read off the
        # device arrays, so the feature-width buffers — the dominant
        # allocations at huge-graph scale — are never duplicated in RAM.
        if self.stream is None:
            self._x0_halo = None
            self._x = [
                np.zeros((n_rows, dims[l]), dtype=np.float32) for l in range(L)
            ]
            for k, dev in enumerate(devices):
                self._x[0][self.own_off[k] : self.own_off[k + 1]] = dev.features
            self._z = [
                np.zeros((self.total_own, dims[l]), dtype=np.float32)
                for l in range(L)
            ]
            self._dz = [
                np.zeros((self.total_own, dims[l]), dtype=np.float32)
                for l in range(L)
            ]
            self._dx = [
                np.zeros((n_rows, dims[l]), dtype=np.float32) for l in range(L)
            ]
        else:
            self._x0_halo = np.zeros((self.total_halo, dims[0]), dtype=np.float32)
            self._x = [None] + [
                np.zeros((n_rows, dims[l]), dtype=np.float32) for l in range(1, L)
            ]
            # Layer 0's aggregated input lives in a reused (max_own, F)
            # scratch (recomputed per device in backward); its gradient
            # buffers are never needed — features are not trainable.
            self._z = [None] + [
                np.zeros((self.total_own, dims[l]), dtype=np.float32)
                for l in range(1, L)
            ]
            self._dz = [None] + [
                np.zeros((self.total_own, dims[l]), dtype=np.float32)
                for l in range(1, L)
            ]
            self._dx = [None] + [
                np.zeros((n_rows, dims[l]), dtype=np.float32) for l in range(1, L)
            ]
        self.logits = np.zeros((self.total_own, dims[-1]), dtype=np.float32)
        self._d_logits = np.zeros_like(self.logits)
        if model_kind == "sage":
            self._neigh_out = [
                np.zeros((self.total_own, dims[l + 1]), dtype=np.float32)
                for l in range(L)
            ]
            d_own0 = (
                [np.zeros((self.total_own, dims[0]), dtype=np.float32)]
                if self.stream is None
                else [None]
            )
            self._d_own = d_own0 + [
                np.zeros((self.total_own, dims[l]), dtype=np.float32)
                for l in range(1, L)
            ]
        # Post-processing caches (all but the output layer).
        self._x_hat = [
            np.zeros((self.total_own, dims[l + 1]), dtype=np.float32)
            for l in range(L - 1)
        ]
        self._inv_std: list[np.ndarray | None] = [None] * (L - 1)
        self._relu_mask = [
            np.zeros((self.total_own, dims[l + 1]), dtype=bool) for l in range(L - 1)
        ]
        self._drop_mask = [
            np.zeros((self.total_own, dims[l + 1]), dtype=np.float32)
            for l in range(L - 1)
        ]
        self._drop_active = [False] * (L - 1)

        # Per-layer, per-device views into the stacked buffers (static).
        # Streaming layer 0: own views alias the device feature arrays
        # (the exchange gathers send rows from them directly) and halo
        # views slice the dedicated halo block.
        self._own_views = [
            [dev.features for dev in devices]
            if x is None
            else [
                x[self.own_off[k] : self.own_off[k + 1]]
                for k in range(len(devices))
            ]
            for x in self._x
        ]
        self._halo_views = [
            [
                self._x0_halo[self.halo_off[k] : self.halo_off[k + 1]]
                for k in range(len(devices))
            ]
            if x is None
            else [
                x[
                    self.total_own + self.halo_off[k] : self.total_own
                    + self.halo_off[k + 1]
                ]
                for k in range(len(devices))
            ]
            for x in self._x
        ]

        # Split-phase pipeline state, built lazily on first overlapped step
        # (plus gather scratch and a persistent inv-std buffer per layer —
        # the split sub-steps scatter their halves into it).
        self._overlap_plan: OverlapPlan | None = None
        self._scratch_bufs: dict[tuple, np.ndarray] = {}
        self._inv_std_buf: list[np.ndarray | None] = [None] * (L - 1)

        # Reduced-form gradient accumulators: one float64 buffer per
        # parameter of the (shared) replica structure, summed over devices
        # in rank order — allreduce_sum's exact operation order.
        self._params_by_dev = [dev.model.parameters() for dev in devices]
        self._acc = [np.zeros(p.shape, dtype=np.float64) for p in self._params_by_dev[0]]
        self._acc_by_id = {
            id(p): a for p, a in zip(self._params_by_dev[0], self._acc)
        }
        # Gradient of the current backward frontier (set by epoch_loss).
        self._d: np.ndarray | None = None

        # Cross-step lookahead state (pipeline_depth=2): the forward
        # pass's posted-but-not-yet-consumed next step as
        # ``(layer, InFlightStep, dispatch_seconds)``, and the backward
        # pass's deferred parameter-partial closure.
        self._pending_fwd: tuple[int, object, float] | None = None
        self._deferred_partials = None

    # ------------------------------------------------------------------
    def _own_slice(self, k: int) -> slice:
        return slice(int(self.own_off[k]), int(self.own_off[k + 1]))

    def _acc_add(self, param, partial: np.ndarray) -> None:
        self._acc_by_id[id(param)] += partial

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def begin_epoch(self) -> None:
        for acc in self._acc:
            acc.fill(0.0)
        self._d = None
        # A completed epoch always consumes both (the last forward layer
        # never posts ahead; backward layer 0 flushes layer 1's partials
        # and runs its own inline) — clearing here only matters after an
        # aborted epoch.
        self._pending_fwd = None
        self._deferred_partials = None

    def forward_layer(self, layer, exchange, transport, *, training: bool) -> None:
        """Exchange halos, aggregate, and run layer ``layer``'s dense step."""
        if self.stream is not None:
            self._forward_layer_stream(layer, exchange, transport, training=training)
            return
        x = self._x[layer]
        exchange.exchange_embeddings(
            layer,
            self.devices,
            transport,
            self._own_views[layer],
            out=self._halo_views[layer],
        )
        z = _spmv_into(self.matrix, x, self._z[layer])

        mod = self.devices[0].model.layers[layer]
        out_own = (
            self.logits if mod.is_output else self._x[layer + 1][: self.total_own]
        )
        conv = mod.conv
        if self.model_kind == "gcn":
            row_matmul(z, conv.linear.weight.data, out=out_own)
            out_own += conv.linear.bias.data
        else:
            row_matmul(x[: self.total_own], conv.root.weight.data, out=out_own)
            out_own += conv.root.bias.data
            neigh = row_matmul(z, conv.neigh.weight.data, out=self._neigh_out[layer])
            out_own += neigh
        if not mod.has_post_stage:
            return
        self._forward_post(layer, mod, out_own, training)

    def _forward_post(self, layer: int, mod, h: np.ndarray, training: bool) -> None:
        """LayerNorm → ReLU → dropout on the stacked owned rows.

        Shared by the standard and streaming forward shapes — every
        operation is row-local (or, for dropout, drawn per device in rank
        order via the single ``_sample_dropout`` site), so stacked rows
        match per-device rows bit for bit whichever shape produced ``h``.
        """
        # LayerNorm — the formula lives in LayerNorm.forward_into (single
        # source of truth with the legacy forward).
        self._inv_std[layer] = mod.norm.forward_into(h, self._x_hat[layer])

        # ReLU.
        relu_mask = self._relu_mask[layer]
        np.greater(h, 0, out=relu_mask)
        h *= relu_mask

        # Dropout: masks are drawn per device from that device's stream in
        # rank order, then the multiply runs once on the stacked buffer.
        self._sample_dropout(layer, mod, training)
        if self._drop_active[layer]:
            h *= self._drop_mask[layer]

    # ------------------------------------------------------------------
    # Streaming (out-of-core) execution
    # ------------------------------------------------------------------
    def _stream_prefetch(self, transport, k: int, *, features: bool) -> None:
        """Queue a page-fault pass for device ``k+1`` under the current
        device's kernels (no-op past the last device).

        ``features`` must be True only on the layer-0 loops (the only
        steps that read the feature regions *and* release them after):
        faulting features under a hidden-layer step would leave them
        resident with no release to reclaim them.
        """
        if k + 1 < len(self.devices):
            nxt = self.stream[k + 1]
            transport.defer(_PREFETCH_TAG, nxt.touch if features else nxt.touch_ops)

    def _forward_layer_stream(
        self, layer, exchange, transport, *, training: bool
    ) -> None:
        """One forward layer against the store: per-device split aggregation.

        Aggregation runs device by device as a column-split spmv pair over
        the store's operators (``own`` zero-fills, ``halo`` accumulates) —
        bit-identical to the block-diagonal spmv because scipy accumulates
        each output row in stored column order and the canonical local
        ordering puts every owned column before every halo column.  Layer 0
        reads features straight off the (typically memmapped) device arrays
        and releases each device's operator + feature pages the moment its
        rows are consumed, so the resident window stays near one
        partition's working set; deeper layers release operator pages only
        (their activations are hidden-width RAM buffers).
        """
        devices = self.devices
        mod = devices[0].model.layers[layer]
        conv = mod.conv
        exchange.exchange_embeddings(
            layer,
            devices,
            transport,
            self._own_views[layer],
            out=self._halo_views[layer],
        )
        out_own = (
            self.logits if mod.is_output else self._x[layer + 1][: self.total_own]
        )
        if layer == 0:
            # The exchange's boundary-row gather faulted scattered
            # feature pages across every device; drop them all before the
            # aggregation loop re-faults one device window at a time.
            for ops in self.stream:
                ops.release_feature_pages()
            zbuf = self._scratch("stream_z0", self._max_own, self.dims[0])
            for k, dev in enumerate(devices):
                ops = self.stream[k]
                self._stream_prefetch(transport, k, features=True)
                sl = self._own_slice(k)
                z = zbuf[: dev.part.n_owned]
                _spmv_into(ops.own, dev.features, z)
                _spmv_accumulate(ops.halo, self._halo_views[0][k], z)
                # Per-slice GEMM + bias: row_matmul's row-determinism and
                # the elementwise bias add make the per-device blocks
                # bitwise equal to the stacked full-buffer calls.
                if self.model_kind == "gcn":
                    row_matmul(z, conv.linear.weight.data, out=out_own[sl])
                    out_own[sl] += conv.linear.bias.data
                else:
                    row_matmul(dev.features, conv.root.weight.data, out=out_own[sl])
                    out_own[sl] += conv.root.bias.data
                    neigh = row_matmul(
                        z, conv.neigh.weight.data, out=self._neigh_out[0][sl]
                    )
                    out_own[sl] += neigh
                ops.release_op_pages()
                ops.release_feature_pages()
            transport.complete(_PREFETCH_TAG)
        else:
            x = self._x[layer]
            z = self._z[layer]
            for k in range(len(devices)):
                ops = self.stream[k]
                self._stream_prefetch(transport, k, features=False)
                sl = self._own_slice(k)
                _spmv_into(ops.own, x[sl], z[sl])
                _spmv_accumulate(ops.halo, self._halo_views[layer][k], z[sl])
                ops.release_op_pages()
            transport.complete(_PREFETCH_TAG)
            if self.model_kind == "gcn":
                row_matmul(z, conv.linear.weight.data, out=out_own)
                out_own += conv.linear.bias.data
            else:
                row_matmul(x[: self.total_own], conv.root.weight.data, out=out_own)
                out_own += conv.root.bias.data
                neigh = row_matmul(
                    z, conv.neigh.weight.data, out=self._neigh_out[layer]
                )
                out_own += neigh
        if not mod.has_post_stage:
            return
        self._forward_post(layer, mod, out_own, training)

    # ------------------------------------------------------------------
    # Split-phase pipelined execution
    # ------------------------------------------------------------------
    def overlap_plan(self) -> OverlapPlan:
        """The split-phase operators and row sets (built once, cached)."""
        if self.stream is not None:
            raise RuntimeError(
                "the split-phase pipeline needs the block-diagonal operator;"
                " streaming mode runs non-overlapped"
            )
        if self._overlap_plan is None:
            # Deferred import: repro.core's package __init__ pulls in the
            # trainer, which imports this module right back.
            from repro.core.decompose import split_rows

            splits = [split_rows(dev.part) for dev in self.devices]
            rows_central = np.concatenate(
                [self.own_off[k] + s.central_rows for k, s in enumerate(splits)]
            ).astype(np.int64)
            rows_marginal = np.concatenate(
                [self.own_off[k] + s.marginal_rows for k, s in enumerate(splits)]
            ).astype(np.int64)
            central_mask = np.zeros(self.total_own, dtype=bool)
            central_mask[rows_central] = True
            matrix_central = restrict_rows(self.matrix, central_mask)
            has_halo_cols = matrix_central.nnz and (
                int(matrix_central.indices.max()) >= self.total_own
            )
            if has_halo_cols:
                raise AssertionError(
                    "central rows reference halo columns — marginal masks broken"
                )
            self._overlap_plan = OverlapPlan(
                rows_central=rows_central,
                rows_marginal=rows_marginal,
                matrix_central=matrix_central,
                matrix_marginal=restrict_rows(self.matrix, ~central_mask),
                matrix_t_own=self.matrix_t[: self.total_own],
                matrix_t_halo=self.matrix_t[self.total_own :],
            )
        return self._overlap_plan

    def _scratch(self, name: str, rows: int, cols: int, dtype=np.float32) -> np.ndarray:
        """Reusable gather block; keyed by use-site so lifetimes never clash."""
        key = (name, rows, cols, np.dtype(dtype).str)
        buf = self._scratch_bufs.get(key)
        if buf is None:
            buf = np.empty((rows, cols), dtype=dtype)
            self._scratch_bufs[key] = buf
        return buf

    def _sample_dropout(self, layer: int, mod, training: bool) -> None:
        """Draw the step's dropout masks (all devices, rank order).

        The single sampling site for both engine shapes: one
        ``sample_mask`` call per device of the full owned-slice shape, in
        rank order.  Masks never depend on activations, so the pipelined
        path drawing them at the start of the central window (before the
        marginal rows exist) consumes the streams identically to the
        non-overlapped path drawing them after ReLU.
        """
        if training and mod.drop.p > 0.0:
            drop_mask = self._drop_mask[layer]
            for k, dev in enumerate(self.devices):
                sl = drop_mask[self._own_slice(k)]
                sl[...] = dev.model.layers[layer].drop.sample_mask(sl.shape)
            self._drop_active[layer] = True
        else:
            self._drop_active[layer] = False

    def _forward_substep(
        self, layer: int, rows: np.ndarray, after_out=None
    ) -> None:
        """Dense half of layer ``layer`` for one row set (central or marginal).

        Gathers the rows into a contiguous block, runs the same GEMM /
        LayerNorm / ReLU / dropout pipeline as :meth:`forward_layer`, and
        scatters results (plus the backward caches) into the persistent
        buffers.  Every operation is row-local or row-deterministic, so
        the scattered rows are bit-identical to the full-step values.

        ``after_out`` (if given) fires the moment ``out_own[rows]`` has
        been written — before the backward-cache scatters — on every
        path, including empty row sets.  The cross-step lookahead hooks
        its next-layer post here: the next layer's input is complete at
        that point, and the cache scatters are pure writes the callback
        cannot observe, so firing early is free latency.
        """
        if rows.size == 0:
            if after_out is not None:
                after_out()
            return
        mod = self.devices[0].model.layers[layer]
        conv = mod.conv
        d_in, d_out = self.dims[layer], self.dims[layer + 1]
        out_own = self.logits if mod.is_output else self._x[layer + 1][: self.total_own]
        n = int(rows.size)
        h = self._scratch("fwd_h", n, d_out)
        zc = self._scratch("fwd_zin", n, d_in)
        np.take(self._z[layer], rows, axis=0, out=zc)
        if self.model_kind == "gcn":
            row_matmul(zc, conv.linear.weight.data, out=h)
            h += conv.linear.bias.data
        else:
            xc = self._scratch("fwd_xin", n, d_in)
            np.take(self._x[layer][: self.total_own], rows, axis=0, out=xc)
            row_matmul(xc, conv.root.weight.data, out=h)
            h += conv.root.bias.data
            neigh = self._scratch("fwd_nh", n, d_out)
            row_matmul(zc, conv.neigh.weight.data, out=neigh)
            h += neigh
        if not mod.has_post_stage:
            out_own[rows] = h
            if after_out is not None:
                after_out()
            return

        x_hat = self._scratch("fwd_xhat", n, d_out)
        inv_std = mod.norm.forward_into(h, x_hat)

        relu_mask = self._scratch("fwd_relu", n, d_out, dtype=bool)
        np.greater(h, 0, out=relu_mask)
        h *= relu_mask

        if self._drop_active[layer]:
            dm = self._scratch("fwd_dm", n, d_out)
            np.take(self._drop_mask[layer], rows, axis=0, out=dm)
            h *= dm
        out_own[rows] = h
        if after_out is not None:
            after_out()

        # Backward caches; pure scatters of already-final values, so they
        # can land after the callback has posted the next layer.
        self._x_hat[layer][rows] = x_hat
        buf = self._inv_std_buf[layer]
        if buf is None or buf.dtype != inv_std.dtype:
            buf = np.empty((self.total_own, 1), dtype=inv_std.dtype)
            self._inv_std_buf[layer] = buf
        buf[rows] = inv_std
        self._inv_std[layer] = buf
        self._relu_mask[layer][rows] = relu_mask

    def forward_layer_overlap(
        self, layer, exchange, transport, *, training: bool, lookahead: bool = False
    ) -> StepTimeline:
        """One forward layer as the paper's pipeline; returns its timeline.

        Stage 1 posts the boundary rows (gather + quantize + post); the
        central sub-step runs while those messages are in flight; stage 3
        finalizes the halos (collect + de-quantize + scatter in place)
        and runs the marginal sub-step.

        With ``lookahead=True`` (pipeline_depth=2) the marginal sub-step
        additionally posts layer ``layer + 1``'s messages the moment its
        owned outputs land — before the backward-cache scatters — and the
        next call finds that step pending and skips its own post stage;
        its ``quantize_s``/``lookahead_post_s`` then report the dispatch
        seconds paid inside this step's marginal window.
        """
        plan = self.overlap_plan()
        mod = self.devices[0].model.layers[layer]
        t0 = time.perf_counter()
        pending = self._pending_fwd
        was_pending = pending is not None and pending[0] == layer
        if was_pending:
            # Posted by the previous layer's marginal sub-step; its tag's
            # overlap window has been open since then, so every byte of
            # this step was in flight before the central window below.
            self._pending_fwd = None
            step = pending[1]
            lookahead_post_s = float(pending[2])
            post_s = lookahead_post_s
        else:
            # Open the overlap window *before* posting: async workers may
            # post (and, with worker-side decode, even collect) the step's
            # traffic before this thread runs again, and bytes only count
            # as hidden if the window is already open when they land.  For
            # the synchronous transport the accounting is unchanged —
            # everything posts into the open window instead of being
            # pending at note_overlap time.
            transport.note_overlap(step_tag("fwd", layer))
            # Naming the halo destinations at post time lets async fused
            # exchanges scatter on their workers; finalize below passes
            # the same list and becomes join-only on that path.
            step = exchange.post_step(
                layer,
                "fwd",
                self.devices,
                transport,
                self._own_views[layer],
                out=self._halo_views[layer],
            )
            lookahead_post_s = 0.0
            post_s = None
        t1 = time.perf_counter()
        if post_s is None:
            post_s = t1 - t0

        # Central window: aggregation + dense update of central rows only.
        z = self._z[layer]
        z.fill(0.0)
        _spmv_accumulate(plan.matrix_central, self._x[layer], z)
        if mod.has_post_stage:
            self._sample_dropout(layer, mod, training)
        self._forward_substep(layer, plan.rows_central)
        t2 = time.perf_counter()

        exchange.finalize_step(step, out=self._halo_views[layer])
        t3 = time.perf_counter()

        nxt = layer + 1
        after_out = None
        if lookahead and nxt < self.num_layers:
            # Fires inside the marginal sub-step, right after the next
            # layer's owned input rows are complete.  Posting here is safe
            # for stream rounding too: this step's finalize (above) joined
            # every job of tag L, so the next tag's encode jobs are the
            # only ones outstanding and posts stay strictly ordered.
            def after_out() -> None:
                tp = time.perf_counter()
                transport.note_overlap(step_tag("fwd", nxt))
                step_next = exchange.post_step(
                    nxt,
                    "fwd",
                    self.devices,
                    transport,
                    self._own_views[nxt],
                    out=self._halo_views[nxt],
                )
                self._pending_fwd = (nxt, step_next, time.perf_counter() - tp)

        _spmv_accumulate(plan.matrix_marginal, self._x[layer], z)
        self._forward_substep(layer, plan.rows_marginal, after_out=after_out)
        t4 = time.perf_counter()
        # Overlapped bytes are read after finalize: under the async
        # transport the worker's posts land mid-window, and they count as
        # hidden only because the window was still open when they arrived.
        return StepTimeline(
            layer=layer,
            phase="fwd",
            quantize_s=post_s,
            comm_s=0.0,
            central_s=t2 - t1,
            dequantize_s=t3 - t2,
            marginal_s=t4 - t3,
            comp_full_s=(t2 - t1) + (t4 - t3),
            overlapped_bytes=transport.overlapped_bytes(step.tag),
            total_bytes=int(transport.bytes_matrix(step.tag).sum()),
            measured=True,
            worker_wait_s=step.worker_wait_s,
            pipeline_depth=2 if (was_pending or after_out is not None) else 1,
            lookahead_post_s=lookahead_post_s,
        )

    def _input_grad_rows(
        self,
        d_out: np.ndarray,
        rows: np.ndarray,
        weight_t: np.ndarray,
        target: np.ndarray,
    ) -> None:
        """``target[rows] = d_out[rows] @ weight_t`` via a contiguous gather."""
        if rows.size == 0:
            return
        n = int(rows.size)
        a = self._scratch("bwd_din", n, d_out.shape[1])
        np.take(d_out, rows, axis=0, out=a)
        o = self._scratch("bwd_dz", n, weight_t.shape[1])
        row_matmul(a, weight_t, out=o)
        target[rows] = o

    def backward_layer_overlap(
        self, layer, exchange, transport, *, defer_partials: bool = False
    ) -> StepTimeline:
        """One backward layer as the pipeline, dependency-first.

        The marginal sub-step runs *before* the post: outgoing halo
        gradients are ``Pᵀ``'s halo rows, which read only marginal rows of
        the input-gradient GEMM.  While the messages fly, the central
        window finishes the GEMM's central rows, accumulates every
        parameter partial (same per-accumulator order as the
        non-overlapped engine) and routes owned-row gradients; finalize
        then adds the received gradients in place.

        With ``defer_partials=True`` (pipeline_depth=2) this layer's
        parameter-partial GEMMs are captured in a closure instead of
        running here; the *next* (shallower) step flushes it at the start
        of its central window, right after its own post — so each post
        dispatches as early as its data dependencies allow and the
        deferred GEMMs land inside the in-flight window they help hide.
        The closure reads only per-layer buffers the interposed step never
        touches, and each parameter's addend order is unchanged, so
        gradients stay bitwise-identical.
        """
        d_out = self._d
        if d_out is None:
            raise RuntimeError("backward_layer_overlap called before epoch_loss")
        plan = self.overlap_plan()
        mod = self.devices[0].model.layers[layer]
        conv = mod.conv
        t0 = time.perf_counter()

        # Marginal-first: post-ops backward, then the marginal input-grad
        # rows and the halo routing they feed.
        d_out_pre: np.ndarray | None = None
        if mod.has_post_stage:
            if self._drop_active[layer]:
                d_out *= self._drop_mask[layer]
            d_out *= self._relu_mask[layer]
            d_out_pre = d_out  # post-multiplied, pre-norm (partials read it)
            d_out = mod.norm.input_grad(
                d_out, self._x_hat[layer], self._inv_std[layer]
            )
        weight_t = (
            conv.linear.weight.data.T
            if self.model_kind == "gcn"
            else conv.neigh.weight.data.T
        )
        dz = self._dz[layer]
        dx = self._dx[layer]
        self._input_grad_rows(d_out, plan.rows_marginal, weight_t, dz)
        _spmv_into(plan.matrix_t_halo, dz, dx[self.total_own :])
        d_halo_views = [
            dx[
                self.total_own + self.halo_off[k] : self.total_own
                + self.halo_off[k + 1]
            ]
            for k in range(len(self.devices))
        ]
        t1 = time.perf_counter()
        # Window first, then post — see forward_layer_overlap.
        transport.note_overlap(step_tag("bwd", layer))
        step = exchange.post_step(
            layer, "bwd", self.devices, transport, d_halo_views
        )
        t2 = time.perf_counter()

        # Flush the previous (deeper) layer's deferred partials now that
        # this step's messages are dispatched: the GEMMs land inside this
        # step's in-flight window instead of delaying the post above.
        flush = self._deferred_partials
        if flush is not None:
            self._deferred_partials = None
            flush()

        # Central window: remaining input-grad rows, parameter partials,
        # owned-row gradient routing.
        self._input_grad_rows(d_out, plan.rows_central, weight_t, dz)
        z = self._z[layer]

        def partials(d_out=d_out, d_out_pre=d_out_pre) -> None:
            if mod.has_post_stage:
                assert d_out_pre is not None
                prod = d_out_pre * self._x_hat[layer]
                for k in range(len(self.devices)):
                    sl = self._own_slice(k)
                    self._acc_add(mod.norm.gamma, prod[sl].sum(axis=0))
                    self._acc_add(mod.norm.beta, d_out_pre[sl].sum(axis=0))
            if self.model_kind == "gcn":
                for k in range(len(self.devices)):
                    sl = self._own_slice(k)
                    self._acc_add(conv.linear.weight, z[sl].T @ d_out[sl])
                    self._acc_add(conv.linear.bias, d_out[sl].sum(axis=0))
            else:
                x_own = self._x[layer][: self.total_own]
                for k in range(len(self.devices)):
                    sl = self._own_slice(k)
                    self._acc_add(conv.root.weight, x_own[sl].T @ d_out[sl])
                    self._acc_add(conv.root.bias, d_out[sl].sum(axis=0))
                    self._acc_add(conv.neigh.weight, z[sl].T @ d_out[sl])

        if defer_partials:
            self._deferred_partials = partials
        else:
            partials()
        if self.model_kind == "gcn":
            _spmv_into(plan.matrix_t_own, dz, dx[: self.total_own])
            d_next = dx[: self.total_own]
        else:
            d_next = row_matmul(d_out, conv.root.weight.data.T, out=self._d_own[layer])
            _spmv_into(plan.matrix_t_own, dz, dx[: self.total_own])
            d_next += dx[: self.total_own]
        t3 = time.perf_counter()

        d_own_views = [d_next[self._own_slice(k)] for k in range(len(self.devices))]
        exchange.finalize_step(step, out=d_own_views)
        t4 = time.perf_counter()
        self._d = d_next
        return StepTimeline(
            layer=layer,
            phase="bwd",
            quantize_s=t2 - t1,
            comm_s=0.0,
            central_s=t3 - t2,
            dequantize_s=t4 - t3,
            marginal_s=t1 - t0,
            comp_full_s=(t1 - t0) + (t3 - t2),
            overlapped_bytes=transport.overlapped_bytes(step.tag),
            total_bytes=int(transport.bytes_matrix(step.tag).sum()),
            measured=True,
            worker_wait_s=step.worker_wait_s,
            pipeline_depth=2 if (defer_partials or flush is not None) else 1,
        )

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def epoch_loss(self, loss_fn) -> float:
        """Per-device losses on logit slices; gradients land in place.

        ``loss_fn(dev, logits_slice, out=grad_slice)`` must return
        ``(loss, d_logits)`` — the cluster passes its ``_loss`` (which
        carries the global normalizer).  Device losses are summed in rank
        order, reproducing the legacy Python-float accumulation exactly.
        """
        total = 0.0
        for k, dev in enumerate(self.devices):
            sl = self._own_slice(k)
            loss, _ = loss_fn(dev, self.logits[sl], out=self._d_logits[sl])
            total += loss
        self._d = self._d_logits
        return float(total)

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward_layer(self, layer, exchange, transport) -> None:
        """Backprop through layer ``layer`` and route halo gradients."""
        if self.stream is not None:
            self._backward_layer_stream(layer, exchange, transport)
            return
        d_out = self._d
        if d_out is None:
            raise RuntimeError("backward_layer called before epoch_loss")
        mod = self.devices[0].model.layers[layer]

        if mod.has_post_stage:
            if self._drop_active[layer]:
                d_out *= self._drop_mask[layer]
            d_out *= self._relu_mask[layer]
            # LayerNorm: per-device parameter partials, stacked d_input
            # (the input-gradient formula is LayerNorm.input_grad).
            x_hat = self._x_hat[layer]
            prod = d_out * x_hat
            for k in range(len(self.devices)):
                sl = self._own_slice(k)
                self._acc_add(mod.norm.gamma, prod[sl].sum(axis=0))
                self._acc_add(mod.norm.beta, d_out[sl].sum(axis=0))
            d_out = mod.norm.input_grad(d_out, x_hat, self._inv_std[layer])

        conv = mod.conv
        z = self._z[layer]
        dx = self._dx[layer]
        if self.model_kind == "gcn":
            for k in range(len(self.devices)):
                sl = self._own_slice(k)
                self._acc_add(conv.linear.weight, z[sl].T @ d_out[sl])
                self._acc_add(conv.linear.bias, d_out[sl].sum(axis=0))
            d_z = row_matmul(d_out, conv.linear.weight.data.T, out=self._dz[layer])
            _spmv_into(self.matrix_t, d_z, dx)
            d_next = dx[: self.total_own]
        else:
            x_own = self._x[layer][: self.total_own]
            for k in range(len(self.devices)):
                sl = self._own_slice(k)
                self._acc_add(conv.root.weight, x_own[sl].T @ d_out[sl])
                self._acc_add(conv.root.bias, d_out[sl].sum(axis=0))
                self._acc_add(conv.neigh.weight, z[sl].T @ d_out[sl])
            d_next = row_matmul(d_out, conv.root.weight.data.T, out=self._d_own[layer])
            d_z = row_matmul(d_out, conv.neigh.weight.data.T, out=self._dz[layer])
            _spmv_into(self.matrix_t, d_z, dx)
            d_next += dx[: self.total_own]

        d_own_views = [d_next[self._own_slice(k)] for k in range(len(self.devices))]
        d_halo_views = [
            dx[
                self.total_own + self.halo_off[k] : self.total_own
                + self.halo_off[k + 1]
            ]
            for k in range(len(self.devices))
        ]
        exchange.exchange_gradients(
            layer, self.devices, transport, d_halo_views, d_own_views
        )
        self._d = d_next

    def _route_gradients_stream(self, d_z, dx, transport) -> None:
        """``dx = Pᵀ d_z`` via per-device row-split store operators.

        Each output row of the block transpose reads only its own device's
        ``d_z`` slice (the operator is block-diagonal), and row splits of a
        CSR spmv are trivially bitwise — so this equals the standard
        engine's single ``matrix_t`` spmv row for row.
        """
        for k in range(len(self.devices)):
            ops = self.stream[k]
            self._stream_prefetch(transport, k, features=False)
            sl = self._own_slice(k)
            _spmv_into(ops.own_t, d_z[sl], dx[sl])
            _spmv_into(
                ops.halo_t,
                d_z[sl],
                dx[
                    self.total_own + self.halo_off[k] : self.total_own
                    + self.halo_off[k + 1]
                ],
            )
            ops.release_op_pages()
        transport.complete(_PREFETCH_TAG)

    def _backward_layer_stream(self, layer, exchange, transport) -> None:
        """Backprop one layer in streaming mode.

        Layers ≥ 1 mirror the standard engine (same partial-accumulation
        order per parameter) with the routing spmv replaced by
        :meth:`_route_gradients_stream`.  Layer 0 stops at the parameter
        partials: input features are not trainable, so the input-gradient
        GEMM, its routing spmv and the layer-0 gradient exchange are
        skipped entirely — the only wire-traffic difference from the
        standard engine (losses and every other step's bytes are
        unchanged, and keyed rounding makes each step's noise independent
        of which steps run).  The aggregated layer-0 input ``z`` is
        recomputed per device from the store — bit-identical to the
        forward value, since it reruns the identical split spmv on
        unchanged inputs — instead of keeping an (N, F) buffer resident.
        """
        d_out = self._d
        if d_out is None:
            raise RuntimeError("backward_layer called before epoch_loss")
        devices = self.devices
        mod = devices[0].model.layers[layer]

        if mod.has_post_stage:
            if self._drop_active[layer]:
                d_out *= self._drop_mask[layer]
            d_out *= self._relu_mask[layer]
            x_hat = self._x_hat[layer]
            prod = d_out * x_hat
            for k in range(len(devices)):
                sl = self._own_slice(k)
                self._acc_add(mod.norm.gamma, prod[sl].sum(axis=0))
                self._acc_add(mod.norm.beta, d_out[sl].sum(axis=0))
            d_out = mod.norm.input_grad(d_out, x_hat, self._inv_std[layer])

        conv = mod.conv
        if layer == 0:
            zbuf = self._scratch("stream_z0", self._max_own, self.dims[0])
            for k, dev in enumerate(devices):
                ops = self.stream[k]
                self._stream_prefetch(transport, k, features=True)
                sl = self._own_slice(k)
                z = zbuf[: dev.part.n_owned]
                _spmv_into(ops.own, dev.features, z)
                _spmv_accumulate(ops.halo, self._halo_views[0][k], z)
                if self.model_kind == "gcn":
                    self._acc_add(conv.linear.weight, z.T @ d_out[sl])
                    self._acc_add(conv.linear.bias, d_out[sl].sum(axis=0))
                else:
                    self._acc_add(conv.root.weight, dev.features.T @ d_out[sl])
                    self._acc_add(conv.root.bias, d_out[sl].sum(axis=0))
                    self._acc_add(conv.neigh.weight, z.T @ d_out[sl])
                ops.release_op_pages()
                ops.release_feature_pages()
            transport.complete(_PREFETCH_TAG)
            self._d = None
            return

        z = self._z[layer]
        dx = self._dx[layer]
        if self.model_kind == "gcn":
            for k in range(len(devices)):
                sl = self._own_slice(k)
                self._acc_add(conv.linear.weight, z[sl].T @ d_out[sl])
                self._acc_add(conv.linear.bias, d_out[sl].sum(axis=0))
            d_z = row_matmul(d_out, conv.linear.weight.data.T, out=self._dz[layer])
            self._route_gradients_stream(d_z, dx, transport)
            d_next = dx[: self.total_own]
        else:
            x_own = self._x[layer][: self.total_own]
            for k in range(len(devices)):
                sl = self._own_slice(k)
                self._acc_add(conv.root.weight, x_own[sl].T @ d_out[sl])
                self._acc_add(conv.root.bias, d_out[sl].sum(axis=0))
                self._acc_add(conv.neigh.weight, z[sl].T @ d_out[sl])
            d_next = row_matmul(d_out, conv.root.weight.data.T, out=self._d_own[layer])
            d_z = row_matmul(d_out, conv.neigh.weight.data.T, out=self._dz[layer])
            self._route_gradients_stream(d_z, dx, transport)
            d_next += dx[: self.total_own]

        d_own_views = [d_next[self._own_slice(k)] for k in range(len(devices))]
        d_halo_views = [
            dx[
                self.total_own + self.halo_off[k] : self.total_own
                + self.halo_off[k + 1]
            ]
            for k in range(len(devices))
        ]
        exchange.exchange_gradients(
            layer, devices, transport, d_halo_views, d_own_views
        )
        self._d = d_next

    # ------------------------------------------------------------------
    # Gradient reduction
    # ------------------------------------------------------------------
    def reduce_gradients(self) -> int:
        """Distribute the reduced gradients to every replica.

        The accumulators already hold allreduce_sum's float64 totals (same
        addend order); each is rounded to float32 once and written into
        every device's ``Parameter.grad``.  Returns the reduced payload
        size in bytes (what one allreduce would move per device).
        """
        reduced = [acc.astype(np.float32) for acc in self._acc]
        for params in self._params_by_dev:
            for p, r in zip(params, reduced):
                p.grad[...] = r
        return int(sum(r.nbytes for r in reduced))

    # ------------------------------------------------------------------
    # Evaluation helpers
    # ------------------------------------------------------------------
    def scatter_logits(self, out: np.ndarray) -> np.ndarray:
        """Write stacked per-device logits into a global (num_nodes, C) array."""
        out[self._owned_global] = self.logits
        return out
