"""Simulated multi-GPU cluster runtime.

One :class:`DeviceRuntime` per simulated GPU holds that device's graph
partition, aggregation operator, model replica and RNG streams.  The
:class:`Cluster` drives all devices in lock-step through real forward and
backward passes, routing *real* halo payloads through the
:class:`~repro.comm.transport.Transport` (so every byte on the simulated
wire is a byte that was actually produced, quantized and packed), and
records the per-layer byte matrices and FLOP counts that the schedule
simulators turn into epoch times.
"""

from repro.cluster.compute import FusedClusterCompute, build_block_diagonal
from repro.cluster.memory import MemoryFootprint, estimate_memory
from repro.cluster.perfmodel import PerfModel
from repro.cluster.records import EpochRecord, PhaseRecord, StepTimeline, TimelineSummary
from repro.cluster.exchange import (
    BitProvider,
    ExactHaloExchange,
    FixedBitProvider,
    FusedQuantizedHaloExchange,
    HaloExchange,
    QuantizedHaloExchange,
    UniformRandomBitProvider,
)
from repro.cluster.runtime import DeviceRuntime
from repro.cluster.cluster import Cluster

__all__ = [
    "FusedClusterCompute",
    "build_block_diagonal",
    "MemoryFootprint",
    "estimate_memory",
    "PerfModel",
    "EpochRecord",
    "PhaseRecord",
    "StepTimeline",
    "TimelineSummary",
    "HaloExchange",
    "ExactHaloExchange",
    "QuantizedHaloExchange",
    "FusedQuantizedHaloExchange",
    "BitProvider",
    "FixedBitProvider",
    "UniformRandomBitProvider",
    "DeviceRuntime",
    "Cluster",
]
