"""Stochastic integer quantization (paper Eqns. 4–5, Theorem 1).

For a message vector ``h`` and bit-width ``b``:

* zero-point ``Z = min(h)``;
* scale ``S = (max(h) - min(h)) / (2^b - 1)``;
* quantized value ``q = round_st((h - Z) / S)`` where ``round_st`` rounds up
  with probability equal to the fractional part (stochastic rounding);
* de-quantization ``ĥ = q * S + Z``.

Stochastic rounding makes ``E[ĥ] = h`` (unbiased) with per-element variance
at most ``S²/6`` under the uniform-fraction assumption, giving Theorem 1's
vector variance ``D · S² / 6``.

**Rounding-noise sources.**  Where the noise comes from is a systems
choice, captured by two interchangeable policies:

* :class:`StreamRounding` draws from one shared sequential
  :class:`numpy.random.Generator` — the original contract, where bitwise
  reproducibility requires every encode to consume the stream in a fixed
  global order (which is why it pins the worker transport to one worker);
* :class:`KeyedRounding` makes the noise for each quantized message block
  a *pure function of its coordinates*: a counter-based Philox generator
  keyed on ``(run_seed, epoch, phase, layer, src, dst)``.  Encode jobs
  then produce bitwise-identical bytes regardless of which thread runs
  them or in what order they retire — determinism becomes a property of
  data coordinates rather than schedule, and the transport may fan encode
  and decode work across any number of workers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array, check_in_set

__all__ = [
    "QuantizedTensor",
    "stochastic_round",
    "quantize_stochastic",
    "quantize_with_noise",
    "dequantize",
    "block_key",
    "StreamRounding",
    "KeyedRounding",
    "as_rounding",
]

_ALLOWED_BITS = (1, 2, 4, 8)

# Wire overhead per message vector: zero-point + scale, both float32.
METADATA_BYTES_PER_ROW = 8


@dataclass
class QuantizedTensor:
    """A batch of quantized message vectors sharing one bit-width.

    ``codes`` stores the integer codes *unpacked* (one ``uint8`` per
    element) for computational convenience; :attr:`wire_bytes` reports the
    size the payload occupies on the wire after bit-packing (the quantity
    the communication model charges for).
    """

    codes: np.ndarray  # (n, D) uint8
    zero_point: np.ndarray  # (n,) float32
    scale: np.ndarray  # (n,) float32
    bits: int

    def __post_init__(self) -> None:
        check_array(self.codes, name="codes", ndim=2, dtype_kind="u")
        check_in_set(self.bits, _ALLOWED_BITS, name="bits")
        n = self.codes.shape[0]
        if self.zero_point.shape != (n,) or self.scale.shape != (n,):
            raise ValueError("zero_point and scale must be per-row vectors")

    @property
    def shape(self) -> tuple[int, int]:
        return self.codes.shape  # type: ignore[return-value]

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire: packed payload + per-row (Z, S) metadata."""
        n, d = self.codes.shape
        payload = (n * d * self.bits + 7) // 8
        return payload + n * METADATA_BYTES_PER_ROW

    def dequantize(self) -> np.ndarray:
        return dequantize(self)


def stochastic_round(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Round each element up with probability equal to its fractional part.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> vals = stochastic_round(np.full(10000, 0.25), rng)
    >>> 0.2 < vals.mean() < 0.3
    True
    """
    floor = np.floor(x)
    frac = x - floor
    return floor + (rng.random(x.shape) < frac)


def quantize_stochastic(
    h: np.ndarray, bits: int, rng: np.random.Generator
) -> QuantizedTensor:
    """Quantize a batch of message vectors to ``bits``-bit integers.

    Parameters
    ----------
    h:
        ``(n, D)`` float array; each *row* is one node's message vector and
        gets its own zero-point/scale (as in the paper, where Z and S are
        per-message).
    bits:
        One of ``{1, 2, 4, 8}`` (the paper's B = {2, 4, 8}; 1 is supported
        for stress tests).
    rng:
        Source of the stochastic-rounding randomness.

    Notes
    -----
    Constant rows (``max == min``) quantize exactly: scale 0 is kept and
    de-quantization returns the zero-point, so no special casing leaks into
    the variance accounting (a constant vector has zero variance).
    """
    check_array(np.asarray(h), name="h", ndim=2)
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    h = np.asarray(h, dtype=np.float32)
    return quantize_with_noise(h, bits, rng.random(h.shape))


def quantize_with_noise(h: np.ndarray, bits: int, noise: np.ndarray) -> QuantizedTensor:
    """Quantize with pre-drawn uniform rounding noise (the batched kernel).

    Identical arithmetic to :func:`quantize_stochastic`; callers that fuse
    many message groups into one step draw the noise for the whole step in
    a single ``rng.random`` call (preserving the per-group RNG stream
    exactly — NumPy generators fill requests sequentially) and slice it per
    group.
    """
    h = np.asarray(h, dtype=np.float32)

    levels = float(2**bits - 1)
    z = h.min(axis=1)
    h_max = h.max(axis=1)
    scale = (h_max - z) / levels  # 0 for constant rows

    safe_scale = np.where(scale > 0, scale, 1.0)
    normalized = (h - z[:, None]) / safe_scale[:, None]
    floor = np.floor(normalized)
    codes = floor + (noise < normalized - floor)
    # Stochastic rounding can emit ``levels + 1`` on the max element when
    # the fractional part is exactly 0 at the top of the range; clip keeps
    # codes within b bits without biasing interior values.
    np.clip(codes, 0, levels, out=codes)
    return QuantizedTensor(
        codes=codes.astype(np.uint8),
        zero_point=z.astype(np.float32),
        scale=scale.astype(np.float32),
        bits=int(bits),
    )


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Recover float32 message vectors (Eqn. 5): ``ĥ = codes * S + Z``."""
    return (
        q.codes.astype(np.float32) * q.scale[:, None] + q.zero_point[:, None]
    ).astype(np.float32)


# ---------------------------------------------------------------------------
# Rounding-noise policies
# ---------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15  # 2^64 / phi, the usual odd sequencing constant

_PHASE_IDS = {"fwd": 0, "bwd": 1}


def _mix64(z: int) -> int:
    """SplitMix64 finalizer: a full-avalanche 64-bit hash step."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def block_key(
    run_seed: int, epoch: int, phase: str, layer: int, src: int, dst: int
) -> tuple[int, int]:
    """Philox key words for one message block's rounding noise.

    The coordinates are absorbed one by one through SplitMix64 mixing
    (plain Python integer arithmetic — platform- and order-stable), then
    finalized into the two 64-bit words Philox4x64 takes as its key.  Two
    blocks differing in *any* coordinate get statistically independent
    streams; the same coordinates always reproduce the same stream.

    >>> block_key(0, 0, "fwd", 0, 0, 1) == block_key(0, 0, "fwd", 0, 0, 1)
    True
    >>> block_key(0, 0, "fwd", 0, 0, 1) != block_key(0, 0, "bwd", 0, 0, 1)
    True
    """
    h = _mix64(int(run_seed) ^ _GOLDEN)
    for coord in (epoch, _PHASE_IDS[phase], layer, src, dst):
        h = _mix64(h ^ _mix64((int(coord) + _GOLDEN) & _MASK64))
    return _mix64(h ^ 0xA5A5A5A5A5A5A5A5), _mix64(h ^ 0x3C3C3C3C3C3C3C3C)


class StreamRounding:
    """Sequential rounding noise from one shared generator (the legacy
    contract): reproducible only when every encode consumes the stream in
    a fixed global order."""

    mode = "stream"

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng

    def set_epoch(self, epoch: int) -> None:
        """No-op: the stream position, not the epoch, is the state."""

    def state_dict(self) -> dict:
        """The stream position (checkpointing): the generator's full state."""
        return {"bit_generator": self.rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        self.rng.bit_generator.state = state["bit_generator"]


class KeyedRounding:
    """Counter-based rounding noise keyed on message-block coordinates.

    Each block's noise is drawn from a fresh Philox generator keyed on
    ``(run_seed, epoch, phase, layer, src, dst)`` — a pure function of
    *what* is being quantized, never of *when* or *where* it runs.  The
    per-epoch coordinate comes from :meth:`set_epoch`, which exchanges
    call from their ``on_epoch_start`` hook; every (phase, layer, src,
    dst) block is encoded exactly once per epoch, so blocks never share a
    stream.
    """

    mode = "keyed"

    def __init__(self, run_seed: int) -> None:
        self.run_seed = int(run_seed)
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        self.epoch = int(epoch)

    def state_dict(self) -> dict:
        """Empty: keyed noise is stateless (epoch is re-set every epoch)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        pass

    def block_generator(
        self, phase: str, layer: int, src: int, dst: int
    ) -> np.random.Generator:
        key = block_key(self.run_seed, self.epoch, phase, layer, src, dst)
        return np.random.Generator(
            np.random.Philox(key=np.asarray(key, dtype=np.uint64))
        )

    def block_noise(
        self,
        phase: str,
        layer: int,
        src: int,
        dst: int,
        shape: tuple[int, ...] | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Uniform [0, 1) rounding noise for one block, row-major.

        ``out`` (a C-contiguous float64 buffer) receives the draw in
        place; otherwise a fresh ``shape`` array is returned.  The same
        coordinates always produce the same values, whichever form is
        used — both consume the keyed stream from its origin.
        """
        gen = self.block_generator(phase, layer, src, dst)
        if out is not None:
            gen.random(out=out)
            return out
        return gen.random(shape)


def as_rounding(source) -> StreamRounding | KeyedRounding:
    """Coerce an encoder's noise source to a rounding policy.

    Plain :class:`numpy.random.Generator` instances (every pre-keyed
    caller) wrap into :class:`StreamRounding`; policy objects pass
    through.
    """
    if isinstance(source, (StreamRounding, KeyedRounding)):
        return source
    if isinstance(source, np.random.Generator):
        return StreamRounding(source)
    raise TypeError(
        "rounding source must be a numpy Generator, StreamRounding or "
        f"KeyedRounding, got {type(source).__name__}"
    )
