"""Stochastic integer quantization (paper Eqns. 4–5, Theorem 1).

For a message vector ``h`` and bit-width ``b``:

* zero-point ``Z = min(h)``;
* scale ``S = (max(h) - min(h)) / (2^b - 1)``;
* quantized value ``q = round_st((h - Z) / S)`` where ``round_st`` rounds up
  with probability equal to the fractional part (stochastic rounding);
* de-quantization ``ĥ = q * S + Z``.

Stochastic rounding makes ``E[ĥ] = h`` (unbiased) with per-element variance
at most ``S²/6`` under the uniform-fraction assumption, giving Theorem 1's
vector variance ``D · S² / 6``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_array, check_in_set

__all__ = [
    "QuantizedTensor",
    "stochastic_round",
    "quantize_stochastic",
    "quantize_with_noise",
    "dequantize",
]

_ALLOWED_BITS = (1, 2, 4, 8)

# Wire overhead per message vector: zero-point + scale, both float32.
METADATA_BYTES_PER_ROW = 8


@dataclass
class QuantizedTensor:
    """A batch of quantized message vectors sharing one bit-width.

    ``codes`` stores the integer codes *unpacked* (one ``uint8`` per
    element) for computational convenience; :attr:`wire_bytes` reports the
    size the payload occupies on the wire after bit-packing (the quantity
    the communication model charges for).
    """

    codes: np.ndarray  # (n, D) uint8
    zero_point: np.ndarray  # (n,) float32
    scale: np.ndarray  # (n,) float32
    bits: int

    def __post_init__(self) -> None:
        check_array(self.codes, name="codes", ndim=2, dtype_kind="u")
        check_in_set(self.bits, _ALLOWED_BITS, name="bits")
        n = self.codes.shape[0]
        if self.zero_point.shape != (n,) or self.scale.shape != (n,):
            raise ValueError("zero_point and scale must be per-row vectors")

    @property
    def shape(self) -> tuple[int, int]:
        return self.codes.shape  # type: ignore[return-value]

    @property
    def wire_bytes(self) -> int:
        """Bytes on the wire: packed payload + per-row (Z, S) metadata."""
        n, d = self.codes.shape
        payload = (n * d * self.bits + 7) // 8
        return payload + n * METADATA_BYTES_PER_ROW

    def dequantize(self) -> np.ndarray:
        return dequantize(self)


def stochastic_round(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Round each element up with probability equal to its fractional part.

    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> vals = stochastic_round(np.full(10000, 0.25), rng)
    >>> 0.2 < vals.mean() < 0.3
    True
    """
    floor = np.floor(x)
    frac = x - floor
    return floor + (rng.random(x.shape) < frac)


def quantize_stochastic(
    h: np.ndarray, bits: int, rng: np.random.Generator
) -> QuantizedTensor:
    """Quantize a batch of message vectors to ``bits``-bit integers.

    Parameters
    ----------
    h:
        ``(n, D)`` float array; each *row* is one node's message vector and
        gets its own zero-point/scale (as in the paper, where Z and S are
        per-message).
    bits:
        One of ``{1, 2, 4, 8}`` (the paper's B = {2, 4, 8}; 1 is supported
        for stress tests).
    rng:
        Source of the stochastic-rounding randomness.

    Notes
    -----
    Constant rows (``max == min``) quantize exactly: scale 0 is kept and
    de-quantization returns the zero-point, so no special casing leaks into
    the variance accounting (a constant vector has zero variance).
    """
    check_array(np.asarray(h), name="h", ndim=2)
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    h = np.asarray(h, dtype=np.float32)
    return quantize_with_noise(h, bits, rng.random(h.shape))


def quantize_with_noise(h: np.ndarray, bits: int, noise: np.ndarray) -> QuantizedTensor:
    """Quantize with pre-drawn uniform rounding noise (the batched kernel).

    Identical arithmetic to :func:`quantize_stochastic`; callers that fuse
    many message groups into one step draw the noise for the whole step in
    a single ``rng.random`` call (preserving the per-group RNG stream
    exactly — NumPy generators fill requests sequentially) and slice it per
    group.
    """
    h = np.asarray(h, dtype=np.float32)

    levels = float(2**bits - 1)
    z = h.min(axis=1)
    h_max = h.max(axis=1)
    scale = (h_max - z) / levels  # 0 for constant rows

    safe_scale = np.where(scale > 0, scale, 1.0)
    normalized = (h - z[:, None]) / safe_scale[:, None]
    floor = np.floor(normalized)
    codes = floor + (noise < normalized - floor)
    # Stochastic rounding can emit ``levels + 1`` on the max element when
    # the fractional part is exactly 0 at the top of the range; clip keeps
    # codes within b bits without biasing interior values.
    np.clip(codes, 0, levels, out=codes)
    return QuantizedTensor(
        codes=codes.astype(np.uint8),
        zero_point=z.astype(np.float32),
        scale=scale.astype(np.float32),
        bits=int(bits),
    )


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Recover float32 message vectors (Eqn. 5): ``ĥ = codes * S + Z``."""
    return (
        q.codes.astype(np.float32) * q.scale[:, None] + q.zero_point[:, None]
    ).astype(np.float32)
