"""Mixed-precision message encoding (paper implementation, Sec. 5).

The adaptive assigner may give every message (row) its own bit-width from
B = {2, 4, 8}.  Following the paper: rows are *grouped by bit-width*, each
group is quantized at its single bit-width, groups are bit-packed and
concatenated into one byte array for transmission, and the receiver
restores full-precision rows using a bit-retrieval index (here: the row
indices of each group).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.packing import pack_bits, unpack_bits
from repro.quant.stochastic import (
    METADATA_BYTES_PER_ROW,
    QuantizedTensor,
    as_rounding,
    dequantize,
    quantize_stochastic,
    quantize_with_noise,
)
from repro.utils.validation import check_array

__all__ = ["MixedPrecisionPayload", "MixedPrecisionEncoder"]

# Per-group wire header: bit-width tag + row count (uint32 each, modelled).
GROUP_HEADER_BYTES = 8


@dataclass
class MixedPrecisionPayload:
    """One encoded transfer: concatenated per-bit-width groups.

    Attributes
    ----------
    num_rows / dim:
        Logical shape of the original float32 matrix.
    group_bits:
        Bit-width of each group, ascending.
    group_rows:
        For each group, the original row indices it carries (the
        bit-retrieval index of the paper).
    streams:
        For each group, the packed byte stream.
    zero_points / scales:
        Per-group per-row metadata.
    """

    num_rows: int
    dim: int
    group_bits: list[int]
    group_rows: list[np.ndarray]
    streams: list[np.ndarray]
    zero_points: list[np.ndarray]
    scales: list[np.ndarray]

    @property
    def wire_bytes(self) -> int:
        """Total transfer size: packed payloads + per-row metadata + headers."""
        total = 0
        for stream, rows in zip(self.streams, self.group_rows):
            total += stream.nbytes + rows.size * METADATA_BYTES_PER_ROW
            total += GROUP_HEADER_BYTES
        return total

    @property
    def float_bytes(self) -> int:
        """Size of the same transfer at full float32 precision."""
        return self.num_rows * self.dim * 4

    def decode(self) -> np.ndarray:
        """Reassemble the full-precision ``(num_rows, dim)`` matrix."""
        out = np.zeros((self.num_rows, self.dim), dtype=np.float32)
        for bits, rows, stream, z, s in zip(
            self.group_bits, self.group_rows, self.streams, self.zero_points, self.scales
        ):
            codes = unpack_bits(stream, bits, rows.size * self.dim).reshape(
                rows.size, self.dim
            )
            q = QuantizedTensor(codes=codes, zero_point=z, scale=s, bits=bits)
            out[rows] = dequantize(q)
        return out


class MixedPrecisionEncoder:
    """Encode float32 message matrices with per-row bit-widths.

    ``rng`` may be a plain :class:`numpy.random.Generator` (sequential
    stream noise, the legacy contract) or a rounding policy from
    :mod:`repro.quant.stochastic`.  Under :class:`~repro.quant.stochastic.
    KeyedRounding` each message's noise is a pure function of its block
    coordinates, which callers supply per encode via ``block``.
    """

    def __init__(self, rng) -> None:
        self.rounding = as_rounding(rng)

    @property
    def rng(self) -> np.random.Generator | None:
        """The shared stream generator (``None`` under keyed rounding)."""
        return getattr(self.rounding, "rng", None)

    def encode(
        self,
        h: np.ndarray,
        bits_per_row: np.ndarray,
        block: tuple[str, int, int, int] | None = None,
    ) -> MixedPrecisionPayload:
        """Quantize row ``i`` of ``h`` at ``bits_per_row[i]`` bits.

        Rows are grouped by bit-width; each group becomes one packed stream.
        ``block`` names the message's ``(phase, layer, src, dst)``
        coordinates — required under keyed rounding (the noise for the
        whole message is one keyed draw in row order, sliced per group),
        ignored under stream rounding.

        Examples
        --------
        >>> import numpy as np
        >>> enc = MixedPrecisionEncoder(np.random.default_rng(0))
        >>> h = np.random.default_rng(1).normal(size=(6, 4)).astype(np.float32)
        >>> payload = enc.encode(h, np.array([2, 8, 2, 4, 8, 2]))
        >>> payload.decode().shape
        (6, 4)
        """
        h = np.asarray(h, dtype=np.float32)
        check_array(h, name="h", ndim=2)
        bits_per_row = np.asarray(bits_per_row, dtype=np.int64)
        if bits_per_row.shape != (h.shape[0],):
            raise ValueError(
                f"bits_per_row must have one entry per row: {bits_per_row.shape} "
                f"vs {h.shape[0]} rows"
            )

        keyed = self.rounding.mode == "keyed"
        if keyed:
            if block is None:
                raise ValueError(
                    "keyed rounding needs the message's (phase, layer, src, "
                    "dst) block coordinates"
                )
            noise_full = self.rounding.block_noise(*block, shape=h.shape)

        group_bits: list[int] = []
        group_rows: list[np.ndarray] = []
        streams: list[np.ndarray] = []
        zero_points: list[np.ndarray] = []
        scales: list[np.ndarray] = []
        for bits in sorted(np.unique(bits_per_row).tolist()):
            rows = np.flatnonzero(bits_per_row == bits)
            if keyed:
                # Noise indexed by original row position: the same values
                # the fused encoder's per-pair keyed draw assigns, however
                # the rows are grouped.
                q = quantize_with_noise(h[rows], int(bits), noise_full[rows])
            else:
                q = quantize_stochastic(h[rows], int(bits), self.rounding.rng)
            group_bits.append(int(bits))
            group_rows.append(rows)
            streams.append(pack_bits(q.codes, int(bits)))
            zero_points.append(q.zero_point)
            scales.append(q.scale)
        return MixedPrecisionPayload(
            num_rows=h.shape[0],
            dim=h.shape[1],
            group_bits=group_bits,
            group_rows=group_rows,
            streams=streams,
            zero_points=zero_points,
            scales=scales,
        )
