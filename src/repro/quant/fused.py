"""Fused mixed-precision encoding for one whole exchange step.

The legacy path (:class:`~repro.quant.mixed.MixedPrecisionEncoder`) encodes
each (src, dst) message block independently: per pair, per bit-width group,
one small quantize kernel, one RNG draw and one pack call.  On the
simulator's hot path that dispatch overhead dominates — a 16-device,
3-layer run issues thousands of tiny NumPy calls per epoch.

This module fuses **all** boundary messages of one (layer, phase) step —
across every source device and every peer — into batched kernels:

* each device's outgoing rows are gathered with one fancy-index ``take``
  into a contiguous segment of a step-wide buffer, directly in the legacy
  RNG-consumption order (devices ascending, peers ascending within each
  device, bit-widths ascending within each pair);
* rounding noise comes from the encoder's rounding policy: under
  :class:`~repro.quant.stochastic.StreamRounding` one ``rng.random`` call
  covers the whole step (NumPy generators fill requests sequentially, so
  one big draw consumes the stream exactly like the legacy per-group
  draws — bitwise-identical to the unfused path under the same seed);
  under :class:`~repro.quant.stochastic.KeyedRounding` each (src, dst)
  pair's noise is one counter-based Philox draw keyed on the block's
  coordinates, making the emitted bytes independent of execution order;
* stochastic quantization runs as **one** kernel per encode shard: the
  only bit-width-dependent quantity is the level count ``2^b - 1``, which
  becomes a per-row vector instead of a per-group scalar;
* packing runs through :func:`~repro.quant.packing.pack_bits_batched`, one
  batch per distinct bit-width, producing the same per-(pair, group) byte
  streams the legacy encoder emits — wire-byte accounting is unchanged;
* on the receive side, :func:`decode_cluster_step` unpacks and
  de-quantizes every payload of the step in one batch per bit-width
  (de-quantization is row-elementwise, so it batches across pairs and
  receivers without changing a single value).

**Encode shards.**  A step's pairs partition into contiguous legacy-order
spans (:meth:`FusedStepEncoder.shards_for`); each shard's quantize/pack is
self-contained — it reads and writes only its row span of the plan
scratch — so a multi-worker transport runs shards concurrently.  Keyed
rounding makes the shard decomposition invisible in the output: every
pair's noise is its own keyed draw, so any shard count (and any retirement
order) emits byte-identical payloads.  Stream rounding is
order-dependent by definition and therefore always encodes as one shard.

All index structures (gather orders, group slices, payload skeletons) are
cached in a :class:`FusedStepPlan` and reused across epochs until the
bit-width assignment for the step changes (i.e. at reassignment
boundaries).  The staged-value and code buffers are preallocated
alongside the plan; the quantization kernel itself runs over
pair-aligned row *chunks* with scratch bounded by the chunk, so the
noise/normalize/floor intermediates (17 bytes per element, the float64
noise draw alone being 8 of them) never materialize for the whole step
at once — at huge-graph scale that keeps hundreds of MB of per-step
scratch out of the resident set.  Chunking is invisible in the output:
keyed noise is one draw per pair (a chunk is a whole number of pairs)
and stream noise fills its buffer sequentially, so successive chunk
fills consume the generator exactly like one whole-step fill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.quant.mixed import MixedPrecisionPayload
from repro.quant.packing import pack_bits_batched, unpack_bits_batched
from repro.quant.stochastic import as_rounding

__all__ = [
    "FusedStepPlan",
    "FusedStepEncoder",
    "ShardDescriptor",
    "shard_descriptor",
    "pair_shard",
    "DecodeWorkspace",
    "decode_step",
    "decode_cluster_step",
]


#: Row bound for one quantization-kernel chunk.  Scratch per chunk is
#: ~25 bytes/element, so 4096 rows at a 256-wide layer-0 step is ~26 MB —
#: a rounding error next to the plan-wide buffers it replaces, while the
#: per-chunk Python overhead stays at a handful of iterations per step.
#: A pair bigger than this bound widens the chunk (a pair is the keyed
#: noise atom and is never split).
_QUANT_CHUNK_ROWS = 4096


@dataclass
class _PairGroup:
    """One (pair, bit-width) group: its slice of the step's legacy order."""

    bits: int
    start: int
    stop: int
    rows: np.ndarray  # local row indices within the pair message, ascending


@dataclass
class _EncodeShard:
    """One contiguous run of a step's pairs, encodable independently.

    ``start``/``stop`` span the shard's rows in *both* cat and legacy
    order (the legacy sort is pair-major, so pair runs keep their cat
    boundaries); all packing index structures are shard-local so
    concurrent shards never share mutable state.
    """

    pair_lo: int
    pair_hi: int
    start: int
    stop: int
    single_bits: int | None  # set when the shard's rows share one width
    # Per distinct bit-width, in payload-emission order: the legacy-order
    # slices of its groups and their element counts (packing batches).
    bit_slices: dict[int, list[slice]]
    bit_elems: dict[int, np.ndarray]
    # For widths whose groups are scattered across pairs: their rows in
    # payload-emission order (one precomputed take instead of a per-group
    # concatenate) plus the reusable gather destination.
    bit_rows: dict[int, np.ndarray]
    bit_gather: dict[int, np.ndarray]


@dataclass
class FusedStepPlan:
    """Cached index structures for one (layer, phase) step of the cluster.

    Valid as long as the step's per-row bit assignment (``bits_cat``) is
    unchanged; the encoder revalidates with ``np.array_equal`` each epoch
    and rebuilds only at reassignment boundaries.
    """

    pairs: list[tuple[int, int]]  # (src, dst), legacy iteration order
    pair_counts: np.ndarray  # rows per pair, same order
    cat_bounds: np.ndarray  # (n_pairs + 1,) row offsets per pair
    device_blocks: list[tuple[int, int, int]]  # (rank, start, stop) cat slices
    cat_idx: np.ndarray  # (n_total,) local source row per cat position
    bits_cat: np.ndarray  # (n_total,) per-row bits, cat order
    dim: int
    perm_legacy: np.ndarray  # cat index of each legacy-order position
    identity: bool  # True when legacy order == cat order
    gather_idx: np.ndarray  # local source row per legacy-order position
    levels: np.ndarray  # (n_total, 1) float32, 2^bits - 1 per legacy row
    pair_groups: dict[tuple[int, int], list[_PairGroup]]
    # Scratch buffers (reused every epoch while the plan is valid).  The
    # quantization intermediates (noise, normalized values, floors,
    # round-up mask) are deliberately NOT plan-resident: the kernel
    # allocates them per chunk in :meth:`FusedStepEncoder.quantize_pack_shard`.
    cat_buf: np.ndarray  # (n_total, dim) float32, cat order
    legacy_buf: np.ndarray  # (n_total, dim) float32, legacy order
    codes_buf: np.ndarray  # (n_total, dim) uint8, legacy order
    # Shard decompositions, cached per shard count (built on demand).
    shard_cache: dict[int, list[_EncodeShard]] = field(default_factory=dict)

    @property
    def n_total(self) -> int:
        return int(self.bits_cat.size)


def _build_plan(
    pairs: list[tuple[int, int]],
    pair_counts: np.ndarray,
    device_blocks: list[tuple[int, int, int]],
    cat_idx: np.ndarray,
    bits_cat: np.ndarray,
    dim: int,
) -> FusedStepPlan:
    n_total = int(bits_cat.size)
    pair_id = np.repeat(np.arange(len(pairs), dtype=np.int64), pair_counts)

    # Legacy RNG order: pairs in iteration order, bits ascending within
    # each pair (MixedPrecisionEncoder iterates sorted unique bits); the
    # stable sort keeps each group's rows in ascending pair-row order,
    # matching the legacy np.flatnonzero group indices.
    perm_legacy = np.argsort(pair_id * 16 + bits_cat, kind="stable")
    identity = bool((perm_legacy == np.arange(n_total)).all())

    bounds = np.zeros(len(pairs) + 1, dtype=np.int64)
    np.cumsum(pair_counts, out=bounds[1:])

    pair_groups: dict[tuple[int, int], list[_PairGroup]] = {}
    pos = 0
    for i, pair in enumerate(pairs):
        pair_bits = bits_cat[bounds[i] : bounds[i + 1]]
        groups: list[_PairGroup] = []
        for b in np.unique(pair_bits):
            local_rows = np.flatnonzero(pair_bits == b)
            groups.append(
                _PairGroup(
                    bits=int(b), start=pos, stop=pos + local_rows.size, rows=local_rows
                )
            )
            pos += local_rows.size
        pair_groups[pair] = groups

    bits_legacy = bits_cat[perm_legacy]
    legacy_buf = np.empty((n_total, dim), dtype=np.float32)
    return FusedStepPlan(
        pairs=pairs,
        pair_counts=pair_counts,
        cat_bounds=bounds,
        device_blocks=device_blocks,
        cat_idx=cat_idx,
        bits_cat=bits_cat.copy(),
        dim=dim,
        perm_legacy=perm_legacy,
        identity=identity,
        gather_idx=cat_idx if identity else cat_idx[perm_legacy],
        levels=((1 << bits_legacy.astype(np.int64)) - 1)[:, None].astype(np.float32),
        pair_groups=pair_groups,
        # When legacy order == cat order the stage buffers alias: the
        # tracer path then needs only a single gather.
        cat_buf=legacy_buf if identity else np.empty((n_total, dim), dtype=np.float32),
        legacy_buf=legacy_buf,
        codes_buf=np.empty((n_total, dim), dtype=np.uint8),
    )


def _build_shards(plan: FusedStepPlan, n_shards: int) -> list[_EncodeShard]:
    """Partition the plan's pairs into ≤ ``n_shards`` contiguous runs.

    Cuts land on pair boundaries nearest the equal-row targets (a pair is
    the atom — its noise is one keyed draw), so shards balance by row
    count, not pair count.  Degenerate targets collapse, so fewer pairs
    than shards simply yields fewer shards.
    """
    n_pairs = len(plan.pairs)
    total = plan.n_total
    n_shards = max(1, min(int(n_shards), n_pairs))
    bounds = plan.cat_bounds
    raw = set()
    for s in range(1, n_shards):
        target = s * total / n_shards
        hi = int(np.searchsorted(bounds, target))
        lo = hi - 1
        # Nearest pair boundary to the equal-rows target.
        cut = lo if hi > n_pairs or target - bounds[lo] <= bounds[hi] - target else hi
        raw.add(int(cut))
    edges = [0, *sorted(c for c in raw if 0 < c < n_pairs), n_pairs]

    return [_make_shard(plan, lo, hi) for lo, hi in zip(edges, edges[1:])]


def _make_shard(plan: FusedStepPlan, lo: int, hi: int) -> _EncodeShard:
    """The shard covering the plan's contiguous pair range ``[lo, hi)``."""
    bit_slices: dict[int, list[slice]] = {}
    bit_elems: dict[int, list[int]] = {}
    for i in range(lo, hi):
        for g in plan.pair_groups[plan.pairs[i]]:
            bit_slices.setdefault(g.bits, []).append(slice(g.start, g.stop))
            bit_elems.setdefault(g.bits, []).append((g.stop - g.start) * plan.dim)
    distinct = sorted(bit_slices)
    bit_rows: dict[int, np.ndarray] = {}
    bit_gather: dict[int, np.ndarray] = {}
    if len(distinct) > 1:
        for b, slices in bit_slices.items():
            if len(slices) > 1:
                rows = np.concatenate(
                    [np.arange(sl.start, sl.stop, dtype=np.int64) for sl in slices]
                )
                bit_rows[b] = rows
                bit_gather[b] = np.empty((rows.size, plan.dim), dtype=np.uint8)
    return _EncodeShard(
        pair_lo=lo,
        pair_hi=hi,
        start=int(plan.cat_bounds[lo]),
        stop=int(plan.cat_bounds[hi]),
        single_bits=distinct[0] if len(distinct) == 1 else None,
        bit_slices=bit_slices,
        bit_elems={b: np.asarray(e, dtype=np.int64) for b, e in bit_elems.items()},
        bit_rows=bit_rows,
        bit_gather=bit_gather,
    )


def pair_shard(plan: FusedStepPlan, i: int) -> _EncodeShard:
    """A throwaway shard covering exactly pair ``i`` of the plan.

    The keyed-replay recovery path uses it to regenerate one dropped
    pair's payload from the plan's staged rows: pair noise is one keyed
    draw and packing is per-group deterministic, so the single-pair shard
    reproduces the exact bytes the original (multi-pair) shard emitted
    for that pair — the shard-decomposition-independence contract.
    """
    if not 0 <= i < len(plan.pairs):
        raise IndexError(f"pair index {i} outside [0, {len(plan.pairs)})")
    return _make_shard(plan, i, i + 1)


class FusedStepEncoder:
    """Encode a whole (layer, phase) exchange step in batched kernels.

    One instance per exchange; plans are cached per step key and
    revalidated against the step's current bit assignment.  ``rng`` may be
    a plain generator (stream rounding, the legacy contract) or a rounding
    policy; keyed rounding additionally needs each step's ``(phase,
    layer)`` coordinates (the ``coords`` arguments below) and unlocks
    multi-shard encoding.
    """

    def __init__(self, rng) -> None:
        self.rounding = as_rounding(rng)
        self._plans: dict[object, FusedStepPlan] = {}

    @property
    def rng(self) -> np.random.Generator | None:
        """The shared stream generator (``None`` under keyed rounding)."""
        return getattr(self.rounding, "rng", None)

    def shards_for(self, plan: FusedStepPlan, n_shards: int) -> list[_EncodeShard]:
        """The plan's shard decomposition for ``n_shards`` workers (cached).

        Stream rounding always yields one shard — its noise is a shared
        sequential draw, so the step cannot be split without changing the
        stream consumption order.
        """
        if self.rounding.mode != "keyed":
            n_shards = 1
        cached = plan.shard_cache.get(n_shards)
        if cached is None:
            cached = plan.shard_cache[n_shards] = _build_shards(plan, n_shards)
        return cached

    def plan_for(
        self,
        key: object,
        pairs: list[tuple[int, int]],
        pair_counts: np.ndarray,
        device_blocks: list[tuple[int, int, int]],
        cat_idx: np.ndarray,
        bits_cat: np.ndarray,
        dim: int,
    ) -> FusedStepPlan:
        """Fetch (or rebuild) the cached plan for one step."""
        plan = self._plans.get(key)
        if (
            plan is None
            or plan.dim != dim
            or not np.array_equal(plan.bits_cat, bits_cat)
        ):
            plan = _build_plan(
                pairs, pair_counts, device_blocks, cat_idx, bits_cat, dim
            )
            self._plans[key] = plan
        return plan

    def encode_step(
        self, plan: FusedStepPlan, values_by_rank, observe=None, *, coords=None
    ) -> dict[tuple[int, int], MixedPrecisionPayload]:
        """Quantize + pack the step's messages; returns per-pair payloads.

        ``values_by_rank`` maps a device rank to the float32 matrix its
        messages are gathered from (activations or halo gradients); a list
        indexed by rank works too.  ``observe``, when given, is called per
        pair with ``(src, dst, rows)`` where ``rows`` is the pair's block
        in original row order — the tracer hook.  ``coords`` is the step's
        ``(phase, layer)`` — required under keyed rounding, ignored under
        stream rounding.

        The two halves are also exposed separately for the async transport:
        :meth:`gather_step` snapshots the source rows (and feeds the
        tracer) on the calling thread, after which
        :meth:`quantize_pack_step` is safe to run on a transport worker —
        it touches only plan-owned scratch and the encoder's noise policy.
        """
        self.gather_step(plan, values_by_rank, observe)
        return self.quantize_pack_step(plan, coords=coords)

    def gather_step(self, plan: FusedStepPlan, values_by_rank, observe=None) -> None:
        """Stage the step's source rows into ``plan.legacy_buf`` (a snapshot)."""
        n_total = plan.n_total
        if n_total == 0:
            return

        if observe is None:
            for rank, start, stop in plan.device_blocks:
                vals = values_by_rank[rank]
                if vals.dtype != np.float32:
                    vals = np.asarray(vals, dtype=np.float32)
                np.take(
                    vals,
                    plan.gather_idx[start:stop],
                    axis=0,
                    out=plan.legacy_buf[start:stop],
                )
        else:
            # Tracers need pair blocks in original row order; gather those
            # first, then permute into legacy order (a no-op when every
            # pair's block has a single bit-width).
            for rank, start, stop in plan.device_blocks:
                vals = values_by_rank[rank]
                if vals.dtype != np.float32:
                    vals = np.asarray(vals, dtype=np.float32)
                np.take(
                    vals,
                    plan.cat_idx[start:stop],
                    axis=0,
                    out=plan.cat_buf[start:stop],
                )
            start = 0
            for pair, count in zip(plan.pairs, plan.pair_counts):
                observe(pair[0], pair[1], plan.cat_buf[start : start + int(count)])
                start += int(count)
            if not plan.identity:
                np.take(plan.cat_buf, plan.perm_legacy, axis=0, out=plan.legacy_buf)
            # identity: cat_buf aliases legacy_buf, nothing to permute.

    def quantize_pack_step(
        self, plan: FusedStepPlan, *, coords=None
    ) -> dict[tuple[int, int], MixedPrecisionPayload]:
        """Quantize + pack the gathered step (worker-safe half).

        Reads ``plan.legacy_buf`` (filled by :meth:`gather_step`) and
        touches only plan-owned scratch.  Under stream rounding, callers
        must keep step jobs serialized so stream consumption matches the
        legacy per-group draws; under keyed rounding the result is
        order-independent and this call is just the one-shard composition
        of :meth:`quantize_pack_shard`.
        """
        payloads: dict[tuple[int, int], MixedPrecisionPayload] = {}
        for shard in self.shards_for(plan, 1):
            payloads.update(self.quantize_pack_shard(plan, shard, coords=coords))
        return payloads

    def quantize_pack_shard(
        self, plan: FusedStepPlan, shard: _EncodeShard, *, coords=None
    ) -> dict[tuple[int, int], MixedPrecisionPayload]:
        """Quantize + pack one contiguous shard of the gathered step.

        Reads and writes only the shard's ``[start, stop)`` row span of
        the plan scratch, so a multi-worker transport may run disjoint
        shards concurrently.  ``coords`` is the step's ``(phase, layer)``
        — required for keyed rounding (each pair's noise is one keyed
        Philox draw), ignored for stream rounding (one sequential draw
        over the whole — necessarily single — shard).
        """
        dim = plan.dim
        start, stop = shard.start, shard.stop
        if stop == start:
            return {}
        n_rows = stop - start

        keyed = self.rounding.mode == "keyed"
        if keyed and coords is None:
            raise ValueError(
                "keyed rounding needs the step's (phase, layer) coordinates"
            )

        # --- chunked stochastic-quantization kernel ----------------------
        # Identical arithmetic to quantize_stochastic per group: the level
        # count is the only group-dependent quantity and enters as a
        # per-row vector.  The kernel walks the shard in pair-aligned row
        # chunks so the intermediates (float64 noise, normalized values,
        # floors, round-up mask — 17+ bytes/element) are bounded by the
        # chunk rather than the step; only the per-row zero points and
        # scales survive the loop (the payloads slice into them) and the
        # codes land in the plan-resident uint8 buffer the packers read.
        # Chunks don't change a bit: keyed noise is one draw per pair (a
        # chunk is a whole number of pairs, and the legacy sort is
        # pair-major, so each pair spans the same rows in both orders)
        # and stream noise fills sequentially, so chunk fills in shard
        # order consume the generator exactly like one whole-shard fill.
        bounds = plan.cat_bounds
        max_pair = 0
        for i in range(shard.pair_lo, shard.pair_hi):
            max_pair = max(max_pair, int(bounds[i + 1] - bounds[i]))
        chunk_rows = max(_QUANT_CHUNK_ROWS, max_pair)
        scratch = min(chunk_rows, n_rows)
        z_all = np.empty(n_rows, dtype=np.float32)
        s_all = np.empty(n_rows, dtype=np.float32)
        noise_cat = np.empty((scratch, dim), dtype=np.float64)
        noise_leg = (
            noise_cat
            if plan.identity or not keyed
            else np.empty((scratch, dim), dtype=np.float64)
        )
        norm_buf = np.empty((scratch, dim), dtype=np.float32)
        floor_buf = np.empty((scratch, dim), dtype=np.float32)
        round_buf = np.empty((scratch, dim), dtype=bool)

        i = shard.pair_lo
        while i < shard.pair_hi:
            a = int(bounds[i])
            j = i + 1
            while j < shard.pair_hi and int(bounds[j + 1]) - a <= chunk_rows:
                j += 1
            b = int(bounds[j])
            m = b - a
            h = plan.legacy_buf[a:b]

            # Rounding noise for the chunk's rows.
            if keyed:
                phase, layer = coords
                # One keyed draw per pair, into the pair's cat-order block
                # (pair-local row order — the coordinate system the noise
                # is defined in), then permuted to legacy order alongside
                # the staged values.  The buffers alias when the orders
                # coincide.
                for p in range(i, j):
                    block = noise_cat[bounds[p] - a : bounds[p + 1] - a]
                    if block.size:
                        src, dst = plan.pairs[p]
                        self.rounding.block_noise(phase, layer, src, dst, out=block)
                if plan.identity:
                    noise = noise_cat[:m]
                else:
                    np.take(
                        noise_cat,
                        plan.perm_legacy[a:b] - a,
                        axis=0,
                        out=noise_leg[:m],
                    )
                    noise = noise_leg[:m]
            else:
                # Stream rounding: sequential draws (shards_for pinned the
                # decomposition to a single whole-step shard) — consumes
                # the stream exactly like the legacy per-group draws.
                noise = self.rounding.rng.random(out=noise_leg[:m])

            z32 = h.min(axis=1, out=z_all[a - start : b - start])
            scale = h.max(axis=1, out=s_all[a - start : b - start])
            scale -= z32
            scale /= plan.levels[a:b, 0]
            safe_scale = np.where(scale > 0, scale, np.float32(1.0))
            norm = np.subtract(h, z32[:, None], out=norm_buf[:m])
            norm /= safe_scale[:, None]
            floor = np.floor(norm, out=floor_buf[:m])
            np.subtract(norm, floor, out=norm)  # fractional parts
            round_up = np.less(noise, norm, out=round_buf[:m])
            codes = np.add(floor, round_up, out=floor)
            # Codes are >= 0 (normalized values are), so the legacy
            # clip(0, top) reduces to an upper bound.
            if shard.single_bits is not None:
                np.minimum(codes, np.float32((1 << shard.single_bits) - 1), out=codes)
            else:
                np.minimum(codes, plan.levels[a:b], out=codes)
            plan.codes_buf[a:b] = codes  # exact small integers; cast == astype
            i = j

        codes_buf = plan.codes_buf[start:stop]
        z32 = z_all
        s32 = s_all

        # --- pack each distinct bit-width as one batch -------------------
        # Codes were clamped to range above, so the packers' O(n) range
        # scan is skipped (validate=False — the trusted internal path).
        streams_by_bits: dict[int, list[np.ndarray]] = {}
        for bits, slices in shard.bit_slices.items():
            if len(slices) == 1:
                segment = plan.codes_buf[slices[0]]
            elif shard.single_bits is not None:
                # Single distinct bit-width: the slices tile the span.
                segment = codes_buf
            else:
                # Scattered groups: one precomputed take into shard scratch
                # (no per-group Python loop on the hot path).
                segment = np.take(
                    plan.codes_buf,
                    shard.bit_rows[bits],
                    axis=0,
                    out=shard.bit_gather[bits],
                )
            streams_by_bits[bits] = pack_bits_batched(
                segment, bits, shard.bit_elems[bits], validate=False
            )

        # --- assemble per-pair payloads ----------------------------------
        stream_cursor = dict.fromkeys(streams_by_bits, 0)
        payloads: dict[tuple[int, int], MixedPrecisionPayload] = {}
        for i in range(shard.pair_lo, shard.pair_hi):
            pair = plan.pairs[i]
            group_bits: list[int] = []
            group_rows: list[np.ndarray] = []
            streams: list[np.ndarray] = []
            zero_points: list[np.ndarray] = []
            scales: list[np.ndarray] = []
            for g in plan.pair_groups[pair]:
                group_bits.append(g.bits)
                group_rows.append(g.rows)
                streams.append(streams_by_bits[g.bits][stream_cursor[g.bits]])
                stream_cursor[g.bits] += 1
                zero_points.append(z32[g.start - start : g.stop - start])
                scales.append(s32[g.start - start : g.stop - start])
            payloads[pair] = MixedPrecisionPayload(
                num_rows=int(plan.pair_counts[i]),
                dim=dim,
                group_bits=group_bits,
                group_rows=group_rows,
                streams=streams,
                zero_points=zero_points,
                scales=scales,
            )
        return payloads


@dataclass(frozen=True)
class ShardDescriptor:
    """Picklable coordinates of one encode shard: plain data, no closures.

    Enough for a worker *process* to rebuild the shard's plan locally and
    reproduce its payload bytes bitwise — keyed rounding only, where noise
    is a pure function of ``(run_seed, epoch, phase, layer, src, dst)``.
    The shard is re-planned as a standalone mini-step whose input rows
    arrive already in cat order (``cat_idx = arange``, one device block):
    quantization is row-wise, each pair's noise is its own keyed draw and
    packing is per-group deterministic, so the mini-plan emits exactly the
    streams the full plan's :meth:`FusedStepEncoder.quantize_pack_shard`
    emits for the same pair span (the shard-decomposition-independence
    contract the equivalence suite pins down).
    """

    run_seed: int
    epoch: int
    phase: str
    layer: int
    pairs: tuple[tuple[int, int], ...]  # real (src, dst) — the noise keys
    pair_counts: tuple[int, ...]
    bits_cat: bytes  # int8 per cat row, pair-major (the shard's row span)
    dim: int

    def signature(self) -> tuple:
        """Everything the rebuilt plan depends on (epoch excluded — the
        plan survives epochs; only the noise coordinate changes)."""
        return (
            self.run_seed,
            self.phase,
            self.layer,
            self.pairs,
            self.pair_counts,
            self.bits_cat,
            self.dim,
        )

    def build(self) -> tuple["FusedStepEncoder", FusedStepPlan]:
        """A standalone (encoder, plan) reproducing this shard's payloads."""
        from repro.quant.stochastic import KeyedRounding

        counts = np.asarray(self.pair_counts, dtype=np.int64)
        n = int(counts.sum())
        bits = np.frombuffer(self.bits_cat, dtype=np.int8).astype(np.int64)
        encoder = FusedStepEncoder(KeyedRounding(self.run_seed))
        plan = encoder.plan_for(
            (self.phase, self.layer),
            list(self.pairs),
            counts,
            [(0, 0, n)],
            np.arange(n, dtype=np.int64),
            bits,
            self.dim,
        )
        return encoder, plan

    def encode(
        self, rows: np.ndarray, *, cache: dict | None = None
    ) -> dict[tuple[int, int], MixedPrecisionPayload]:
        """Quantize + pack ``rows`` (the shard's cat-order row span).

        ``cache``, when given, persists the rebuilt (encoder, plan) across
        steps keyed by the shard's pair span; a changed bit assignment
        (different :meth:`signature`) rebuilds in place.
        """
        sig = self.signature()
        key = ("shard-plan", self.phase, self.layer, self.pairs)
        entry = cache.get(key) if cache is not None else None
        if entry is None or entry[0] != sig:
            entry = (sig, *self.build())
            if cache is not None:
                cache[key] = entry
        _, encoder, plan = entry
        encoder.rounding.set_epoch(self.epoch)
        encoder.gather_step(plan, {0: np.asarray(rows, dtype=np.float32)})
        return encoder.quantize_pack_step(plan, coords=(self.phase, self.layer))


def shard_descriptor(
    plan: FusedStepPlan,
    shard: _EncodeShard,
    *,
    rounding,
    phase: str,
    layer: int,
) -> ShardDescriptor:
    """The picklable coordinates of ``shard`` within ``plan``.

    ``rounding`` must be a keyed policy (it supplies ``run_seed`` and the
    current ``epoch``) — stream rounding's noise depends on global draw
    order and cannot be reproduced from coordinates in another process.
    """
    if rounding.mode != "keyed":
        raise ValueError("shard descriptors require keyed rounding")
    lo, hi = shard.pair_lo, shard.pair_hi
    return ShardDescriptor(
        run_seed=int(rounding.run_seed),
        epoch=int(rounding.epoch),
        phase=phase,
        layer=int(layer),
        pairs=tuple(plan.pairs[lo:hi]),
        pair_counts=tuple(int(c) for c in plan.pair_counts[lo:hi]),
        bits_cat=plan.bits_cat[shard.start : shard.stop]
        .astype(np.int8)
        .tobytes(),
        dim=plan.dim,
    )


class DecodeWorkspace:
    """Reusable scratch buffers for :func:`decode_cluster_step`.

    One instance per exchange; buffers are keyed by role and revalidated
    by shape, so they persist across epochs and resize only at
    reassignment boundaries.  Matrices returned by a workspace-backed
    decode are views into (or reuses of) these buffers — valid until the
    next decode call, which is exactly the finalize-half's
    consume-immediately lifetime.

    At pipeline depth 2 the fused exchange keeps *two* workspaces per
    receiver, keyed on ``(receiver, parity)`` with the parity flipping
    at every posted step — a tag-L+1 decode then never reuses scratch a
    not-yet-consumed tag-L view still aliases, and each view's lifetime
    extends to the next *same-parity* decode, two steps away.
    """

    def __init__(self) -> None:
        self._bufs: dict[object, np.ndarray] = {}

    def take(self, key: object, shape: tuple[int, ...], dtype) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._bufs[key] = buf
        return buf


def decode_cluster_step(
    collects: dict[int, dict[int, MixedPrecisionPayload]],
    *,
    workspace: DecodeWorkspace | None = None,
) -> dict[int, dict[int, np.ndarray]]:
    """Decode every payload of one step with batched kernels.

    ``collects`` maps each receiving rank to its ``{src: payload}`` mailbox
    (the shape :meth:`Transport.collect` returns).  Every (receiver, pair,
    group) stream of the step is bucketed by bit-width, unpacked through
    one batched lookup-table kernel per width and de-quantized in one
    elementwise kernel; per-pair matrices are then reassembled — payloads
    whose single group covers every row are served as zero-copy views into
    the de-quantize buffer.  Produces exactly the matrices
    ``payload.decode()`` would — de-quantization is row-elementwise, so
    batching cannot change any value — preserving each mailbox's iteration
    order (gradient accumulation order stays the legacy src-ascending
    order).

    ``workspace``, when given, supplies scratch reused across calls; the
    returned matrices then stay valid only until the next decode (the
    fused exchange consumes them within ``finalize_step``).
    """
    flat: list[tuple[int, int, MixedPrecisionPayload]] = [
        (dst, src, payload)
        for dst, mailbox in collects.items()
        for src, payload in mailbox.items()
    ]
    if not flat:
        return {dst: {} for dst in collects}
    dims = {p.dim for _, _, p in flat}
    if len(dims) != 1:
        raise ValueError("payloads of one step must share their dimension")
    dim = dims.pop()

    # bits -> parallel lists over that width's groups
    targets: dict[int, list[tuple[int, int, np.ndarray]]] = {}
    streams: dict[int, list[np.ndarray]] = {}
    zero_points: dict[int, list[np.ndarray]] = {}
    scales: dict[int, list[np.ndarray]] = {}
    for dst, src, payload in flat:
        covered = 0
        for bits, rows, stream, z, s in zip(
            payload.group_bits,
            payload.group_rows,
            payload.streams,
            payload.zero_points,
            payload.scales,
        ):
            targets.setdefault(bits, []).append((dst, src, rows))
            streams.setdefault(bits, []).append(stream)
            zero_points.setdefault(bits, []).append(z)
            scales.setdefault(bits, []).append(s)
            covered += rows.size
        if covered != payload.num_rows:
            raise ValueError("payload groups do not cover all rows")

    out: dict[int, dict[int, np.ndarray]] = {dst: {} for dst in collects}
    # Seed every result slot up front so each mailbox's iteration order is
    # its collection order (receivers accumulate in that order — the
    # bitwise contract).  Only payloads split across several groups need a
    # persistent matrix (their widths fill disjoint row sets);
    # single-group payloads cover every row, so their block of the
    # de-quantize buffer is the result (the None placeholder is replaced
    # by that view below).
    for dst, src, payload in flat:
        if len(payload.group_bits) == 1:
            out[dst][src] = None  # type: ignore[assignment]
        elif payload.group_bits:
            shape = (payload.num_rows, payload.dim)
            out[dst][src] = (
                workspace.take(("mat", dst, src), shape, np.float32)
                if workspace is not None
                else np.empty(shape, dtype=np.float32)
            )
        else:  # zero groups: the coverage check above forced num_rows == 0
            out[dst][src] = np.empty((0, payload.dim), dtype=np.float32)
    for bits in sorted(targets):
        counts = np.asarray(
            [rows.size * dim for _, _, rows in targets[bits]], dtype=np.int64
        )
        total = int(counts.sum())
        codes_out = None
        if workspace is not None:
            per_byte = 8 // bits
            padded = -(-total // per_byte) * per_byte
            codes_out = workspace.take(("codes", bits), (padded,), np.uint8)
        codes = unpack_bits_batched(
            streams[bits], bits, counts, out=codes_out
        ).reshape(-1, dim)
        z_all = (
            zero_points[bits][0]
            if len(zero_points[bits]) == 1
            else np.concatenate(zero_points[bits])
        )
        s_all = (
            scales[bits][0] if len(scales[bits]) == 1 else np.concatenate(scales[bits])
        )
        n_rows = total // dim
        deq = (
            workspace.take(("deq", bits), (n_rows, dim), np.float32)
            if workspace is not None
            else np.empty((n_rows, dim), dtype=np.float32)
        )
        # Same elementwise chain as codes.astype(f32) * s + z, minus the
        # intermediate allocations (and the redundant trailing astype copy
        # the old formulation paid).
        deq[...] = codes
        deq *= s_all[:, None]
        deq += z_all[:, None]
        cursor = 0
        for dst, src, rows in targets[bits]:
            block = deq[cursor : cursor + rows.size]
            mat = out[dst].get(src)
            if mat is None:
                # Single full-coverage group: rows is exactly arange(n),
                # so the dequantized block *is* the matrix.
                out[dst][src] = block
            else:
                mat[rows] = block
            cursor += rows.size
    return out


def decode_step(
    payloads: dict[int, MixedPrecisionPayload],
    *,
    workspace: DecodeWorkspace | None = None,
) -> dict[int, np.ndarray]:
    """Decode one receiver's payloads; see :func:`decode_cluster_step`."""
    return decode_cluster_step({-1: payloads}, workspace=workspace)[-1]
