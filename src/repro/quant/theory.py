"""The paper's variance theory (Theorems 1 and 3).

These formulas are what the Adaptive Bit-width Assigner optimizes over:

* Theorem 1 — de-quantized vector variance ``Var[ĥ] = D · S_b² / 6`` with
  ``S_b = (max - min) / (2^b - 1)``;
* Sec. 4.2 — per-message variance weight
  ``β_k = (Σ_{v ∈ N_T(k)} α²_{k,v}) · D_k · (max(h_k) - min(h_k))² / 6``,
  so a message quantized at ``b`` bits contributes ``β_k / (2^b - 1)²`` to
  the layer's gradient-variance bound (Eqn. 11);
* Theorem 3 — the layer bound ``Q_l`` assembled from those ingredients.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array

__all__ = [
    "SUPPORTED_BITS",
    "quantization_variance",
    "beta_values",
    "variance_objective",
    "layer_variance_bound",
]

SUPPORTED_BITS: tuple[int, ...] = (2, 4, 8)


def quantization_variance(h: np.ndarray, bits: int) -> np.ndarray:
    """Theorem 1 variance per row: ``D · S_b² / 6``.

    >>> import numpy as np
    >>> h = np.array([[0.0, 1.0, 2.0, 3.0]])
    >>> float(quantization_variance(h, 2)[0])
    0.6666666666666666
    """
    h = np.asarray(h, dtype=np.float64)
    check_array(h, name="h", ndim=2)
    d = h.shape[1]
    value_range = h.max(axis=1) - h.min(axis=1)
    scale = value_range / (2**bits - 1)
    return d * scale**2 / 6.0


def beta_values(
    value_range: np.ndarray, dim: int, alpha_sq_sum: np.ndarray
) -> np.ndarray:
    """Sec. 4.2's β_k for a batch of messages.

    Parameters
    ----------
    value_range:
        ``max(h_k) - min(h_k)`` per message.
    dim:
        Message vector dimension ``D_k`` (shared within a layer).
    alpha_sq_sum:
        ``Σ_{v ∈ N_T(k)} α²_{k,v}`` — the sum of squared aggregation
        coefficients this message receives on the *target* device.
    """
    value_range = np.asarray(value_range, dtype=np.float64)
    alpha_sq_sum = np.asarray(alpha_sq_sum, dtype=np.float64)
    if value_range.shape != alpha_sq_sum.shape:
        raise ValueError("value_range and alpha_sq_sum must align")
    return alpha_sq_sum * dim * value_range**2 / 6.0


def variance_objective(beta: np.ndarray, bits: np.ndarray) -> float:
    """Eqn. 11's total variance for an assignment: ``Σ β_k / (2^{b_k} - 1)²``."""
    beta = np.asarray(beta, dtype=np.float64)
    bits = np.asarray(bits, dtype=np.float64)
    if beta.shape != bits.shape:
        raise ValueError("beta and bits must align")
    return float((beta / (2.0**bits - 1.0) ** 2).sum())


def layer_variance_bound(
    beta_fwd: np.ndarray,
    bits_fwd: np.ndarray,
    beta_bwd: np.ndarray,
    bits_bwd: np.ndarray,
    *,
    m_bound: float = 1.0,
    n_bound: float = 1.0,
) -> float:
    """Theorem 3's ``Q_l`` (up to the paper's M/N constants).

    The three terms: the forward×backward product term, the forward term
    scaled by ``N²`` (gradient-norm bound) and the backward term scaled by
    ``M²`` (activation-norm bound).  Exact constants do not matter for the
    assigner — only relative magnitudes drive the optimization — but the
    full form is exposed for the theory tests and the benchmarks.
    """
    fwd = variance_objective(beta_fwd, bits_fwd)
    bwd = variance_objective(beta_bwd, bits_bwd)
    return fwd * bwd + n_bound**2 * fwd + m_bound**2 * bwd
