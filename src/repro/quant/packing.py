"""Bit-packing of integer codes into dense byte streams.

The paper merges 2- and 4-bit quantized messages into uniform 8-bit byte
streams before transmission (following EXACT, Liu et al. 2021).  These
helpers implement that packing: ``pack_bits`` fits ``8 / bits`` codes per
byte, ``unpack_bits`` inverts it exactly.

Layout: little-endian within each byte — code ``i`` of a byte occupies bits
``[i*b, (i+1)*b)``.  The layout is an internal wire format; only the
round-trip property matters.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_in_set

__all__ = ["pack_bits", "unpack_bits", "pack_bits_batched", "unpack_bits_batched"]

_ALLOWED_BITS = (1, 2, 4, 8)


def pack_bits(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``bits``-bit integer codes into a ``uint8`` stream.

    >>> import numpy as np
    >>> stream = pack_bits(np.array([1, 2, 3, 0], dtype=np.uint8), 2)
    >>> stream.shape
    (1,)
    >>> unpack_bits(stream, 2, 4).tolist()
    [1, 2, 3, 0]
    """
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    codes = np.ascontiguousarray(codes, dtype=np.uint8).ravel()
    if codes.size and int(codes.max()) >= (1 << bits):
        raise ValueError(f"codes exceed {bits}-bit range")
    if bits == 8:
        return codes.copy()

    per_byte = 8 // bits
    padded_len = -(-codes.size // per_byte) * per_byte  # ceil to multiple
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[: codes.size] = codes
    groups = padded.reshape(-1, per_byte)
    # Accumulate shifted lanes in uint8 (codes < 2^bits, so every shifted
    # lane fits the byte); avoids the uint16 round-trip and the slow
    # axis-1 reduce of the obvious formulation.
    out = groups[:, 0].copy()
    for lane in range(1, per_byte):
        out |= groups[:, lane] << np.uint8(lane * bits)
    return out


def unpack_bits(stream: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Unpack ``count`` codes of width ``bits`` from a ``uint8`` stream."""
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    check_array(stream, name="stream", ndim=1, dtype_kind="u")
    if count < 0:
        raise ValueError("count must be non-negative")
    if bits == 8:
        if count > stream.size:
            raise ValueError("stream too short")
        return stream[:count].copy()

    per_byte = 8 // bits
    needed_bytes = -(-count // per_byte)
    if needed_bytes > stream.size:
        raise ValueError("stream too short")
    mask = np.uint8((1 << bits) - 1)
    shifts = (np.arange(per_byte, dtype=np.uint8) * bits)[None, :]
    codes = ((stream[:needed_bytes, None] >> shifts) & mask).reshape(-1)
    return codes[:count].astype(np.uint8)


def pack_bits_batched(
    codes: np.ndarray, bits: int, counts: np.ndarray
) -> list[np.ndarray]:
    """Pack consecutive segments of ``codes`` into independent byte streams.

    Each segment ``i`` holds ``counts[i]`` codes and produces exactly the
    bytes ``pack_bits(segment, bits)`` would — segments stay byte-aligned on
    the wire so receivers can slice streams apart without bit arithmetic.
    When every segment's bit-length is a whole number of bytes (the common
    case: row counts × feature dim × bits divisible by 8), the whole batch
    is packed by one vectorized kernel and split at byte offsets; ragged
    segments fall back to per-segment packing.

    >>> import numpy as np
    >>> streams = pack_bits_batched(np.arange(8, dtype=np.uint8) % 4, 2,
    ...                             np.array([4, 4]))
    >>> [s.size for s in streams]
    [1, 1]
    """
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or (counts < 0).any():
        raise ValueError("counts must be a 1-D array of non-negative sizes")
    codes = np.ascontiguousarray(codes, dtype=np.uint8).ravel()
    if int(counts.sum()) != codes.size:
        raise ValueError("counts must sum to the number of codes")

    if bits == 8 or not ((counts * bits) % 8).any():
        packed = pack_bits(codes, bits)
        offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts * bits // 8, out=offsets[1:])
        return [packed[offsets[i] : offsets[i + 1]] for i in range(counts.size)]

    bounds = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return [
        pack_bits(codes[bounds[i] : bounds[i + 1]], bits) for i in range(counts.size)
    ]


def unpack_bits_batched(
    streams: list[np.ndarray], bits: int, counts: np.ndarray
) -> np.ndarray:
    """Unpack per-segment byte streams back into one concatenated code array.

    Inverse of :func:`pack_bits_batched`: ``streams[i]`` carries
    ``counts[i]`` codes. Byte-aligned batches are unpacked by a single
    kernel over the concatenated stream; ragged segments unpack one by one.
    """
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size != len(streams):
        raise ValueError("one stream per count required")
    if counts.size == 0:
        return np.zeros(0, dtype=np.uint8)

    if bits == 8 or not ((counts * bits) % 8).any():
        return unpack_bits(np.concatenate(streams), bits, int(counts.sum()))
    return np.concatenate(
        [unpack_bits(stream, bits, int(n)) for stream, n in zip(streams, counts)]
    )
