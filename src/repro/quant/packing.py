"""Bit-packing of integer codes into dense byte streams.

The paper merges 2- and 4-bit quantized messages into uniform 8-bit byte
streams before transmission (following EXACT, Liu et al. 2021).  These
helpers implement that packing: ``pack_bits`` fits ``8 / bits`` codes per
byte, ``unpack_bits`` inverts it exactly.

Layout: little-endian within each byte — code ``i`` of a byte occupies bits
``[i*b, (i+1)*b)``.  The layout is an internal wire format; only the
round-trip property matters.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array, check_in_set

__all__ = ["pack_bits", "unpack_bits"]

_ALLOWED_BITS = (1, 2, 4, 8)


def pack_bits(codes: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``bits``-bit integer codes into a ``uint8`` stream.

    >>> import numpy as np
    >>> stream = pack_bits(np.array([1, 2, 3, 0], dtype=np.uint8), 2)
    >>> stream.shape
    (1,)
    >>> unpack_bits(stream, 2, 4).tolist()
    [1, 2, 3, 0]
    """
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    codes = np.ascontiguousarray(codes, dtype=np.uint8).ravel()
    if codes.size and int(codes.max()) >= (1 << bits):
        raise ValueError(f"codes exceed {bits}-bit range")
    if bits == 8:
        return codes.copy()

    per_byte = 8 // bits
    padded_len = -(-codes.size // per_byte) * per_byte  # ceil to multiple
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[: codes.size] = codes
    groups = padded.reshape(-1, per_byte)
    shifts = (np.arange(per_byte, dtype=np.uint8) * bits)[None, :]
    return np.bitwise_or.reduce(
        (groups.astype(np.uint16) << shifts).astype(np.uint16), axis=1
    ).astype(np.uint8)


def unpack_bits(stream: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Unpack ``count`` codes of width ``bits`` from a ``uint8`` stream."""
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    check_array(stream, name="stream", ndim=1, dtype_kind="u")
    if count < 0:
        raise ValueError("count must be non-negative")
    if bits == 8:
        if count > stream.size:
            raise ValueError("stream too short")
        return stream[:count].copy()

    per_byte = 8 // bits
    needed_bytes = -(-count // per_byte)
    if needed_bytes > stream.size:
        raise ValueError("stream too short")
    mask = np.uint8((1 << bits) - 1)
    shifts = (np.arange(per_byte, dtype=np.uint8) * bits)[None, :]
    codes = ((stream[:needed_bytes, None] >> shifts) & mask).reshape(-1)
    return codes[:count].astype(np.uint8)
