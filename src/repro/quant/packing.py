"""Bit-packing of integer codes into dense byte streams.

The paper merges 2- and 4-bit quantized messages into uniform 8-bit byte
streams before transmission (following EXACT, Liu et al. 2021).  These
helpers implement that packing: ``pack_bits`` fits ``8 / bits`` codes per
byte, ``unpack_bits`` inverts it exactly.

Layout: little-endian within each byte — code ``i`` of a byte occupies bits
``[i*b, (i+1)*b)``.  The layout is an internal wire format; only the
round-trip property matters.

Kernel shapes (these are the quantized epoch's hot kernels):

* ``pack_bits`` reinterprets the (padded) code array as one machine word
  per output byte — codes already sit one-per-byte, so a byte's lanes are
  the bytes of a little-endian uint16/uint32 — and merges them with two
  (4-bit) or three (2-bit) contiguous shift-ORs; 1-bit packing is
  ``np.packbits(..., bitorder="little")``.  No per-lane strided views.
* ``unpack_bits`` decodes through a precomputed ``256 × (8/bits)`` lookup
  table: one ``take`` per stream instead of per-lane shift/mask kernels.

``validate=False`` skips ``pack_bits``'s O(n) code-range scan for trusted
callers (the fused step encoder clamps its codes to range by
construction); the public default keeps the check.  Out-of-range codes
under ``validate=False`` corrupt neighbouring lanes — garbage in, garbage
out, exactly like any native packing kernel.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.utils.validation import check_array, check_in_set

__all__ = ["pack_bits", "unpack_bits", "pack_bits_batched", "unpack_bits_batched"]

_ALLOWED_BITS = (1, 2, 4, 8)

_LITTLE_ENDIAN = sys.byteorder == "little"

#: bits -> 256-entry word table; entry b's raw bytes are byte b's decoded
#: lanes in order.  One word per stream byte makes the decode a flat 1-D
#: gather (fast) instead of a per-row 2-D take; viewing the gathered words
#: back as uint8 recovers the lane bytes on any host byte order.
_UNPACK_LUTS: dict[int, np.ndarray] = {}

_WORD_DTYPES = {8: np.uint64, 4: np.uint32, 2: np.uint16}

#: lane-merge word dtype and shift step per sub-byte width (pack side).
_PACK_WORDS = {2: (np.uint32, 6), 4: (np.uint16, 4)}


def _unpack_lut(bits: int) -> np.ndarray:
    lut = _UNPACK_LUTS.get(bits)
    if lut is None:
        per_byte = 8 // bits
        mask = (1 << bits) - 1
        byte = np.arange(256, dtype=np.uint16)[:, None]
        shifts = (np.arange(per_byte, dtype=np.uint16) * bits)[None, :]
        lanes = np.ascontiguousarray(((byte >> shifts) & mask).astype(np.uint8))
        lut = lanes.view(_WORD_DTYPES[per_byte]).ravel()
        _UNPACK_LUTS[bits] = lut
    return lut


def _pack_lanes(padded: np.ndarray, bits: int) -> np.ndarray:
    """Merge the one-code-per-byte array into packed bytes (len % lanes == 0)."""
    if bits == 1:
        return np.packbits(padded, bitorder="little")
    if _LITTLE_ENDIAN:
        # Lane i of an output byte sits in byte i of the corresponding
        # little-endian word; shifting by (8 - bits) per lane folds every
        # lane into the low byte (cross-lane residue lands above bit 7 or
        # vanishes — codes are < 2^bits — and the uint8 cast truncates).
        word_dtype, shift = _PACK_WORDS[bits]
        words = padded.view(word_dtype)
        out = words | (words >> word_dtype(shift))
        for lane_shift in range(2 * shift, (8 // bits - 1) * shift + 1, shift):
            out |= words >> word_dtype(lane_shift)
        return out.astype(np.uint8)
    per_byte = 8 // bits
    groups = padded.reshape(-1, per_byte)
    out = groups[:, 0].copy()
    for lane in range(1, per_byte):
        out |= groups[:, lane] << np.uint8(lane * bits)
    return out


def pack_bits(codes: np.ndarray, bits: int, *, validate: bool = True) -> np.ndarray:
    """Pack ``bits``-bit integer codes into a ``uint8`` stream.

    ``validate=False`` skips the O(n) range scan (see module docstring).

    >>> import numpy as np
    >>> stream = pack_bits(np.array([1, 2, 3, 0], dtype=np.uint8), 2)
    >>> stream.shape
    (1,)
    >>> unpack_bits(stream, 2, 4).tolist()
    [1, 2, 3, 0]
    """
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    codes = np.ascontiguousarray(codes, dtype=np.uint8).ravel()
    if validate and codes.size and int(codes.max()) >= (1 << bits):
        raise ValueError(f"codes exceed {bits}-bit range")
    if bits == 8:
        return codes.copy()

    per_byte = 8 // bits
    padded_len = -(-codes.size // per_byte) * per_byte  # ceil to multiple
    if padded_len == codes.size:
        padded = codes  # word view is read-only; no defensive copy needed
    else:
        padded = np.zeros(padded_len, dtype=np.uint8)
        padded[: codes.size] = codes
    return _pack_lanes(padded, bits)


def unpack_bits(
    stream: np.ndarray, bits: int, count: int, *, out: np.ndarray | None = None
) -> np.ndarray:
    """Unpack ``count`` codes of width ``bits`` from a ``uint8`` stream.

    ``out``, when given, must be a C-contiguous uint8 buffer of at least
    ``ceil(count / (8/bits)) * (8/bits)`` entries; the decoded codes are
    written into its head and the returned array is a view of it (the
    fused decode path reuses one scratch buffer across epochs).
    """
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    check_array(stream, name="stream", ndim=1, dtype_kind="u")
    if count < 0:
        raise ValueError("count must be non-negative")
    if bits == 8:
        if count > stream.size:
            raise ValueError("stream too short")
        if out is not None:
            head = out[:count]
            head[...] = stream[:count]
            return head
        return stream[:count].copy()

    per_byte = 8 // bits
    needed_bytes = -(-count // per_byte)
    if needed_bytes > stream.size:
        raise ValueError("stream too short")
    lut = _unpack_lut(bits)
    if out is None:
        return lut[stream[:needed_bytes]].view(np.uint8)[:count]
    words = out[: needed_bytes * per_byte].view(lut.dtype)
    np.take(lut, stream[:needed_bytes], out=words)
    return out[:count]


def pack_bits_batched(
    codes: np.ndarray, bits: int, counts: np.ndarray, *, validate: bool = True
) -> list[np.ndarray]:
    """Pack consecutive segments of ``codes`` into independent byte streams.

    Each segment ``i`` holds ``counts[i]`` codes and produces exactly the
    bytes ``pack_bits(segment, bits)`` would — segments stay byte-aligned on
    the wire so receivers can slice streams apart without bit arithmetic.
    When every segment's bit-length is a whole number of bytes (the common
    case: row counts × feature dim × bits divisible by 8), the whole batch
    is packed by one vectorized kernel and split at byte offsets; ragged
    segments fall back to per-segment packing.

    >>> import numpy as np
    >>> streams = pack_bits_batched(np.arange(8, dtype=np.uint8) % 4, 2,
    ...                             np.array([4, 4]))
    >>> [s.size for s in streams]
    [1, 1]
    """
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    counts = np.asarray(counts, dtype=np.int64)
    if counts.ndim != 1 or (counts < 0).any():
        raise ValueError("counts must be a 1-D array of non-negative sizes")
    codes = np.ascontiguousarray(codes, dtype=np.uint8).ravel()
    if int(counts.sum()) != codes.size:
        raise ValueError("counts must sum to the number of codes")

    if bits == 8 or not ((counts * bits) % 8).any():
        packed = pack_bits(codes, bits, validate=validate)
        offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts * bits // 8, out=offsets[1:])
        return [packed[offsets[i] : offsets[i + 1]] for i in range(counts.size)]

    bounds = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    return [
        pack_bits(codes[bounds[i] : bounds[i + 1]], bits, validate=validate)
        for i in range(counts.size)
    ]


def unpack_bits_batched(
    streams: list[np.ndarray],
    bits: int,
    counts: np.ndarray,
    *,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Unpack per-segment byte streams back into one concatenated code array.

    Inverse of :func:`pack_bits_batched`: ``streams[i]`` carries
    ``counts[i]`` codes. Byte-aligned batches are unpacked by a single
    kernel over the concatenated stream; ragged segments unpack one by one.
    ``out`` forwards to :func:`unpack_bits` on the batched path.
    """
    check_in_set(bits, _ALLOWED_BITS, name="bits")
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size != len(streams):
        raise ValueError("one stream per count required")
    if counts.size == 0:
        return np.zeros(0, dtype=np.uint8)

    if bits == 8 or not ((counts * bits) % 8).any():
        stream = streams[0] if len(streams) == 1 else np.concatenate(streams)
        return unpack_bits(stream, bits, int(counts.sum()), out=out)
    return np.concatenate(
        [unpack_bits(stream, bits, int(n)) for stream, n in zip(streams, counts)]
    )
