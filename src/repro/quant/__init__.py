"""Stochastic integer quantization of GNN messages (paper Sec. 2.3, 3.2).

Pipeline:

1. :func:`quantize_stochastic` maps each float32 message vector to
   ``b``-bit integers with a per-vector zero-point and scale (Eqn. 4),
   using stochastic rounding so de-quantization is *unbiased* (Theorem 1);
2. :mod:`repro.quant.packing` packs 2/4/8-bit integer payloads into dense
   ``uint8`` byte streams (the "merge into uniform 8-bit byte streams"
   step of the paper's implementation section);
3. :class:`MixedPrecisionEncoder` groups rows by assigned bit-width,
   quantizes each group and concatenates the streams — the exact wire
   format the adaptive bit-width assigner feeds;
4. :mod:`repro.quant.theory` evaluates the paper's variance formulas
   (Theorem 1's vector variance, Theorem 3's β values and layer bound
   ``Q_l``) used by the bi-objective assignment problem.
"""

from repro.quant.stochastic import (
    KeyedRounding,
    QuantizedTensor,
    StreamRounding,
    as_rounding,
    block_key,
    dequantize,
    quantize_stochastic,
    quantize_with_noise,
    stochastic_round,
)
from repro.quant.packing import (
    pack_bits,
    pack_bits_batched,
    unpack_bits,
    unpack_bits_batched,
)
from repro.quant.mixed import MixedPrecisionEncoder, MixedPrecisionPayload
from repro.quant.fused import (
    DecodeWorkspace,
    FusedStepEncoder,
    FusedStepPlan,
    decode_step,
)
from repro.quant.theory import (
    SUPPORTED_BITS,
    beta_values,
    quantization_variance,
    variance_objective,
)

__all__ = [
    "QuantizedTensor",
    "quantize_stochastic",
    "quantize_with_noise",
    "dequantize",
    "stochastic_round",
    "block_key",
    "StreamRounding",
    "KeyedRounding",
    "as_rounding",
    "pack_bits",
    "unpack_bits",
    "pack_bits_batched",
    "unpack_bits_batched",
    "MixedPrecisionEncoder",
    "MixedPrecisionPayload",
    "FusedStepEncoder",
    "FusedStepPlan",
    "DecodeWorkspace",
    "decode_step",
    "SUPPORTED_BITS",
    "quantization_variance",
    "beta_values",
    "variance_objective",
]
