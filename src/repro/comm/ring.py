"""Ring all2all communication schedule (paper Fig. 8).

For ``N`` devices the exchange takes ``N - 1`` rounds; in round ``i`` every
device ``j`` sends to ``(j + i) mod N`` and receives from ``(j - i) mod N``.
Rounds are barrier-synchronized, so each round costs the *maximum* pair
time — the straggler effect the paper's minimax bit-width objective
(Eqn. 10) attacks.
"""

from __future__ import annotations

import numpy as np

from repro.comm.costmodel import LinkCostModel

__all__ = ["ring_rounds", "ring_all2all_time"]


def ring_rounds(num_devices: int) -> list[list[tuple[int, int]]]:
    """The ``N-1`` rounds of (src, dst) pairs.

    >>> ring_rounds(3)
    [[(0, 1), (1, 2), (2, 0)], [(0, 2), (1, 0), (2, 1)]]
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    return [
        [(j, (j + i) % num_devices) for j in range(num_devices)]
        for i in range(1, num_devices)
    ]


def ring_all2all_time(
    bytes_matrix: np.ndarray, cost: LinkCostModel
) -> tuple[float, list[float]]:
    """Total and per-round times of a ring all2all exchange.

    Parameters
    ----------
    bytes_matrix:
        ``bytes_matrix[s, d]`` = payload bytes device ``s`` sends to ``d``.
        Zero entries cost nothing (the pair simply idles that round).

    Returns
    -------
    (total_seconds, per_round_seconds):
        ``total = sum(per_round)``; each round is the max over its pairs.
    """
    n = cost.topology.num_devices
    bytes_matrix = np.asarray(bytes_matrix, dtype=np.float64)
    if bytes_matrix.shape != (n, n):
        raise ValueError(f"bytes_matrix must be ({n}, {n})")
    per_round: list[float] = []
    for round_pairs in ring_rounds(n):
        round_time = max(
            (cost.time(s, d, bytes_matrix[s, d]) for s, d in round_pairs),
            default=0.0,
        )
        per_round.append(round_time)
    return float(sum(per_round)), per_round
