"""Process-backed transport: encode/decode on worker processes over shm.

:class:`WorkerTransport` escapes the main thread but not the GIL — pure
NumPy quantize/pack kernels release it only inside individual ufuncs, so a
thread pool plateaus on quantize-heavy steps.  :class:`ProcessTransport`
runs each encode shard — and each receiver's decode — in its own worker
*process*; payloads travel through ``multiprocessing.shared_memory``
ring-buffer slabs, never through pickles.

The design leans entirely on PR 5's keyed RNG: a worker needs **no shared
state**.  It receives a picklable :class:`~repro.quant.fused.
ShardDescriptor` — coordinates and row spans, not closures — plus shm
offsets, rebuilds its shard plan locally and reproduces the payload bytes
bitwise (noise is a pure function of ``(run_seed, epoch, phase, layer,
src, dst)``).  The main process computes a step's entire slab layout up
front (deterministic from the plan's group structure), so workers write at
prescribed offsets and reply with nothing but a job id.
``TransportAccounting.collect``'s sort-by-source anchor then keeps
training results identical to the sync/thread paths at any process count.

**Wave protocol.**  ``submit`` dispatches a job now; ``submit_followup``
queues work to dispatch once the tag's current wave drains (the fused
exchange's per-receiver decode jobs must not race the encode posts, and
cross-queue FIFO between the task and result pipes is not guaranteed, so
chaining happens on the main side).  ``complete(tag)`` alternates
drain-wave / dispatch-followups until the tag is quiet; each finished
job's ``on_done`` callback runs on the *main* thread (posting payload
views into the mailboxes, stashing decoded matrices), so callbacks may
hold closures over live objects — only jobs cross the process boundary.

**Lifetime.**  Segments register in a ``weakref.finalize`` as they are
created: even if a KeyboardInterrupt lands mid-``complete`` and ``close``
never runs, interpreter teardown unlinks every slab (the close-after-kill
test pins this down).  ``close`` itself is idempotent: sentinel every
worker, join with a timeout, terminate survivors, then unlink.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import queue
import signal
import time
import traceback
import weakref
import zlib
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.comm.transport import SyncTransport, TransportError
from repro.comm.transports import register
from repro.quant.fused import DecodeWorkspace, ShardDescriptor, decode_step
from repro.quant.mixed import MixedPrecisionPayload

__all__ = ["ShmRing", "ProcessTransport", "ShardEncodeJob", "StepDecodeJob"]


class _SilentSharedMemory(shared_memory.SharedMemory):
    """SharedMemory whose close tolerates live buffer exports.

    Numpy views of a slab (payload streams, decoded matrices) may outlive
    the transport; closing the mapping then raises BufferError — including
    from ``__del__`` at garbage collection, which prints an "Exception
    ignored" traceback.  The mapping dies with the process either way and
    ``unlink`` is unaffected, so the error carries no information.
    """

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


class ShmRing:
    """FIFO ring allocator over one shared-memory segment.

    Records are contiguous byte spans allocated at the head and retired
    oldest-first.  A record never straddles the segment end: when the tail
    gap is too small the head wraps to offset 0 and the skipped bytes are
    charged to the wrapped record (released when it retires) — receivers
    can always view a record as one flat buffer.  ``alloc`` raises
    :class:`MemoryError` when the ring is full; callers size slabs from
    the step plan's byte budget, so a full ring means a leaked record, not
    an undersized one.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.shm = _SilentSharedMemory(create=True, size=self.capacity)
        self._head = 0
        self._free = self.capacity
        self._records: deque[tuple[int, int, int]] = deque()  # (offset, nbytes, waste)

    @property
    def name(self) -> str:
        return self.shm.name

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` contiguous bytes; returns the byte offset."""
        nbytes = int(nbytes)
        if not 1 <= nbytes <= self.capacity:
            raise ValueError(f"record size {nbytes} outside (0, {self.capacity}]")
        offset, waste = self._head, 0
        if offset + nbytes > self.capacity:
            waste = self.capacity - offset
            offset = 0
        if nbytes + waste > self._free:
            raise MemoryError(
                f"ring full: need {nbytes + waste} bytes, {self._free} free"
            )
        self._free -= nbytes + waste
        self._head = offset + nbytes
        self._records.append((offset, nbytes, waste))
        return offset

    def retire(self) -> tuple[int, int]:
        """Release the oldest record; returns its ``(offset, nbytes)``."""
        if not self._records:
            raise RuntimeError("ring has no live records")
        offset, nbytes, waste = self._records.popleft()
        self._free += nbytes + waste
        return offset, nbytes

    def __len__(self) -> int:
        return len(self._records)

    @property
    def free_bytes(self) -> int:
        return self._free

    def view(self, offset: int, nbytes: int) -> np.ndarray:
        """A uint8 array view of ``[offset, offset + nbytes)``."""
        return np.frombuffer(self.shm.buf, dtype=np.uint8, count=nbytes, offset=offset)

    def close(self) -> None:
        self.shm.close()

    def unlink(self) -> None:
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass


def _attach_segment(cache: dict, name: str) -> shared_memory.SharedMemory:
    """Worker-side attach (cached per segment name).

    The parent owns every segment's lifetime, but on Python < 3.13 merely
    attaching also registers with the resource tracker (there is no
    ``track=`` yet).  Under fork the tracker is *shared* with the parent,
    so an unregister-after-attach would cancel the parent's registration;
    under spawn the child's own tracker would unlink live segments at
    worker exit.  Suppressing registration during the attach is correct
    for both: only the parent's register/unlink pair ever reaches a
    tracker.  The worker is single-threaded, so the brief patch is safe.
    """
    seg = cache.get(name)
    if seg is None:
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            seg = _SilentSharedMemory(name=name)
        finally:
            resource_tracker.register = original
        cache[name] = seg
    return seg


def _f32(seg: shared_memory.SharedMemory, offset: int, count: int) -> np.ndarray:
    return np.frombuffer(seg.buf, dtype=np.float32, count=count, offset=offset)


@dataclass(frozen=True)
class ShardEncodeJob:
    """Encode one shard from shm input rows; write streams/metadata at
    prescribed offsets.  ``pair_layouts`` aligns with ``descriptor.pairs``:
    per pair, per group (bits ascending), ``(bits, rows, stream_offset,
    stream_nbytes, z_offset, s_offset)``."""

    descriptor: ShardDescriptor
    segment: str
    rows_offset: int  # float32 (n_rows, dim), cat order, shard-local
    n_rows: int
    pair_layouts: tuple
    #: when set, the job returns ``{pair: crc32}`` over each pair's
    #: written stream bytes — the slab-integrity check's reference values.
    checksum: bool = False

    def run(self, segments: dict, cache: dict) -> dict | None:
        seg = _attach_segment(segments, self.segment)
        desc = self.descriptor
        rows = _f32(seg, self.rows_offset, self.n_rows * desc.dim).reshape(
            self.n_rows, desc.dim
        )
        payloads = desc.encode(rows, cache=cache)
        buf = np.frombuffer(seg.buf, dtype=np.uint8)
        crcs: dict | None = {} if self.checksum else None
        for pair, groups in zip(desc.pairs, self.pair_layouts):
            payload = payloads[pair]
            crc = 0
            for layout, stream, z, s in zip(
                groups, payload.streams, payload.zero_points, payload.scales
            ):
                _, n, stream_off, stream_nbytes, z_off, s_off = layout
                if stream.nbytes != stream_nbytes:
                    raise RuntimeError(
                        f"stream size mismatch for pair {pair}: "
                        f"{stream.nbytes} != planned {stream_nbytes}"
                    )
                buf[stream_off : stream_off + stream_nbytes] = stream
                _f32(seg, z_off, n)[...] = z
                _f32(seg, s_off, n)[...] = s
                if crcs is not None:
                    crc = zlib.crc32(stream, crc)
            if crcs is not None:
                crcs[pair] = crc
        return crcs


@dataclass(frozen=True)
class StepDecodeJob:
    """Decode one receiver's payloads from shm; write the full-precision
    matrices back at prescribed offsets.  ``sources`` is per incoming src
    (ascending): ``(src, num_rows, out_offset, groups)`` with groups as in
    :class:`ShardEncodeJob` plus a row-index spec (``None`` = the single
    full-coverage group, else int64 index bytes)."""

    segment: str
    tag: str
    rank: int
    dim: int
    sources: tuple

    def run(self, segments: dict, cache: dict) -> None:
        seg = _attach_segment(segments, self.segment)
        buf = np.frombuffer(seg.buf, dtype=np.uint8)
        payloads: dict[int, MixedPrecisionPayload] = {}
        for src, num_rows, _, groups in self.sources:
            group_bits, group_rows, streams, zero_points, scales = [], [], [], [], []
            for bits, n, stream_off, stream_nbytes, z_off, s_off, rows_spec in groups:
                group_bits.append(bits)
                group_rows.append(
                    np.arange(num_rows, dtype=np.int64)
                    if rows_spec is None
                    else np.frombuffer(rows_spec, dtype=np.int64)
                )
                streams.append(buf[stream_off : stream_off + stream_nbytes])
                zero_points.append(_f32(seg, z_off, n))
                scales.append(_f32(seg, s_off, n))
            payloads[src] = MixedPrecisionPayload(
                num_rows=num_rows,
                dim=self.dim,
                group_bits=group_bits,
                group_rows=group_rows,
                streams=streams,
                zero_points=zero_points,
                scales=scales,
            )
        workspace = cache.get(("decode-ws", self.tag, self.rank))
        if workspace is None:
            workspace = cache[("decode-ws", self.tag, self.rank)] = DecodeWorkspace()
        decoded = decode_step(payloads, workspace=workspace)
        for src, num_rows, out_off, _ in self.sources:
            out = _f32(seg, out_off, num_rows * self.dim).reshape(num_rows, self.dim)
            out[...] = decoded[src]


@dataclass(frozen=True)
class _StallJob:
    """Fault-injection wrapper: sleep, then run the wrapped job."""

    delay_s: float
    inner: object

    def run(self, segments: dict, cache: dict):
        time.sleep(self.delay_s)
        return self.inner.run(segments, cache)


@dataclass(frozen=True)
class _FailJob:
    """Fault-injection wrapper: a job that raises instead of running."""

    tag: str

    def run(self, segments: dict, cache: dict):
        raise RuntimeError(f"injected transport job fault on tag {self.tag!r}")


def _worker_main(task_q, result_q) -> None:
    """Worker loop: attach-on-demand segments, per-shard plan caches.

    Results are ``(job_id, tag, error, info)`` where ``info`` is the
    job's (small, picklable) return value — e.g. the encode shard's
    per-pair stream checksums when slab verification is on.
    """
    segments: dict[str, shared_memory.SharedMemory] = {}
    cache: dict = {}
    while True:
        try:
            item = task_q.get()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if item is None:
            break
        job_id, tag, job = item
        try:
            info = job.run(segments, cache)
            result_q.put((job_id, tag, None, info))
        except KeyboardInterrupt:
            break
        except BaseException:
            try:
                result_q.put((job_id, tag, traceback.format_exc(), None))
            except Exception:
                break
    for seg in segments.values():
        try:
            seg.close()
        except Exception:
            pass


def _unlink_segments(names: list[str]) -> None:
    """Finalizer: unlink every slab by name (idempotent, crash-safe)."""
    for name in list(names):
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        except Exception:
            continue
        try:
            seg.close()
        except Exception:
            pass
        try:
            seg.unlink()
        except Exception:
            pass
    names.clear()


@register("process")
class ProcessTransport(SyncTransport):
    """Process-pool transport over shared-memory ring slabs.

    Accounting, mailboxes and ``collect``'s source-ascending anchor are
    inherited; what changes is where jobs execute.  :meth:`defer` still
    runs closures inline — exchanges whose jobs are closures (exact,
    stale, broadcast, stream-mode quantized) stay on the bitwise-identical
    sync path automatically; only the fused keyed engine opts into
    :meth:`submit`/:meth:`submit_followup` with picklable jobs.

    The main thread runs all ``on_done`` callbacks inside
    :meth:`complete`, so posts and decoded-matrix stashes happen exactly
    where the synchronous path does them — the transport's progress model
    (posts landing in an open overlap window count as overlapped) is
    preserved without any cross-process accounting.
    """

    kind = "process"
    is_async = True

    def __init__(
        self,
        num_devices: int,
        *,
        workers: int = 1,
        start_method: str | None = None,
    ) -> None:
        super().__init__(num_devices)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._job_seq = 0
        # tag -> {job_id: (job, on_done)}; jobs are retained while in
        # flight so a pool respawn can resubmit them (keyed jobs write to
        # prescribed shm offsets, so re-running them is idempotent).
        self._inflight: dict[str, dict[int, tuple[object, object]]] = {}
        self._followups: dict[str, list[tuple[object, object]]] = {}
        self._errors: dict[str, list[str]] = {}
        self._wave_checks: dict[str, object] = {}
        self._wave_info: dict[str, dict] = {}
        #: pool-respawn budget after worker deaths; exceeding it raises
        #: :class:`TransportError` (escalate to an epoch-boundary restore).
        self.max_respawns = 2
        self.respawns = 0
        self._spawn_generation = 0
        #: per-worker exit records accumulated across respawns and close:
        #: ``{"name", "exitcode", "expected"}`` — ``expected`` is False for
        #: deaths the transport did not cause itself (signals, OOM kills).
        self.exit_report: list[dict] = []
        self._rings: dict[str, ShmRing] = {}
        self._retired_rings: list[ShmRing] = []
        #: Ring replacements after first allocation (grown byte budgets).
        #: Steady-state epochs at a constant budget must keep this at 0 —
        #: re-slab churn would serialize the depth-2 pipeline on shm
        #: setup; tests pin the invariant through this counter.
        self.reslab_count = 0
        self._closed = False
        # The finalizer holds only the (mutable) name list — it must not
        # keep the transport alive, and it must unlink slabs even when
        # close() never ran (interrupted epoch, interpreter teardown).
        self._segment_names: list[str] = []
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segment_names
        )

    # ------------------------------------------------------------------
    # Worker pool lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker processes (idempotent; clusters call this at
        open so the fork happens before any large epoch state exists)."""
        if self._closed:
            raise RuntimeError("transport is closed")
        if self._procs:
            return
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.Queue()
        gen = self._spawn_generation
        for i in range(self.workers):
            name = f"repro-transport-{i}"
            if gen:
                name = f"{name}.g{gen}"
            proc = self._ctx.Process(
                target=_worker_main,
                args=(self._task_q, self._result_q),
                name=name,
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    def _respawn_pool(self, dead: list) -> None:
        """Replace a pool with dead member(s): fresh procs, fresh queues,
        resubmitted in-flight jobs.

        The old queues are abandoned wholesale — a worker SIGKILLed while
        holding a queue's internal lock leaves it poisoned for every other
        reader, so surviving workers are terminated and everything
        restarts against new pipes.  In-flight jobs are resubmitted
        verbatim: keyed encode/decode jobs write at prescribed shm offsets
        with coordinate-keyed noise, so running a job twice (its first
        result may have been lost with the old result queue) lands the
        same bytes.  Past :attr:`max_respawns`, raises
        :class:`TransportError` — the caller's cue to fall back to an
        epoch-boundary checkpoint restore.
        """
        for proc in dead:
            self.exit_report.append(
                {"name": proc.name, "exitcode": proc.exitcode, "expected": False}
            )
        self.respawns += 1
        self.fault_stats["respawns"] += 1
        if self.respawns > self.max_respawns:
            raise TransportError(
                f"transport worker process(es) died ({[p.name for p in dead]});"
                f" respawn budget ({self.max_respawns}) exhausted"
            )
        dead_set = set(id(p) for p in dead)
        old_procs, self._procs = self._procs, []
        for proc in old_procs:
            if proc.is_alive():
                proc.terminate()
        for proc in old_procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
            if id(proc) not in dead_set:
                # A survivor we terminated ourselves to rebuild the pool.
                self.exit_report.append(
                    {"name": proc.name, "exitcode": proc.exitcode, "expected": True}
                )
        for q in (self._task_q, self._result_q):
            if q is not None:
                try:
                    q.cancel_join_thread()
                    q.close()
                except Exception:
                    pass
        self._task_q = self._result_q = None
        self._spawn_generation += 1
        self.start()
        for tag, jobs in self._inflight.items():
            for job_id, (job, _) in jobs.items():
                self._task_q.put((job_id, tag, job))

    # ------------------------------------------------------------------
    # Shared-memory arena
    # ------------------------------------------------------------------
    def step_buffer(self, tag: str, nbytes: int) -> tuple[str, int, np.ndarray]:
        """One step's slab span under ``tag``: ``(segment, offset, view)``.

        Each tag owns a ring sized for two steps (the previous step's
        payload/decode views live until its finalize consumed them, which
        happens before the next same-tag post); the previous record is
        retired here, so steady-state allocation walks the ring and
        wraps — the fixed slab is reused for the whole run instead of
        growing.  The two-record capacity is exactly what depth-2
        pipelining needs: with two tags in flight the rings are distinct
        per tag, and within a tag the lookahead post of epoch ``e+1``
        never lands before epoch ``e``'s finalize consumed its record, so
        a constant byte budget must never re-slab mid-epoch
        (``reslab_count`` observes this).  Only a *grown* byte budget
        (bit reassignment) re-slabs.
        """
        if self._closed:
            raise RuntimeError("transport is closed")
        # Round records up to 64 bytes so every ring offset stays 64-byte
        # aligned (slabs hold typed views — float32 regions at 8-aligned
        # in-record offsets).
        nbytes = (max(int(nbytes), 1) + 63) & ~63
        ring = self._rings.get(tag)
        if ring is None or ring.capacity < 2 * nbytes:
            if ring is not None:
                while len(ring):
                    ring.retire()
                self._retired_rings.append(ring)
                self.reslab_count += 1
            ring = self._rings[tag] = ShmRing(2 * nbytes)
            self._segment_names.append(ring.name)
        if len(ring):
            ring.retire()
        offset = ring.alloc(nbytes)
        return ring.name, offset, ring.view(offset, nbytes)

    def shm_slab_bytes(self) -> int:
        """Total capacity of the live shared-memory rings, in bytes.

        The measured counterpart of the analytic
        :attr:`~repro.cluster.memory.MemoryFootprint.shm_slab_bytes`
        estimate (which upper-bounds each record at full precision);
        retired rings are excluded — their segments are unlinked and
        their pages returned as soon as no view references them.
        """
        return sum(ring.capacity for ring in self._rings.values())

    # ------------------------------------------------------------------
    # Wave protocol
    # ------------------------------------------------------------------
    def submit(self, tag: str, job, on_done=None) -> int:
        """Dispatch a picklable ``job`` to the pool under ``tag``.

        ``on_done`` (a main-side closure, never pickled) runs on the
        calling thread when the job's result is drained.
        """
        if self._closed:
            raise RuntimeError("transport is closed")
        self.start()
        plan = self.fault_plan
        if plan is not None:
            if plan.take("kill_worker", tag) is not None:
                self._kill_one_worker()
            spec = plan.on_job(tag)
            if spec is not None:
                job = (
                    _StallJob(float(spec.delay_s), job)
                    if spec.kind == "stall"
                    else _FailJob(tag)
                )
        self._job_seq += 1
        job_id = self._job_seq
        self._inflight.setdefault(tag, {})[job_id] = (job, on_done)
        self._task_q.put((job_id, tag, job))
        return job_id

    def _kill_one_worker(self) -> None:
        """Fault injection: SIGKILL one live worker process."""
        for proc in self._procs:
            if proc.is_alive() and proc.pid is not None:
                os.kill(proc.pid, signal.SIGKILL)
                self.fault_stats["workers_killed"] += 1
                return

    def submit_followup(self, tag: str, job, on_done=None) -> None:
        """Queue ``job`` to dispatch after ``tag``'s current wave drains."""
        if self._closed:
            raise RuntimeError("transport is closed")
        self._followups.setdefault(tag, []).append((job, on_done))

    def submit_wave_check(self, tag: str, fn) -> None:
        """Register ``fn`` to run once ``tag``'s current wave drains, before
        its followups dispatch.

        ``fn`` receives the merged job-result infos of the wave (e.g. the
        encode shards' per-pair stream checksums) and runs on the main
        thread — the fused exchange's slab-integrity gate.
        """
        if self._closed:
            raise RuntimeError("transport is closed")
        self._wave_checks[tag] = fn

    def _drain_one(self, tag: str, deadline: float | None) -> None:
        """Block for one result; runs its callback (any tag).

        The 0.5 s poll doubles as the worker heartbeat: a dead process is
        noticed within one interval and triggers a pool respawn (bounded
        by :attr:`max_respawns`).  ``deadline`` (absolute, from the
        completing tag's ``timeout_s``) turns a wedged wave into a typed
        :class:`TransportError` naming the tag and its outstanding shards.
        """
        while True:
            timeout = 0.5
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    outstanding = self._inflight.get(tag, {})
                    jobs = ", ".join(
                        f"#{jid}:{type(job).__name__}"
                        for jid, (job, _) in sorted(outstanding.items())
                    )
                    raise TransportError(
                        f"tag {tag!r} missed its {self.timeout_s}s completion"
                        f" deadline with {len(outstanding)} outstanding"
                        f" shard job(s) [{jobs}]"
                    )
                timeout = min(timeout, remaining)
            try:
                job_id, rtag, error, info = self._result_q.get(timeout=timeout)
                break
            except queue.Empty:
                dead = [p for p in self._procs if not p.is_alive()]
                if dead:
                    self._respawn_pool(dead)
        inflight = self._inflight.get(rtag)
        entry = inflight.pop(job_id, None) if inflight else None
        if inflight is not None and not inflight:
            self._inflight.pop(rtag, None)
        if error is not None:
            self._errors.setdefault(rtag, []).append(error)
            return
        if info:
            self._wave_info.setdefault(rtag, {}).update(info)
        if entry is not None and entry[1] is not None:
            entry[1]()

    def complete(self, tag: str) -> float:
        """Drain ``tag``'s waves (dispatching followups between them)."""
        t0 = time.perf_counter()
        deadline = None if self.timeout_s is None else t0 + float(self.timeout_s)
        waited = False
        while True:
            if self._inflight.get(tag):
                waited = True
                self._drain_one(tag, deadline)
                continue
            check = self._wave_checks.pop(tag, None)
            if check is not None:
                # The wave's integrity gate (slab checksums) runs between
                # the encode wave and its decode followups.
                check(self._wave_info.pop(tag, {}))
                continue
            followups = self._followups.pop(tag, None)
            if followups:
                waited = True
                for job, on_done in followups:
                    self.submit(tag, job, on_done)
                continue
            break
        self._wave_info.pop(tag, None)
        errors = self._errors.pop(tag, None)
        if errors:
            raise TransportError(
                f"transport worker job failed under tag {tag!r}:\n"
                + "\n".join(errors)
            )
        return time.perf_counter() - t0 if waited else 0.0

    def complete_all(self) -> None:
        """Drain every tag (epoch boundaries / shutdown)."""
        while True:
            tags = sorted(set(self._inflight) | set(self._followups))
            if not tags:
                return
            for tag in tags:
                self.complete(tag)

    def defer(self, tag: str, job) -> None:
        # Closure jobs cannot cross the process boundary; inline execution
        # is the (bitwise-identical) sync path.
        if self._closed:
            raise RuntimeError("transport is closed")
        job()

    def collect(self, dst: int, tag: str) -> dict[int, object]:
        # Safety net, mirroring WorkerTransport: a direct collector must
        # never observe a half-posted step.
        if self._inflight.get(tag) or self._followups.get(tag):
            self.complete(tag)
        return super().collect(dst, tag)

    def reset_accounting(self) -> None:
        self.complete_all()
        super().reset_accounting()

    def pending_tags(self) -> list[str]:
        self.complete_all()
        return super().pending_tags()

    def transport_health(self) -> dict:
        health = super().transport_health()
        health.update(
            respawns=int(self.respawns),
            exit_report=[dict(e) for e in self.exit_report],
            abnormal_exits=[
                dict(e) for e in self.exit_report if not e["expected"]
            ],
        )
        return health

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain, stop workers, unlink every slab; idempotent.

        Robust to dead workers (a KeyboardInterrupt that killed one
        mid-job): sentinels are best-effort, the join has a timeout,
        survivors are terminated, and the shm unlink runs regardless —
        the finalizer covers even the path where close itself never runs.
        """
        if self._closed:
            return
        self._closed = True
        procs, self._procs = self._procs, []
        if self._task_q is not None:
            for _ in procs:
                try:
                    self._task_q.put(None)
                except Exception:
                    pass
        for proc in procs:
            proc.join(timeout=2.0)
        terminated: set[int] = set()
        for proc in procs:
            if proc.is_alive():
                terminated.add(id(proc))
                proc.terminate()
                proc.join(timeout=2.0)
        # Exitcode audit: a worker that died on its own with a nonzero or
        # signaled status (OOM kill, segfault) must not be silently
        # joined.  0 is a clean sentinel exit; negative codes are signals
        # — expected only when this close (or a respawn) sent them.
        for proc in procs:
            code = proc.exitcode
            expected = code == 0 or id(proc) in terminated
            self.exit_report.append(
                {"name": proc.name, "exitcode": code, "expected": expected}
            )
        abnormal = [e for e in self.exit_report if not e["expected"]]
        if abnormal:
            logging.getLogger(__name__).warning(
                "transport worker(s) exited abnormally: %s",
                ", ".join(f"{e['name']} (exitcode {e['exitcode']})" for e in abnormal),
            )
        for q in (self._task_q, self._result_q):
            if q is not None:
                try:
                    q.cancel_join_thread()
                    q.close()
                except Exception:
                    pass
        self._task_q = self._result_q = None
        self._inflight.clear()
        self._followups.clear()
        self._errors.clear()
        self._wave_checks.clear()
        self._wave_info.clear()
        for ring in [*self._rings.values(), *self._retired_rings]:
            ring.close()
            ring.unlink()
        self._rings.clear()
        self._retired_rings.clear()
        self._segment_names.clear()  # the finalizer is now a no-op
