"""Deterministic fault injection for transport backends.

A :class:`FaultPlan` is a scripted set of failures — dropped or
duplicated mailbox envelopes, stalled or erroring jobs, killed worker
processes, poisoned shm slabs — that a transport consults at well-defined
points of its wire path.  Plans are *deterministic*: a spec names the
step tag (``"fwd/L1"``), optionally the epoch and the (src, dst) pair it
fires on, plus a fire count; nothing is sampled.  That makes fault runs
reproducible, which is what lets the test-suite assert the strong
contract ROADMAP item 4 asks for: every injected fault either recovers
to the **bitwise-identical** training result (keyed-replay regeneration,
pool respawn, slab repair) or fails fast with a typed
:class:`~repro.comm.transport.TransportError` — no hangs, no silent
corruption.

Spec grammar (one string per fault, CLI ``--inject-fault``)::

    kind[:tag[@epoch]][:key=value[,key=value...]]

    drop:fwd/L1@2              # drop one envelope of tag fwd/L1 in epoch 2
    drop:fwd/L1@2:src=0,dst=1  # ... only the 0->1 envelope
    duplicate:bwd/L0           # deliver one bwd/L0 envelope twice (any epoch)
    stall:fwd/L0@1:delay=5.0   # first fwd/L0 job of epoch 1 sleeps 5 s
    error:bwd/L1@0             # first bwd/L1 job of epoch 0 raises
    kill_worker:fwd/L1@1       # SIGKILL a transport worker process
    poison:fwd/L0@1            # scribble over the step's shm payload slab

``tag`` defaults to ``"*"`` (any tag); ``count`` defaults to 1 (the
fault fires once, then disarms).  Where each kind is honoured:

========== ===========================================================
kind        injection point
========== ===========================================================
drop        :meth:`TransportAccounting.post` — bytes are accounted (the
            envelope *left* the sender) but the payload never lands in
            the destination mailbox.
duplicate   :meth:`TransportAccounting.post` — the envelope is enqueued
            and then posted *again*; the mailbox's one-envelope-per-pair
            invariant rejects the second copy (counted in
            ``fault_stats["duplicates_rejected"]``), proving delivery
            is idempotent.
stall       ``defer``/``submit`` — the job is wrapped in a sleep so the
            tag blows its ``complete()`` deadline.
error       ``defer`` — the job raises ``RuntimeError("injected fault")``.
kill_worker ``ProcessTransport.submit`` — one live worker process gets
            SIGKILL before the job is dispatched.
poison      the fused exchange's slab-integrity check — payload stream
            bytes are overwritten in shared memory after the encode
            wave lands, then the checksum verifier must detect and
            repair them.
========== ===========================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = (
    "drop",
    "duplicate",
    "stall",
    "error",
    "kill_worker",
    "poison",
)


@dataclass
class FaultSpec:
    """One scripted fault: what fires, where, and how often."""

    kind: str
    tag: str = "*"
    epoch: int | None = None
    src: int | None = None
    dst: int | None = None
    count: int = 1
    delay_s: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def matches(
        self,
        kind: str,
        tag: str,
        epoch: int,
        src: int | None = None,
        dst: int | None = None,
    ) -> bool:
        if self.kind != kind or self.count <= 0:
            return False
        if self.tag != "*" and self.tag != tag:
            return False
        if self.epoch is not None and self.epoch != epoch:
            return False
        if self.src is not None and src is not None and self.src != src:
            return False
        if self.dst is not None and dst is not None and self.dst != dst:
            return False
        return True

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind[:tag[@epoch]][:k=v,...]`` spec string."""
        parts = [p for p in text.strip().split(":") if p]
        if not parts:
            raise ValueError("empty fault spec")
        kind = parts[0]
        kwargs: dict[str, object] = {}
        rest = parts[1:]
        if rest and "=" not in rest[0]:
            tag = rest[0]
            if "@" in tag:
                tag, _, epoch = tag.rpartition("@")
                kwargs["epoch"] = int(epoch)
            kwargs["tag"] = tag
            rest = rest[1:]
        for seg in rest:
            for item in seg.split(","):
                if not item:
                    continue
                if "=" not in item:
                    raise ValueError(f"bad fault option {item!r} in {text!r}")
                key, _, value = item.partition("=")
                key = key.strip()
                if key in ("src", "dst", "count", "epoch"):
                    kwargs[key] = int(value)
                elif key in ("delay", "delay_s"):
                    kwargs["delay_s"] = float(value)
                else:
                    raise ValueError(f"unknown fault option {key!r} in {text!r}")
        return cls(kind=kind, **kwargs)


@dataclass
class FaultPlan:
    """A set of :class:`FaultSpec` entries a transport consults on its wire path.

    The plan is epoch-aware: the cluster calls :meth:`set_epoch` at every
    epoch boundary, and specs with an ``epoch`` filter only fire in that
    epoch.  Fired faults are appended to :attr:`log` as
    ``(epoch, kind, tag, src, dst)`` tuples so tests can assert that the
    scripted failure actually happened (a fault plan whose faults never
    fire proves nothing).

    Thread-safe: posts arrive from transport worker threads while the
    main thread dispatches steps.
    """

    specs: list[FaultSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._epoch = 0
        self._lock = threading.Lock()
        self.log: list[tuple[int, str, str, int | None, int | None]] = []

    @classmethod
    def parse(cls, texts) -> "FaultPlan":
        """Build a plan from an iterable of spec strings."""
        return cls([FaultSpec.parse(t) for t in texts])

    @property
    def epoch(self) -> int:
        return self._epoch

    def set_epoch(self, epoch: int) -> None:
        with self._lock:
            self._epoch = int(epoch)

    def take(
        self,
        kind: str,
        tag: str,
        src: int | None = None,
        dst: int | None = None,
    ) -> FaultSpec | None:
        """Consume one matching armed fault (decrements its count), or None."""
        with self._lock:
            for spec in self.specs:
                if spec.matches(kind, tag, self._epoch, src, dst):
                    spec.count -= 1
                    self.log.append((self._epoch, kind, tag, src, dst))
                    return spec
        return None

    # Convenience wrappers naming the injection points -------------------
    def on_post(self, tag: str, src: int, dst: int) -> str | None:
        """Action for one envelope: ``"drop"``, ``"duplicate"`` or None."""
        for kind in ("drop", "duplicate"):
            if self.take(kind, tag, src, dst) is not None:
                return kind
        return None

    def on_job(self, tag: str) -> FaultSpec | None:
        """A ``stall`` or ``error`` spec for a deferred/submitted job, or None."""
        spec = self.take("stall", tag)
        if spec is not None:
            return spec
        return self.take("error", tag)

    def armed(self) -> list[FaultSpec]:
        """Specs that may still fire."""
        with self._lock:
            return [s for s in self.specs if s.count > 0]
