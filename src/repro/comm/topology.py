"""Cluster topology: the paper's ``xM-yD`` partition settings.

``2M-2D`` means 2 machines × 2 devices = 4 partitions; devices
``[0, y)`` live on machine 0, ``[y, 2y)`` on machine 1, and so on.
Link tiers follow: device pairs on the same machine communicate over the
fast intra-machine fabric, pairs on different machines over Ethernet.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["ClusterTopology", "parse_topology"]

_TOPOLOGY_RE = re.compile(r"^(\d+)M-(\d+)D$", re.IGNORECASE)


@dataclass(frozen=True)
class ClusterTopology:
    """``num_machines`` machines with ``devices_per_machine`` devices each."""

    num_machines: int
    devices_per_machine: int

    def __post_init__(self) -> None:
        if self.num_machines < 1 or self.devices_per_machine < 1:
            raise ValueError("topology dimensions must be >= 1")

    @property
    def num_devices(self) -> int:
        return self.num_machines * self.devices_per_machine

    def machine_of(self, device: int) -> int:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range")
        return device // self.devices_per_machine

    def same_machine(self, a: int, b: int) -> bool:
        return self.machine_of(a) == self.machine_of(b)

    @property
    def name(self) -> str:
        return f"{self.num_machines}M-{self.devices_per_machine}D"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def parse_topology(spec: str) -> ClusterTopology:
    """Parse a paper-style setting name.

    >>> parse_topology("2M-2D").num_devices
    4
    """
    match = _TOPOLOGY_RE.match(spec.strip())
    if not match:
        raise ValueError(f"invalid topology spec {spec!r}; expected like '2M-2D'")
    return ClusterTopology(int(match.group(1)), int(match.group(2)))
