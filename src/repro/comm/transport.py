"""In-memory transport between simulated devices, with byte accounting.

Real payload objects (quantized byte streams or float arrays) are routed
through per-destination mailboxes; every ``post`` records its wire size in
a per-tag byte matrix.  Those matrices are exactly what the schedule
simulators consume — the simulated clock is driven by *measured* byte
counts, not estimates (DESIGN.md §4.1).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

__all__ = ["Transport"]


@dataclass
class _Envelope:
    src: int
    payload: object
    nbytes: int


class Transport:
    """Mailbox-based message router for ``num_devices`` simulated devices.

    Tags namespace independent exchanges (e.g. ``"fwd/layer0"`` vs
    ``"bwd/layer2"``); within a tag each (src, dst) pair may post at most
    one envelope per collection cycle, mirroring the one-buffer-per-peer
    design of the paper's implementation.
    """

    def __init__(self, num_devices: int) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.num_devices = num_devices
        self._boxes: dict[tuple[str, int], list[_Envelope]] = defaultdict(list)
        self._bytes: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def post(self, src: int, dst: int, tag: str, payload: object, nbytes: int) -> None:
        """Queue ``payload`` from ``src`` to ``dst`` under ``tag``."""
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            raise ValueError("devices do not message themselves")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        for env in self._boxes[(tag, dst)]:
            if env.src == src:
                raise RuntimeError(
                    f"duplicate post on tag {tag!r} for pair {src}->{dst}"
                )
        self._boxes[(tag, dst)].append(_Envelope(src=src, payload=payload, nbytes=nbytes))
        matrix = self._bytes.setdefault(
            tag, np.zeros((self.num_devices, self.num_devices), dtype=np.int64)
        )
        matrix[src, dst] += int(nbytes)

    def post_batch(
        self, src: int, tag: str, posts: list[tuple[int, object, int]]
    ) -> None:
        """Post one envelope per ``(dst, payload, nbytes)`` in a single call.

        The fused exchange engine emits all of one device's outgoing
        messages for a step at once; batching the accounting updates the
        byte matrix with one vectorized scatter-add instead of one matrix
        update per peer.  Semantics are identical to repeated :meth:`post`.
        """
        self._check_device(src)
        if not posts:
            return
        dsts = np.asarray([dst for dst, _, _ in posts], dtype=np.int64)
        nbytes = np.asarray([nb for _, _, nb in posts], dtype=np.int64)
        if ((dsts < 0) | (dsts >= self.num_devices)).any():
            raise ValueError(f"destination out of range [0, {self.num_devices})")
        if (dsts == src).any():
            raise ValueError("devices do not message themselves")
        if (nbytes < 0).any():
            raise ValueError("nbytes must be non-negative")
        seen = set()
        for dst, _, _ in posts:
            if dst in seen:
                raise RuntimeError(
                    f"duplicate post on tag {tag!r} for pair {src}->{dst}"
                )
            seen.add(dst)
            for env in self._boxes[(tag, dst)]:
                if env.src == src:
                    raise RuntimeError(
                        f"duplicate post on tag {tag!r} for pair {src}->{dst}"
                    )
        for dst, payload, nb in posts:
            self._boxes[(tag, dst)].append(
                _Envelope(src=src, payload=payload, nbytes=int(nb))
            )
        matrix = self._bytes.setdefault(
            tag, np.zeros((self.num_devices, self.num_devices), dtype=np.int64)
        )
        np.add.at(matrix[src], dsts, nbytes)

    def collect(self, dst: int, tag: str) -> dict[int, object]:
        """Drain ``dst``'s mailbox for ``tag``; returns ``{src: payload}``."""
        self._check_device(dst)
        envelopes = self._boxes.pop((tag, dst), [])
        return {env.src: env.payload for env in envelopes}

    # ------------------------------------------------------------------
    def bytes_matrix(self, tag: str) -> np.ndarray:
        """Cumulative bytes posted under ``tag`` as an (N, N) matrix."""
        if tag in self._bytes:
            return self._bytes[tag].copy()
        return np.zeros((self.num_devices, self.num_devices), dtype=np.int64)

    def total_bytes(self) -> int:
        return int(sum(m.sum() for m in self._bytes.values()))

    def reset_accounting(self) -> None:
        """Clear byte counters (mailboxes must already be drained)."""
        if any(self._boxes.values()):
            pending = [key for key, box in self._boxes.items() if box]
            raise RuntimeError(f"undelivered messages remain: {pending}")
        self._bytes.clear()

    def pending_tags(self) -> list[str]:
        return sorted({tag for (tag, _), box in self._boxes.items() if box})

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")
