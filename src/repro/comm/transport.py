"""In-memory transport between simulated devices, with byte accounting.

Real payload objects (quantized byte streams or float arrays) are routed
through per-destination mailboxes; every ``post`` records its wire size in
a per-tag byte matrix.  Those matrices are exactly what the schedule
simulators consume — the simulated clock is driven by *measured* byte
counts, not estimates (DESIGN.md §4.1).

The transport API splits in two:

* :class:`TransportBackend` — the formal backend ABC.  Its wire ops
  (``post``/``post_batch``/``collect``/``defer``/``complete``/``close``)
  are everything an exchange touches, so a backend is swappable without
  the exchanges noticing; backends self-register with
  :func:`repro.comm.transports.register` and are selected by spec
  (``"sync"``, ``"worker:4"``, ``"process:2"``).
* :class:`TransportAccounting` — the backend-agnostic mailbox +
  byte-accounting/overlap mixin (``pending_bytes``/``note_overlap``/
  ``bytes_matrix``…).  Every in-process backend shares it, so the
  simulated clock sees identical accounting whatever executes the jobs.

Two backends live here:

* :class:`SyncTransport` executes everything on the calling thread —
  posts are visible the moment ``post``/``post_batch`` returns;
* :class:`WorkerTransport` additionally runs *deferred jobs* (the
  exchanges' quantize/pack/post closures, and their collect/decode
  followups) on a pool of background worker threads, so the posters'
  heavy kernels overlap the main thread's GIL-releasing compute — and,
  with several workers, each other.  ``defer``/``defer_many`` hand jobs
  to the pool, ``complete`` joins everything registered under a tag
  (including jobs a running job deferred after it) — the split-phase
  executor's finalize half always joins before collecting.

(:class:`~repro.comm.process.ProcessTransport`, the process-pool backend
over shared memory, lives in :mod:`repro.comm.process`.)

Worker counts are a *transport* property: exchanges consult
``transport.workers`` to decide how many encode shards to emit.  Whether
that is safe is the exchange's call — keyed rounding makes shards
order-independent; stream rounding pins every exchange to one job per
step regardless of the pool size.
"""

from __future__ import annotations

import abc
import os
import threading
import time
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout

import numpy as np

from repro.comm.transports import register

__all__ = [
    "TransportBackend",
    "TransportAccounting",
    "TransportError",
    "SyncTransport",
    "WorkerTransport",
    "detected_cores",
    "host_spare_cores",
    "host_has_spare_core",
]


class TransportError(RuntimeError):
    """A transport failure that was *detected* rather than silently absorbed.

    Raised for missed ``complete()`` deadlines (naming the tag and the
    outstanding jobs), worker-process deaths past the respawn budget,
    unrecoverable slab corruption, and missing envelopes no recovery path
    can regenerate.  Subclasses :class:`RuntimeError` so pre-existing
    callers that catch broad runtime failures keep working; new callers
    (the trainer's escalate-to-checkpoint-restore path) catch this type
    specifically.
    """


def detected_cores() -> int:
    """CPU cores available to this process (affinity-aware on Linux)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def host_spare_cores() -> int:
    """Cores left over for transport workers once the main thread has one.

    A spec with no explicit worker count (``"worker"``, ``"process"``)
    resolves to this, so a K-core host runs the main thread plus K-1
    workers — saturating the hardware without oversubscribing it.
    """
    return max(0, detected_cores() - 1)


def host_has_spare_core() -> bool:
    """Whether a transport worker thread can run on its own core.

    On a single-CPU host the worker and the main thread timeshare one
    core, so deferring encode work buys nothing and pays context-switch
    tax — callers that auto-select the transport (``transport="auto"``)
    use this to fall back to the synchronous one there.
    """
    return host_spare_cores() >= 1


class TransportBackend(abc.ABC):
    """The wire-operation API every transport backend implements.

    Exchanges program against exactly these six operations (plus the
    ``defer_many`` convenience); anything else a concrete backend offers
    — accounting, shm arenas, worker pools — is backend detail.  Class
    attributes ``kind``/``is_async``/``workers`` describe the execution
    shape so exchanges can pick a job decomposition.
    """

    #: registry name of the backend ("sync", "worker", "process", …)
    kind = "?"
    #: whether deferred jobs really run on a background worker
    is_async = False
    #: background workers available for deferred jobs (0 = inline only)
    workers = 0
    #: deadline (seconds) for :meth:`complete` joins; None waits forever.
    #: Set per-instance (the cluster threads ``RunConfig.transport_timeout_s``
    #: through); a missed deadline raises :class:`TransportError`.
    timeout_s: float | None = None
    #: optional :class:`~repro.comm.faults.FaultPlan` consulted on the wire
    #: path (fault-injection tests and chaos runs); None injects nothing.
    fault_plan = None

    @abc.abstractmethod
    def post(self, src: int, dst: int, tag: str, payload: object, nbytes: int) -> None:
        """Queue ``payload`` from ``src`` to ``dst`` under ``tag``."""

    @abc.abstractmethod
    def post_batch(
        self, src: int, tag: str, posts: list[tuple[int, object, int]]
    ) -> None:
        """Post one envelope per ``(dst, payload, nbytes)`` in a single call."""

    @abc.abstractmethod
    def collect(self, dst: int, tag: str) -> dict[int, object]:
        """Drain ``dst``'s mailbox for ``tag``; ``{src: payload}``, src ascending."""

    @abc.abstractmethod
    def defer(self, tag: str, job) -> None:
        """Run ``job`` (an encode-and-post closure) for ``tag``.

        Synchronous backends execute it inline, so ``post_step`` behaves
        exactly as before; async backends hand the job to their worker
        pool.  A tag may carry several jobs (encode shards plus their
        decode followups); :meth:`complete` joins them all.
        """

    @abc.abstractmethod
    def complete(self, tag: str) -> float:
        """Join ``tag``'s deferred jobs; returns seconds spent waiting.

        No-op (0.0) on synchronous backends — everything already ran
        inside :meth:`defer`.  Worker exceptions re-raise here.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Release background resources; idempotent, never raises job errors."""

    def defer_many(self, tag: str, jobs) -> None:
        """Defer every job in ``jobs`` under ``tag`` (in order)."""
        for job in jobs:
            self.defer(tag, job)

    def transport_health(self) -> dict:
        """A JSON-able health summary of this transport's run.

        Backends with real failure modes extend it — the process backend
        adds worker exitcodes, respawn counts and abnormal deaths; the
        CLI persists the summary so ``repro info`` can report the last
        run's transport health.
        """
        return {
            "kind": self.kind,
            "workers": int(self.workers),
            "is_async": bool(self.is_async),
            "abnormal_exits": [],
            "fault_stats": dict(getattr(self, "fault_stats", {}) or {}),
        }


class TransportAccounting:
    """Mailboxes plus byte/overlap accounting for ``num_devices`` devices.

    Backend-agnostic: every in-process backend mixes this in, so the byte
    matrices and the progress model are identical whichever execution
    shape ran the jobs.

    Tags namespace independent exchanges (e.g. ``"fwd/layer0"`` vs
    ``"bwd/layer2"``); within a tag each (src, dst) pair may post at most
    one envelope per collection cycle, mirroring the one-buffer-per-peer
    design of the paper's implementation.

    Mailboxes are insertion-ordered ``{src: payload}`` dicts: the fused
    engines post ~K² envelopes per step, so per-envelope overhead (object
    construction, duplicate scans) is the transport's hot path — one dict
    op gives enqueue + O(1) duplicate detection + collection order in one.
    Per-tag byte matrices are resolved once per post/batch through a plain
    dict lookup (:meth:`_matrix`), never rebuilt per envelope.

    **Progress model** (the split-phase pipeline's interleave record):
    every posted envelope is *pending* until its destination collects it.
    :meth:`note_overlap` marks all bytes currently pending under a tag as
    having been in flight during an overlapped compute window — the
    pipelined executor calls it right before running the central sub-step
    — and *opens* that window: bytes posted while it is open (an async
    backend's worker posts land mid-window) count as overlapped too.
    The window closes at the first :meth:`collect` under the tag, so
    :meth:`overlapped_bytes` measures how much of a step's traffic was in
    flight before any receiver drained it (not how much a cost model
    predicts could be hidden).

    All accounting mutations take a lock so an async backend's worker can
    post while the main thread reads progress counters; on the
    synchronous transport the uncontended acquisition is noise next to a
    single envelope's dict traffic.
    """

    def __init__(self, num_devices: int) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.num_devices = num_devices
        self._boxes: dict[tuple[str, int], dict[int, object]] = defaultdict(dict)
        self._bytes: dict[str, np.ndarray] = {}
        self._pending: dict[str, int] = defaultdict(int)
        self._pending_by_box: dict[tuple[str, int], int] = defaultdict(int)
        self._overlapped: dict[str, int] = defaultdict(int)
        self._window_open: set[str] = set()
        self._lock = threading.Lock()
        #: counters of injected faults observed/handled on this transport
        #: ("dropped", "duplicates_rejected", "respawns", "slab_repairs", …)
        self.fault_stats: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def _matrix(self, tag: str) -> np.ndarray:
        """The cumulative byte matrix for ``tag`` (created on first use)."""
        matrix = self._bytes.get(tag)
        if matrix is None:
            matrix = self._bytes[tag] = np.zeros(
                (self.num_devices, self.num_devices), dtype=np.int64
            )
        return matrix

    def post(self, src: int, dst: int, tag: str, payload: object, nbytes: int) -> None:
        """Queue ``payload`` from ``src`` to ``dst`` under ``tag``."""
        plan = self.fault_plan
        if plan is not None:
            action = plan.on_post(tag, src, dst)
            if action == "drop":
                # The envelope left the sender (bytes hit the wire and are
                # accounted) but never lands in the destination mailbox.
                self._post_one(src, dst, tag, payload, nbytes, deliver=False)
                self.fault_stats["dropped"] += 1
                return
            if action == "duplicate":
                self._post_one(src, dst, tag, payload, nbytes)
                try:
                    # Second arrival of the same envelope: the mailbox's
                    # one-envelope-per-pair invariant must reject it.
                    self._post_one(src, dst, tag, payload, nbytes)
                except RuntimeError:
                    self.fault_stats["duplicates_rejected"] += 1
                    return
                raise TransportError(
                    f"duplicate envelope on tag {tag!r} for pair {src}->{dst}"
                    " was accepted instead of rejected"
                )
        self._post_one(src, dst, tag, payload, nbytes)

    def _post_one(
        self,
        src: int,
        dst: int,
        tag: str,
        payload: object,
        nbytes: int,
        *,
        deliver: bool = True,
    ) -> None:
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            raise ValueError("devices do not message themselves")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        nb = int(nbytes)
        with self._lock:
            box = self._boxes[(tag, dst)]
            if src in box:
                raise RuntimeError(
                    f"duplicate post on tag {tag!r} for pair {src}->{dst}"
                )
            if deliver:
                box[src] = payload
            self._matrix(tag)[src, dst] += nb
            self._pending[tag] += nb
            self._pending_by_box[(tag, dst)] += nb
            if tag in self._window_open:
                self._overlapped[tag] += nb

    def post_batch(
        self, src: int, tag: str, posts: list[tuple[int, object, int]]
    ) -> None:
        """Post one envelope per ``(dst, payload, nbytes)`` in a single call.

        The fused engines emit all of one device's outgoing messages for a
        step at once; a single pass validates, enqueues and accounts each
        one.  Semantics are identical to repeated :meth:`post`, with the
        per-envelope device checks collapsed into one source check plus a
        range test folded into the validation scan.
        """
        self._check_device(src)
        if not posts:
            return
        plan = self.fault_plan
        if plan is not None and plan.armed():
            # Fault path: fall back to per-envelope posting so each entry
            # passes through the injection hooks.  Cold by construction —
            # plans only exist in fault-injection runs.
            for dst, payload, nb in posts:
                self.post(src, dst, tag, payload, nb)
            return
        # Validate the whole batch before enqueuing anything, so a bad
        # entry cannot leave phantom envelopes or byte accounting behind.
        # ``boxes.get`` (not ``boxes[...]``) keeps the duplicate scan from
        # materializing empty defaultdict mailboxes.
        boxes = self._boxes
        n = self.num_devices
        seen: set[int] = set()
        with self._lock:
            for dst, _, nb in posts:
                if not 0 <= dst < n:
                    raise ValueError(f"destination out of range [0, {n})")
                if dst == src:
                    raise ValueError("devices do not message themselves")
                if nb < 0:
                    raise ValueError("nbytes must be non-negative")
                box = boxes.get((tag, dst))
                if dst in seen or (box is not None and src in box):
                    raise RuntimeError(
                        f"duplicate post on tag {tag!r} for pair {src}->{dst}"
                    )
                seen.add(dst)
            row = self._matrix(tag)[src]
            pending = 0
            for dst, payload, nb in posts:
                boxes[(tag, dst)][src] = payload
                nb = int(nb)
                row[dst] += nb
                pending += nb
                self._pending_by_box[(tag, dst)] += nb
            self._pending[tag] += pending
            if tag in self._window_open:
                self._overlapped[tag] += pending

    def collect(self, dst: int, tag: str) -> dict[int, object]:
        """Drain ``dst``'s mailbox for ``tag``; returns ``{src: payload}``.

        Iteration order is **source-ascending**, whatever order the posts
        arrived in: concurrent transport workers retire envelopes in
        nondeterministic order, and receivers accumulate floats in mailbox
        iteration order — sorting here is what keeps accumulation (and so
        training results) bitwise-reproducible at any worker count.
        """
        self._check_device(dst)
        with self._lock:
            self._window_open.discard(tag)
            drained = self._pending_by_box.pop((tag, dst), 0)
            if drained:
                self._pending[tag] -= drained
            box = self._boxes.pop((tag, dst), {})
        return {src: box[src] for src in sorted(box)} if len(box) > 1 else box

    # ------------------------------------------------------------------
    # Progress model
    # ------------------------------------------------------------------
    def pending_bytes(self, tag: str) -> int:
        """Bytes posted under ``tag`` that no destination has collected yet."""
        return int(self._pending.get(tag, 0))

    def note_overlap(self, tag: str) -> int:
        """Open ``tag``'s overlap window; returns the bytes already pending.

        Called by the pipelined executor at the start of a central-compute
        window: whatever is in flight at that moment — plus whatever a
        deferred post job lands while the window stays open — is the
        traffic the executed schedule hides under computation.
        """
        with self._lock:
            pending = int(self._pending.get(tag, 0))
            if pending:
                self._overlapped[tag] += pending
            self._window_open.add(tag)
        return pending

    def overlapped_bytes(self, tag: str) -> int:
        """Cumulative bytes of ``tag`` marked in flight during overlap windows."""
        return int(self._overlapped.get(tag, 0))

    # ------------------------------------------------------------------
    def bytes_matrix(self, tag: str) -> np.ndarray:
        """Cumulative bytes posted under ``tag`` as an (N, N) matrix."""
        with self._lock:
            if tag in self._bytes:
                return self._bytes[tag].copy()
        return np.zeros((self.num_devices, self.num_devices), dtype=np.int64)

    def total_bytes(self) -> int:
        with self._lock:
            return int(sum(m.sum() for m in self._bytes.values()))

    def reset_accounting(self) -> None:
        """Clear byte counters (mailboxes must already be drained)."""
        with self._lock:
            if any(self._boxes.values()):
                pending = [key for key, box in self._boxes.items() if box]
                raise RuntimeError(f"undelivered messages remain: {pending}")
            self._bytes.clear()
            self._pending.clear()
            self._pending_by_box.clear()
            self._overlapped.clear()
            self._window_open.clear()

    def pending_tags(self) -> list[str]:
        with self._lock:
            return sorted({tag for (tag, _), box in self._boxes.items() if box})

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")


def apply_job_faults(transport: TransportBackend, tag: str, job):
    """Wrap ``job`` per the transport's fault plan (stall/error kinds).

    Returns ``job`` unchanged when no plan is armed for the tag.  Shared
    by every in-process backend so the injection semantics are identical
    whichever pool runs the job.
    """
    plan = transport.fault_plan
    if plan is None:
        return job
    spec = plan.on_job(tag)
    if spec is None:
        return job
    if spec.kind == "error":

        def failing() -> None:
            raise RuntimeError(f"injected transport job fault on tag {tag!r}")

        return failing

    delay = float(spec.delay_s)

    def stalled() -> None:
        time.sleep(delay)
        job()

    return stalled


@register("sync")
class SyncTransport(TransportAccounting, TransportBackend):
    """Inline mailbox transport: everything runs on the calling thread.

    Deferred jobs execute immediately inside :meth:`defer`, so posts are
    visible the moment ``post_step`` returns — the reference execution
    shape every async backend must match bitwise.
    """

    kind = "sync"

    # ------------------------------------------------------------------
    # Deferred posting (async hooks; the synchronous transport runs inline)
    # ------------------------------------------------------------------
    def defer(self, tag: str, job) -> None:
        if self.fault_plan is not None:
            job = apply_job_faults(self, tag, job)
        job()

    def complete(self, tag: str) -> float:
        return 0.0

    def close(self) -> None:
        """Release background resources; idempotent (no-op here)."""


@register("worker")
class WorkerTransport(SyncTransport):
    """Thread-pool-backed transport: deferred encode/post (and decode)
    jobs run on background workers, concurrently with the main thread —
    and, at ``workers > 1``, with each other.

    Threading model (see README "transport backends"):

    * ``defer``/``defer_many`` submit the exchange's quantize/pack/post
      closures to the pool and return immediately; the main thread goes on
      to run the central sub-step, whose BLAS/spmv kernels release the GIL
      — so the workers' NumPy quantize/pack kernels genuinely execute in
      parallel on spare cores;
    * the pool size is the caller's choice.  At ``workers=1`` jobs retire
      in submission order — the execution shape stream-rounding exchanges
      rely on (their noise comes from a shared sequential RNG).  Keyed
      rounding makes payload bytes a pure function of block coordinates,
      so such exchanges shard one step across every worker and let shards
      retire in any order;
    * a running job may itself :meth:`defer` followup work under its tag
      (the fused exchange's last encode shard defers per-receiver decode
      jobs); ``complete(tag)`` joins everything registered under the tag,
      including followups that appear while it waits, re-raises worker
      exceptions, and returns the seconds the caller was blocked — the
      *exposed* tail the central window failed to cover, recorded per step
      as :class:`~repro.cluster.records.StepTimeline` ``worker_wait_s``;
    * :meth:`collect` auto-joins as a safety net, so a collector can never
      observe a half-posted step.  (Worker-side decode jobs use the base
      :meth:`TransportAccounting.collect` directly — they run *inside* the
      tag's job set, after every post of the step, and must not join
      themselves.)
    * workers produce (encode + post) and pre-decode; the main thread
      alone scatters and accumulates, in fixed device order over
      source-sorted mailboxes — which is what keeps the async path
      bitwise-reproducible at any worker count.
    """

    kind = "worker"
    is_async = True

    def __init__(self, num_devices: int, *, workers: int = 1) -> None:
        super().__init__(num_devices)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool: ThreadPoolExecutor | None = None
        self._jobs: dict[str, list[Future]] = {}
        self._jobs_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def defer(self, tag: str, job) -> None:
        if self.fault_plan is not None:
            job = apply_job_faults(self, tag, job)
        with self._jobs_lock:
            if self._closed:
                raise RuntimeError("transport is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-transport",
                )
            self._jobs.setdefault(tag, []).append(self._pool.submit(job))

    def complete(self, tag: str) -> float:
        t0 = time.perf_counter()
        deadline = None if self.timeout_s is None else t0 + float(self.timeout_s)
        joined = 0
        while True:
            with self._jobs_lock:
                futures = self._jobs.get(tag, [])
                batch = futures[joined:]
                if not batch:
                    self._jobs.pop(tag, None)
                    break
            # Join outside the lock (jobs may defer followups under this
            # tag, which needs the lock); loop to pick up anything that
            # was registered while we waited.
            for future in batch:
                if deadline is None:
                    future.result()
                    continue
                try:
                    future.result(timeout=max(0.0, deadline - time.perf_counter()))
                except _FuturesTimeout:
                    with self._jobs_lock:
                        outstanding = sum(
                            1 for f in self._jobs.get(tag, []) if not f.done()
                        )
                    raise TransportError(
                        f"tag {tag!r} missed its {self.timeout_s}s completion"
                        f" deadline with {outstanding} outstanding job(s)"
                        f" ({joined} joined)"
                    ) from None
            joined += len(batch)
        return time.perf_counter() - t0 if joined else 0.0

    def complete_all(self) -> None:
        """Join every outstanding job (used at epoch boundaries/shutdown)."""
        while True:
            with self._jobs_lock:
                tags = [t for t, futures in self._jobs.items() if futures]
            if not tags:
                return
            for tag in tags:
                self.complete(tag)

    def collect(self, dst: int, tag: str) -> dict[int, object]:
        # Safety net: finalize_step joins via InFlightStep.mark_done, but a
        # direct collector must never see a half-posted step either.
        with self._jobs_lock:
            outstanding = bool(self._jobs.get(tag))
        if outstanding:
            self.complete(tag)
        return super().collect(dst, tag)

    def reset_accounting(self) -> None:
        self.complete_all()
        super().reset_accounting()

    def pending_tags(self) -> list[str]:
        self.complete_all()
        return super().pending_tags()

    def close(self) -> None:
        """Shut the pool down; idempotent, and never raises job errors.

        The exception paths are exactly where close matters most (a failed
        epoch must not leak the worker threads), so outstanding jobs are
        joined with their exceptions swallowed — anyone who cared already
        saw them re-raised from :meth:`complete`.  After close the
        transport refuses new deferred work.
        """
        with self._jobs_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._jobs_lock:
            orphans = [f for futures in self._jobs.values() for f in futures]
            self._jobs.clear()
        for future in orphans:
            if future.done():
                future.exception()  # retrieve, so nothing warns at gc time
