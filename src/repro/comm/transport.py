"""In-memory transport between simulated devices, with byte accounting.

Real payload objects (quantized byte streams or float arrays) are routed
through per-destination mailboxes; every ``post`` records its wire size in
a per-tag byte matrix.  Those matrices are exactly what the schedule
simulators consume — the simulated clock is driven by *measured* byte
counts, not estimates (DESIGN.md §4.1).

Two transports share the mailbox/accounting core:

* :class:`Transport` executes everything on the calling thread — posts are
  visible the moment ``post``/``post_batch`` returns;
* :class:`WorkerTransport` additionally runs *deferred jobs* (the
  exchanges' quantize/pack/post closures) on a background worker thread,
  so the poster's heavy kernels overlap the main thread's GIL-releasing
  compute.  ``defer`` hands a job to the pool, ``complete`` joins it —
  the split-phase executor's finalize half always joins before collecting.
"""

from __future__ import annotations

import os
import threading
import time
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor

import numpy as np

__all__ = ["Transport", "WorkerTransport", "host_has_spare_core"]


def host_has_spare_core() -> bool:
    """Whether a transport worker thread can run on its own core.

    On a single-CPU host the worker and the main thread timeshare one
    core, so deferring encode work buys nothing and pays context-switch
    tax — callers that auto-select the transport (``async_transport=None``)
    use this to fall back to the synchronous one there.
    """
    try:
        return len(os.sched_getaffinity(0)) > 1
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return (os.cpu_count() or 1) > 1


class Transport:
    """Mailbox-based message router for ``num_devices`` simulated devices.

    Tags namespace independent exchanges (e.g. ``"fwd/layer0"`` vs
    ``"bwd/layer2"``); within a tag each (src, dst) pair may post at most
    one envelope per collection cycle, mirroring the one-buffer-per-peer
    design of the paper's implementation.

    Mailboxes are insertion-ordered ``{src: payload}`` dicts: the fused
    engines post ~K² envelopes per step, so per-envelope overhead (object
    construction, duplicate scans) is the transport's hot path — one dict
    op gives enqueue + O(1) duplicate detection + collection order in one.
    Per-tag byte matrices are resolved once per post/batch through a plain
    dict lookup (:meth:`_matrix`), never rebuilt per envelope.

    **Progress model** (the split-phase pipeline's interleave record):
    every posted envelope is *pending* until its destination collects it.
    :meth:`note_overlap` marks all bytes currently pending under a tag as
    having been in flight during an overlapped compute window — the
    pipelined executor calls it right before running the central sub-step
    — and *opens* that window: bytes posted while it is open (the async
    transport's worker posts land mid-window) count as overlapped too.
    The window closes at the first :meth:`collect` under the tag, so
    :meth:`overlapped_bytes` measures how much of a step's traffic was in
    flight before any receiver drained it (not how much a cost model
    predicts could be hidden).

    All accounting mutations take a lock so a :class:`WorkerTransport`
    worker can post while the main thread reads progress counters; on the
    synchronous transport the uncontended acquisition is noise next to a
    single envelope's dict traffic.
    """

    #: whether deferred jobs really run on a background worker
    is_async = False

    def __init__(self, num_devices: int) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.num_devices = num_devices
        self._boxes: dict[tuple[str, int], dict[int, object]] = defaultdict(dict)
        self._bytes: dict[str, np.ndarray] = {}
        self._pending: dict[str, int] = defaultdict(int)
        self._pending_by_box: dict[tuple[str, int], int] = defaultdict(int)
        self._overlapped: dict[str, int] = defaultdict(int)
        self._window_open: set[str] = set()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _matrix(self, tag: str) -> np.ndarray:
        """The cumulative byte matrix for ``tag`` (created on first use)."""
        matrix = self._bytes.get(tag)
        if matrix is None:
            matrix = self._bytes[tag] = np.zeros(
                (self.num_devices, self.num_devices), dtype=np.int64
            )
        return matrix

    def post(self, src: int, dst: int, tag: str, payload: object, nbytes: int) -> None:
        """Queue ``payload`` from ``src`` to ``dst`` under ``tag``."""
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            raise ValueError("devices do not message themselves")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        nb = int(nbytes)
        with self._lock:
            box = self._boxes[(tag, dst)]
            if src in box:
                raise RuntimeError(
                    f"duplicate post on tag {tag!r} for pair {src}->{dst}"
                )
            box[src] = payload
            self._matrix(tag)[src, dst] += nb
            self._pending[tag] += nb
            self._pending_by_box[(tag, dst)] += nb
            if tag in self._window_open:
                self._overlapped[tag] += nb

    def post_batch(
        self, src: int, tag: str, posts: list[tuple[int, object, int]]
    ) -> None:
        """Post one envelope per ``(dst, payload, nbytes)`` in a single call.

        The fused engines emit all of one device's outgoing messages for a
        step at once; a single pass validates, enqueues and accounts each
        one.  Semantics are identical to repeated :meth:`post`, with the
        per-envelope device checks collapsed into one source check plus a
        range test folded into the validation scan.
        """
        self._check_device(src)
        if not posts:
            return
        # Validate the whole batch before enqueuing anything, so a bad
        # entry cannot leave phantom envelopes or byte accounting behind.
        # ``boxes.get`` (not ``boxes[...]``) keeps the duplicate scan from
        # materializing empty defaultdict mailboxes.
        boxes = self._boxes
        n = self.num_devices
        seen: set[int] = set()
        with self._lock:
            for dst, _, nb in posts:
                if not 0 <= dst < n:
                    raise ValueError(f"destination out of range [0, {n})")
                if dst == src:
                    raise ValueError("devices do not message themselves")
                if nb < 0:
                    raise ValueError("nbytes must be non-negative")
                box = boxes.get((tag, dst))
                if dst in seen or (box is not None and src in box):
                    raise RuntimeError(
                        f"duplicate post on tag {tag!r} for pair {src}->{dst}"
                    )
                seen.add(dst)
            row = self._matrix(tag)[src]
            pending = 0
            for dst, payload, nb in posts:
                boxes[(tag, dst)][src] = payload
                nb = int(nb)
                row[dst] += nb
                pending += nb
                self._pending_by_box[(tag, dst)] += nb
            self._pending[tag] += pending
            if tag in self._window_open:
                self._overlapped[tag] += pending

    def collect(self, dst: int, tag: str) -> dict[int, object]:
        """Drain ``dst``'s mailbox for ``tag``; returns ``{src: payload}``."""
        self._check_device(dst)
        with self._lock:
            self._window_open.discard(tag)
            drained = self._pending_by_box.pop((tag, dst), 0)
            if drained:
                self._pending[tag] -= drained
            return self._boxes.pop((tag, dst), {})

    # ------------------------------------------------------------------
    # Deferred posting (async hooks; the synchronous transport runs inline)
    # ------------------------------------------------------------------
    def defer(self, tag: str, job) -> None:
        """Run ``job`` (an encode-and-post closure) for ``tag``.

        The synchronous transport executes it inline, so ``post_step``
        behaves exactly as before; :class:`WorkerTransport` overrides this
        to hand the job to its worker pool.  One job per tag may be
        outstanding at a time — the split-phase executor's
        one-step-in-flight discipline.
        """
        job()

    def complete(self, tag: str) -> float:
        """Join ``tag``'s deferred job; returns seconds spent waiting.

        No-op (0.0) on the synchronous transport — everything already ran
        inside :meth:`defer`.  Worker exceptions re-raise here.
        """
        return 0.0

    def close(self) -> None:
        """Release background resources (no-op on the sync transport)."""

    # ------------------------------------------------------------------
    # Progress model
    # ------------------------------------------------------------------
    def pending_bytes(self, tag: str) -> int:
        """Bytes posted under ``tag`` that no destination has collected yet."""
        return int(self._pending.get(tag, 0))

    def note_overlap(self, tag: str) -> int:
        """Open ``tag``'s overlap window; returns the bytes already pending.

        Called by the pipelined executor at the start of a central-compute
        window: whatever is in flight at that moment — plus whatever a
        deferred post job lands while the window stays open — is the
        traffic the executed schedule hides under computation.
        """
        with self._lock:
            pending = int(self._pending.get(tag, 0))
            if pending:
                self._overlapped[tag] += pending
            self._window_open.add(tag)
        return pending

    def overlapped_bytes(self, tag: str) -> int:
        """Cumulative bytes of ``tag`` marked in flight during overlap windows."""
        return int(self._overlapped.get(tag, 0))

    # ------------------------------------------------------------------
    def bytes_matrix(self, tag: str) -> np.ndarray:
        """Cumulative bytes posted under ``tag`` as an (N, N) matrix."""
        with self._lock:
            if tag in self._bytes:
                return self._bytes[tag].copy()
        return np.zeros((self.num_devices, self.num_devices), dtype=np.int64)

    def total_bytes(self) -> int:
        with self._lock:
            return int(sum(m.sum() for m in self._bytes.values()))

    def reset_accounting(self) -> None:
        """Clear byte counters (mailboxes must already be drained)."""
        with self._lock:
            if any(self._boxes.values()):
                pending = [key for key, box in self._boxes.items() if box]
                raise RuntimeError(f"undelivered messages remain: {pending}")
            self._bytes.clear()
            self._pending.clear()
            self._pending_by_box.clear()
            self._overlapped.clear()
            self._window_open.clear()

    def pending_tags(self) -> list[str]:
        with self._lock:
            return sorted({tag for (tag, _), box in self._boxes.items() if box})

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")


class WorkerTransport(Transport):
    """Thread-pool-backed transport: deferred encode/post jobs run on a
    background worker, concurrently with the main thread.

    Threading model (see README "async worker transport"):

    * ``defer(tag, job)`` submits the exchange's quantize/pack/post closure
      to a worker pool and returns immediately; the main thread goes on to
      run the central sub-step, whose BLAS/spmv kernels release the GIL —
      so the worker's NumPy quantize/pack kernels genuinely execute in
      parallel on a second core;
    * the pool has exactly **one** worker: step jobs must retire in
      submission order because stochastic-rounding noise is drawn from a
      shared sequential RNG stream (the bitwise contract with the
      synchronous path).  Concurrency comes from overlapping the *main*
      thread, not from intra-pool parallelism;
    * ``complete(tag)`` joins the tag's job (re-raising worker exceptions)
      and returns the seconds the caller was blocked — the *exposed* tail
      of encode work the central window failed to cover, recorded in each
      :class:`~repro.cluster.records.StepTimeline` as ``worker_wait_s``;
    * :meth:`collect` auto-joins as a safety net, so a collector can never
      observe a half-posted step;
    * workers only **produce** (encode + post); the main thread alone
      collects, decodes and accumulates, in the fixed device order — which
      is what keeps the async path bitwise-identical to the sync one.
    """

    is_async = True

    def __init__(self, num_devices: int) -> None:
        super().__init__(num_devices)
        # Exactly one worker, by design, not as a default: a second worker
        # would let step jobs race on the shared sequential rounding RNG
        # and break the bitwise contract (see class docstring).
        self._pool: ThreadPoolExecutor | None = None
        self._jobs: dict[str, Future] = {}
        self._jobs_lock = threading.Lock()

    # ------------------------------------------------------------------
    def defer(self, tag: str, job) -> None:
        with self._jobs_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix="repro-transport",
                )
            if tag in self._jobs:
                raise RuntimeError(
                    f"tag {tag!r} already has a deferred job in flight"
                )
            self._jobs[tag] = self._pool.submit(job)

    def complete(self, tag: str) -> float:
        with self._jobs_lock:
            future = self._jobs.pop(tag, None)
        if future is None:
            return 0.0
        t0 = time.perf_counter()
        future.result()
        return time.perf_counter() - t0

    def complete_all(self) -> None:
        """Join every outstanding job (used at epoch boundaries/shutdown)."""
        with self._jobs_lock:
            tags = list(self._jobs)
        for tag in tags:
            self.complete(tag)

    def collect(self, dst: int, tag: str) -> dict[int, object]:
        # Safety net: finalize_step joins via InFlightStep.mark_done, but a
        # direct collector must never see a half-posted step either.
        with self._jobs_lock:
            outstanding = tag in self._jobs
        if outstanding:
            self.complete(tag)
        return super().collect(dst, tag)

    def reset_accounting(self) -> None:
        self.complete_all()
        super().reset_accounting()

    def pending_tags(self) -> list[str]:
        self.complete_all()
        return super().pending_tags()

    def close(self) -> None:
        self.complete_all()
        with self._jobs_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
