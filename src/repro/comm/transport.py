"""In-memory transport between simulated devices, with byte accounting.

Real payload objects (quantized byte streams or float arrays) are routed
through per-destination mailboxes; every ``post`` records its wire size in
a per-tag byte matrix.  Those matrices are exactly what the schedule
simulators consume — the simulated clock is driven by *measured* byte
counts, not estimates (DESIGN.md §4.1).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

__all__ = ["Transport"]


class Transport:
    """Mailbox-based message router for ``num_devices`` simulated devices.

    Tags namespace independent exchanges (e.g. ``"fwd/layer0"`` vs
    ``"bwd/layer2"``); within a tag each (src, dst) pair may post at most
    one envelope per collection cycle, mirroring the one-buffer-per-peer
    design of the paper's implementation.

    Mailboxes are insertion-ordered ``{src: payload}`` dicts: the fused
    engines post ~K² envelopes per step, so per-envelope overhead (object
    construction, duplicate scans) is the transport's hot path — one dict
    op gives enqueue + O(1) duplicate detection + collection order in one.

    **Progress model** (the split-phase pipeline's interleave record):
    every posted envelope is *pending* until its destination collects it.
    :meth:`note_overlap` marks all bytes currently pending under a tag as
    having been in flight during an overlapped compute window — the
    pipelined executor calls it right before running the central sub-step,
    so :meth:`overlapped_bytes` measures how much of a step's traffic the
    executed schedule actually hid (not how much a cost model predicts it
    could hide).
    """

    def __init__(self, num_devices: int) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        self.num_devices = num_devices
        self._boxes: dict[tuple[str, int], dict[int, object]] = defaultdict(dict)
        self._bytes: dict[str, np.ndarray] = {}
        self._pending: dict[str, int] = defaultdict(int)
        self._pending_by_box: dict[tuple[str, int], int] = defaultdict(int)
        self._overlapped: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def post(self, src: int, dst: int, tag: str, payload: object, nbytes: int) -> None:
        """Queue ``payload`` from ``src`` to ``dst`` under ``tag``."""
        self._check_device(src)
        self._check_device(dst)
        if src == dst:
            raise ValueError("devices do not message themselves")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        box = self._boxes[(tag, dst)]
        if src in box:
            raise RuntimeError(f"duplicate post on tag {tag!r} for pair {src}->{dst}")
        box[src] = payload
        matrix = self._bytes.setdefault(
            tag, np.zeros((self.num_devices, self.num_devices), dtype=np.int64)
        )
        matrix[src, dst] += int(nbytes)
        self._pending[tag] += int(nbytes)
        self._pending_by_box[(tag, dst)] += int(nbytes)

    def post_batch(
        self, src: int, tag: str, posts: list[tuple[int, object, int]]
    ) -> None:
        """Post one envelope per ``(dst, payload, nbytes)`` in a single call.

        The fused engines emit all of one device's outgoing messages for a
        step at once; a single pass validates, enqueues and accounts each
        one.  Semantics are identical to repeated :meth:`post`.
        """
        self._check_device(src)
        if not posts:
            return
        # Validate the whole batch before enqueuing anything, so a bad
        # entry cannot leave phantom envelopes or byte accounting behind.
        boxes = self._boxes
        n = self.num_devices
        seen: set[int] = set()
        for dst, _, nb in posts:
            if not 0 <= dst < n:
                raise ValueError(f"destination out of range [0, {n})")
            if dst == src:
                raise ValueError("devices do not message themselves")
            if nb < 0:
                raise ValueError("nbytes must be non-negative")
            if dst in seen or src in boxes[(tag, dst)]:
                raise RuntimeError(
                    f"duplicate post on tag {tag!r} for pair {src}->{dst}"
                )
            seen.add(dst)
        matrix = self._bytes.setdefault(
            tag, np.zeros((self.num_devices, self.num_devices), dtype=np.int64)
        )
        row = matrix[src]
        pending = 0
        for dst, payload, nb in posts:
            boxes[(tag, dst)][src] = payload
            row[dst] += int(nb)
            pending += int(nb)
            self._pending_by_box[(tag, dst)] += int(nb)
        self._pending[tag] += pending

    def collect(self, dst: int, tag: str) -> dict[int, object]:
        """Drain ``dst``'s mailbox for ``tag``; returns ``{src: payload}``."""
        self._check_device(dst)
        drained = self._pending_by_box.pop((tag, dst), 0)
        if drained:
            self._pending[tag] -= drained
        return self._boxes.pop((tag, dst), {})

    # ------------------------------------------------------------------
    # Progress model
    # ------------------------------------------------------------------
    def pending_bytes(self, tag: str) -> int:
        """Bytes posted under ``tag`` that no destination has collected yet."""
        return int(self._pending.get(tag, 0))

    def note_overlap(self, tag: str) -> int:
        """Mark ``tag``'s currently-pending bytes as overlapped; returns them.

        Called by the pipelined executor at the start of a central-compute
        window: whatever is still in flight at that moment is the traffic
        the executed schedule hides under computation.
        """
        pending = self.pending_bytes(tag)
        if pending:
            self._overlapped[tag] += pending
        return pending

    def overlapped_bytes(self, tag: str) -> int:
        """Cumulative bytes of ``tag`` marked in flight during overlap windows."""
        return int(self._overlapped.get(tag, 0))

    # ------------------------------------------------------------------
    def bytes_matrix(self, tag: str) -> np.ndarray:
        """Cumulative bytes posted under ``tag`` as an (N, N) matrix."""
        if tag in self._bytes:
            return self._bytes[tag].copy()
        return np.zeros((self.num_devices, self.num_devices), dtype=np.int64)

    def total_bytes(self) -> int:
        return int(sum(m.sum() for m in self._bytes.values()))

    def reset_accounting(self) -> None:
        """Clear byte counters (mailboxes must already be drained)."""
        if any(self._boxes.values()):
            pending = [key for key, box in self._boxes.items() if box]
            raise RuntimeError(f"undelivered messages remain: {pending}")
        self._bytes.clear()
        self._pending.clear()
        self._pending_by_box.clear()
        self._overlapped.clear()

    def pending_tags(self) -> list[str]:
        return sorted({tag for (tag, _), box in self._boxes.items() if box})

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} out of range [0, {self.num_devices})")
