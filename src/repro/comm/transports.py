"""Transport backend registry and selection specs.

One training run picks its transport through a single spec — ``"auto"``,
``"sync"``, ``"worker:4"``, ``"process:2"``.  The registry makes
``SyncTransport``, ``WorkerTransport`` and ``ProcessTransport``
config-selectable peers behind the :class:`~repro.comm.transport.
TransportBackend` API; a future multi-host backend (sockets/MPI) plugs in
through :func:`register` without touching cluster or config code.

Spec grammar::

    auto            resolve at cluster construction: worker when the run
                    overlaps and the host has a spare core, sync otherwise
    auto:N          same, but pin the worker count if async is chosen
    sync            inline mailbox transport (no worker count)
    worker[:N]      thread-pool transport with N workers (default: spare cores)
    process[:N]     process-pool transport over shared memory

The async backends only pay off inside the split-phase pipeline's central
window, so :func:`resolve_spec` degrades them to ``sync`` for
non-overlapped runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module

__all__ = [
    "TransportSpec",
    "available_backends",
    "create_transport",
    "get_backend",
    "parse_transport_spec",
    "register",
    "resolve_spec",
]

_REGISTRY: dict[str, type] = {}

#: Built-in backends, imported on first lookup: the registry stays free of
#: module-level imports of the backend modules (they import ``register``
#: from here), so registration cannot cycle.
_BUILTIN_MODULES = {
    "sync": "repro.comm.transport",
    "worker": "repro.comm.transport",
    "process": "repro.comm.process",
}


def register(name: str):
    """Class decorator: make a transport backend selectable as ``name``.

    >>> from repro.comm.transports import register, get_backend
    >>> from repro.comm.transport import SyncTransport
    >>> get_backend("sync") is SyncTransport
    True
    """

    def decorate(cls: type) -> type:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ValueError(f"transport backend {name!r} already registered")
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_backend(name: str) -> type:
    """The backend class registered as ``name`` (builtins import lazily)."""
    cls = _REGISTRY.get(name)
    if cls is None and name in _BUILTIN_MODULES:
        import_module(_BUILTIN_MODULES[name])
        cls = _REGISTRY.get(name)
    if cls is None:
        raise ValueError(
            f"unknown transport backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        )
    return cls


def available_backends() -> list[str]:
    """Every registered backend name, builtins included."""
    for module in set(_BUILTIN_MODULES.values()):
        import_module(module)
    return sorted(_REGISTRY)


def _known_backends() -> set[str]:
    # Parse-time validation must not import the backend modules (config
    # objects are built long before any transport), so junk is rejected
    # against the name set rather than the loaded registry.
    return {"auto"} | set(_BUILTIN_MODULES) | set(_REGISTRY)


@dataclass(frozen=True)
class TransportSpec:
    """One parsed transport selection: ``backend[:workers]``.

    ``workers=None`` means "backend default" (resolved to the host's spare
    cores for the async backends).  ``sync`` takes no worker count.
    """

    backend: str = "auto"
    workers: int | None = None

    def __post_init__(self) -> None:
        if self.backend not in _known_backends():
            raise ValueError(
                f"unknown transport backend {self.backend!r} "
                f"(expected one of: {', '.join(sorted(_known_backends()))})"
            )
        if self.workers is not None:
            if self.backend == "sync":
                raise ValueError("the sync transport takes no worker count")
            if int(self.workers) < 1:
                raise ValueError("transport workers must be >= 1 (or None for auto)")
            object.__setattr__(self, "workers", int(self.workers))

    @classmethod
    def parse(cls, spec: "TransportSpec | str") -> "TransportSpec":
        """Parse ``"backend[:N]"`` (a ready spec passes through).

        >>> TransportSpec.parse("worker:4")
        TransportSpec(backend='worker', workers=4)
        """
        if isinstance(spec, TransportSpec):
            return spec
        if not isinstance(spec, str):
            raise TypeError(f"transport spec must be a str or TransportSpec: {spec!r}")
        name, sep, count = spec.strip().partition(":")
        workers = None
        if sep:
            try:
                workers = int(count)
            except ValueError:
                raise ValueError(
                    f"bad worker count in transport spec {spec!r}"
                ) from None
        return cls(name, workers)

    def __str__(self) -> str:
        return self.backend if self.workers is None else f"{self.backend}:{self.workers}"


def parse_transport_spec(spec: TransportSpec | str) -> TransportSpec:
    """Module-level alias of :meth:`TransportSpec.parse`."""
    return TransportSpec.parse(spec)


def resolve_spec(spec: TransportSpec | str, *, overlap: bool = True) -> TransportSpec:
    """Resolve ``auto`` and default worker counts into a concrete spec.

    ``overlap`` is whether the run executes the split-phase pipeline: the
    async backends exist to hide encode/decode under its central window,
    so without it every spec resolves to ``sync``.
    """
    from repro.comm.transport import host_has_spare_core, host_spare_cores

    spec = TransportSpec.parse(spec)
    backend = spec.backend
    if backend == "auto":
        if not (overlap and host_has_spare_core()):
            return TransportSpec("sync")
        backend = "worker"
    if backend == "sync" or not overlap:
        return TransportSpec("sync")
    workers = spec.workers if spec.workers is not None else max(1, host_spare_cores())
    return TransportSpec(backend, workers)


def create_transport(spec: TransportSpec | str, num_devices: int):
    """Instantiate the backend a concrete spec names.

    ``auto`` must be resolved first (:func:`resolve_spec`) — only the
    caller knows whether the run overlaps.
    """
    spec = TransportSpec.parse(spec)
    if spec.backend == "auto":
        raise ValueError("resolve 'auto' with resolve_spec() before creating")
    cls = get_backend(spec.backend)
    if spec.workers is None:
        return cls(num_devices)
    return cls(num_devices, workers=spec.workers)
