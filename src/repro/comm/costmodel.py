"""Per-link linear communication cost model: ``t = θ · bytes + γ``.

This is the connection-level model of Sarvotham et al. (2001) that the
paper's minimax objective (Eqn. 10) assumes.  θ (seconds/byte) captures
inverse effective bandwidth; γ captures fixed per-transfer latency
(kernel launch, protocol handshake, host staging).

Default tiers approximate the paper's testbed *without* GPUDirect RDMA
(messages staged through host memory):

* intra-machine: PCIe-staged peer copies — tens of Gb/s effective;
* inter-machine: 100 Gbps Ethernet shared by the machine's four GPUs —
  a few Gb/s effective per concurrent pair, with higher latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.topology import ClusterTopology
from repro.utils.validation import check_positive

__all__ = ["LinkCostModel", "fit_linear_cost"]

# Default effective link parameters.  These are *scaled* versions of the
# paper's testbed: the synthetic datasets are ~500x smaller than the real
# ones, so effective bandwidths are scaled down by a similar factor to keep
# the workload in the same bandwidth-dominated regime (theta*bytes >> gamma
# for full-precision transfers, theta*bytes ~ gamma at 2-bit) and to keep
# epoch times at a paper-like magnitude.  See DESIGN.md "Substitutions".
INTRA_THETA = 1.0 / 10.0e6  # scaled intra-machine fabric
INTER_THETA = 1.0 / 2.5e6  # scaled cross-machine Ethernet share
INTRA_GAMMA = 3.0e-4
INTER_GAMMA = 1.5e-3


@dataclass(frozen=True)
class LinkCostModel:
    """Pairwise linear costs for one cluster topology.

    ``theta[s, d]`` / ``gamma[s, d]`` give the cost parameters of the
    directed link ``s → d``.  Diagonal entries are zero (loopback is free:
    a device never sends messages to itself in this system).
    """

    topology: ClusterTopology
    theta: np.ndarray
    gamma: np.ndarray

    def __post_init__(self) -> None:
        n = self.topology.num_devices
        if self.theta.shape != (n, n) or self.gamma.shape != (n, n):
            raise ValueError("theta/gamma must be (num_devices, num_devices)")
        if (self.theta < 0).any() or (self.gamma < 0).any():
            raise ValueError("cost parameters must be non-negative")

    @staticmethod
    def for_topology(
        topology: ClusterTopology,
        *,
        intra_theta: float = INTRA_THETA,
        inter_theta: float = INTER_THETA,
        intra_gamma: float = INTRA_GAMMA,
        inter_gamma: float = INTER_GAMMA,
    ) -> "LinkCostModel":
        """Build the two-tier model for an ``xM-yD`` topology."""
        check_positive(intra_theta, name="intra_theta")
        check_positive(inter_theta, name="inter_theta")
        n = topology.num_devices
        theta = np.full((n, n), inter_theta)
        gamma = np.full((n, n), inter_gamma)
        machines = np.array([topology.machine_of(d) for d in range(n)])
        same = machines[:, None] == machines[None, :]
        theta[same] = intra_theta
        gamma[same] = intra_gamma
        np.fill_diagonal(theta, 0.0)
        np.fill_diagonal(gamma, 0.0)
        return LinkCostModel(topology=topology, theta=theta, gamma=gamma)

    def time(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer time of ``nbytes`` on link ``src → dst`` (0 for no data)."""
        if src == dst or nbytes <= 0:
            return 0.0
        return float(self.theta[src, dst] * nbytes + self.gamma[src, dst])

    def pair_parameters(self, src: int, dst: int) -> tuple[float, float]:
        """The (θ, γ) the bit-width assigner's time objective uses."""
        return float(self.theta[src, dst]), float(self.gamma[src, dst])


def fit_linear_cost(
    nbytes: np.ndarray, seconds: np.ndarray
) -> tuple[float, float]:
    """Least-squares fit of ``t = θ·b + γ`` from probe measurements.

    This mirrors how a real deployment would calibrate the cost model from
    ping-pong probes; the simulator uses it in tests to verify the model is
    recoverable and in the harness to fit measured byte/time pairs.

    Returns ``(theta, gamma)`` with ``gamma`` clamped at 0.
    """
    nbytes = np.asarray(nbytes, dtype=np.float64)
    seconds = np.asarray(seconds, dtype=np.float64)
    if nbytes.shape != seconds.shape or nbytes.ndim != 1:
        raise ValueError("nbytes and seconds must be equal-length 1-D arrays")
    if nbytes.size < 2:
        raise ValueError("need at least two probes to fit a line")
    design = np.stack([nbytes, np.ones_like(nbytes)], axis=1)
    (theta, gamma), *_ = np.linalg.lstsq(design, seconds, rcond=None)
    return float(max(theta, 0.0)), float(max(gamma, 0.0))
