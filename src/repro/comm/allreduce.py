"""Model-gradient allreduce: exact numerics plus a ring-allreduce time model.

The paper deliberately does *not* compress model gradients (they are tiny
next to messages — its footnote 1 quantifies this), so the reproduction
averages them exactly.  Timing uses the standard ring-allreduce cost:
``2 (N-1)/N · bytes`` cross the slowest link, plus ``2 (N-1)`` latency
terms.
"""

from __future__ import annotations

import numpy as np

from repro.comm.costmodel import LinkCostModel

__all__ = ["allreduce_sum", "allreduce_mean", "ring_allreduce_time"]


def allreduce_sum(vectors: list[np.ndarray]) -> np.ndarray:
    """Exact sum of per-device gradient vectors (all devices get the same).

    This is the correct reduction here: each device's loss is normalized by
    the *global* training-node count, so device gradients are partial sums
    of the full-graph gradient.  Summation order is fixed (device order) and
    accumulation is float64, so every caller observes a bit-identical
    result — required for replicas to stay in sync.
    """
    if not vectors:
        raise ValueError("allreduce needs at least one vector")
    first = vectors[0]
    for v in vectors[1:]:
        if v.shape != first.shape:
            raise ValueError("all gradient vectors must have the same shape")
    total = np.zeros_like(first, dtype=np.float64)
    for v in vectors:
        total += v
    return total.astype(first.dtype)


def allreduce_mean(vectors: list[np.ndarray]) -> np.ndarray:
    """Exact mean of per-device vectors (for locally-normalized losses)."""
    mean = allreduce_sum(vectors).astype(np.float64) / len(vectors)
    return mean.astype(vectors[0].dtype)


def ring_allreduce_time(nbytes: int, cost: LinkCostModel) -> float:
    """Ring allreduce wall time for ``nbytes`` of gradient data.

    Uses the slowest link's θ (the ring necessarily crosses it) and the
    canonical ``2 (N-1)/N`` volume factor.
    """
    n = cost.topology.num_devices
    if n == 1 or nbytes <= 0:
        return 0.0
    off_diag = ~np.eye(n, dtype=bool)
    theta_worst = float(cost.theta[off_diag].max())
    gamma_worst = float(cost.gamma[off_diag].max())
    volume_factor = 2.0 * (n - 1) / n
    return volume_factor * nbytes * theta_worst + 2.0 * (n - 1) * gamma_worst
