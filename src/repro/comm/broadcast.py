"""Sequential broadcast time model (the SANCUS communication pattern).

The paper attributes SANCUS's poor throughput to "sequential node
broadcasts, which is less efficient than the ring all2all communication
pattern" (Sec. 5.1).  We model it accordingly: sources broadcast one at a
time, and each broadcast unicasts its payload to every receiver in turn
over that source's links.
"""

from __future__ import annotations

import numpy as np

from repro.comm.costmodel import LinkCostModel

__all__ = ["sequential_broadcast_time"]


def sequential_broadcast_time(
    bytes_per_source: np.ndarray, cost: LinkCostModel, *, skipped: np.ndarray | None = None
) -> float:
    """Time for every device to broadcast its payload to all others.

    Parameters
    ----------
    bytes_per_source:
        ``bytes_per_source[s]`` = payload device ``s`` broadcasts.
    skipped:
        Optional boolean mask; ``skipped[s]`` means source ``s`` skips its
        broadcast this round (SANCUS's staleness-triggered skipping), so it
        contributes no time.
    """
    n = cost.topology.num_devices
    bytes_per_source = np.asarray(bytes_per_source, dtype=np.float64)
    if bytes_per_source.shape != (n,):
        raise ValueError(f"bytes_per_source must have length {n}")
    if skipped is None:
        skipped = np.zeros(n, dtype=bool)
    total = 0.0
    for s in range(n):
        if skipped[s] or bytes_per_source[s] <= 0:
            continue
        total += sum(cost.time(s, d, bytes_per_source[s]) for d in range(n) if d != s)
    return float(total)
