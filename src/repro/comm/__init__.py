"""Communication substrate for the simulated cluster.

The paper's testbed — multiple machines with several GPUs each, 100 Gbps
Ethernet between machines — is modelled by:

* :class:`ClusterTopology` — the ``xM-yD`` device layout;
* :class:`LinkCostModel` — per-device-pair linear cost ``t = θ·bytes + γ``
  (Sarvotham et al., the cost model the paper's Eqn. 10 uses), with
  distinct intra-/inter-machine tiers and least-squares calibration;
* :mod:`repro.comm.ring` — the ring all2all schedule (paper Fig. 8) with
  per-round straggler barriers;
* :mod:`repro.comm.broadcast` — the sequential broadcast pattern SANCUS
  uses (slower than ring all2all, as the paper observes);
* :mod:`repro.comm.allreduce` — exact gradient averaging plus the ring
  allreduce time model;
* :class:`Transport` — the in-memory mailbox that routes *real* message
  payloads between simulated devices and counts every byte;
* :class:`WorkerTransport` — the same mailbox with a background worker
  that runs deferred encode/post jobs concurrently with the main
  thread's compute (the async half of the split-phase pipeline).
"""

from repro.comm.topology import ClusterTopology, parse_topology
from repro.comm.costmodel import LinkCostModel, fit_linear_cost
from repro.comm.ring import ring_all2all_time, ring_rounds
from repro.comm.broadcast import sequential_broadcast_time
from repro.comm.allreduce import allreduce_mean, ring_allreduce_time
from repro.comm.transport import Transport, WorkerTransport, host_has_spare_core

__all__ = [
    "ClusterTopology",
    "parse_topology",
    "LinkCostModel",
    "fit_linear_cost",
    "ring_rounds",
    "ring_all2all_time",
    "sequential_broadcast_time",
    "allreduce_mean",
    "ring_allreduce_time",
    "Transport",
    "WorkerTransport",
    "host_has_spare_core",
]
