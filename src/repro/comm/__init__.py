"""Communication substrate for the simulated cluster.

The paper's testbed — multiple machines with several GPUs each, 100 Gbps
Ethernet between machines — is modelled by:

* :class:`ClusterTopology` — the ``xM-yD`` device layout;
* :class:`LinkCostModel` — per-device-pair linear cost ``t = θ·bytes + γ``
  (Sarvotham et al., the cost model the paper's Eqn. 10 uses), with
  distinct intra-/inter-machine tiers and least-squares calibration;
* :mod:`repro.comm.ring` — the ring all2all schedule (paper Fig. 8) with
  per-round straggler barriers;
* :mod:`repro.comm.broadcast` — the sequential broadcast pattern SANCUS
  uses (slower than ring all2all, as the paper observes);
* :mod:`repro.comm.allreduce` — exact gradient averaging plus the ring
  allreduce time model;
* the **transport backends** — the in-memory mailbox that routes *real*
  message payloads between simulated devices and counts every byte, in
  three config-selectable flavours behind one
  :class:`~repro.comm.transport.TransportBackend` API:
  :class:`SyncTransport` (inline), :class:`WorkerTransport` (thread
  pool), and :class:`~repro.comm.process.ProcessTransport` (worker
  processes over shared memory).  :mod:`repro.comm.transports` holds the
  registry and the ``"worker:4"``-style selection specs.

``ProcessTransport`` is re-exported lazily (importing it pulls in
``multiprocessing``).
"""

from repro.comm.topology import ClusterTopology, parse_topology
from repro.comm.costmodel import LinkCostModel, fit_linear_cost
from repro.comm.ring import ring_all2all_time, ring_rounds
from repro.comm.broadcast import sequential_broadcast_time
from repro.comm.allreduce import allreduce_mean, ring_allreduce_time
from repro.comm.transport import (
    SyncTransport,
    TransportAccounting,
    TransportBackend,
    WorkerTransport,
    host_has_spare_core,
)
from repro.comm.transports import (
    TransportSpec,
    available_backends,
    create_transport,
    parse_transport_spec,
    register,
    resolve_spec,
)

__all__ = [
    "ClusterTopology",
    "parse_topology",
    "LinkCostModel",
    "fit_linear_cost",
    "ring_rounds",
    "ring_all2all_time",
    "sequential_broadcast_time",
    "allreduce_mean",
    "ring_allreduce_time",
    "TransportBackend",
    "TransportAccounting",
    "SyncTransport",
    "WorkerTransport",
    "ProcessTransport",
    "host_has_spare_core",
    "TransportSpec",
    "available_backends",
    "create_transport",
    "parse_transport_spec",
    "register",
    "resolve_spec",
]


def __getattr__(name: str):
    if name == "ProcessTransport":
        from repro.comm.process import ProcessTransport

        return ProcessTransport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
