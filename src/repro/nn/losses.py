"""Masked losses for node classification.

Both losses return ``(loss_sum_contribution, d_logits)`` where the scalar
and gradient are normalized by an explicit ``normalizer``.  In distributed
full-graph training every device holds a *subset* of the training nodes, so
the normalizer (the global training-node count) must be supplied by the
caller — each device then contributes ``local_sum / global_count`` and the
device losses/gradients sum to exactly the single-machine quantity.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit

__all__ = ["softmax_cross_entropy", "bce_with_logits_loss"]


def _grad_buffer(logits: np.ndarray, out: np.ndarray | None) -> np.ndarray:
    """Zeroed gradient destination: ``out`` in place, or a fresh array.

    The fused compute engine passes per-device slices of its stacked logit
    gradient buffer so the loss writes gradients directly in place — no
    per-device allocation or copy.
    """
    if out is None:
        return np.zeros_like(logits)
    if out.shape != logits.shape:
        raise ValueError(f"out shape {out.shape} != logits shape {logits.shape}")
    out.fill(0.0)
    return out


def softmax_cross_entropy(
    logits: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    *,
    normalizer: float | None = None,
    out: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Masked softmax cross-entropy for single-label classification.

    Parameters
    ----------
    logits:
        ``(n, C)`` raw scores.
    labels:
        ``(n,)`` integer class ids.
    mask:
        ``(n,)`` boolean; only masked rows contribute loss/gradient.
    normalizer:
        Divisor for the mean; defaults to the local mask count (the
        single-machine case).  Distributed callers pass the global count.
    out:
        Optional ``(n, C)`` destination for ``d_logits`` (written in
        place, also returned).

    Returns
    -------
    (loss, d_logits):
        Scalar loss contribution and ``(n, C)`` gradient (zero on unmasked
        rows).
    """
    n, _ = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} incompatible with logits {logits.shape}")
    if mask.shape != (n,):
        raise ValueError("mask shape mismatch")
    count = float(mask.sum()) if normalizer is None else float(normalizer)
    d_logits = _grad_buffer(logits, out)
    if count == 0 or not mask.any():
        return 0.0, d_logits

    sel = logits[mask]
    sel_labels = labels[mask]
    # Numerically stable log-softmax.
    shifted = sel - sel.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = float(-log_probs[np.arange(sel.shape[0]), sel_labels].sum() / count)

    probs = np.exp(log_probs)
    probs[np.arange(sel.shape[0]), sel_labels] -= 1.0
    d_logits[mask] = probs / count
    return loss, d_logits


def bce_with_logits_loss(
    logits: np.ndarray,
    targets: np.ndarray,
    mask: np.ndarray,
    *,
    normalizer: float | None = None,
    out: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Masked multi-label binary cross-entropy with logits.

    Loss per element uses the numerically stable form
    ``max(z, 0) - z*y + log(1 + exp(-|z|))``; the mean is taken over
    ``normalizer * C`` elements (``normalizer`` defaults to the local mask
    count).
    """
    n, c = logits.shape
    if targets.shape != (n, c):
        raise ValueError(f"targets shape {targets.shape} != logits shape {logits.shape}")
    if mask.shape != (n,):
        raise ValueError("mask shape mismatch")
    count = float(mask.sum()) if normalizer is None else float(normalizer)
    d_logits = _grad_buffer(logits, out)
    if count == 0 or not mask.any():
        return 0.0, d_logits

    z = logits[mask]
    y = targets[mask]
    elementwise = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
    denom = count * c
    loss = float(elementwise.sum() / denom)

    sigma = expit(z)  # numerically stable sigmoid
    d_logits[mask] = (sigma - y) / denom
    return loss, d_logits
