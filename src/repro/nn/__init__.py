"""Minimal neural-network substrate (the PyTorch replacement).

Every layer implements an explicit ``forward``/``backward`` pair with an
internal cache, the classic "layers as objects" design.  Explicit backward
is a feature here, not a limitation: AdaQP quantizes *embedding gradients*
flowing between devices during the backward pass, so the reproduction needs
direct control over exactly where gradients cross device boundaries.

Gradient correctness for every layer is enforced by numerical
differentiation tests (see ``tests/nn``).
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Dropout, LayerNorm, Linear, ReLU
from repro.nn.losses import bce_with_logits_loss, softmax_cross_entropy
from repro.nn.metrics import accuracy, micro_f1
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn import init
from repro.nn.gradcheck import numerical_gradient

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "LayerNorm",
    "ReLU",
    "Dropout",
    "softmax_cross_entropy",
    "bce_with_logits_loss",
    "accuracy",
    "micro_f1",
    "Optimizer",
    "SGD",
    "Adam",
    "init",
    "numerical_gradient",
]
