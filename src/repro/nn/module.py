"""Parameter containers and the module tree.

A :class:`Parameter` is a dense float32 array with an accumulated gradient.
A :class:`Module` is a named tree of parameters and sub-modules with
state-dict support, so model replicas on different simulated devices can be
initialized identically and compared exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor with its accumulated gradient.

    Gradients accumulate across ``backward`` calls (like PyTorch's
    ``.grad``); optimizers read ``grad`` and callers reset it through
    :meth:`zero_grad` between steps.
    """

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def numel(self) -> int:
        return int(self.data.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` and :meth:`named_parameters` walk the
    attribute tree in deterministic (insertion) order — crucial for
    gradient allreduce, where every device must flatten parameters in the
    same order.
    """

    def __init__(self) -> None:
        self.training = True

    # -- tree walking -----------------------------------------------------
    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        found: list[tuple[str, Parameter]] = []
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                found.append((path, value))
            elif isinstance(value, Module):
                found.extend(value.named_parameters(prefix=f"{path}."))
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        found.append((f"{path}.{i}", item))
                    elif isinstance(item, Module):
                        found.extend(item.named_parameters(prefix=f"{path}.{i}."))
        return found

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> list["Module"]:
        mods: list[Module] = [self]
        for value in vars(self).values():
            if isinstance(value, Module):
                mods.extend(value.modules())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        mods.extend(item.modules())
        return mods

    # -- train/eval mode ---------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    # -- gradient helpers ---------------------------------------------------
    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.numel() for p in self.parameters())

    # -- (de)serialization ---------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            if state[name].shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {state[name].shape} vs {p.data.shape}"
                )
            p.data[...] = state[name]

    def grad_vector(self) -> np.ndarray:
        """Flatten all gradients into one vector (deterministic order)."""
        grads = [p.grad.ravel() for p in self.parameters()]
        return np.concatenate(grads) if grads else np.zeros(0, dtype=np.float32)

    def set_grad_vector(self, vec: np.ndarray) -> None:
        """Scatter a flat gradient vector back into parameter ``grad``s."""
        params = self.parameters()
        expected = sum(p.numel() for p in params)
        if vec.size != expected:
            raise ValueError(
                f"gradient vector length {vec.size} != expected {expected}"
            )
        offset = 0
        for p in params:
            size = p.numel()
            p.grad[...] = vec[offset : offset + size].reshape(p.data.shape)
            offset += size
