"""Dense layers with explicit forward/backward.

Each layer caches whatever its backward pass needs during forward and
consumes that cache exactly once in ``backward``.  The backward contract is
uniform: given ``d_out = dL/d_output`` it accumulates parameter gradients
into ``Parameter.grad`` and returns ``dL/d_input``.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.blas import row_matmul
from repro.nn.module import Module, Parameter
from repro.utils.validation import check_probability

__all__ = ["Linear", "LayerNorm", "ReLU", "Dropout"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        *,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._cache_x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # row_matmul keeps per-row results independent of the batch's row
        # count, so per-device batches and the fused engine's cluster-wide
        # stacked batches produce bit-identical rows.
        self._cache_x = x
        out = row_matmul(x, self.weight.data)
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, d_out: np.ndarray) -> np.ndarray:
        x = self._cache_x
        if x is None:
            raise RuntimeError("backward called before forward")
        self._cache_x = None
        self.weight.grad += x.T @ d_out
        if self.bias is not None:
            self.bias.grad += d_out.sum(axis=0)
        return row_matmul(d_out, self.weight.data.T)


class LayerNorm(Module):
    """Layer normalization over the last dimension (paper's norm choice)."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = int(dim)
        self.eps = float(eps)
        self.gamma = Parameter(init.ones((dim,)))
        self.beta = Parameter(init.zeros((dim,)))
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def _stats(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return mean, 1.0 / np.sqrt(var + self.eps)

    def forward(self, x: np.ndarray) -> np.ndarray:
        mean, inv_std = self._stats(x)
        x_hat = (x - mean) * inv_std
        self._cache = (x_hat, inv_std, x)
        return x_hat * self.gamma.data + self.beta.data

    def forward_into(self, x: np.ndarray, x_hat_out: np.ndarray) -> np.ndarray:
        """In-place variant for the fused engine's stacked buffers.

        Writes ``x_hat`` into ``x_hat_out``, overwrites ``x`` with the
        normalized output, and returns ``inv_std`` (the caller caches both
        for :meth:`input_grad`).  Same operations as :meth:`forward`, so
        the values are bit-identical — keeping the normalization formula
        in one place is what protects the engine's fused==legacy contract.
        """
        mean, inv_std = self._stats(x)
        np.subtract(x, mean, out=x_hat_out)
        x_hat_out *= inv_std
        np.multiply(x_hat_out, self.gamma.data, out=x)
        x += self.beta.data
        return inv_std

    def input_grad(
        self, d_out: np.ndarray, x_hat: np.ndarray, inv_std: np.ndarray
    ) -> np.ndarray:
        """dL/d_input given the cached normalization state.

        Standard layer-norm backward: project out the mean and the
        component along ``x_hat`` before rescaling by 1/std.  Shared by
        :meth:`backward` and the fused engine (whose parameter partials
        are accumulated per device separately).
        """
        d_xhat = d_out * self.gamma.data
        return (
            d_xhat
            - d_xhat.mean(axis=-1, keepdims=True)
            - x_hat * (d_xhat * x_hat).mean(axis=-1, keepdims=True)
        ) * inv_std

    def backward(self, d_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, _ = self._cache
        self._cache = None
        self.gamma.grad += (d_out * x_hat).sum(axis=0)
        self.beta.grad += d_out.sum(axis=0)
        return self.input_grad(d_out, x_hat, inv_std)


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, d_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        mask, self._mask = self._mask, None
        return d_out * mask


class Dropout(Module):
    """Inverted dropout driven by an explicit, per-device RNG stream.

    The RNG is injected rather than global so that every simulated device
    draws an independent, reproducible mask sequence.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        self.p = check_probability(p, name="p")
        self.rng = rng
        self._mask: np.ndarray | None = None

    def sample_mask(self, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Draw one inverted-dropout mask from this layer's stream.

        The single source of truth for the mask arithmetic: the fused
        compute engine draws per-device masks through this method so its
        stream consumption and scaling match :meth:`forward` bit for bit.
        """
        keep = 1.0 - self.p
        return (self.rng.random(shape) < keep).astype(dtype) / keep

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        self._mask = self.sample_mask(x.shape, x.dtype)
        return x * self._mask

    def backward(self, d_out: np.ndarray) -> np.ndarray:
        if self._mask is None:  # eval mode or p == 0: identity
            return d_out
        mask, self._mask = self._mask, None
        return d_out * mask
