"""Evaluation metrics: accuracy (single-label) and micro-F1 (multi-label).

The paper reports accuracy for Reddit/ogbn-products and micro-F1 for
Yelp/AmazonProducts, referring to both as "accuracy"; the harness does the
same, selecting the metric from the dataset's task type.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "micro_f1",
    "task_metric",
    "metric_counts",
    "metric_from_counts",
]


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray) -> float:
    """Fraction of masked nodes whose argmax prediction matches the label."""
    if not mask.any():
        return float("nan")
    pred = logits[mask].argmax(axis=1)
    return float((pred == labels[mask]).mean())


def micro_f1(logits: np.ndarray, targets: np.ndarray, mask: np.ndarray) -> float:
    """Micro-averaged F1 with the standard 0.5-probability threshold.

    With logits, ``sigmoid(z) > 0.5`` is exactly ``z > 0``, so no sigmoid is
    evaluated.
    """
    if not mask.any():
        return float("nan")
    pred = logits[mask] > 0.0
    true = targets[mask] > 0.5
    tp = float(np.logical_and(pred, true).sum())
    fp = float(np.logical_and(pred, ~true).sum())
    fn = float(np.logical_and(~pred, true).sum())
    denom = 2 * tp + fp + fn
    return float(2 * tp / denom) if denom > 0 else 0.0


def task_metric(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray, *, multilabel: bool
) -> float:
    """Dispatch to the task-appropriate metric (paper's unified 'accuracy')."""
    if multilabel:
        return micro_f1(logits, labels, mask)
    return accuracy(logits, labels, mask)


def metric_counts(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray, *, multilabel: bool
) -> np.ndarray:
    """Integer sufficient statistics of :func:`task_metric` for one shard.

    Both metrics are ratios of summed integer counts — ``(correct, total)``
    for accuracy, ``(tp, fp, fn)`` for micro-F1 — so shards accumulate
    exactly: summing per-partition count vectors and finishing with
    :func:`metric_from_counts` reproduces the global metric value without
    ever materializing a global logits/labels matrix (the huge-graph
    evaluation path).
    """
    if multilabel:
        pred = logits[mask] > 0.0
        true = labels[mask] > 0.5
        return np.array(
            [
                np.logical_and(pred, true).sum(),
                np.logical_and(pred, ~true).sum(),
                np.logical_and(~pred, true).sum(),
                mask.sum(),
            ],
            dtype=np.int64,
        )
    pred = logits[mask].argmax(axis=1)
    return np.array([(pred == labels[mask]).sum(), mask.sum()], dtype=np.int64)


def metric_from_counts(counts: np.ndarray, *, multilabel: bool) -> float:
    """Finish accumulated :func:`metric_counts` statistics into the metric."""
    if multilabel:
        tp, fp, fn, total = (float(c) for c in counts)
        if total == 0:
            return float("nan")  # no masked entries anywhere
        denom = 2 * tp + fp + fn
        return float(2 * tp / denom) if denom > 0 else 0.0
    correct, total = counts
    return float(correct) / float(total) if total else float("nan")
