"""Evaluation metrics: accuracy (single-label) and micro-F1 (multi-label).

The paper reports accuracy for Reddit/ogbn-products and micro-F1 for
Yelp/AmazonProducts, referring to both as "accuracy"; the harness does the
same, selecting the metric from the dataset's task type.
"""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "micro_f1", "task_metric"]


def accuracy(logits: np.ndarray, labels: np.ndarray, mask: np.ndarray) -> float:
    """Fraction of masked nodes whose argmax prediction matches the label."""
    if not mask.any():
        return float("nan")
    pred = logits[mask].argmax(axis=1)
    return float((pred == labels[mask]).mean())


def micro_f1(logits: np.ndarray, targets: np.ndarray, mask: np.ndarray) -> float:
    """Micro-averaged F1 with the standard 0.5-probability threshold.

    With logits, ``sigmoid(z) > 0.5`` is exactly ``z > 0``, so no sigmoid is
    evaluated.
    """
    if not mask.any():
        return float("nan")
    pred = logits[mask] > 0.0
    true = targets[mask] > 0.5
    tp = float(np.logical_and(pred, true).sum())
    fp = float(np.logical_and(pred, ~true).sum())
    fn = float(np.logical_and(~pred, true).sum())
    denom = 2 * tp + fp + fn
    return float(2 * tp / denom) if denom > 0 else 0.0


def task_metric(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray, *, multilabel: bool
) -> float:
    """Dispatch to the task-appropriate metric (paper's unified 'accuracy')."""
    if multilabel:
        return micro_f1(logits, labels, mask)
    return accuracy(logits, labels, mask)
