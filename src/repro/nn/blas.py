"""Row-deterministic GEMM: per-row results independent of batch size.

OpenBLAS (numpy's default backend) routes ``sgemm`` through a dedicated
small-matrix kernel whenever ``M * N * K`` falls under a fixed threshold
(~100^3).  That kernel accumulates the K dimension in a different order
than the standard blocked kernel, so the *same input row* can produce
bitwise-different output depending on how many other rows share the call.
This breaks the cluster-fused compute engine's core contract: one stacked
GEMM over all devices' rows must equal the per-device GEMMs it replaces,
bit for bit.

:func:`row_matmul` restores row determinism by zero-padding the row
dimension past the small-kernel threshold, forcing every call — a
4-million-row stacked step or a 40-row single device — through the same
standard kernel, whose per-row results depend only on that row and the
shared operand.  Padding costs at most ~2 MFLOP per call — free for the
fused engine's stacked calls (which are big enough to never pad) but a
real multiple of the raw BLAS time for tiny per-device batches on the
legacy path (~30µs vs ~3µs for a 64×32 @ 32×32 call).  That overhead is
the price of the fused/legacy bitwise-equality contract; perf-sensitive
callers that don't need cross-batch-size determinism should use ``@``.

Both the legacy per-device path (:class:`repro.nn.layers.Linear`) and the
fused engine (:mod:`repro.cluster.compute`) route row-batched products
through this helper; products whose shapes are identical on both paths
(e.g. weight-gradient ``x.T @ d``) don't need it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["row_matmul"]

#: Shapes with ``M * N * K`` at or under this use OpenBLAS's small-matrix
#: kernel (empirical boundary ~1e6, i.e. the documented 100^3 heuristic);
#: a safety margin covers rounding in the backend's float comparison.
_SMALL_MNK = 1_100_000

# Reusable pads keyed by (rows, cols).  Rows past the current input may
# hold residue from earlier (larger) calls; that is harmless because GEMM
# output row i depends only on input row i, and rows past m are discarded.
_pad_cache: dict[tuple[int, int], np.ndarray] = {}


def row_matmul(
    a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """``a @ b`` with per-row results independent of ``a``'s row count.

    Parameters
    ----------
    a:
        ``(m, k)`` float array; rows may be a contiguous view into a larger
        stacked buffer.
    b:
        ``(k, n)`` shared operand (a transposed view is fine).
    out:
        Optional ``(m, n)`` destination (written in place and returned).
    """
    m, k = a.shape
    n = b.shape[1]
    if m == 0 or m * n * k > _SMALL_MNK:
        if out is not None:
            np.matmul(a, b, out=out)
            return out
        return a @ b

    m_pad = _SMALL_MNK // max(n * k, 1) + 1
    key = (m_pad, k)
    pad = _pad_cache.get(key)
    if pad is None or pad.dtype != a.dtype:
        pad = np.zeros((m_pad, k), dtype=a.dtype)
        _pad_cache[key] = pad
    pad[:m] = a
    full = pad @ b
    if out is not None:
        out[...] = full[:m]
        return out
    return np.ascontiguousarray(full[:m])
