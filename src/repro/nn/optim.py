"""Optimizers: SGD and Adam.

Determinism matters more than usual here: every simulated device runs its
own optimizer over its own (allreduced, hence identical) gradients, and the
replicas must stay bit-identical across devices.  Both optimizers are pure
elementwise NumPy, so identical inputs produce identical updates.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter
from repro.utils.validation import check_positive

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds the parameter list and the ``zero_grad`` helper."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        if not params:
            raise ValueError("optimizer received no parameters")
        self.params = list(params)
        self.lr = check_positive(lr, name="lr")

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Copies of the optimizer's slot state (checkpointing).

        Device replicas run identical updates over identical gradients, so
        one replica's state restores every other — which is what makes a
        checkpoint partition-count-independent (elastic restore).
        """
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output in place (shape-checked)."""
        if state:
            raise ValueError(f"unexpected optimizer state keys: {sorted(state)}")

    @staticmethod
    def _load_slots(target: list[np.ndarray], saved, name: str) -> None:
        if len(saved) != len(target):
            raise ValueError(
                f"optimizer state {name!r} has {len(saved)} entries,"
                f" expected {len(target)}"
            )
        for slot, arr in zip(target, saved):
            arr = np.asarray(arr)
            if slot.shape != arr.shape:
                raise ValueError(
                    f"optimizer state {name!r} shape {arr.shape} !="
                    f" parameter shape {slot.shape}"
                )
            slot[...] = arr


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float,
        *,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        self._load_slots(self._velocity, state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction; the paper's optimizer."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 0.01,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not (0.0 <= betas[0] < 1.0 and 0.0 <= betas[1] < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (float(betas[0]), float(betas[1]))
        self.eps = check_positive(eps, name="eps")
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._step_count
        bias2 = 1.0 - b2**self._step_count
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * np.square(g)
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "step_count": int(self._step_count),
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        self._step_count = int(state["step_count"])
        self._load_slots(self._m, state["m"], "m")
        self._load_slots(self._v, state["v"], "v")
