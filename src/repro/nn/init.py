"""Weight initializers (Glorot/Xavier family, matching DGL's defaults)."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "zeros", "ones"]


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot uniform: U(-a, a) with ``a = gain * sqrt(6 / (fan_in + fan_out))``."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(
    shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0
) -> np.ndarray:
    """Glorot normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot infer fans from a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    return int(shape[0]), int(np.prod(shape[1:]))
