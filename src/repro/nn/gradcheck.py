"""Numerical gradient checking.

Used by the test suite to verify every analytic backward pass against
central finite differences.  Checks run in float64 to keep the finite-
difference error below the comparison tolerance.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["numerical_gradient", "relative_error"]


def numerical_gradient(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    *,
    eps: float = 1e-4,
) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` with respect to ``x``.

    ``f`` must be a pure function of its argument (no hidden state), because
    it is invoked ``2 * x.size`` times.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = f(x)
        flat[i] = orig - eps
        f_minus = f(x)
        flat[i] = orig
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def relative_error(a: np.ndarray, b: np.ndarray, *, floor: float = 1e-8) -> float:
    """Max elementwise relative error with an absolute floor for tiny values."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denom = np.maximum(np.abs(a) + np.abs(b), floor)
    return float((np.abs(a - b) / denom).max()) if a.size else 0.0
