"""Paper Figs. 9/12: AdaQP's convergence curve coincides with Vanilla's;
staleness-based systems converge more slowly."""

import numpy as np

from repro.harness import run_fig09_convergence, save_result


def test_fig09_convergence(benchmark):
    result = benchmark.pedantic(run_fig09_convergence, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    # Shape 1: AdaQP's validation curve tracks Vanilla's closely at every
    # evaluated epoch (paper: "our training curves almost coincide").
    assert result.notes["max_adaqp_vanilla_curve_gap"] < 0.03

    # Shape 2: staleness baselines never *beat* vanilla's area-under-curve
    # by a meaningful margin, and trail it in most cases.
    auc = {}
    for dataset, setting, model, system, _, curve_auc in result.rows:
        auc[(dataset, setting, model, system)] = float(curve_auc)
    stale_vs_vanilla = []
    for (dataset, setting, model, system), value in auc.items():
        if system in ("pipegcn", "sancus"):
            vanilla = auc[(dataset, setting, model, "vanilla")]
            stale_vs_vanilla.append(value / vanilla)
    assert stale_vs_vanilla, "no staleness baselines in the sweep"
    assert float(np.mean(stale_vs_vanilla)) < 1.005
