"""Paper Table 7: the speedup persists at 24 devices (6M-4D)."""

from repro.harness import run_table7_scalability, save_result


def test_table7_scalability(benchmark):
    result = benchmark.pedantic(run_table7_scalability, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    throughputs = {}
    for dataset, method, thr in result.rows:
        throughputs[(dataset, method)] = float(thr.split()[0])

    for dataset in ("ogbn-products", "amazonproducts"):
        speedup = (
            throughputs[(dataset, "AdaQP")] / throughputs[(dataset, "Vanilla")]
        )
        # Paper: 1.79x and 2.34x at 24 devices.
        assert speedup > 1.3, f"{dataset}: {speedup:.2f}x"
