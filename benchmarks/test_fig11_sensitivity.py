"""Paper Fig. 11: sensitivity to message group size, λ and the
re-assignment period."""

from repro.harness import run_fig11_sensitivity, save_result


def test_fig11_sensitivity(benchmark):
    result = benchmark.pedantic(run_fig11_sensitivity, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    by_param = {}
    for param, value, acc, overhead in result.rows:
        by_param.setdefault(param, []).append(
            (float(value), float(acc), float(overhead))
        )

    # Shape 1: smaller message groups -> more MILP variables -> larger
    # assignment overhead (paper Fig. 11, left column).
    gs = sorted(by_param["group_size"])
    assert gs[0][2] > gs[-1][2], "smallest group size should cost the most"

    # Shape 2: accuracy stays within a tight band across all hyper-parameter
    # choices (paper: ~0.5 point spread) — the system is robust.
    accs = [acc for rows in by_param.values() for _, acc, _ in rows]
    assert max(accs) - min(accs) < 2.0

    # Shape 3: every lambda in [0, 1] trains successfully.
    assert len(by_param["lambda"]) == 5
