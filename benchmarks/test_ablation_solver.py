"""Ablation: exact MILP (HiGHS) vs greedy bit-width assignment solver."""

from repro.harness import run_ablation_solver, save_result


def test_ablation_solver(benchmark):
    result = benchmark.pedantic(run_ablation_solver, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    # The greedy solver is a drop-in: accuracy within half a point of the
    # exact MILP's (they optimize the same scalarized objective).
    assert result.notes["accuracy_gap"] < 0.005
    throughputs = {row[0]: float(row[2]) for row in result.rows}
    # Similar assignments -> similar throughput (within 25%).
    ratio = throughputs["milp"] / throughputs["greedy"]
    assert 0.75 < ratio < 1.33
