"""Paper Table 2: even 2-bit quantized marginal communication outlasts the
central graph's computation — the headroom that makes the overlap safe.

Since the split-phase executor landed, the epoch behind this table really
*executes* the overlap, so the modelled per-device claim is cross-checked
against the measured interleave on the same record."""

from repro.harness import run_table2_overlap_headroom, save_result


def test_table2_overlap_headroom(benchmark):
    result = benchmark.pedantic(run_table2_overlap_headroom, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    assert len(result.rows) == 8  # 2M-4D -> 8 devices
    # The paper's claim, per device: comm(2-bit) > comp(central).
    assert result.notes["comm_exceeds_comp_on_all_devices"]
    for _, comm, comp in result.rows:
        comm_ms = float(comm.split()[0])
        comp_ms = float(comp.split()[0])
        assert comm_ms > comp_ms

    # Measured cross-check from the executed pipeline: every halo byte was
    # in flight during a central window, and the central windows carried
    # real (nonzero) work.
    measured = result.notes["measured"]
    assert measured is not None
    assert measured["hidden_byte_fraction"] == 1.0
    assert 0.0 < measured["central_share"] < 1.0
    assert measured["central_ms"] > 0.0 and measured["marginal_ms"] > 0.0


def test_table2_analytic_fallback_without_overlap():
    """With overlap=False the table falls back to the purely analytic
    accounting: same modelled claim, no measured timeline."""
    result = run_table2_overlap_headroom(overlap=False)
    assert result.notes["comm_exceeds_comp_on_all_devices"]
    assert result.notes["measured"] is None
