"""Paper Table 2: even 2-bit quantized marginal communication outlasts the
central graph's computation — the headroom that makes the overlap safe."""

from repro.harness import run_table2_overlap_headroom, save_result


def test_table2_overlap_headroom(benchmark):
    result = benchmark.pedantic(run_table2_overlap_headroom, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    assert len(result.rows) == 8  # 2M-4D -> 8 devices
    # The paper's claim, per device: comm(2-bit) > comp(central).
    assert result.notes["comm_exceeds_comp_on_all_devices"]
    for _, comm, comp in result.rows:
        comm_ms = float(comm.split()[0])
        comp_ms = float(comp.split()[0])
        assert comm_ms > comp_ms
