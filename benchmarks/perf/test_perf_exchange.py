"""Wall-clock benchmarks of the fused exchange engine (``-m perf``).

These assert *conservative* floors on the fused/unfused speedup ratios —
well below the typical measurements recorded in ``BENCH_perf.json`` — so
they stay green on slow shared runners while still catching a fused path
that has lost its reason to exist.  The tight regression gate is the
``repro bench --baseline`` comparison in CI, not these floors.
"""

import json

import pytest

from repro.harness.perfbench import (
    bench_decode,
    bench_encode,
    bench_epoch,
    compare_to_baseline,
    run_bench,
)

pytestmark = pytest.mark.perf


def test_encode_throughput_fused_wins():
    result = bench_encode(reps=10)
    assert result["fused_mbps"] > 0
    assert result["speedup"] > 1.3, result


def test_decode_throughput_fused_wins():
    result = bench_decode(reps=10)
    assert result["speedup"] > 1.1, result


def test_epoch_speedup_on_default_workload():
    result = bench_epoch(epochs=5, warmup=1)
    assert result["wire_bytes_match"], "fused engine changed wire accounting"
    assert result["losses_match"], "fused engine changed numerics"
    assert result["speedup"] > 1.5, result


def test_run_bench_quick_report_roundtrip(tmp_path):
    report = run_bench(quick=True)
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps(report))
    loaded = json.loads(path.read_text())
    assert loaded["epoch"]["wire_bytes_match"] is True
    assert loaded["epoch"]["losses_match"] is True
    # A report never regresses against itself.
    assert compare_to_baseline(loaded, loaded) == []
    # A fabricated faster baseline must trip the gate.
    inflated = json.loads(path.read_text())
    inflated["epoch"]["speedup"] *= 10
    problems = compare_to_baseline(loaded, inflated)
    assert any("epoch.speedup" in p for p in problems)
