"""Wall-clock benchmarks of PR 8's two-deep pipeline (``-m perf``).

Same philosophy as the other perf suites: conservative floors that stay
green on slow shared runners while catching a pipeline that stopped
doing its job — the tight regression gate is the ``repro bench
--baseline`` comparison in CI (``decode_scatter.speedup`` and
``pipeline_depth.speedup`` are gated there, skipped on single-core
runners).  The equivalence halves of each contract (bitwise losses,
wire bytes, scatter contents) cost nothing to check on any host and are
asserted unconditionally.
"""

import pytest

from repro.harness.perfbench import bench_decode_scatter, bench_pipeline_depth

pytestmark = pytest.mark.perf


def test_decode_scatter_hides_under_the_central_gemm():
    """ISSUE 8's sharded-scatter line: per-receiver worker-side decode
    scatters must overlap a GIL-releasing central GEMM, clearing >=1.3x
    vs the serial decode-then-scatter layout on multi-core hosts.  The
    scattered halo rows must be bitwise-identical everywhere."""
    result = bench_decode_scatter(reps=10)
    assert result["scatter_match"], "worker-side scatter changed halo contents"
    if not result["multi_core"]:
        pytest.skip(
            f"host has {result['cores']} core(s); the {result['workers']}-worker "
            "scatter overlap would measure the scheduler, not the engine"
        )
    assert result["speedup"] > 1.3, result


def test_depth2_epoch_beats_depth1_on_multicore():
    """ISSUE 8's tentpole line: pipeline_depth=2 (forward lookahead posts
    + deferred backward parameter partials) must clear >=1.1x vs
    pipeline_depth=1 on multi-core hosts, with worker waits squeezed to
    <=5% of step time.  Bitwise equivalence, wire accounting and the
    depth-2 timeline stamp hold on any host; so does the Fig. 10
    extension's sanity cross-check (the modeled two-deep schedule never
    predicts a slowdown — hidden lookahead is >= 0 by construction)."""
    result = bench_pipeline_depth(epochs=5, warmup=1)
    assert result["losses_match"], "depth-2 pipeline changed numerics"
    assert result["wire_bytes_match"], "depth-2 pipeline changed wire accounting"
    assert result["depth_reported"], "depth-2 timelines missing pipeline_depth=2"
    assert result["modeled_speedup"] >= 1.0, result
    if not result["multi_core"]:
        pytest.skip(
            f"host has {result['cores']} core(s); the depth-2 lookahead has "
            "no spare core to overlap into"
        )
    assert result["speedup"] > 1.1, result
    assert result["worker_wait_share"] <= 0.05, result
