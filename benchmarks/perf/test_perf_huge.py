"""Wall-clock + peak-RSS benchmark of huge-graph mode (``-m perf``).

Same philosophy as the other perf suites: the equivalence half of the
contract (bitwise losses and wire bytes between the streaming and the
materialized arm) is asserted unconditionally on any host, as is the
peak-RSS gate — out-of-core residency is a design property, not a
scheduler artifact.  Throughput comparisons stay with the ``repro bench
--baseline`` gate (``huge_graph.throughput_ratio``, multi-core only).

The quick workload (quarter-size, same shape) keeps this under CI
budgets; the curated baseline numbers come from the full 1M-node
workload via ``repro bench``.
"""

import pytest

from repro.harness.hugebench import bench_huge_graph

pytestmark = pytest.mark.perf


def test_streaming_halves_peak_rss_bitwise():
    """ISSUE 10's tentpole line: the streaming arm's peak-RSS delta must
    stay at or under half the materialized arm's, with losses and wire
    bytes bitwise-identical, and the analytic estimate within 2x of the
    measured delta (the estimate-vs-measured cross-check)."""
    result = bench_huge_graph(quick=True, seed=0)
    assert result["losses_match"], "streaming arm changed the losses"
    assert result["wire_bytes_match"], "streaming arm changed wire accounting"
    assert result["rss_within_half"], (
        f"streaming peak-RSS delta is {result['rss_fraction']:.2f}x the "
        f"materialized arm's (gate: <= 0.5): {result}"
    )
    assert result["edges_per_s"] > 0
    rel = abs(result["estimate_rel_error"])
    assert rel < 1.0, (
        f"estimate_resident is off by {rel:.0%} from the measured delta"
    )
