"""Wall-clock benchmarks of the cluster-fused compute engine (``-m perf``).

Same philosophy as ``test_perf_exchange.py``: these floors are
*conservative* — well below the measurements recorded in
``BENCH_perf.json`` — so they stay green on slow shared runners while
still catching an engine that has lost its reason to exist.  The tight
regression gate is the ``repro bench --baseline`` comparison in CI.
"""

import pytest

from repro.harness.perfbench import (
    bench_compute_gemm,
    bench_compute_spmv,
    bench_epoch,
    bench_epoch_vanilla,
)

pytestmark = pytest.mark.perf


def test_stacked_gemm_beats_per_device_loop():
    result = bench_compute_gemm(reps=15)
    assert result["fused_mbps"] > 0
    # vs plain per-device BLAS (the pre-engine cost); the shipped
    # per-device path additionally pays row_matmul padding
    # (unfused_padded_ms), against which the stacked call is ~19x.
    assert result["speedup"] > 1.05, result
    assert result["unfused_padded_ms"] > result["unfused_ms"], result


def test_block_diagonal_spmv_beats_per_device_loop():
    result = bench_compute_spmv(reps=15)
    assert result["fused_mbps"] > 0
    assert result["speedup"] > 1.05, result


def test_vanilla_epoch_speedup_on_many_partition_workload():
    """The engine's headline: ≥2x epochs vs. the PR-1-era state (the
    checked-in baseline records the measured ratio; this floor is the
    slow-runner safety margin)."""
    result = bench_epoch_vanilla(epochs=6, warmup=2)
    assert result["wire_bytes_match"], "fused engine changed wire accounting"
    assert result["losses_match"], "fused compute engine changed numerics"
    assert result["losses_close"], "batched exact exchange diverged"
    assert result["speedup"] > 1.5, result


def test_quantized_epoch_keeps_combined_speedup():
    result = bench_epoch(epochs=5, warmup=1)
    assert result["wire_bytes_match"], "fused engines changed wire accounting"
    assert result["losses_match"], "fused engines changed numerics"
    assert result["speedup"] > 1.5, result
    # Compute fusion must never make the quantized epoch slower.
    assert result["compute_speedup"] > 0.95, result
