"""Wall-clock benchmarks of the split-phase pipelined executor (``-m perf``).

Same philosophy as the other perf suites: conservative floors that stay
green on slow shared runners while catching a pipeline that stopped doing
its job — the tight regression gate is the ``repro bench --baseline``
comparison in CI (``exchange_split_phase.speedup`` and
``epoch_overlap.hidden_byte_fraction`` are gated there).
"""

import pytest

from repro.harness.perfbench import (
    bench_epoch_overlap,
    bench_epoch_overlap_async,
    bench_exchange_split_phase,
    bench_pack_kernel,
    bench_process_scaling,
    bench_unpack_kernel,
    bench_worker_scaling,
)

pytestmark = pytest.mark.perf


def test_split_phase_exchange_costs_what_one_call_costs():
    """post_step + finalize_step must not grow a per-step dispatch tax:
    the two halves do exactly the monolithic call's work."""
    result = bench_exchange_split_phase(reps=15)
    assert result["fused_mbps"] > 0
    assert result["speedup"] > 0.7, result


def test_overlap_epoch_hides_the_halo_traffic():
    """The executed pipeline's headline: every halo byte in flight during
    a central window, bitwise-identical numerics, and bounded overhead."""
    result = bench_epoch_overlap(epochs=5, warmup=1)
    assert result["wire_bytes_match"], "pipelined executor changed wire accounting"
    assert result["losses_match"], "pipelined executor changed numerics"
    # The acceptance claim: measured hidden-comm fraction > 0 (in fact the
    # split-phase executor posts everything before the central window).
    assert result["hidden_byte_fraction"] > 0.9, result
    # The central windows carry real work (not empty stages).
    assert result["measured_central_share"] > 0.1, result
    # Table 2's headroom prediction holds on the executed record: quantized
    # marginal comm outlasts central compute on most steps.
    assert result["table2_headroom_fraction"] > 0.5, result
    # The split's gathers must not blow up the epoch (it trades a few
    # percent of host time for the executed interleave).
    assert result["speedup"] > 0.6, result


def test_async_overlap_epoch_beats_the_pr3_state():
    """PR 4's headline: the shipped overlapped engine (auto worker
    transport + rewritten quant kernels) must beat the resurrected PR-3
    synchronous overlapped epoch — measured ~1.17-1.26x on the single-core
    reference box, more with a spare core; the tight 1.15x-floor gate is
    the ``repro bench --baseline`` comparison in CI."""
    result = bench_epoch_overlap_async(epochs=5, warmup=1)
    assert result["wire_bytes_match"], "async transport changed wire accounting"
    assert result["losses_match"], "async transport changed numerics"
    # Every halo byte still hidden: worker posts land inside open windows.
    assert result["hidden_byte_fraction"] > 0.9, result
    # Conservative floor for noisy shared runners; the curated-baseline
    # ratio gate holds the real 1.15x line.  (Looser than PR 4's 0.95:
    # the keyed rounding RNG adds an equal per-pair Philox cost to both
    # arms, compressing the ratio toward 1.0 without changing what it
    # detects — the PR-3 kernels winning would still read well below.)
    assert result["speedup"] > 0.9, result
    # Forcing the worker on a single-core host must not melt down either.
    assert result["concurrency_speedup"] > 0.6, result


def test_worker_scaling_beats_single_worker_on_multicore():
    """ISSUE 5's acceptance line: the keyed-RNG sharded encode/decode must
    clear >=1.3x at 4 workers vs 1 on multi-core hosts (the tighter
    curated-baseline gate lives in the ``repro bench`` CI comparison).
    Wire bytes must match at any worker count everywhere."""
    result = bench_worker_scaling(reps=10)
    assert result["wire_bytes_match"], "worker count changed wire accounting"
    if not result["multi_core"]:
        pytest.skip(
            f"host has {result['cores']} core(s); {result['workers']}-worker "
            "fan-out would measure the scheduler, not the engine"
        )
    assert result["speedup"] > 1.3, result


def test_process_scaling_beats_single_process_on_multicore():
    """ISSUE 6's acceptance line: the process-backed transport's sharded
    encode + per-receiver decode over shared-memory rings must clear
    >=1.2x at 4 worker processes vs 1 on multi-core hosts (the curated
    1.5x baseline holds the same 1.2x floor in the ``repro bench`` CI
    comparison).  Wire bytes must match at any process count everywhere —
    that half of the contract costs nothing to check on any host."""
    result = bench_process_scaling(reps=8)
    assert result["wire_bytes_match"], "process count changed wire accounting"
    if not result["multi_core"]:
        pytest.skip(
            f"host has {result['cores']} core(s); {result['workers']}-process "
            "fan-out would measure the scheduler, not the engine"
        )
    assert result["speedup"] > 1.2, result


def test_quant_kernel_rewrites_hold_their_floors():
    """The PR-4 pack/unpack kernels vs the PR-3 formulations: the
    lookup-table decode must clear the >=1.5x acceptance line with margin
    (measured ~4x), the word-merge pack ~2x."""
    pack = bench_pack_kernel(reps=15)
    unpack = bench_unpack_kernel(reps=15)
    assert unpack["speedup"] > 1.5, unpack
    assert pack["speedup"] > 1.2, pack
