"""Paper Table 8: the training configuration catalog."""

from repro.harness import run_table8_configs, save_result


def test_table8_configs(benchmark):
    result = benchmark.pedantic(run_table8_configs, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    assert len(result.rows) == 4
    for row in result.rows:
        assert row[1] == 3  # 3 layers (paper)
        assert row[3] == "LayerNorm"
        assert row[4] == "Adam"
        assert row[5] == 0.01  # lr (paper)
        assert row[9] == 0.5  # lambda (paper Appendix B)
    # Yelp's dropout differs (0.1), everything else 0.5 — as in the paper.
    dropouts = {row[0]: row[6] for row in result.rows}
    assert dropouts["yelp"] == 0.1
    assert dropouts["reddit"] == 0.5
