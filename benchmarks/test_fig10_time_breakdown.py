"""Paper Fig. 10: per-epoch time breakdown — communication volume shrinks
drastically, quantization overhead stays a small fraction.

Accounting note (matches the paper's convention): AdaQP's "Comm" bucket is
the duration of the overlap stage, which *hides the central graph's
computation inside it*; on partitions with a large central share the bucket
is floored by that hidden compute.  The unambiguous reproduction targets
asserted here are therefore the wire volume reduction and the epoch-time
reduction.
"""

from repro.harness import run_fig10_time_breakdown, save_result


def test_fig10_time_breakdown(benchmark):
    result = benchmark.pedantic(run_fig10_time_breakdown, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    rows = {}
    for (dataset, setting, system, comm, comp, quant, wire_mb, train_s,
         assign_s) in result.rows:
        rows[(dataset, setting, system)] = {
            "comm": float(comm),
            "comp": float(comp),
            "quant": float(quant),
            "wire": float(wire_mb),
            "train": float(train_s),
            "assign": float(assign_s),
        }

    cases = sorted({k[:2] for k in rows})
    for case in cases:
        vanilla = rows[(*case, "vanilla")]
        adaqp = rows[(*case, "adaqp")]
        # Shape 1: the wire volume drops dramatically (paper: the comm-time
        # reduction is 78-81%, which in the bandwidth-dominated regime is
        # the byte reduction; require > 60%).
        assert adaqp["wire"] < 0.4 * vanilla["wire"], case
        # Shape 2: the epoch gets materially faster end to end.
        assert adaqp["train"] < 0.85 * vanilla["train"], case
        # Shape 3: quantization overhead is a small share of the AdaQP
        # epoch (paper: 5.5-13.9%; require < 25%).
        epoch = adaqp["comm"] + adaqp["comp"] + adaqp["quant"]
        assert adaqp["quant"] / epoch < 0.25, case
        # Shape 4: Vanilla has no quantization or assignment overhead.
        assert vanilla["quant"] == 0.0 and vanilla["assign"] == 0.0
        # Shape 5: assignment overhead is a small share of AdaQP wall-clock
        # (paper: ~5.4% on average; require < 15%).
        assert adaqp["assign"] < 0.15 * (adaqp["train"] + adaqp["assign"]), case
