"""Paper Table 1: communication dominates Vanilla epochs and grows with
the partition count."""

from repro.harness import run_table1_comm_overhead, save_result


def test_table1_comm_overhead(benchmark):
    result = benchmark.pedantic(run_table1_comm_overhead, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    shares = {}
    for dataset, setting, comm, rnr in result.rows:
        shares.setdefault(dataset, []).append(float(comm.rstrip("%")))

    # Shape 1: communication is a large share of every epoch (paper: 66-78%).
    all_shares = [s for v in shares.values() for s in v]
    assert sum(all_shares) / len(all_shares) > 50.0

    # Shape 2: more partitions -> larger communication share (paper's trend).
    for dataset, values in shares.items():
        assert values[1] > values[0], dataset
