"""Paper Fig. 3: hiding central-node computation saves 23-55% of per-device
model computation time.

The per-device shares are the analytic FLOP split; the same epoch now runs
on the split-phase executor, so the measured central share of the executed
pipeline is cross-checked against the modelled band on one record."""

from repro.harness import run_fig03_central_compute_share, save_result


def test_fig03_central_compute_share(benchmark):
    result = benchmark.pedantic(
        run_fig03_central_compute_share, rounds=1, iterations=1
    )
    save_result(result)
    print("\n" + result.render())

    reductions = result.series["reduction_pct"]
    assert len(reductions) == 8
    # Paper band: 23.20% - 55.44% reduction; allow a wider tolerance since
    # the partitioner differs, but the reduction must be material on every
    # device and far below 100% (marginal compute dominates).
    assert all(15.0 < r < 70.0 for r in reductions)

    # Measured cross-check: the executed central windows carry real work
    # and stay in the same qualitative band as the model (wall-clock
    # shares include gather overhead and BLAS non-linearity, so the band
    # is generous — the point is catching an empty or runaway stage).
    measured = result.notes["measured"]
    assert measured is not None
    assert 5.0 < 100.0 * measured["central_share"] < 95.0
    assert measured["hidden_byte_fraction"] == 1.0


def test_fig03_analytic_fallback_without_overlap():
    result = run_fig03_central_compute_share(overlap=False)
    assert result.notes["measured"] is None
    assert len(result.series["reduction_pct"]) == 8
