"""Paper Fig. 3: hiding central-node computation saves 23-55% of per-device
model computation time."""

from repro.harness import run_fig03_central_compute_share, save_result


def test_fig03_central_compute_share(benchmark):
    result = benchmark.pedantic(
        run_fig03_central_compute_share, rounds=1, iterations=1
    )
    save_result(result)
    print("\n" + result.render())

    reductions = result.series["reduction_pct"]
    assert len(reductions) == 8
    # Paper band: 23.20% - 55.44% reduction; allow a wider tolerance since
    # the partitioner differs, but the reduction must be material on every
    # device and far below 100% (marginal compute dominates).
    assert all(15.0 < r < 70.0 for r in reductions)
