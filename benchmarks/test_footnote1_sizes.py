"""Paper footnote 1: message volumes dwarf model gradients — the reason
AdaQP compresses messages, not gradients."""

from repro.harness import run_footnote1_sizes, save_result


def test_footnote1_sizes(benchmark):
    result = benchmark.pedantic(run_footnote1_sizes, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    # Paper: 0.55 MB gradients vs 1.17 GB features + 3.00 GB embeddings
    # (~7600x). At our reduced scale the ratio shrinks, but wire traffic
    # must still exceed gradient traffic by well over an order of magnitude.
    assert result.notes["wire_to_gradient_ratio"] > 20.0
