"""Paper Tables 5/9: end-to-end wall-clock time (AdaQP's includes its
measured bit-width assignment overhead)."""

from repro.harness import run_table5_wallclock, save_result


def test_table5_wallclock(benchmark):
    result = benchmark.pedantic(run_table5_wallclock, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    table = {}
    for dataset, setting, model, system, wallclock in result.rows:
        if wallclock == "†":
            continue
        table[(dataset, setting, model, system)] = float(wallclock.split()[0])

    cases = sorted({k[:3] for k in table})
    wins = sum(
        1 for case in cases if table[(*case, "adaqp")] < table[(*case, "vanilla")]
    )
    # Paper: AdaQP wins wall-clock in 14/16 settings despite the assignment
    # overhead; require a clear majority here.
    assert wins >= int(0.75 * len(cases)), f"AdaQP won only {wins}/{len(cases)}"
