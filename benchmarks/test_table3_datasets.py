"""Paper Table 3: the dataset catalog (synthetic stand-ins, see DESIGN.md)."""

from repro.harness import run_table3_datasets, save_result


def test_table3_datasets(benchmark):
    result = benchmark.pedantic(run_table3_datasets, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    rows = {row[0]: row for row in result.rows}
    assert set(rows) == {"Reddit", "Yelp", "ogbn-products", "AmazonProducts"}
    # Density ordering preserved from the paper: Reddit >> Amazon >
    # products > Yelp (average degree = 2E/N).
    density = {name: 2 * row[2] / row[1] for name, row in rows.items()}
    assert density["Reddit"] > density["AmazonProducts"]
    assert density["AmazonProducts"] > density["ogbn-products"]
    assert density["ogbn-products"] > density["Yelp"]
    # Task types.
    assert rows["Reddit"][5] == "single-label"
    assert rows["Yelp"][5] == "multi-label"
