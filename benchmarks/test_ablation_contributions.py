"""Ablation: how much of AdaQP's speedup comes from quantization vs from
central/marginal parallelization (DESIGN.md §3 ablation index)."""

from repro.harness import run_ablation_contributions, save_result


def test_ablation_contributions(benchmark):
    result = benchmark.pedantic(run_ablation_contributions, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    s = result.notes
    # Ordering: vanilla <= overlap-only < quantization-only <= full AdaQP.
    assert s["vanilla"] == 1.0
    assert s["vanilla-overlap"] >= 0.98  # overlap never hurts
    assert s["adaqp-no-overlap"] > 1.3  # quantization is the big lever
    assert s["adaqp"] >= s["adaqp-no-overlap"] * 0.98  # overlap adds on top
    assert s["adaqp"] > s["vanilla-overlap"]
    # In the communication-dominated regime, overlap alone is bounded by
    # the central-compute share, so it contributes far less than
    # quantization (the reason the paper needs both).
    assert (s["vanilla-overlap"] - 1.0) < 0.5 * (s["adaqp-no-overlap"] - 1.0)
