"""Paper Table 4: the headline comparison — accuracy and throughput of
AdaQP vs Vanilla, PipeGCN and SANCUS on every dataset and setting."""

import numpy as np

from repro.harness import run_table4_main, save_result


def test_table4_main_results(benchmark):
    result = benchmark.pedantic(run_table4_main, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    # Index rows: (dataset, setting, model, system) -> (acc, throughput).
    table = {}
    for dataset, setting, model, system, acc, thr in result.rows:
        if acc == "†":
            continue
        speed = float(thr.split()[0])
        table[(dataset, setting, model, system)] = (float(acc), speed)

    cases = sorted({k[:3] for k in table})
    speedups = []
    acc_deltas = []
    for case in cases:
        vanilla_acc, vanilla_thr = table[(*case, "vanilla")]
        adaqp_acc, adaqp_thr = table[(*case, "adaqp")]
        speedups.append(adaqp_thr / vanilla_thr)
        acc_deltas.append(adaqp_acc - vanilla_acc)

    # Shape 1: AdaQP consistently beats Vanilla's throughput, by a healthy
    # factor on average (paper: 2.19 - 3.01x).
    assert min(speedups) > 1.2
    assert float(np.mean(speedups)) > 1.7

    # Shape 2: accuracy stays within a tight band of Vanilla
    # (paper: -0.30% .. +0.19%; we allow 1% absolute on the tiny graphs).
    assert max(abs(d) for d in acc_deltas) < 1.0

    # Shape 3: SANCUS's sequential broadcasts lose to Vanilla's ring
    # all2all on throughput in most settings (paper Sec. 5.1).
    sancus_ratio = [
        table[(*case, "sancus")][1] / table[(*case, "vanilla")][1]
        for case in cases
        if (*case, "sancus") in table
    ]
    assert float(np.mean(sancus_ratio)) < 1.0
