"""Ablation: partition quality drives communication volume (paper Sec. 4.1
factor (i): 'graph topology and partition strategy')."""

from repro.harness import run_ablation_partition_method, save_result


def test_ablation_partition_method(benchmark):
    result = benchmark.pedantic(
        run_ablation_partition_method, rounds=1, iterations=1
    )
    save_result(result)
    print("\n" + result.render())

    cuts = result.notes["cut_by_method"]
    # The METIS stand-in must beat the naive partitioners on edge cut...
    assert cuts["metis"] < cuts["bfs"] <= cuts["random"]
    assert cuts["metis"] < cuts["spectral"]
    # ... and random partitioning produces the worst communication share.
    shares = {row[0]: float(row[4].rstrip("%")) for row in result.rows}
    assert shares["random"] > shares["metis"]
    # AdaQP accelerates training under every partitioner (robustness).
    speedups = {row[0]: float(row[5].rstrip("x")) for row in result.rows}
    assert all(s > 1.2 for s in speedups.values()), speedups
