"""Paper Table 6: adaptive bit-width assignment vs uniform random sampling."""

import numpy as np

from repro.harness import run_table6_uniform_vs_adaptive, save_result


def test_table6_uniform_vs_adaptive(benchmark):
    result = benchmark.pedantic(
        run_table6_uniform_vs_adaptive, rounds=1, iterations=1
    )
    save_result(result)
    print("\n" + result.render())

    acc = {}
    for setting, model, method, accuracy, _ in result.rows:
        acc[(setting, model, method)] = float(accuracy)

    cases = sorted({k[:2] for k in acc})
    assert len(cases) == 4  # 2 settings x 2 models
    deltas = [acc[(*c, "Adaptive")] - acc[(*c, "Uniform")] for c in cases]
    # Shape: adaptive matches or beats uniform on average (paper: adaptive
    # wins almost every cell, by up to ~0.3 points).
    assert float(np.mean(deltas)) > -0.1
    # Uniform never beats adaptive by a large margin anywhere.
    assert min(deltas) > -1.0
