"""Paper Fig. 2: per-device-pair transfer volumes are highly imbalanced."""

from repro.harness import run_fig02_pair_imbalance, save_result


def test_fig02_pair_imbalance(benchmark):
    result = benchmark.pedantic(run_fig02_pair_imbalance, rounds=1, iterations=1)
    save_result(result)
    print("\n" + result.render())

    sizes = [float(row[1]) for row in result.rows]
    assert len(sizes) == 12  # 4 partitions -> 12 directed pairs
    # Shape: significant imbalance across pairs (paper shows ~5-7x between
    # the heaviest and lightest AmazonProducts pairs).
    assert max(sizes) > 2.0 * min(sizes)
    assert result.notes["max_over_min"] > 2.0
