"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md
§3), persists the structured result under ``benchmarks/results/`` and
asserts the paper's qualitative *shape* (who wins, by roughly what factor).
Absolute numbers are expected to differ — the substrate is a simulated
cluster, not the authors' V100 testbed (see EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


@pytest.fixture(autouse=True)
def _print_rendered(capsys):
    """Let benchmarks print their rendered tables without -s clutter."""
    yield
