"""Ablation-harness machinery (fast paths; full runs live in benchmarks/)."""

import pytest

from repro.harness.ablations import (
    run_ablation_partition_method,
    run_footnote1_sizes,
)


@pytest.mark.slow
def test_footnote1_structure():
    result = run_footnote1_sizes()
    assert result.rows[-1][0] == "epoch totals"
    assert result.notes["wire_to_gradient_ratio"] > 1.0
    # Four device rows + the totals row for the 2M-2D setting.
    assert len(result.rows) == 5


@pytest.mark.slow
def test_partition_ablation_structure():
    result = run_ablation_partition_method(epochs=3)
    methods = [row[0] for row in result.rows]
    assert methods == ["metis", "spectral", "bfs", "random"]
    assert set(result.notes["cut_by_method"]) == set(methods)
