"""Experiment harness: workloads, result I/O and the cheap experiments.

The expensive experiments (Tables 4-7, Figs. 9-11) are exercised by the
benchmark suite; here we cover the harness machinery and the fast ones.
"""

import json

import numpy as np
import pytest

from repro.harness.experiments import (
    run_fig02_pair_imbalance,
    run_fig03_central_compute_share,
    run_table1_comm_overhead,
    run_table2_overlap_headroom,
    run_table3_datasets,
    run_table8_configs,
)
from repro.harness.results import ExperimentResult, results_dir, save_result
from repro.harness.workloads import WORKLOADS, prepared_case, standard_config


def test_workloads_cover_all_datasets():
    assert set(WORKLOADS) == {"reddit", "yelp", "ogbn-products", "amazonproducts"}
    for wl in WORKLOADS.values():
        assert len(wl.settings) == 2


def test_partition_settings_match_paper():
    assert WORKLOADS["reddit"].settings == ("2M-1D", "2M-2D")
    assert WORKLOADS["ogbn-products"].settings == ("2M-2D", "2M-4D")


def test_standard_config_dropout_per_dataset():
    assert standard_config("yelp", "gcn").dropout == 0.1
    assert standard_config("reddit", "sage").dropout == 0.5


def test_standard_config_overrides():
    cfg = standard_config("reddit", "gcn", epochs=3, lam=0.9)
    assert cfg.epochs == 3 and cfg.lam == 0.9


def test_prepared_case_cached_and_consistent():
    a = prepared_case("yelp", "2M-2D", 0)
    b = prepared_case("yelp", "2M-2D", 0)
    assert a[0] is b[0]  # lru_cache returns identical objects
    ds, book, topo = a
    assert topo.num_devices == book.num_parts == 4


def test_result_render_and_save(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    result = ExperimentResult(
        experiment_id="test_exp",
        title="T",
        headers=["a", "b"],
        rows=[[1, np.float64(2.5)]],
        notes={"k": np.int64(3)},
    )
    path = save_result(result)
    data = json.loads(path.read_text())
    assert data["rows"] == [[1, 2.5]]
    assert data["notes"]["k"] == 3
    assert (tmp_path / "test_exp.txt").exists()
    assert results_dir() == tmp_path


def test_table3_catalog():
    result = run_table3_datasets()
    assert len(result.rows) == 4
    assert result.headers[0] == "Dataset"


def test_table8_configs():
    result = run_table8_configs()
    assert len(result.rows) == 4
    assert all(row[4] == "Adam" for row in result.rows)


@pytest.mark.slow
def test_table1_shape():
    result = run_table1_comm_overhead(epochs=2)
    assert len(result.rows) == 8  # 4 datasets x 2 settings
    # Communication share grows with the partition count for every dataset.
    by_dataset = {}
    for name, setting, comm, _ in result.rows:
        by_dataset.setdefault(name, []).append(float(comm.rstrip("%")))
    for name, values in by_dataset.items():
        assert values[1] > values[0], name


@pytest.mark.slow
def test_fig02_imbalance():
    result = run_fig02_pair_imbalance()
    assert len(result.rows) == 12  # 4 devices -> 12 directed pairs
    assert result.notes["max_over_min"] > 1.5  # clear imbalance


@pytest.mark.slow
def test_table2_comm_exceeds_central_comp():
    result = run_table2_overlap_headroom()
    assert result.notes["comm_exceeds_comp_on_all_devices"]


@pytest.mark.slow
def test_fig03_reduction_in_paper_band():
    result = run_fig03_central_compute_share()
    reductions = result.series["reduction_pct"]
    assert all(15.0 < r < 70.0 for r in reductions)  # paper: 23.2-55.4%
