"""Graph convolutions: gradients including the halo path."""

import numpy as np
import pytest

from repro.gnn.coefficients import build_aggregation
from repro.gnn.conv import GCNConv, SAGEConv
from repro.gnn.model import DistGNN, GNNLayer
from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook, build_local_partitions
from repro.nn.gradcheck import numerical_gradient, relative_error

RNG = np.random.default_rng(0)


def _two_part_case(kind):
    gen = np.random.default_rng(1)
    n = 20
    src = gen.integers(0, n, 60)
    dst = gen.integers(0, n, 60)
    graph = Graph.from_edges(src, dst, n)
    book = PartitionBook(
        part_of=(np.arange(n) % 2).astype(np.int32), num_parts=2
    )
    parts = build_local_partitions(graph, book)
    deg = graph.degrees.astype(np.float64)
    agg = build_aggregation(parts[0], deg, kind if kind != "sage" else "sage")
    return parts[0], agg


@pytest.mark.parametrize("kind,cls", [("gcn", GCNConv), ("sage", SAGEConv)])
def test_conv_forward_shape(kind, cls):
    part, agg = _two_part_case(kind)
    conv = cls(6, 4, agg, np.random.default_rng(0))
    x_own = RNG.normal(size=(part.n_owned, 6)).astype(np.float32)
    x_halo = RNG.normal(size=(part.n_halo, 6)).astype(np.float32)
    out = conv.forward(x_own, x_halo)
    assert out.shape == (part.n_owned, 4)


@pytest.mark.parametrize("kind,cls", [("gcn", GCNConv), ("sage", SAGEConv)])
def test_conv_gradcheck_own_input(kind, cls):
    part, agg = _two_part_case(kind)
    conv = cls(3, 2, agg, np.random.default_rng(0))
    x_own0 = RNG.normal(size=(part.n_owned, 3))
    x_halo = RNG.normal(size=(part.n_halo, 3))
    d_out = RNG.normal(size=(part.n_owned, 2))

    def f(x):
        return float((conv.forward(x, x_halo) * d_out).sum())

    num = numerical_gradient(f, x_own0)
    conv.forward(x_own0, x_halo)
    d_own, _ = conv.backward(d_out)
    assert relative_error(num, d_own) < 1e-4


@pytest.mark.parametrize("kind,cls", [("gcn", GCNConv), ("sage", SAGEConv)])
def test_conv_gradcheck_halo_input(kind, cls):
    """The halo gradient is exactly what AdaQP sends backward — check it."""
    part, agg = _two_part_case(kind)
    conv = cls(3, 2, agg, np.random.default_rng(0))
    x_own = RNG.normal(size=(part.n_owned, 3))
    x_halo0 = RNG.normal(size=(part.n_halo, 3))
    d_out = RNG.normal(size=(part.n_owned, 2))

    def f(xh):
        return float((conv.forward(x_own, xh) * d_out).sum())

    num = numerical_gradient(f, x_halo0)
    conv.forward(x_own, x_halo0)
    _, d_halo = conv.backward(d_out)
    assert d_halo.shape == x_halo0.shape
    assert relative_error(num, d_halo) < 1e-4


def test_conv_backward_before_forward():
    part, agg = _two_part_case("gcn")
    conv = GCNConv(3, 2, agg, np.random.default_rng(0))
    with pytest.raises(RuntimeError):
        conv.backward(np.zeros((part.n_owned, 2), dtype=np.float32))


def test_sage_root_path_separate_from_neighbors():
    """With a zero halo + zero neighbors, SAGE reduces to the root Linear."""
    part, agg = _two_part_case("sage")
    conv = SAGEConv(3, 2, agg, np.random.default_rng(0))
    x_own = RNG.normal(size=(part.n_owned, 3)).astype(np.float32)
    zeros_own = np.zeros_like(x_own)
    x_halo = np.zeros((part.n_halo, 3), dtype=np.float32)
    out_zero_neigh = conv.forward(x_own, x_halo) - conv.forward(zeros_own, x_halo)
    # Root contribution is linear in x_own with both terms sharing x_own;
    # simply check the conv output changes when only x_own changes.
    assert np.abs(out_zero_neigh).sum() > 0


def test_gnn_layer_output_flag():
    part, agg = _two_part_case("gcn")
    pool = np.random.default_rng(0)
    hidden = GNNLayer(
        "gcn", 4, 4, agg, pool, dropout=0.0, is_output=False,
        dropout_rng=np.random.default_rng(1),
    )
    output = GNNLayer(
        "gcn", 4, 4, agg, pool, dropout=0.0, is_output=True,
        dropout_rng=np.random.default_rng(1),
    )
    assert hasattr(hidden, "norm") and not hasattr(output, "norm")


def test_gnn_layer_gradcheck_through_post_processing():
    part, agg = _two_part_case("gcn")
    layer = GNNLayer(
        "gcn", 3, 3, agg, np.random.default_rng(0), dropout=0.0, is_output=False,
        dropout_rng=np.random.default_rng(1),
    )
    layer.train()
    x_own0 = RNG.normal(size=(part.n_owned, 3))
    x_halo = RNG.normal(size=(part.n_halo, 3))
    d_out = RNG.normal(size=(part.n_owned, 3))

    def f(x):
        return float((layer.forward(x, x_halo) * d_out).sum())

    num = numerical_gradient(f, x_own0)
    layer.forward(x_own0, x_halo)
    d_own, _ = layer.backward(d_out)
    assert relative_error(num, d_own) < 5e-4


def test_distgnn_construction_and_dims():
    part, agg = _two_part_case("gcn")
    model = DistGNN(
        "gcn", [8, 16, 4], agg, dropout=0.5,
        weight_rng=np.random.default_rng(0),
        dropout_rng=np.random.default_rng(1),
    )
    assert model.num_layers == 2
    assert model.layer_dims(0) == (8, 16)
    assert model.layer_dims(1) == (16, 4)
    assert model.layers[-1].is_output


def test_distgnn_validation():
    part, agg = _two_part_case("gcn")
    with pytest.raises(ValueError):
        DistGNN(
            "gcn", [8], agg, dropout=0.0,
            weight_rng=np.random.default_rng(0),
            dropout_rng=np.random.default_rng(0),
        )
    with pytest.raises(ValueError):
        DistGNN(
            "gat", [8, 4], agg, dropout=0.0,
            weight_rng=np.random.default_rng(0),
            dropout_rng=np.random.default_rng(0),
        )
