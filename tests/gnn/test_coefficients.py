"""Aggregation coefficients: GCN/SAGE formulas and α² column sums."""

import numpy as np
import pytest

from repro.gnn.coefficients import build_aggregation
from repro.graph.graph import Graph
from repro.graph.partition.book import PartitionBook, build_local_partitions


def _path_setup():
    src = np.array([0, 1, 2, 3])
    dst = np.array([1, 2, 3, 4])
    graph = Graph.from_edges(src, dst, 5)
    book = PartitionBook(part_of=np.array([0, 0, 0, 1, 1]), num_parts=2)
    parts = build_local_partitions(graph, book)
    return graph, parts


def test_gcn_coefficients_manual():
    graph, parts = _path_setup()
    deg = graph.degrees.astype(np.float64)
    agg = build_aggregation(parts[0], deg, "gcn")
    dense = agg.matrix.toarray()
    # Partition 0 owns {0,1,2}; halo {3}. d_hat = deg + 1 = [2,3,3,3,2].
    # Row for node 0: self 1/2, neighbor 1: 1/sqrt(2*3).
    assert abs(dense[0, 0] - 0.5) < 1e-6
    assert abs(dense[0, 1] - 1 / np.sqrt(6)) < 1e-6
    # Node 2's remote neighbor 3 in halo column 3 (= n_owned + 0).
    assert abs(dense[2, 3] - 1 / np.sqrt(9)) < 1e-6


def test_gcn_matches_full_normalized_adjacency(tiny_dataset, tiny_parts):
    """Local weighted blocks replicate rows of the global Â = D̂^{-1/2}(A+I)D̂^{-1/2}."""
    graph = tiny_dataset.graph
    deg = graph.degrees.astype(np.float64)
    adj = graph.to_scipy()
    d_hat = deg + 1.0
    inv = 1.0 / np.sqrt(d_hat)
    import scipy.sparse as sp

    a_hat = sp.diags(inv) @ (adj + sp.identity(graph.num_nodes)) @ sp.diags(inv)
    a_hat = a_hat.tocsr()

    part = tiny_parts[1]
    agg = build_aggregation(part, deg, "gcn")
    col_ids = np.concatenate([part.owned_global, part.halo_global])
    # Compare 10 random rows.
    rng = np.random.default_rng(0)
    for li in rng.choice(part.n_owned, 10, replace=False):
        gid = part.owned_global[li]
        local_row = np.zeros(graph.num_nodes)
        dense_row = agg.matrix[li].toarray().ravel()
        local_row[col_ids] = dense_row
        global_row = a_hat[gid].toarray().ravel()
        assert np.allclose(local_row, global_row, atol=1e-6)


def test_sage_rows_sum_to_one(tiny_dataset, tiny_parts):
    """Mean aggregation over the *global* neighborhood: each row's local
    coefficients sum to 1 (all 1-hop neighbors appear locally or as halo)."""
    deg = tiny_dataset.graph.degrees.astype(np.float64)
    part = tiny_parts[0]
    agg = build_aggregation(part, deg, "sage")
    sums = np.asarray(agg.matrix.sum(axis=1)).ravel()
    nonzero_deg = deg[part.owned_global] > 0
    assert np.allclose(sums[nonzero_deg], 1.0, atol=1e-5)


def test_sum_kind_binary(tiny_parts, tiny_dataset):
    deg = tiny_dataset.graph.degrees.astype(np.float64)
    agg = build_aggregation(tiny_parts[0], deg, "sum")
    assert set(np.unique(agg.matrix.data)) == {1.0}


def test_halo_alpha_sq_matches_direct(tiny_dataset, tiny_parts):
    deg = tiny_dataset.graph.degrees.astype(np.float64)
    part = tiny_parts[2]
    agg = build_aggregation(part, deg, "gcn")
    squared = agg.matrix.copy()
    squared.data = squared.data**2
    direct = np.asarray(squared.sum(axis=0)).ravel()[part.n_owned :]
    assert np.allclose(agg.halo_alpha_sq, direct)
    assert agg.halo_alpha_sq.shape == (part.n_halo,)
    assert (agg.halo_alpha_sq > 0).all()  # every halo column is referenced


def test_nnz_for_rows(tiny_dataset, tiny_parts):
    deg = tiny_dataset.graph.degrees.astype(np.float64)
    part = tiny_parts[0]
    agg = build_aggregation(part, deg, "gcn")
    full = agg.nnz_for_rows(np.ones(part.n_owned, dtype=bool))
    none = agg.nnz_for_rows(np.zeros(part.n_owned, dtype=bool))
    central = agg.nnz_for_rows(part.central_mask)
    assert full == agg.nnz and none == 0
    assert 0 < central < full


def test_invalid_kind_rejected(tiny_dataset, tiny_parts):
    deg = tiny_dataset.graph.degrees.astype(np.float64)
    with pytest.raises(ValueError):
        build_aggregation(tiny_parts[0], deg, "max")


def test_aggregate_shape_checks(tiny_dataset, tiny_parts):
    deg = tiny_dataset.graph.degrees.astype(np.float64)
    agg = build_aggregation(tiny_parts[0], deg, "gcn")
    with pytest.raises(ValueError):
        agg.aggregate(np.zeros((3, 4), dtype=np.float32))
    with pytest.raises(ValueError):
        agg.aggregate_transpose(np.zeros((agg.n_owned + 1, 4), dtype=np.float32))
