"""Sequential broadcast timing and gradient allreduce."""

import numpy as np
import pytest

from repro.comm.allreduce import allreduce_mean, allreduce_sum, ring_allreduce_time
from repro.comm.broadcast import sequential_broadcast_time
from repro.comm.costmodel import LinkCostModel
from repro.comm.topology import ClusterTopology


@pytest.fixture(scope="module")
def cost():
    return LinkCostModel.for_topology(ClusterTopology(1, 3))


def test_broadcast_time_manual(cost):
    per_source = np.array([100.0, 0.0, 200.0])
    total = sequential_broadcast_time(per_source, cost)
    expected = (
        cost.time(0, 1, 100) + cost.time(0, 2, 100)
        + cost.time(2, 0, 200) + cost.time(2, 1, 200)
    )
    assert abs(total - expected) < 1e-15


def test_broadcast_skip_mask(cost):
    per_source = np.array([100.0, 100.0, 100.0])
    full = sequential_broadcast_time(per_source, cost)
    skipped = sequential_broadcast_time(
        per_source, cost, skipped=np.array([True, False, True])
    )
    assert skipped < full
    only_1 = cost.time(1, 0, 100) + cost.time(1, 2, 100)
    assert abs(skipped - only_1) < 1e-15


def test_broadcast_slower_than_ring(cost):
    """The paper's claim: sequential broadcast loses to ring all2all."""
    from repro.comm.ring import ring_all2all_time

    nbytes = 10**6
    bm = np.full((3, 3), nbytes, dtype=float)
    np.fill_diagonal(bm, 0)
    ring_total, _ = ring_all2all_time(bm, cost)
    bcast_total = sequential_broadcast_time(np.full(3, nbytes), cost)
    assert bcast_total > 2.5 * ring_total


def test_broadcast_shape_check(cost):
    with pytest.raises(ValueError):
        sequential_broadcast_time(np.zeros(2), cost)


def test_allreduce_sum_exact():
    vecs = [np.array([1.0, 2.0], dtype=np.float32), np.array([3.0, 4.0], dtype=np.float32)]
    assert np.array_equal(allreduce_sum(vecs), np.array([4.0, 6.0], dtype=np.float32))


def test_allreduce_mean_exact():
    vecs = [np.array([2.0], dtype=np.float32), np.array([4.0], dtype=np.float32)]
    assert np.array_equal(allreduce_mean(vecs), np.array([3.0], dtype=np.float32))


def test_allreduce_deterministic_order():
    rng = np.random.default_rng(0)
    vecs = [rng.normal(size=1000).astype(np.float32) for _ in range(8)]
    assert np.array_equal(allreduce_sum(vecs), allreduce_sum(list(vecs)))


def test_allreduce_validation():
    with pytest.raises(ValueError):
        allreduce_sum([])
    with pytest.raises(ValueError):
        allreduce_sum([np.zeros(2), np.zeros(3)])


def test_ring_allreduce_time_scaling(cost):
    t1 = ring_allreduce_time(10**6, cost)
    t2 = ring_allreduce_time(2 * 10**6, cost)
    assert t2 > t1
    assert ring_allreduce_time(0, cost) == 0.0
    single = LinkCostModel.for_topology(ClusterTopology(1, 1))
    assert ring_allreduce_time(10**6, single) == 0.0
