"""Ring all2all schedule: coverage, permutation structure, timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.costmodel import LinkCostModel
from repro.comm.ring import ring_all2all_time, ring_rounds
from repro.comm.topology import ClusterTopology


def test_rounds_structure_small():
    assert ring_rounds(3) == [[(0, 1), (1, 2), (2, 0)], [(0, 2), (1, 0), (2, 1)]]


def test_single_device_no_rounds():
    assert ring_rounds(1) == []


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_property_rounds_cover_all_pairs_once(n):
    rounds = ring_rounds(n)
    assert len(rounds) == n - 1
    seen = set()
    for rnd in rounds:
        senders = [s for s, _ in rnd]
        receivers = [d for _, d in rnd]
        # Each device sends once and receives once per round.
        assert sorted(senders) == list(range(n))
        assert sorted(receivers) == list(range(n))
        for pair in rnd:
            assert pair[0] != pair[1]
            assert pair not in seen
            seen.add(pair)
    assert len(seen) == n * (n - 1)


def test_all2all_time_is_sum_of_round_maxima():
    topo = ClusterTopology(1, 3)
    cost = LinkCostModel.for_topology(topo)
    bytes_matrix = np.array(
        [[0, 100, 200], [300, 0, 400], [500, 600, 0]], dtype=float
    )
    total, per_round = ring_all2all_time(bytes_matrix, cost)
    rounds = ring_rounds(3)
    for time, rnd in zip(per_round, rounds):
        expected = max(cost.time(s, d, bytes_matrix[s, d]) for s, d in rnd)
        assert abs(time - expected) < 1e-15
    assert abs(total - sum(per_round)) < 1e-15


def test_straggler_dominates_round():
    topo = ClusterTopology(1, 4)
    cost = LinkCostModel.for_topology(topo)
    bm = np.zeros((4, 4))
    bm[0, 1] = 10**7  # one huge pair in round 1
    total, per_round = ring_all2all_time(bm, cost)
    assert per_round[0] == cost.time(0, 1, 10**7)
    assert per_round[1] == 0.0 and per_round[2] == 0.0


def test_zero_matrix_is_free():
    topo = ClusterTopology(2, 2)
    cost = LinkCostModel.for_topology(topo)
    total, per_round = ring_all2all_time(np.zeros((4, 4)), cost)
    assert total == 0.0


def test_shape_mismatch_rejected():
    topo = ClusterTopology(2, 1)
    cost = LinkCostModel.for_topology(topo)
    with pytest.raises(ValueError):
        ring_all2all_time(np.zeros((3, 3)), cost)


def test_invalid_device_count():
    with pytest.raises(ValueError):
        ring_rounds(0)
