"""Batched transport posting: semantics identical to repeated post()."""

import numpy as np
import pytest

from repro.comm.transport import SyncTransport as Transport


def test_post_batch_matches_sequential_posts():
    t1, t2 = Transport(4), Transport(4)
    posts = [(1, "a", 10), (2, "b", 20), (3, "c", 0)]
    for dst, payload, nb in posts:
        t1.post(0, dst, "tag", payload, nb)
    t2.post_batch(0, "tag", posts)
    assert np.array_equal(t1.bytes_matrix("tag"), t2.bytes_matrix("tag"))
    for dst in (1, 2, 3):
        assert t1.collect(dst, "tag") == t2.collect(dst, "tag")


def test_post_batch_empty_is_noop():
    t = Transport(2)
    t.post_batch(0, "tag", [])
    assert t.total_bytes() == 0
    assert t.pending_tags() == []


def test_post_batch_accumulates_bytes_per_pair():
    t = Transport(3)
    t.post_batch(0, "x", [(1, None, 5), (2, None, 7)])
    t.post_batch(1, "x", [(0, None, 11)])
    m = t.bytes_matrix("x")
    assert m[0, 1] == 5 and m[0, 2] == 7 and m[1, 0] == 11
    assert t.total_bytes() == 23


def test_post_batch_rejects_self_message():
    t = Transport(2)
    with pytest.raises(ValueError, match="themselves"):
        t.post_batch(0, "tag", [(0, None, 1)])


def test_post_batch_rejects_out_of_range_destination():
    t = Transport(2)
    with pytest.raises(ValueError, match="out of range"):
        t.post_batch(0, "tag", [(5, None, 1)])


def test_post_batch_rejects_negative_bytes():
    t = Transport(2)
    with pytest.raises(ValueError, match="non-negative"):
        t.post_batch(0, "tag", [(1, None, -1)])


def test_post_batch_rejects_duplicate_pair():
    t = Transport(3)
    t.post(0, 1, "tag", None, 1)
    with pytest.raises(RuntimeError, match="duplicate"):
        t.post_batch(0, "tag", [(2, None, 1), (1, None, 1)])
