"""Link cost model: tiers, timing, calibration fit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.costmodel import LinkCostModel, fit_linear_cost
from repro.comm.topology import ClusterTopology


@pytest.fixture(scope="module")
def model():
    return LinkCostModel.for_topology(ClusterTopology(2, 2))


def test_intra_faster_than_inter(model):
    nbytes = 1_000_000
    intra = model.time(0, 1, nbytes)
    inter = model.time(0, 2, nbytes)
    assert intra < inter


def test_diagonal_free(model):
    assert model.time(1, 1, 10**9) == 0.0


def test_zero_bytes_free(model):
    assert model.time(0, 1, 0) == 0.0
    assert model.time(0, 1, -5) == 0.0


def test_affine_in_bytes(model):
    t1 = model.time(0, 2, 1000)
    t2 = model.time(0, 2, 2000)
    theta, gamma = model.pair_parameters(0, 2)
    assert abs((t2 - t1) - theta * 1000) < 1e-12
    assert abs(t1 - (theta * 1000 + gamma)) < 1e-12


def test_tier_structure(model):
    n = 4
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            same = (s < 2) == (d < 2)
            theta, gamma = model.pair_parameters(s, d)
            if same:
                assert theta == model.theta[0, 1]
            else:
                assert theta == model.theta[0, 2]


def test_shape_validation():
    topo = ClusterTopology(1, 2)
    with pytest.raises(ValueError):
        LinkCostModel(topology=topo, theta=np.zeros((3, 3)), gamma=np.zeros((2, 2)))
    with pytest.raises(ValueError):
        LinkCostModel(topology=topo, theta=-np.ones((2, 2)), gamma=np.zeros((2, 2)))


def test_fit_recovers_parameters():
    theta_true, gamma_true = 2e-9, 5e-5
    nbytes = np.linspace(1e3, 1e7, 20)
    seconds = theta_true * nbytes + gamma_true
    theta, gamma = fit_linear_cost(nbytes, seconds)
    assert abs(theta - theta_true) / theta_true < 1e-6
    assert abs(gamma - gamma_true) / gamma_true < 1e-3


def test_fit_noisy_probes():
    rng = np.random.default_rng(0)
    nbytes = rng.uniform(1e4, 1e7, 50)
    seconds = 3e-9 * nbytes + 1e-4 + rng.normal(0, 1e-6, 50)
    theta, gamma = fit_linear_cost(nbytes, seconds)
    assert abs(theta - 3e-9) / 3e-9 < 0.05


def test_fit_requires_two_probes():
    with pytest.raises(ValueError):
        fit_linear_cost(np.array([1.0]), np.array([1.0]))


@given(
    st.floats(min_value=1e-10, max_value=1e-6),
    st.floats(min_value=0, max_value=1e-2),
)
@settings(max_examples=40, deadline=None)
def test_property_fit_exact_lines(theta_true, gamma_true):
    nbytes = np.array([1e3, 1e5, 1e6, 1e7])
    seconds = theta_true * nbytes + gamma_true
    theta, gamma = fit_linear_cost(nbytes, seconds)
    assert abs(theta - theta_true) <= 1e-6 * theta_true + 1e-18
    assert abs(gamma - gamma_true) <= 1e-3 * max(gamma_true, 1e-12) + 1e-9
