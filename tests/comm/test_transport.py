"""In-memory transport: routing and byte accounting."""

import numpy as np
import pytest

from repro.comm.transport import SyncTransport as Transport


def test_post_and_collect():
    t = Transport(3)
    t.post(0, 2, "fwd/L0", "payload-a", 100)
    t.post(1, 2, "fwd/L0", "payload-b", 50)
    got = t.collect(2, "fwd/L0")
    assert got == {0: "payload-a", 1: "payload-b"}
    # Mailbox drained.
    assert t.collect(2, "fwd/L0") == {}


def test_tags_namespace_exchanges():
    t = Transport(2)
    t.post(0, 1, "fwd/L0", "a", 10)
    t.post(0, 1, "bwd/L0", "b", 20)
    assert t.collect(1, "fwd/L0") == {0: "a"}
    assert t.collect(1, "bwd/L0") == {0: "b"}


def test_duplicate_post_rejected():
    t = Transport(2)
    t.post(0, 1, "x", "a", 1)
    with pytest.raises(RuntimeError, match="duplicate"):
        t.post(0, 1, "x", "b", 1)


def test_self_message_rejected():
    t = Transport(2)
    with pytest.raises(ValueError, match="themselves"):
        t.post(1, 1, "x", "a", 1)


def test_device_range_checked():
    t = Transport(2)
    with pytest.raises(ValueError, match="out of range"):
        t.post(0, 5, "x", "a", 1)
    with pytest.raises(ValueError):
        t.collect(9, "x")


def test_negative_bytes_rejected():
    t = Transport(2)
    with pytest.raises(ValueError):
        t.post(0, 1, "x", "a", -1)


def test_bytes_matrix_accumulates():
    t = Transport(3)
    t.post(0, 1, "x", "a", 100)
    got = t.collect(1, "x")
    t.post(0, 1, "x", "b", 50)
    t.collect(1, "x")
    m = t.bytes_matrix("x")
    assert m[0, 1] == 150
    assert m.sum() == 150
    assert t.bytes_matrix("unknown").sum() == 0


def test_total_bytes():
    t = Transport(2)
    t.post(0, 1, "a", None, 10)
    t.post(1, 0, "b", None, 5)
    t.collect(1, "a")
    t.collect(0, "b")
    assert t.total_bytes() == 15


def test_reset_accounting_requires_drained():
    t = Transport(2)
    t.post(0, 1, "x", "a", 10)
    with pytest.raises(RuntimeError, match="undelivered"):
        t.reset_accounting()
    t.collect(1, "x")
    t.reset_accounting()
    assert t.total_bytes() == 0


def test_pending_tags():
    t = Transport(2)
    assert t.pending_tags() == []
    t.post(0, 1, "z", "a", 1)
    assert t.pending_tags() == ["z"]
    t.collect(1, "z")
    assert t.pending_tags() == []


def test_invalid_device_count():
    with pytest.raises(ValueError):
        Transport(0)


# ---------------------------------------------------------------------------
# Progress model (the split-phase pipeline's interleave record)
# ---------------------------------------------------------------------------
def test_pending_bytes_track_posts_and_drains():
    t = Transport(3)
    assert t.pending_bytes("s") == 0
    t.post(0, 1, "s", "a", 10)
    t.post_batch(2, "s", [(0, "b", 5), (1, "c", 7)])
    assert t.pending_bytes("s") == 22
    t.collect(1, "s")  # drains 0->1 and 2->1
    assert t.pending_bytes("s") == 5
    t.collect(0, "s")
    assert t.pending_bytes("s") == 0


def test_note_overlap_marks_in_flight_bytes():
    t = Transport(2)
    t.post(0, 1, "s", "a", 10)
    assert t.overlapped_bytes("s") == 0
    assert t.note_overlap("s") == 10
    assert t.overlapped_bytes("s") == 10
    t.collect(1, "s")
    # A window opened after the drain hides nothing.
    assert t.note_overlap("s") == 0
    assert t.overlapped_bytes("s") == 10


def test_note_overlap_accumulates_across_steps():
    t = Transport(2)
    for _ in range(2):
        t.post(0, 1, "s", "a", 4)
        t.note_overlap("s")
        t.collect(1, "s")
    assert t.overlapped_bytes("s") == 8


def test_reset_accounting_clears_progress_model():
    t = Transport(2)
    t.post(0, 1, "s", "a", 10)
    t.note_overlap("s")
    t.collect(1, "s")
    t.reset_accounting()
    assert t.pending_bytes("s") == 0
    assert t.overlapped_bytes("s") == 0
