"""Fault injection (ISSUE 9): spec grammar, wire-path hooks, recovery.

The contract under test is ROADMAP item 4's strong form: every injected
fault either recovers to the **bitwise-identical** training result
(keyed-replay regeneration, pool respawn, slab repair) or fails fast with
a typed :class:`TransportError` — no hangs, no silent corruption.

Layout: unit tests for the grammar and each transport-level injection
point first, then the training-level recovery matrix (one test per fault
kind, each comparing a faulted run against its clean twin), then the
teardown-under-failure pins.
"""

import os
import signal
import time
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.comm.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.comm.process import ProcessTransport, _attach_segment
from repro.comm.transport import (
    SyncTransport,
    TransportError,
    WorkerTransport,
)
from repro.core.config import RunConfig
from repro.core.trainer import train


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
def test_fault_spec_parse_full_grammar():
    spec = FaultSpec.parse("drop:fwd/L1@2:src=0,dst=1")
    assert spec == FaultSpec("drop", tag="fwd/L1", epoch=2, src=0, dst=1)
    assert FaultSpec.parse("duplicate:bwd/L0") == FaultSpec(
        "duplicate", tag="bwd/L0"
    )
    assert FaultSpec.parse("stall:fwd/L0@1:delay=0.25") == FaultSpec(
        "stall", tag="fwd/L0", epoch=1, delay_s=0.25
    )
    assert FaultSpec.parse("kill_worker") == FaultSpec("kill_worker")
    assert FaultSpec.parse("poison:fwd/L0:count=3").count == 3
    # The tag wildcard is the default, spelled "*" explicitly too.
    assert FaultSpec.parse("error:*@4").tag == "*"


def test_fault_spec_parse_errors():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec.parse("meteor:fwd/L0")
    with pytest.raises(ValueError, match="unknown fault option"):
        FaultSpec.parse("drop:fwd/L0:sev=9")
    with pytest.raises(ValueError, match="bad fault option"):
        FaultSpec.parse("drop:fwd/L0:src=0:oops")
    with pytest.raises(ValueError, match="count must be >= 1"):
        FaultSpec(kind="drop", count=0)
    with pytest.raises(ValueError, match="empty fault spec"):
        FaultSpec.parse("  ")
    assert set(FAULT_KINDS) == {
        "drop", "duplicate", "stall", "error", "kill_worker", "poison",
    }


def test_fault_plan_take_is_epoch_scoped_and_counted():
    plan = FaultPlan.parse(["drop:fwd/L1@2:count=2", "stall:*"])
    # Wrong epoch: nothing fires.
    plan.set_epoch(0)
    assert plan.take("drop", "fwd/L1") is None
    # Right epoch: fires exactly count times, and the log records it.
    plan.set_epoch(2)
    assert plan.take("drop", "fwd/L1", 0, 1) is not None
    assert plan.take("drop", "fwd/L1") is not None
    assert plan.take("drop", "fwd/L1") is None
    assert plan.log == [(2, "drop", "fwd/L1", 0, 1), (2, "drop", "fwd/L1", None, None)]
    # The wildcard stall matches any tag in any epoch, once.
    assert plan.on_job("bwd/L9") is not None
    assert plan.on_job("bwd/L9") is None
    assert plan.armed() == []


# ----------------------------------------------------------------------
# Transport-level injection points
# ----------------------------------------------------------------------
def test_drop_accounts_bytes_but_never_delivers():
    t = SyncTransport(2)
    t.fault_plan = FaultPlan.parse(["drop:s:src=0,dst=1"])
    t.post(0, 1, "s", "lost", 100)
    t.post(1, 0, "s", "kept", 100)
    # The envelope *left* the sender: wire accounting is identical to a
    # clean run (what keeps faulted runs byte-comparable) ...
    np.testing.assert_array_equal(
        t.bytes_matrix("s"), np.array([[0, 100], [100, 0]])
    )
    # ... but the payload never landed.
    assert t.collect(1, "s") == {}
    assert t.collect(0, "s") == {1: "kept"}
    assert t.fault_stats["dropped"] == 1


def test_duplicate_is_rejected_by_mailbox_idempotency():
    t = SyncTransport(2)
    t.fault_plan = FaultPlan.parse(["duplicate:s"])
    t.post(0, 1, "s", "once", 10)
    assert t.collect(1, "s") == {0: "once"}  # delivered exactly once
    assert t.fault_stats["duplicates_rejected"] == 1


def test_sync_error_fault_raises_typed():
    t = SyncTransport(2)
    t.fault_plan = FaultPlan.parse(["error:s"])
    with pytest.raises(RuntimeError, match="injected transport job fault"):
        t.defer("s", lambda: None)
    # Disarmed after one shot: the next job runs clean.
    ran = []
    t.defer("s", lambda: ran.append(True))
    assert ran == [True]


def test_worker_stall_blows_completion_deadline():
    t = WorkerTransport(2, workers=1)
    t.timeout_s = 0.2
    t.fault_plan = FaultPlan.parse(["stall:s:delay=30"])
    try:
        t.defer("s", lambda: None)
        with pytest.raises(TransportError, match=r"tag 's' missed its 0.2s"):
            t.complete("s")
    finally:
        t.close()


def test_worker_complete_timeout_names_tag_and_outstanding():
    """Satellite (a): the deadline error is actionable — it names the tag
    and how many jobs were still outstanding."""
    t = WorkerTransport(2, workers=1)
    t.timeout_s = 0.1
    try:
        t.defer("fwd/L1", lambda: time.sleep(5))
        t.defer("fwd/L1", lambda: None)
        with pytest.raises(TransportError) as err:
            t.complete("fwd/L1")
        msg = str(err.value)
        assert "fwd/L1" in msg and "outstanding" in msg
    finally:
        t.close()


def test_worker_no_timeout_waits_for_slow_jobs():
    t = WorkerTransport(2, workers=1)  # timeout_s defaults to None
    try:
        done = []
        t.defer("s", lambda: (time.sleep(0.3), done.append(True)))
        t.complete("s")
        assert done == [True]
    finally:
        t.close()


# ----------------------------------------------------------------------
# ProcessTransport: kills, respawns, exit audit, teardown under failure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _FillJob:
    segment: str
    offset: int
    count: int
    value: int

    def run(self, segments, cache):
        seg = _attach_segment(segments, self.segment)
        buf = np.frombuffer(seg.buf, dtype=np.uint8)
        buf[self.offset : self.offset + self.count] = self.value


@dataclass(frozen=True)
class _SleepJob:
    delay_s: float

    def run(self, segments, cache):
        time.sleep(self.delay_s)


def test_process_kill_worker_respawns_and_completes():
    # A single worker makes the respawn structurally required: with the
    # lone worker dead no result can ever arrive, so the heartbeat MUST
    # notice and rebuild the pool.  (With a 2-worker pool the survivor
    # can drain the whole wave before the result queue ever goes empty —
    # a legitimate recovery with zero respawns — which made this assert
    # a coin-flip on which worker held the task-queue lock at SIGKILL.)
    t = ProcessTransport(2, workers=1)
    t.fault_plan = FaultPlan.parse(["kill_worker:s"])
    try:
        t.start()
        segment, offset, view = t.step_buffer("s", 64)
        for i in range(4):
            t.submit("s", _FillJob(segment, offset + i, 1, 9))
        t.complete("s")  # the respawned pool resubmits the in-flight jobs
        np.testing.assert_array_equal(view[:4], np.full(4, 9, np.uint8))
        assert t.fault_stats["workers_killed"] == 1
        assert t.respawns >= 1
    finally:
        t.close()
    # Satellite (b): the SIGKILLed worker is an *abnormal* exit — close's
    # exit audit surfaces it; the respawn-terminated replacement is not.
    health = t.transport_health()
    assert health["respawns"] == t.respawns
    assert len(health["abnormal_exits"]) >= 1
    assert any(e["exitcode"] == -signal.SIGKILL for e in health["abnormal_exits"])


def test_process_respawn_budget_escalates_to_transport_error():
    t = ProcessTransport(2, workers=1)
    t.fault_plan = FaultPlan.parse(["kill_worker:s"])
    t.max_respawns = 0
    try:
        t.start()
        segment, offset, _ = t.step_buffer("s", 64)
        t.submit("s", _FillJob(segment, offset, 1, 1))
        with pytest.raises(TransportError, match="respawn budget"):
            t.complete("s")
    finally:
        t.close()


def test_process_stall_blows_deadline_with_typed_error():
    t = ProcessTransport(2, workers=1)
    t.timeout_s = 0.3
    t.fault_plan = FaultPlan.parse(["stall:s:delay=30"])
    try:
        t.start()
        segment, offset, _ = t.step_buffer("s", 64)
        t.submit("s", _FillJob(segment, offset, 1, 1))
        with pytest.raises(TransportError, match="missed its 0.3s"):
            t.complete("s")
    finally:
        t.close()


def test_close_mid_wave_with_dead_worker():
    """Satellite (c): close() with a wave still in flight *and* a freshly
    SIGKILLed worker must return (no hang) and unlink every slab."""
    t = ProcessTransport(2, workers=2)
    t.start()
    segment, offset, _ = t.step_buffer("s", 256)
    for _ in range(3):
        t.submit("s", _SleepJob(0.2))
    os.kill(t._procs[0].pid, signal.SIGKILL)
    t.close()  # never called complete(); must still tear down
    t.close()  # idempotent
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment)
    assert any(not e["expected"] for e in t.exit_report)


def test_shm_finalizer_after_sigkill_during_complete():
    """Satellite (c): even when complete() dies on the respawn budget and
    close() never runs, the finalizer backstop unlinks the slabs."""
    t = ProcessTransport(2, workers=1)
    t.max_respawns = 0
    t.start()
    segment, offset, _ = t.step_buffer("s", 64)
    t.submit("s", _SleepJob(5.0))
    os.kill(t._procs[0].pid, signal.SIGKILL)
    with pytest.raises(TransportError, match="respawn budget"):
        t.complete("s")
    t._finalizer()  # what interpreter teardown would invoke
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment)


# ----------------------------------------------------------------------
# Training-level recovery matrix: every fault either recovers bitwise or
# fails fast with a typed error.
# ----------------------------------------------------------------------
def _run(tiny_dataset, tiny_book, *, faults=None, system="adaqp-fixed", **overrides):
    cfg = RunConfig(
        epochs=3, hidden_dim=8, eval_every=3, reassign_period=2, **overrides
    )
    plan = None if faults is None else FaultPlan.parse(faults)
    result = train(system, tiny_dataset, tiny_book, "2M-2D", cfg, fault_plan=plan)
    return result, plan


def test_drop_recovers_bitwise_via_keyed_replay(tiny_dataset, tiny_book):
    clean, _ = _run(tiny_dataset, tiny_book, transport="sync")
    faulted, plan = _run(
        tiny_dataset,
        tiny_book,
        transport="sync",
        faults=["drop:fwd/L1@1:src=0,dst=1", "drop:bwd/L0@2"],
    )
    assert len(plan.log) == 2  # the scripted faults actually fired
    assert faulted.curve_loss == clean.curve_loss
    assert faulted.wire_bytes_total == clean.wire_bytes_total
    assert faulted.transport_health["fault_stats"]["replays"] == 2


def test_duplicate_is_a_bitwise_noop(tiny_dataset, tiny_book):
    clean, _ = _run(tiny_dataset, tiny_book, transport="sync")
    faulted, plan = _run(
        tiny_dataset, tiny_book, transport="sync", faults=["duplicate:fwd/L0@1"]
    )
    assert len(plan.log) == 1
    assert faulted.curve_loss == clean.curve_loss
    assert faulted.transport_health["fault_stats"]["duplicates_rejected"] == 1


def test_drop_fails_fast_on_non_replayable_exchange(tiny_dataset, tiny_book):
    """The exact exchange has no replay path: a dropped envelope must be a
    typed error naming the missing sources, not a silently-wrong epoch."""
    with pytest.raises(TransportError, match="missing envelope"):
        _run(
            tiny_dataset,
            tiny_book,
            system="vanilla",
            transport="sync",
            faults=["drop:fwd/L1@1"],
        )


def test_stall_fails_fast_with_typed_error(tiny_dataset, tiny_book):
    with pytest.raises(TransportError, match="missed its"):
        _run(
            tiny_dataset,
            tiny_book,
            transport="worker:1",
            transport_timeout_s=0.3,
            faults=["stall:fwd/L1@1:delay=30"],
        )


def test_kill_worker_recovers_bitwise_under_process_transport(
    tiny_dataset, tiny_book
):
    clean, _ = _run(tiny_dataset, tiny_book, transport="process:2")
    faulted, plan = _run(
        tiny_dataset,
        tiny_book,
        transport="process:2",
        faults=["kill_worker:fwd/L1@1"],
    )
    assert len(plan.log) == 1
    assert faulted.curve_loss == clean.curve_loss
    assert faulted.wire_bytes_total == clean.wire_bytes_total
    health = faulted.transport_health
    assert health["fault_stats"]["workers_killed"] == 1
    # Two legitimate recovery modes, decided by which worker held the
    # task-queue lock at SIGKILL: the heartbeat notices a starved queue
    # and respawns the pool, OR the surviving worker absorbs the whole
    # run and no respawn is ever needed.  Either way the dead worker
    # shows up in close()'s exit audit and the result is bitwise clean
    # (respawn-when-required is pinned by the single-worker unit test).
    assert len(health["abnormal_exits"]) >= 1


def test_poison_is_detected_and_repaired_bitwise(tiny_dataset, tiny_book):
    clean, _ = _run(tiny_dataset, tiny_book, transport="process:2")
    faulted, plan = _run(
        tiny_dataset,
        tiny_book,
        transport="process:2",
        faults=["poison:fwd/L1@1"],
    )
    assert len(plan.log) == 1
    assert faulted.curve_loss == clean.curve_loss
    stats = faulted.transport_health["fault_stats"]
    assert stats["slabs_poisoned"] == 1
    assert stats["slab_repairs"] == 1
