"""WorkerTransport: deferred jobs, join semantics and concurrent accounting.

The async transport's contract: jobs submitted with ``defer`` run off the
caller's thread but retire in submission order; ``complete`` joins (and
re-raises); ``collect`` never observes a half-posted step; and the
pending/overlapped byte accounting stays exact no matter how posts and
collects interleave across threads.
"""

import threading
import time

import numpy as np
import pytest

from repro.comm.transport import (
    SyncTransport as Transport,
    WorkerTransport,
    host_has_spare_core,
)


def test_defer_runs_job_and_complete_joins():
    t = WorkerTransport(2)
    ran = threading.Event()

    def job():
        t.post(0, 1, "s", "payload", 10)
        ran.set()

    t.defer("s", job)
    wait = t.complete("s")
    assert ran.is_set()
    assert wait >= 0.0
    assert t.pending_bytes("s") == 10
    assert t.collect(1, "s") == {0: "payload"}
    t.close()


def test_jobs_run_off_the_calling_thread():
    t = WorkerTransport(2)
    seen: list[str] = []
    t.defer("s", lambda: seen.append(threading.current_thread().name))
    t.complete("s")
    assert len(seen) == 1 and seen[0] != threading.current_thread().name
    t.close()


def test_jobs_retire_in_submission_order():
    t = WorkerTransport(4)
    order: list[str] = []
    for tag in ("a", "b", "c"):
        t.defer(tag, lambda tag=tag: order.append(tag))
    for tag in ("a", "b", "c"):
        t.complete(tag)
    assert order == ["a", "b", "c"]
    t.close()


def test_complete_reraises_worker_exceptions():
    t = WorkerTransport(2)

    def bad():
        raise RuntimeError("kaboom")

    t.defer("s", bad)
    with pytest.raises(RuntimeError, match="kaboom"):
        t.complete("s")
    t.close()


def test_complete_without_job_is_noop():
    t = WorkerTransport(2)
    assert t.complete("nothing") == 0.0
    # Synchronous transports share the same API as a no-op.
    assert Transport(2).complete("nothing") == 0.0
    t.close()


def test_collect_auto_joins_outstanding_job():
    t = WorkerTransport(2)
    release = threading.Event()

    def job():
        release.wait(timeout=5.0)
        t.post(0, 1, "s", "late", 7)

    t.defer("s", job)
    threading.Timer(0.02, release.set).start()
    # Collect must block on the job instead of returning an empty mailbox.
    assert t.collect(1, "s") == {0: "late"}
    t.close()


def test_complete_joins_every_job_under_a_tag():
    """A tag may carry several jobs (encode shards + decode followups);
    complete must join them all, not just the first."""
    t = WorkerTransport(2, workers=2)
    done: list[int] = []
    release = threading.Event()
    t.defer("s", lambda: (release.wait(timeout=5.0), done.append(1)))
    t.defer("s", lambda: done.append(2))
    release.set()
    t.complete("s")
    assert sorted(done) == [1, 2]
    assert t.complete("s") == 0.0  # tag drained
    t.close()


def test_complete_joins_followups_deferred_by_running_jobs():
    """The fused engine's last encode shard defers decode jobs under the
    same tag *from inside the pool*; complete must pick those up even
    though they were registered after it started waiting."""
    t = WorkerTransport(2, workers=1)
    order: list[str] = []

    def encode():
        order.append("encode")
        t.defer("s", lambda: order.append("decode"))

    t.defer("s", encode)
    t.complete("s")
    assert order == ["encode", "decode"]
    t.close()


def test_multi_worker_jobs_run_concurrently():
    """At workers=2 two jobs of one tag really overlap: each blocks until
    the other has started, which deadlocks on a single-worker pool."""
    t = WorkerTransport(2, workers=2)
    a_started = threading.Event()
    b_started = threading.Event()

    def job_a():
        a_started.set()
        assert b_started.wait(timeout=10.0)

    def job_b():
        b_started.set()
        assert a_started.wait(timeout=10.0)

    t.defer_many("s", [job_a, job_b])
    t.complete("s")
    t.close()


def test_worker_count_validated():
    with pytest.raises(ValueError, match="workers"):
        WorkerTransport(2, workers=0)
    assert Transport(2).workers == 0
    t = WorkerTransport(2, workers=3)
    assert t.workers == 3
    t.close()


def test_reset_accounting_joins_outstanding_jobs():
    t = WorkerTransport(2)
    t.defer("s", lambda: t.post(0, 1, "s", "x", 5))
    # The job posts an envelope nobody collected: reset must join first,
    # then refuse exactly like the synchronous transport.
    with pytest.raises(RuntimeError, match="undelivered"):
        t.reset_accounting()
    t.collect(1, "s")
    t.reset_accounting()
    assert t.total_bytes() == 0
    t.close()


def test_close_is_idempotent():
    t = WorkerTransport(2)
    t.defer("s", lambda: None)
    t.close()
    t.close()
    # The synchronous transport's no-op close is idempotent too.
    s = Transport(2)
    s.close()
    s.close()


def test_close_after_failed_job_swallows_and_releases():
    """The close-after-failed-epoch path: a job that raised must not keep
    the pool alive (leaked worker threads) or re-raise out of close."""
    t = WorkerTransport(2)

    def bad():
        raise RuntimeError("epoch failed mid-flight")

    t.defer("s", bad)
    t.close()  # joins, swallows, shuts the pool down
    t.close()  # and stays idempotent afterwards
    with pytest.raises(RuntimeError, match="closed"):
        t.defer("s2", lambda: None)


def test_collect_sorts_mailboxes_by_source():
    """Concurrent workers retire posts in arbitrary order; receivers
    accumulate floats in mailbox iteration order, so collect must hand
    back sources ascending regardless of arrival order."""
    t = Transport(4)
    for src in (2, 0, 3):
        t.post(src, 1, "s", f"p{src}", 1)
    assert list(t.collect(1, "s")) == [0, 2, 3]


def test_host_core_helpers_consistent():
    from repro.comm.transport import detected_cores, host_spare_cores

    assert isinstance(host_has_spare_core(), bool)
    assert detected_cores() >= 1
    assert host_spare_cores() == detected_cores() - 1
    assert host_has_spare_core() == (host_spare_cores() >= 1)


# ---------------------------------------------------------------------------
# Progress model under deferred posting
# ---------------------------------------------------------------------------
def test_posts_landing_in_open_window_count_as_overlapped():
    t = WorkerTransport(2)
    release = threading.Event()

    def job():
        release.wait(timeout=5.0)
        t.post(0, 1, "s", "x", 100)

    t.defer("s", job)
    # Window opens before the worker posted anything (the async executor's
    # note_overlap right after post_step returns).
    assert t.note_overlap("s") == 0
    release.set()
    t.complete("s")
    assert t.overlapped_bytes("s") == 100
    t.collect(1, "s")
    # Window closed at collect: later posts are not overlapped.
    t.post(0, 1, "s", "y", 50)
    assert t.overlapped_bytes("s") == 100
    t.collect(1, "s")
    t.close()


def test_sync_transport_window_semantics_unchanged():
    t = Transport(2)
    t.post(0, 1, "s", "a", 10)
    assert t.note_overlap("s") == 10
    # Post while the window is open (what an async worker would do).
    t.post_batch(0, "s2", [(1, "b", 5)])
    assert t.overlapped_bytes("s2") == 0  # different tag, no window
    t.collect(1, "s")
    t.collect(1, "s2")
    assert t.overlapped_bytes("s") == 10


def test_accounting_never_corrupts_across_threads():
    """Stress: many concurrent posters/finalizers on distinct tags.

    Each poster thread defers a job posting a full fan-out, opens an
    overlap window, then finalizes (join + collect all).  Afterwards the
    per-tag byte matrices, overlapped counters and pending counters must
    be exact — no lost updates, no phantom envelopes.
    """
    n = 8
    steps_per_thread = 20
    t = WorkerTransport(n)
    errors: list[BaseException] = []

    def worker(thread_id: int) -> None:
        try:
            for step in range(steps_per_thread):
                tag = f"T{thread_id}/s{step}"
                src = thread_id % n

                def job(tag=tag, src=src):
                    posts = [
                        (dst, f"p{src}->{dst}", 10 + dst)
                        for dst in range(n)
                        if dst != src
                    ]
                    t.post_batch(src, tag, posts)

                t.defer(tag, job)
                t.note_overlap(tag)
                time.sleep(0.0001 * (thread_id % 3))
                t.complete(tag)
                expected = sum(10 + dst for dst in range(n) if dst != src)
                assert t.pending_bytes(tag) == expected
                assert t.overlapped_bytes(tag) == expected
                got = 0
                for dst in range(n):
                    for _, nb_payload in t.collect(dst, tag).items():
                        got += 1
                assert got == n - 1
                assert t.pending_bytes(tag) == 0
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=30)
    assert not errors, errors

    # Global accounting adds up exactly: per thread, per step, one fan-out.
    total = 0
    for thread_id in range(6):
        src = thread_id % n
        per_step = sum(10 + dst for dst in range(n) if dst != src)
        for step in range(steps_per_thread):
            tag = f"T{thread_id}/s{step}"
            m = t.bytes_matrix(tag)
            assert m.sum() == per_step
            assert m[src].sum() == per_step
            total += per_step
    assert t.total_bytes() == total
    assert t.pending_tags() == []
    t.reset_accounting()
    assert t.total_bytes() == 0
    t.close()


def test_worker_posts_are_bitwise_payload_identical():
    """Envelope payloads routed through the worker are the same objects
    the job posted — no serialization, no copies, no reordering."""
    t = WorkerTransport(3)
    arrays = [np.arange(6, dtype=np.float32) + i for i in range(2)]

    def job():
        t.post(0, 2, "s", arrays[0], arrays[0].nbytes)
        t.post(1, 2, "s", arrays[1], arrays[1].nbytes)

    t.defer("s", job)
    got = t.collect(2, "s")
    assert list(got) == [0, 1]  # collection order == post order
    assert got[0] is arrays[0] and got[1] is arrays[1]
    t.close()
