"""WorkerTransport: deferred jobs, join semantics and concurrent accounting.

The async transport's contract: jobs submitted with ``defer`` run off the
caller's thread but retire in submission order; ``complete`` joins (and
re-raises); ``collect`` never observes a half-posted step; and the
pending/overlapped byte accounting stays exact no matter how posts and
collects interleave across threads.
"""

import threading
import time

import numpy as np
import pytest

from repro.comm.transport import Transport, WorkerTransport, host_has_spare_core


def test_defer_runs_job_and_complete_joins():
    t = WorkerTransport(2)
    ran = threading.Event()

    def job():
        t.post(0, 1, "s", "payload", 10)
        ran.set()

    t.defer("s", job)
    wait = t.complete("s")
    assert ran.is_set()
    assert wait >= 0.0
    assert t.pending_bytes("s") == 10
    assert t.collect(1, "s") == {0: "payload"}
    t.close()


def test_jobs_run_off_the_calling_thread():
    t = WorkerTransport(2)
    seen: list[str] = []
    t.defer("s", lambda: seen.append(threading.current_thread().name))
    t.complete("s")
    assert len(seen) == 1 and seen[0] != threading.current_thread().name
    t.close()


def test_jobs_retire_in_submission_order():
    t = WorkerTransport(4)
    order: list[str] = []
    for tag in ("a", "b", "c"):
        t.defer(tag, lambda tag=tag: order.append(tag))
    for tag in ("a", "b", "c"):
        t.complete(tag)
    assert order == ["a", "b", "c"]
    t.close()


def test_complete_reraises_worker_exceptions():
    t = WorkerTransport(2)

    def bad():
        raise RuntimeError("kaboom")

    t.defer("s", bad)
    with pytest.raises(RuntimeError, match="kaboom"):
        t.complete("s")
    t.close()


def test_complete_without_job_is_noop():
    t = WorkerTransport(2)
    assert t.complete("nothing") == 0.0
    # Synchronous transports share the same API as a no-op.
    assert Transport(2).complete("nothing") == 0.0
    t.close()


def test_collect_auto_joins_outstanding_job():
    t = WorkerTransport(2)
    release = threading.Event()

    def job():
        release.wait(timeout=5.0)
        t.post(0, 1, "s", "late", 7)

    t.defer("s", job)
    threading.Timer(0.02, release.set).start()
    # Collect must block on the job instead of returning an empty mailbox.
    assert t.collect(1, "s") == {0: "late"}
    t.close()


def test_one_job_per_tag_in_flight():
    t = WorkerTransport(2)
    release = threading.Event()
    t.defer("s", lambda: release.wait(timeout=5.0))
    with pytest.raises(RuntimeError, match="already has a deferred job"):
        t.defer("s", lambda: None)
    release.set()
    t.complete("s")
    t.close()


def test_reset_accounting_joins_outstanding_jobs():
    t = WorkerTransport(2)
    t.defer("s", lambda: t.post(0, 1, "s", "x", 5))
    # The job posts an envelope nobody collected: reset must join first,
    # then refuse exactly like the synchronous transport.
    with pytest.raises(RuntimeError, match="undelivered"):
        t.reset_accounting()
    t.collect(1, "s")
    t.reset_accounting()
    assert t.total_bytes() == 0
    t.close()


def test_close_is_idempotent():
    t = WorkerTransport(2)
    t.defer("s", lambda: None)
    t.close()
    t.close()


def test_host_has_spare_core_is_boolean():
    assert isinstance(host_has_spare_core(), bool)


# ---------------------------------------------------------------------------
# Progress model under deferred posting
# ---------------------------------------------------------------------------
def test_posts_landing_in_open_window_count_as_overlapped():
    t = WorkerTransport(2)
    release = threading.Event()

    def job():
        release.wait(timeout=5.0)
        t.post(0, 1, "s", "x", 100)

    t.defer("s", job)
    # Window opens before the worker posted anything (the async executor's
    # note_overlap right after post_step returns).
    assert t.note_overlap("s") == 0
    release.set()
    t.complete("s")
    assert t.overlapped_bytes("s") == 100
    t.collect(1, "s")
    # Window closed at collect: later posts are not overlapped.
    t.post(0, 1, "s", "y", 50)
    assert t.overlapped_bytes("s") == 100
    t.collect(1, "s")
    t.close()


def test_sync_transport_window_semantics_unchanged():
    t = Transport(2)
    t.post(0, 1, "s", "a", 10)
    assert t.note_overlap("s") == 10
    # Post while the window is open (what an async worker would do).
    t.post_batch(0, "s2", [(1, "b", 5)])
    assert t.overlapped_bytes("s2") == 0  # different tag, no window
    t.collect(1, "s")
    t.collect(1, "s2")
    assert t.overlapped_bytes("s") == 10


def test_accounting_never_corrupts_across_threads():
    """Stress: many concurrent posters/finalizers on distinct tags.

    Each poster thread defers a job posting a full fan-out, opens an
    overlap window, then finalizes (join + collect all).  Afterwards the
    per-tag byte matrices, overlapped counters and pending counters must
    be exact — no lost updates, no phantom envelopes.
    """
    n = 8
    steps_per_thread = 20
    t = WorkerTransport(n)
    errors: list[BaseException] = []

    def worker(thread_id: int) -> None:
        try:
            for step in range(steps_per_thread):
                tag = f"T{thread_id}/s{step}"
                src = thread_id % n

                def job(tag=tag, src=src):
                    posts = [
                        (dst, f"p{src}->{dst}", 10 + dst)
                        for dst in range(n)
                        if dst != src
                    ]
                    t.post_batch(src, tag, posts)

                t.defer(tag, job)
                t.note_overlap(tag)
                time.sleep(0.0001 * (thread_id % 3))
                t.complete(tag)
                expected = sum(10 + dst for dst in range(n) if dst != src)
                assert t.pending_bytes(tag) == expected
                assert t.overlapped_bytes(tag) == expected
                got = 0
                for dst in range(n):
                    for _, nb_payload in t.collect(dst, tag).items():
                        got += 1
                assert got == n - 1
                assert t.pending_bytes(tag) == 0
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
    for th in threads:
        th.start()
    for th in threads:
        th.join(timeout=30)
    assert not errors, errors

    # Global accounting adds up exactly: per thread, per step, one fan-out.
    total = 0
    for thread_id in range(6):
        src = thread_id % n
        per_step = sum(10 + dst for dst in range(n) if dst != src)
        for step in range(steps_per_thread):
            tag = f"T{thread_id}/s{step}"
            m = t.bytes_matrix(tag)
            assert m.sum() == per_step
            assert m[src].sum() == per_step
            total += per_step
    assert t.total_bytes() == total
    assert t.pending_tags() == []
    t.reset_accounting()
    assert t.total_bytes() == 0
    t.close()


def test_worker_posts_are_bitwise_payload_identical():
    """Envelope payloads routed through the worker are the same objects
    the job posted — no serialization, no copies, no reordering."""
    t = WorkerTransport(3)
    arrays = [np.arange(6, dtype=np.float32) + i for i in range(2)]

    def job():
        t.post(0, 2, "s", arrays[0], arrays[0].nbytes)
        t.post(1, 2, "s", arrays[1], arrays[1].nbytes)

    t.defer("s", job)
    got = t.collect(2, "s")
    assert list(got) == [0, 1]  # collection order == post order
    assert got[0] is arrays[0] and got[1] is arrays[1]
    t.close()
