"""ProcessTransport: the process pool, shm slabs, wave protocol, lifecycle.

The backend's own contract, below the training-level equivalence matrix in
``tests/cluster/test_overlap_compute.py``: jobs cross the process boundary
as plain picklable data and write results into shared-memory slabs at
prescribed offsets; followups dispatch only after the current wave drains;
worker failures re-raise at ``complete``; ``close`` (and the finalizer
behind it) unlinks every slab even when a worker was killed mid-step.

Also here: the registry/spec surface the redesigned Transport API exposes
(``repro.comm.transports``) and the pickled :class:`ShardDescriptor`'s
bitwise-reproduction contract.
"""

import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.comm.process import ProcessTransport, _attach_segment
from repro.comm.transport import (
    SyncTransport,
    WorkerTransport,
    host_has_spare_core,
)
from repro.comm.transports import (
    TransportSpec,
    available_backends,
    create_transport,
    get_backend,
    parse_transport_spec,
    resolve_spec,
)


# ----------------------------------------------------------------------
# Registry + spec grammar
# ----------------------------------------------------------------------
def test_registry_resolves_builtin_backends():
    assert get_backend("sync") is SyncTransport
    assert get_backend("worker") is WorkerTransport
    assert get_backend("process") is ProcessTransport
    assert available_backends() == ["process", "sync", "worker"]
    with pytest.raises(ValueError, match="unknown transport backend"):
        get_backend("mpi")


def test_spec_parse_and_str_round_trip():
    assert parse_transport_spec("worker:4") == TransportSpec("worker", 4)
    assert parse_transport_spec("process") == TransportSpec("process")
    assert parse_transport_spec(" auto ") == TransportSpec("auto")
    spec = TransportSpec("process", 2)
    assert parse_transport_spec(spec) is spec
    assert str(TransportSpec("worker", 4)) == "worker:4"
    assert str(TransportSpec("sync")) == "sync"
    assert parse_transport_spec(str(spec)) == spec


def test_spec_validation_errors():
    with pytest.raises(ValueError, match="unknown transport backend"):
        parse_transport_spec("bogus:2")
    with pytest.raises(ValueError, match="no worker count"):
        parse_transport_spec("sync:3")
    with pytest.raises(ValueError, match="workers must be >= 1"):
        parse_transport_spec("worker:0")
    with pytest.raises(ValueError, match="bad worker count"):
        parse_transport_spec("worker:lots")
    with pytest.raises(TypeError):
        parse_transport_spec(4)


def test_resolve_spec_auto_and_degrade_semantics():
    # auto: worker iff the run overlaps AND the host has a spare core.
    expected = (
        TransportSpec("worker", max(1, resolve_spec("auto").workers or 1))
        if host_has_spare_core()
        else TransportSpec("sync")
    )
    assert resolve_spec("auto").backend == expected.backend
    assert resolve_spec("auto", overlap=False) == TransportSpec("sync")
    # Async backends only pay off inside the overlap window: non-overlapped
    # runs degrade to sync.
    assert resolve_spec("process:4", overlap=False) == TransportSpec("sync")
    assert resolve_spec("process:4") == TransportSpec("process", 4)
    # Pinned counts survive resolution; defaults come from spare cores.
    assert resolve_spec("worker:3") == TransportSpec("worker", 3)
    assert (resolve_spec("worker").workers or 0) >= 1


def test_create_transport_refuses_unresolved_auto():
    with pytest.raises(ValueError, match="resolve 'auto'"):
        create_transport("auto", 2)
    t = create_transport("process:2", 3)
    try:
        assert isinstance(t, ProcessTransport)
        assert t.workers == 2 and t.num_devices == 3
    finally:
        t.close()


def test_transport_alias_is_gone():
    # PR 8 removed the ``Transport`` DeprecationWarning alias: the only
    # spellings are SyncTransport/WorkerTransport/ProcessTransport.
    import repro.comm
    import repro.comm.transport as mod

    with pytest.raises(AttributeError):
        mod.Transport
    with pytest.raises(AttributeError):
        repro.comm.Transport


# ----------------------------------------------------------------------
# Picklable test jobs (must be module-level: they cross the process
# boundary by reference).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _FillJob:
    """Write ``count`` bytes of ``value`` at ``offset``."""

    segment: str
    offset: int
    count: int
    value: int

    def run(self, segments, cache):
        seg = _attach_segment(segments, self.segment)
        buf = np.frombuffer(seg.buf, dtype=np.uint8)
        buf[self.offset : self.offset + self.count] = self.value


@dataclass(frozen=True)
class _ChainJob:
    """Read the byte at ``src`` and write it + 1 at ``dst`` — detects a
    followup dispatched before its wave's writes landed."""

    segment: str
    src: int
    dst: int

    def run(self, segments, cache):
        seg = _attach_segment(segments, self.segment)
        buf = np.frombuffer(seg.buf, dtype=np.uint8)
        buf[self.dst] = buf[self.src] + 1


@dataclass(frozen=True)
class _BoomJob:
    def run(self, segments, cache):
        raise ValueError("boom")


# ----------------------------------------------------------------------
# ProcessTransport behaviour
# ----------------------------------------------------------------------
def test_defer_runs_inline_and_books_like_sync():
    """Closure jobs (exact/stale/broadcast/stream-mode exchanges) never
    cross the process boundary: defer executes inline, so those policies
    ride the bitwise sync path with zero pool traffic."""
    t = ProcessTransport(2, workers=1)
    try:
        t.defer("s", lambda: t.post(0, 1, "s", "payload", 10))
        assert t.complete("s") == 0.0  # nothing waited on
        assert t.pending_bytes("s") == 10
        assert t.collect(1, "s") == {0: "payload"}
        assert not t._procs  # defer alone never spawns the pool
    finally:
        t.close()
    with pytest.raises(RuntimeError, match="closed"):
        t.defer("s", lambda: None)
    with pytest.raises(RuntimeError, match="closed"):
        t.step_buffer("s", 64)


def test_submit_roundtrip_writes_through_shared_memory():
    t = ProcessTransport(2, workers=2)
    try:
        segment, offset, view = t.step_buffer("fwd/L0", 128)
        done = []
        t.submit(
            "fwd/L0",
            _FillJob(segment, offset, 128, 7),
            on_done=lambda: done.append(True),
        )
        waited = t.complete("fwd/L0")
        assert done == [True]  # callback ran on the main thread
        assert waited >= 0.0
        np.testing.assert_array_equal(view[:128], np.full(128, 7, np.uint8))
    finally:
        t.close()


def test_followups_dispatch_after_the_wave_drains():
    t = ProcessTransport(2, workers=2)
    try:
        segment, offset, view = t.step_buffer("s", 64)
        order = []
        for i in range(4):  # a wave of writers racing across 2 workers
            t.submit(
                "s",
                _FillJob(segment, offset, 1, 41),
                on_done=lambda: order.append("encode"),
            )
        # The followup reads what the wave wrote: only legal post-drain.
        t.submit_followup(
            "s",
            _ChainJob(segment, offset, offset + 1),
            on_done=lambda: order.append("decode"),
        )
        t.complete("s")
        assert order == ["encode"] * 4 + ["decode"]
        assert view[1] == 42
    finally:
        t.close()


def test_worker_errors_reraise_at_complete():
    t = ProcessTransport(2, workers=1)
    try:
        t.submit("s", _BoomJob())
        with pytest.raises(RuntimeError, match="boom"):
            t.complete("s")
        # The tag is clean afterwards; the pool is still serviceable.
        segment, offset, view = t.step_buffer("s", 64)
        t.submit("s", _FillJob(segment, offset, 1, 5))
        t.complete("s")
        assert view[0] == 5
    finally:
        t.close()


def test_step_buffer_reuses_and_regrows_slabs():
    t = ProcessTransport(2, workers=1)
    try:
        seg_a, off_a, _ = t.step_buffer("s", 100)
        seg_b, off_b, _ = t.step_buffer("s", 100)
        seg_c, off_c, _ = t.step_buffer("s", 100)
        assert seg_a == seg_b == seg_c  # one ring per tag at a fixed budget
        assert off_a == off_c != off_b  # steady-state alternation (wraps)
        seg_d, _, view = t.step_buffer("s", 5000)  # bit reassignment grows
        assert seg_d != seg_a
        assert view.nbytes >= 5000
    finally:
        t.close()
    # Close unlinked every slab, including the retired generation.
    for name in (seg_a, seg_d):
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_close_is_idempotent_and_unlinks_after_a_kill():
    """ISSUE 6's teardown pin: a worker killed mid-step (the
    KeyboardInterrupt stand-in) must not wedge close() or leak segments."""
    t = ProcessTransport(2, workers=2)
    segment, offset, _ = t.step_buffer("s", 256)
    t.submit("s", _FillJob(segment, offset, 1, 1))
    t.complete("s")
    t._procs[0].kill()
    t.close()
    t.close()  # idempotent
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment)


def test_finalizer_unlinks_when_close_never_runs():
    t = ProcessTransport(2, workers=1)
    segment, _, _ = t.step_buffer("s", 64)
    t._finalizer()  # what interpreter teardown would invoke
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=segment)
    t.close()  # still safe: the segment list was cleared


# ----------------------------------------------------------------------
# ShardDescriptor: picklable coordinates reproduce payload bytes bitwise
# ----------------------------------------------------------------------
def _tiny_step():
    from repro.quant.fused import FusedStepEncoder
    from repro.quant.stochastic import KeyedRounding

    rounding = KeyedRounding(123)
    encoder = FusedStepEncoder(rounding)
    pairs = [(0, 1), (1, 0), (1, 2)]
    counts = np.array([5, 4, 3], dtype=np.int64)
    # Device 0 sends rows 0..4, device 1 sends rows 0..6 (two pairs).
    device_blocks = [(0, 0, 5), (1, 5, 12)]
    cat_idx = np.array([0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 5, 6], dtype=np.int64)
    bits_cat = np.array([2, 2, 4, 4, 8, 2, 4, 4, 8, 2, 2, 2], dtype=np.int64)
    plan = encoder.plan_for(
        ("fwd", 1), pairs, counts, device_blocks, cat_idx, bits_cat, 6
    )
    rng = np.random.default_rng(0)
    values = {
        0: rng.standard_normal((5, 6)).astype(np.float32),
        1: rng.standard_normal((7, 6)).astype(np.float32),
    }
    # The shard jobs receive input in cat order (what the exchange gathers
    # into the slab); build the same view here.
    cat_rows = np.empty((12, 6), dtype=np.float32)
    for rank, start, stop in device_blocks:
        np.take(values[rank], cat_idx[start:stop], axis=0, out=cat_rows[start:stop])
    return rounding, encoder, plan, values, cat_rows


@pytest.mark.parametrize("n_shards", [1, 2, 3])
def test_shard_descriptor_pickles_and_reproduces_bitwise(n_shards):
    from repro.quant.fused import shard_descriptor

    rounding, encoder, plan, values, cat_rows = _tiny_step()
    rounding.set_epoch(3)
    encoder.gather_step(plan, values)
    cache: dict = {}
    for shard in encoder.shards_for(plan, n_shards):
        direct = encoder.quantize_pack_shard(plan, shard, coords=("fwd", 1))
        desc = shard_descriptor(plan, shard, rounding=rounding, phase="fwd", layer=1)
        rebuilt = pickle.loads(pickle.dumps(desc))
        assert rebuilt == desc  # plain-data round trip
        remote = rebuilt.encode(cat_rows[shard.start : shard.stop], cache=cache)
        assert set(remote) == set(direct)
        for pair, payload in direct.items():
            other = remote[pair]
            assert other.wire_bytes == payload.wire_bytes
            for s_a, s_b in zip(payload.streams, other.streams):
                assert bytes(s_a) == bytes(s_b)
            for z_a, z_b in zip(payload.zero_points, other.zero_points):
                np.testing.assert_array_equal(z_a, z_b)
            for c_a, c_b in zip(payload.scales, other.scales):
                np.testing.assert_array_equal(c_a, c_b)


def test_shard_descriptor_cache_tracks_epoch_and_bits():
    from repro.quant.fused import shard_descriptor

    rounding, encoder, plan, values, cat_rows = _tiny_step()
    encoder.gather_step(plan, values)
    (shard,) = encoder.shards_for(plan, 1)
    cache: dict = {}
    outs = []
    for epoch in (0, 1):
        rounding.set_epoch(epoch)
        desc = shard_descriptor(plan, shard, rounding=rounding, phase="fwd", layer=1)
        outs.append(desc.encode(cat_rows, cache=cache))
    assert len(cache) == 1  # same pair span: the rebuilt plan is reused
    # Different epoch, different keyed noise: streams must differ somewhere.
    diff = any(
        bytes(a) != bytes(b)
        for p in outs[0]
        for a, b in zip(outs[0][p].streams, outs[1][p].streams)
    )
    assert diff, "epoch did not reach the keyed noise"


def test_shard_descriptor_requires_keyed_rounding():
    from repro.quant.fused import FusedStepEncoder, shard_descriptor

    _, _, plan, _, _ = _tiny_step()
    stream_encoder = FusedStepEncoder(np.random.default_rng(0))
    (shard,) = stream_encoder.shards_for(plan, 4)  # stream pins 1 shard
    with pytest.raises(ValueError, match="keyed"):
        shard_descriptor(
            plan, shard, rounding=stream_encoder.rounding, phase="fwd", layer=1
        )
