"""Cluster topology parsing and machine mapping."""

import pytest

from repro.comm.topology import ClusterTopology, parse_topology


def test_parse_standard_settings():
    for spec, devices in [("2M-1D", 2), ("2M-2D", 4), ("2M-4D", 8), ("6M-4D", 24)]:
        topo = parse_topology(spec)
        assert topo.num_devices == devices
        assert topo.name == spec


def test_machine_of():
    topo = ClusterTopology(2, 4)
    assert [topo.machine_of(d) for d in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]


def test_same_machine():
    topo = ClusterTopology(2, 2)
    assert topo.same_machine(0, 1)
    assert not topo.same_machine(1, 2)


def test_machine_of_out_of_range():
    with pytest.raises(ValueError):
        ClusterTopology(2, 2).machine_of(4)


def test_invalid_specs_rejected():
    for bad in ("2M", "M-D", "0M-2D...", "2x2", ""):
        with pytest.raises(ValueError):
            parse_topology(bad)


def test_invalid_dimensions_rejected():
    with pytest.raises(ValueError):
        ClusterTopology(0, 2)


def test_case_insensitive():
    assert parse_topology("2m-2d").num_devices == 4
