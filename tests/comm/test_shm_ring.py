"""ShmRing: the FIFO ring allocator behind the process transport's slabs.

The contract :meth:`ProcessTransport.step_buffer` relies on: records are
contiguous (never straddling the segment end), wraparound charges the
skipped tail bytes to the wrapped record (released when it retires),
``alloc`` on a full ring raises rather than overwriting live payloads,
and views are live windows — bytes written through one view are visible
through any other mapping of the span.
"""

import numpy as np
import pytest

from repro.comm.process import ShmRing


@pytest.fixture
def ring():
    r = ShmRing(100)
    yield r
    r.close()
    r.unlink()


def test_alloc_retire_fifo_and_free_accounting(ring):
    a = ring.alloc(30)
    b = ring.alloc(20)
    assert (a, b) == (0, 30)
    assert len(ring) == 2
    assert ring.free_bytes == 50
    assert ring.retire() == (0, 30)  # oldest first
    assert ring.retire() == (30, 20)
    assert ring.free_bytes == 100
    assert len(ring) == 0
    with pytest.raises(RuntimeError, match="no live records"):
        ring.retire()


def test_wraparound_charges_waste_to_wrapped_record(ring):
    ring.alloc(60)
    ring.retire()  # head stays at 60; the tail gap is 40 bytes
    assert ring.alloc(60) == 0  # too big for the gap: wraps to offset 0
    assert ring.free_bytes == 0  # 60 allocated + 40 tail waste
    ring.retire()  # releases the record AND its waste
    assert ring.free_bytes == 100


def test_alloc_raises_when_full(ring):
    ring.alloc(60)
    with pytest.raises(MemoryError, match="ring full"):
        ring.alloc(60)  # wrap needs 60 + 40 waste, only 40 free
    assert ring.alloc(40) == 60  # the exact tail gap still fits


def test_record_size_bounds(ring):
    for bad in (0, -1, 101):
        with pytest.raises(ValueError, match="record size"):
            ring.alloc(bad)
    assert ring.alloc(100) == 0  # a full-capacity record is legal


def test_data_survives_wraparound(ring):
    first = ring.alloc(60)
    ring.view(first, 60)[:] = 1
    ring.retire()
    second = ring.alloc(60)  # wraps onto the first record's span
    ring.view(second, 60)[:] = 2
    assert second == 0
    np.testing.assert_array_equal(ring.view(second, 60), np.full(60, 2, np.uint8))


def test_view_is_a_live_window(ring):
    off = ring.alloc(16)
    ring.view(off, 16)[:] = np.arange(16, dtype=np.uint8)
    again = ring.view(off, 16)
    np.testing.assert_array_equal(again, np.arange(16, dtype=np.uint8))
    again[0] = 99
    assert ring.view(off, 16)[0] == 99


def test_steady_state_alternation_never_grows(ring):
    """The step_buffer pattern: retire-then-alloc of a fixed-size record
    on a 2x ring alternates between two offsets forever."""
    offsets = []
    for _ in range(8):
        if len(ring):
            ring.retire()
        offsets.append(ring.alloc(50))
    assert offsets == [0, 50, 0, 50, 0, 50, 0, 50]
    assert ring.free_bytes == 50


def test_no_reslab_at_constant_byte_budget():
    """PR 8's depth-2 sizing pin: a tag's two-record ring absorbs every
    steady-state step at a constant byte budget — epochs of step_buffer
    calls (two tags in flight, lookahead included) must never replace a
    slab (``reslab_count`` stays 0) — while a *grown* budget re-slabs
    exactly once per affected tag."""
    from repro.comm.process import ProcessTransport

    t = ProcessTransport(2, workers=1)
    try:
        segments = set()
        # Three "epochs" over two concurrent tags at a constant budget.
        for _ in range(3):
            for layer in (0, 1, 2):
                seg, _, _ = t.step_buffer(f"fwd/L{layer}", 4096)
                segments.add(seg)
        assert t.reslab_count == 0
        assert len(segments) == 3  # one slab per tag, reused across epochs
        # Bit reassignment grows one tag's budget: exactly one re-slab.
        seg, _, view = t.step_buffer("fwd/L0", 16384)
        assert t.reslab_count == 1
        assert seg not in segments
        assert view.nbytes >= 16384
        # Back to steady state at the new budget: no further churn.
        for _ in range(4):
            t.step_buffer("fwd/L0", 16384)
        assert t.reslab_count == 1
    finally:
        t.close()
