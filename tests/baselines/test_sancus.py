"""SANCUS-style exchange: bounded-staleness broadcasts, dropped gradients."""

import numpy as np
import pytest

from repro.baselines.sancus import BroadcastSkipExchange
from repro.cluster.cluster import Cluster
from repro.comm.transport import SyncTransport as Transport
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def cluster(tiny_dataset):
    book = partition_graph(tiny_dataset.graph, 3, method="metis", seed=0)
    return Cluster(
        tiny_dataset, book, model_kind="gcn", hidden_dim=8, num_layers=2,
        dropout=0.0, seed=0,
    )


def test_broadcast_cadence(cluster):
    exchange = BroadcastSkipExchange(staleness_bound=3)
    transport = Transport(cluster.num_devices)
    h = [dev.features for dev in cluster.devices]
    for epoch in range(6):
        exchange.on_epoch_start(epoch)
        before = transport.total_bytes()
        exchange.exchange_embeddings(0, cluster.devices, transport, h)
        sent = transport.total_bytes() - before
        if epoch % 3 == 0:
            assert sent > 0
        else:
            assert sent == 0


def test_historical_values_served_on_skip_epochs(cluster):
    exchange = BroadcastSkipExchange(staleness_bound=4)
    transport = Transport(cluster.num_devices)
    h0 = [dev.features for dev in cluster.devices]
    exchange.on_epoch_start(0)
    fresh = exchange.exchange_embeddings(0, cluster.devices, transport, h0)
    h1 = [f + 42.0 for f in h0]
    exchange.on_epoch_start(1)
    stale = exchange.exchange_embeddings(0, cluster.devices, transport, h1)
    for a, b in zip(fresh, stale):
        assert np.allclose(a, b)  # epoch-1 values not visible yet


def test_full_block_broadcast_bytes(cluster):
    """SANCUS ships whole partition blocks, not boundary rows."""
    exchange = BroadcastSkipExchange(staleness_bound=1)
    transport = Transport(cluster.num_devices)
    h = [dev.features for dev in cluster.devices]
    exchange.on_epoch_start(0)
    exchange.exchange_embeddings(0, cluster.devices, transport, h)
    expected = sum(
        dev.features.nbytes * len(dev.part.peers_out()) for dev in cluster.devices
    )
    assert transport.total_bytes() == expected


def test_gradients_dropped(cluster):
    exchange = BroadcastSkipExchange()
    transport = Transport(cluster.num_devices)
    d_halo = [np.ones((dev.part.n_halo, 4), dtype=np.float32) for dev in cluster.devices]
    d_own = [np.zeros((dev.part.n_owned, 4), dtype=np.float32) for dev in cluster.devices]
    exchange.exchange_gradients(0, cluster.devices, transport, d_halo, d_own)
    assert transport.total_bytes() == 0
    assert all(np.all(d == 0) for d in d_own)


def test_skip_counters(cluster):
    exchange = BroadcastSkipExchange(staleness_bound=2)
    transport = Transport(cluster.num_devices)
    h = [dev.features for dev in cluster.devices]
    for epoch in range(4):
        exchange.on_epoch_start(epoch)
        exchange.exchange_embeddings(0, cluster.devices, transport, h)
    assert exchange.broadcasts_sent == 2 * cluster.num_devices
    assert exchange.broadcasts_skipped == 2 * cluster.num_devices


def test_invalid_bound_rejected():
    with pytest.raises(ValueError):
        BroadcastSkipExchange(staleness_bound=0)


def test_training_end_to_end(tiny_single_label_dataset):
    from repro.core.config import RunConfig
    from repro.core.trainer import train

    ds = tiny_single_label_dataset
    book = partition_graph(ds.graph, 4, method="metis", seed=0)
    cfg = RunConfig(epochs=10, hidden_dim=16, eval_every=10, dropout=0.0)
    res = train("sancus", ds, book, "2M-2D", cfg)
    assert np.isfinite(res.final_val)
    assert res.final_val > 0.3  # learns despite staleness and dropped grads
