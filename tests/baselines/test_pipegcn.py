"""PipeGCN-style staleness: warm-up sync, one-epoch-stale afterwards."""

import numpy as np
import pytest

from repro.baselines.pipegcn import StaleHaloExchange
from repro.cluster.cluster import Cluster
from repro.comm.transport import SyncTransport as Transport
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def cluster(tiny_dataset):
    book = partition_graph(tiny_dataset.graph, 3, method="metis", seed=0)
    return Cluster(
        tiny_dataset, book, model_kind="gcn", hidden_dim=8, num_layers=2,
        dropout=0.0, seed=0,
    )


def test_warmup_epoch_is_synchronous(cluster):
    exchange = StaleHaloExchange()
    transport = Transport(cluster.num_devices)
    h = [dev.features for dev in cluster.devices]
    exchange.on_epoch_start(0)
    halos = exchange.exchange_embeddings(0, cluster.devices, transport, h)
    for dev, halo in zip(cluster.devices, halos):
        expected = cluster.dataset.features[dev.part.halo_global]
        assert np.allclose(halo, expected)


def test_second_epoch_uses_previous_values(cluster):
    exchange = StaleHaloExchange()
    transport = Transport(cluster.num_devices)
    h0 = [dev.features for dev in cluster.devices]
    exchange.on_epoch_start(0)
    exchange.exchange_embeddings(0, cluster.devices, transport, h0)
    # Epoch 1 sends completely different values; receivers must still see
    # the epoch-0 values (one-epoch staleness).
    h1 = [f + 100.0 for f in h0]
    exchange.on_epoch_start(1)
    halos = exchange.exchange_embeddings(0, cluster.devices, transport, h1)
    for dev, halo in zip(cluster.devices, halos):
        expected = cluster.dataset.features[dev.part.halo_global]
        assert np.allclose(halo, expected)  # NOT the +100 values
    # Epoch 2 sees epoch 1's values.
    exchange.on_epoch_start(2)
    halos2 = exchange.exchange_embeddings(0, cluster.devices, transport, h1)
    for dev, halo in zip(cluster.devices, halos2):
        expected = cluster.dataset.features[dev.part.halo_global] + 100.0
        assert np.allclose(halo, expected)


def test_gradients_also_stale(cluster):
    exchange = StaleHaloExchange()
    transport = Transport(cluster.num_devices)
    ones = [np.ones((dev.part.n_halo, 4), dtype=np.float32) for dev in cluster.devices]
    twos = [2 * o for o in ones]
    d_own_a = [np.zeros((dev.part.n_owned, 4), dtype=np.float32) for dev in cluster.devices]
    exchange.exchange_gradients(0, cluster.devices, transport, ones, d_own_a)
    d_own_b = [np.zeros((dev.part.n_owned, 4), dtype=np.float32) for dev in cluster.devices]
    exchange.exchange_gradients(0, cluster.devices, transport, twos, d_own_b)
    # Warm-up delivered the "ones"; second call delivers stale "ones" again.
    for a, b in zip(d_own_a, d_own_b):
        assert np.allclose(a, b)


def test_bytes_still_flow_every_epoch(cluster):
    """Staleness overlaps communication; it does not remove it."""
    exchange = StaleHaloExchange()
    transport = Transport(cluster.num_devices)
    h = [dev.features for dev in cluster.devices]
    exchange.exchange_embeddings(0, cluster.devices, transport, h)
    first = transport.total_bytes()
    exchange.exchange_embeddings(0, cluster.devices, transport, h)
    assert transport.total_bytes() == 2 * first


def test_training_with_staleness_converges(tiny_single_label_dataset):
    from repro.core.config import RunConfig
    from repro.core.trainer import train
    from repro.graph.partition.api import partition_graph as pg

    ds = tiny_single_label_dataset
    book = pg(ds.graph, 4, method="metis", seed=0)
    cfg = RunConfig(epochs=12, hidden_dim=16, eval_every=12, dropout=0.0, model_kind="sage")
    stale = train("pipegcn", ds, book, "2M-2D", cfg)
    exact = train("vanilla", ds, book, "2M-2D", cfg)
    assert stale.final_val > 0.5 * exact.final_val  # converges, maybe slower
