"""End-to-end trainer: every system trains, results are sane/deterministic."""

import numpy as np
import pytest

from repro.core.config import RunConfig
from repro.core.trainer import SYSTEMS, train
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def case(tiny_single_label_dataset):
    ds = tiny_single_label_dataset
    book = partition_graph(ds.graph, 4, method="metis", seed=0)
    return ds, book


def _cfg(**kwargs):
    base = dict(epochs=4, hidden_dim=8, eval_every=2, dropout=0.0, reassign_period=2)
    base.update(kwargs)
    return RunConfig(**base)


@pytest.mark.parametrize("system", SYSTEMS)
def test_every_system_trains(case, system):
    ds, book = case
    result = train(system, ds, book, "2M-2D", _cfg())
    assert result.epochs == 4
    assert np.isfinite(result.final_val)
    assert result.epoch_time_mean > 0
    assert result.throughput > 0
    assert len(result.curve_loss) == 4
    assert result.curve_epochs[-1] == 3  # final epoch always evaluated


def test_unknown_system_rejected(case):
    ds, book = case
    with pytest.raises(ValueError, match="unknown system"):
        train("turbo", ds, book, "2M-2D", _cfg())


def test_topology_partition_mismatch(case):
    ds, book = case
    with pytest.raises(ValueError, match="devices"):
        train("vanilla", ds, book, "2M-4D", _cfg())


def test_deterministic_runs(case):
    ds, book = case
    a = train("adaqp", ds, book, "2M-2D", _cfg(seed=3))
    b = train("adaqp", ds, book, "2M-2D", _cfg(seed=3))
    assert a.curve_loss == b.curve_loss
    assert a.final_val == b.final_val
    assert a.epoch_times == b.epoch_times


def test_adaqp_records_assignment_overhead(case):
    ds, book = case
    result = train("adaqp", ds, book, "2M-2D", _cfg())
    assert result.assign_seconds > 0  # period=2 over 4 epochs -> >=1 solve
    assert sum(result.bit_histogram.values()) > 0
    assert result.total_wallclock == pytest.approx(
        result.train_wallclock + result.assign_seconds
    )


def test_vanilla_has_no_quant_time(case):
    ds, book = case
    result = train("vanilla", ds, book, "2M-2D", _cfg())
    assert result.quant_time_total == 0.0
    assert result.assign_seconds == 0.0


def test_adaqp_moves_fewer_bytes_than_vanilla(case):
    ds, book = case
    vanilla = train("vanilla", ds, book, "2M-2D", _cfg())
    adaqp = train("adaqp-fixed", ds, book, "2M-2D", _cfg(fixed_bits=2))
    assert adaqp.wire_bytes_total < 0.25 * vanilla.wire_bytes_total


def test_adaqp_higher_throughput_than_vanilla(case):
    ds, book = case
    vanilla = train("vanilla", ds, book, "2M-2D", _cfg())
    adaqp = train("adaqp", ds, book, "2M-2D", _cfg())
    assert adaqp.throughput > 1.3 * vanilla.throughput  # paper: 2.19-3.01x


def test_breakdown_keys(case):
    ds, book = case
    result = train("adaqp", ds, book, "2M-2D", _cfg())
    bd = result.breakdown()
    assert set(bd) == {"comm", "comp", "quant"}
    assert all(v >= 0 for v in bd.values())


def test_config_validation():
    with pytest.raises(ValueError):
        RunConfig(epochs=0)
    with pytest.raises(ValueError):
        RunConfig(model_kind="gat")
    with pytest.raises(ValueError):
        RunConfig(fixed_bits=5)
    with pytest.raises(ValueError):
        RunConfig(lam=2.0)


def test_config_with_overrides():
    cfg = RunConfig().with_overrides(epochs=7, lam=0.25)
    assert cfg.epochs == 7 and cfg.lam == 0.25
    assert RunConfig().epochs != 7
