"""Schedule simulators: overlap semantics per system."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.exchange import ExactHaloExchange, FixedBitProvider, QuantizedHaloExchange
from repro.cluster.perfmodel import PerfModel
from repro.comm.costmodel import LinkCostModel
from repro.comm.topology import parse_topology
from repro.core.scheduler import (
    SCHEDULES,
    device_comm_times,
    device_compute_times,
    schedule_adaqp,
    schedule_pipegcn,
    schedule_sancus,
    schedule_vanilla,
)
from repro.graph.partition.api import partition_graph


@pytest.fixture(scope="module")
def env(tiny_dataset):
    book = partition_graph(tiny_dataset.graph, 4, method="metis", seed=0)
    cluster = Cluster(
        tiny_dataset, book, model_kind="gcn", hidden_dim=16, num_layers=3,
        dropout=0.0, seed=0,
    )
    cost = LinkCostModel.for_topology(parse_topology("2M-2D"))
    perf = PerfModel()
    record = cluster.train_epoch(ExactHaloExchange(), 0)
    q_cluster = Cluster(
        tiny_dataset, book, model_kind="gcn", hidden_dim=16, num_layers=3,
        dropout=0.0, seed=0,
    )
    q_record = q_cluster.train_epoch(
        QuantizedHaloExchange(FixedBitProvider(2), np.random.default_rng(0)), 0
    )
    return record, q_record, cost, perf


def test_vanilla_epoch_is_comm_plus_comp(env):
    record, _, cost, perf = env
    res = schedule_vanilla(record, cost, perf)
    assert res.epoch_time == pytest.approx(res.comm_time + res.comp_time)
    assert res.quant_time == 0.0
    assert res.throughput == pytest.approx(1.0 / res.epoch_time)


def test_adaqp_buckets_sum_to_epoch(env):
    _, q_record, cost, perf = env
    res = schedule_adaqp(q_record, cost, perf)
    assert res.epoch_time == pytest.approx(
        res.comm_time + res.comp_time + res.quant_time
    )
    assert res.quant_time > 0


def test_adaqp_faster_than_vanilla_on_quantized_record(env):
    record, q_record, cost, perf = env
    vanilla = schedule_vanilla(record, cost, perf)
    adaqp = schedule_adaqp(q_record, cost, perf)
    assert adaqp.epoch_time < 0.6 * vanilla.epoch_time  # paper: 2-3x


def test_adaqp_overlap_never_beats_lower_bound(env):
    """Stage 2 is max(comm, central comp): epoch can't undercut either."""
    _, q_record, cost, perf = env
    res = schedule_adaqp(q_record, cost, perf)
    from repro.comm.ring import ring_all2all_time

    ring_only = sum(
        ring_all2all_time(p.bytes_matrix, cost)[0] for p in q_record.phases
    )
    assert res.epoch_time >= ring_only


def test_pipegcn_overlap_semantics(env):
    record, _, cost, perf = env
    res = schedule_pipegcn(record, cost, perf)
    vanilla = schedule_vanilla(record, cost, perf)
    assert res.epoch_time < vanilla.epoch_time
    # Epoch is the max of the overlapped quantities plus the allreduce.
    assert res.epoch_time <= max(res.comm_time, res.comp_time) + 1e-9
    assert "overlapped" in res.detail


def test_sancus_sequential_slower_than_ring(env):
    record, _, cost, perf = env
    sancus = schedule_sancus(record, cost, perf)
    vanilla = schedule_vanilla(record, cost, perf)
    # Same byte matrices, but serialized pairwise: comm must be larger.
    assert sancus.comm_time > vanilla.comm_time


def test_schedule_registry(env):
    record, _, cost, perf = env
    assert set(SCHEDULES) == {
        "vanilla", "adaqp", "adaqp-pipelined", "pipegcn", "sancus",
        "quantized-no-overlap",
    }
    for fn in SCHEDULES.values():
        res = fn(record, cost, perf)
        assert res.epoch_time > 0


def test_adaqp_pipelined_hides_lookahead(env):
    """Depth 2 models the cross-step interleave: the epoch shrinks by
    exactly the per-pair hidden lookahead, which is bounded by the total
    quantize time (only quantize dispatch moves under a prior window)."""
    _, q_record, cost, perf = env
    shallow = schedule_adaqp(q_record, cost, perf, pipeline_depth=1)
    deep = schedule_adaqp(q_record, cost, perf, pipeline_depth=2)
    hidden = deep.detail["hidden_lookahead"]
    assert hidden > 0
    assert deep.epoch_time == pytest.approx(shallow.epoch_time - hidden)
    assert hidden <= shallow.quant_time
    assert shallow.detail == {}
    with pytest.raises(ValueError, match="pipeline_depth"):
        schedule_adaqp(q_record, cost, perf, pipeline_depth=3)


def test_device_comm_times_shape_and_positivity(env):
    record, _, cost, perf = env
    comm = device_comm_times(record, cost)
    assert comm.shape == (4,)
    assert (comm > 0).all()


def test_device_compute_times_central_less_than_total(env):
    record, _, cost, perf = env
    total = device_compute_times(record, perf)
    central = device_compute_times(record, perf, central_only=True)
    assert (central < total).all()
    assert (central > 0).all()


def test_empty_record_rejected(env):
    from repro.cluster.records import EpochRecord

    _, _, cost, perf = env
    with pytest.raises(ValueError):
        device_comm_times(EpochRecord(loss=0.0), cost)
    with pytest.raises(ValueError):
        device_compute_times(EpochRecord(loss=0.0), perf)
