"""Central/marginal decomposition statistics."""

import numpy as np
import pytest

from repro.cluster.perfmodel import PerfModel
from repro.core.decompose import decompose_partition
from repro.gnn.coefficients import build_aggregation


@pytest.fixture(scope="module")
def stats_and_parts(tiny_dataset, tiny_parts):
    deg = tiny_dataset.graph.degrees.astype(np.float64)
    out = []
    for part in tiny_parts:
        agg = build_aggregation(part, deg, "gcn")
        out.append((decompose_partition(part, agg), part, agg))
    return out


def test_counts_partition_rows(stats_and_parts):
    for stats, part, _ in stats_and_parts:
        assert stats.n_central + stats.n_marginal == stats.n_owned == part.n_owned
        assert stats.n_marginal == int(part.marginal_mask.sum())


def test_nnz_split_consistent(stats_and_parts):
    for stats, _, agg in stats_and_parts:
        assert stats.agg_nnz_central + stats.agg_nnz_marginal == stats.agg_nnz_total
        assert stats.agg_nnz_total == agg.nnz


def test_fractions_in_unit_interval(stats_and_parts):
    for stats, _, _ in stats_and_parts:
        assert 0.0 <= stats.central_row_fraction <= 1.0
        assert stats.central_row_fraction + stats.marginal_row_fraction == pytest.approx(1.0)


def test_compute_times_positive_and_additive(stats_and_parts):
    perf = PerfModel()
    for stats, _, _ in stats_and_parts:
        central = stats.central_compute_time(16, 8, perf)
        marginal = stats.marginal_compute_time(16, 8, perf)
        assert central > 0 and marginal > 0
        # Stage split costs two launches instead of one, so the sum can
        # slightly exceed the fused time but never undercut the FLOPs.
        fused_flops_time = perf.compute_time(
            PerfModel.spmm_flops(stats.agg_nnz_total, 16),
            PerfModel.gemm_flops(stats.n_owned, 16, 8),
        )
        assert central + marginal >= fused_flops_time - 4 * perf.kernel_launch_s


def test_dense_factor_scales_gemm(stats_and_parts):
    perf = PerfModel()
    stats = stats_and_parts[0][0]
    single = stats.central_compute_time(16, 8, perf, dense_factor=1.0)
    double = stats.central_compute_time(16, 8, perf, dense_factor=2.0)
    assert double > single
